//! Address recurrences and Latbench (Sections 3.2, 4.2, 5.1):
//! pointer chasing is the extreme clustering problem — every dereference
//! depends on the previous one, so no amount of dynamic (hardware)
//! unrolling helps. Only a source-level transformation that interleaves
//! *independent* chains (unroll-and-jam over the chain loop) creates
//! memory parallelism.
//!
//! ```text
//! cargo run --release --example pointer_chase
//! ```

use mempar::{analyze_inner_loop, machine_summary, run_pair, MachineConfig, MissProfile};
use mempar_transform::{innermost_loops, loop_at};
use mempar_workloads::{latbench, LatbenchParams};

fn main() {
    let params = LatbenchParams {
        chains: 64,
        chain_len: 256,
        pool: 1 << 16,
        seed: 1,
    };
    let w = latbench(params);
    let cfg = MachineConfig::base_simulated(1, w.l2_bytes);

    // Show what the analysis sees in the chase loop.
    let inner_path = innermost_loops(&w.program)[0].clone();
    let inner = loop_at(&w.program, &inner_path).expect("chase loop");
    let an = analyze_inner_loop(
        &w.program,
        &inner.body,
        inner.var,
        &machine_summary(&cfg),
        &MissProfile::pessimistic(),
    );
    println!("chase-loop analysis:");
    println!(
        "  address recurrence: {}",
        an.recurrences.has_address_recurrence
    );
    println!(
        "  alpha = {:.2} (misses serialized per iteration)",
        an.recurrences.alpha
    );
    println!("  f = {:.1} (overlappable misses per window)", an.f);
    println!(
        "  -> unroll-and-jam indicated: {}",
        an.needs_unroll_and_jam(&machine_summary(&cfg))
    );

    // Full base-vs-clustered comparison.
    let pair = run_pair(&w, &cfg);
    println!("\ntransformations:\n{}", pair.report.summary());
    println!(
        "base:      {:>9} cycles, {:.0} ns stall per miss",
        pair.base.cycles,
        pair.base.avg_read_miss_stall_ns()
    );
    println!(
        "clustered: {:>9} cycles, {:.0} ns stall per miss",
        pair.clustered.cycles,
        pair.clustered.avg_read_miss_stall_ns()
    );
    println!(
        "stall-per-miss speedup: {:.2}x (the paper reports 5.34x on its\n\
         simulated system and 5.77x on the Convex Exemplar)",
        pair.base.avg_read_miss_stall_ns() / pair.clustered.avg_read_miss_stall_ns()
    );
    println!(
        "total per-miss latency grew {:.0} -> {:.0} ns: the overlapped misses\n\
         now contend for the bus and banks (Section 5.1's second finding).",
        pair.base.avg_read_miss_latency_ns(),
        pair.clustered.avg_read_miss_latency_ns()
    );
    assert!(pair.outputs_match);
}
