//! Figures 1 and 2 of the paper, executable: the three matrix-traversal
//! orders — locality-first (row-wise), clustering-first (column-wise,
//! via loop interchange) and both (strip-mine-and-interchange /
//! unroll-and-jam) — simulated head-to-head.
//!
//! ```text
//! cargo run --release --example traversal_orders
//! ```

use mempar::{run_program, MachineConfig};
use mempar_ir::{ArrayData, Program, ProgramBuilder, SimMem};
use mempar_transform::{interchange, strip_mine, unroll_and_jam, NestPath};

const N: usize = 512;

/// Figure 2(a): the locality-optimized row-wise traversal.
fn base_traversal() -> (Program, mempar_ir::ArrayId) {
    let mut b = ProgramBuilder::new("traversal");
    let a = b.array_f64("A", &[N, N]);
    let s = b.scalar_f64("sum", 0.0);
    let j = b.var("j");
    let i = b.var("i");
    b.for_const(j, 0, N as i64, |b| {
        b.for_const(i, 0, N as i64, |b| {
            let v = b.load(a, &[b.idx(j), b.idx(i)]);
            let acc = b.scalar(s);
            let sum = b.add(acc, v);
            b.assign_scalar(s, sum);
        });
    });
    let p = b.finish();
    (p, a)
}

fn run(name: &str, prog: &Program, a: mempar_ir::ArrayId, cfg: &MachineConfig) {
    let mut mem = SimMem::new(prog, 1);
    mem.set_array(a, ArrayData::f64_fill(N * N, 1.0));
    let r = run_program(prog, &mut mem, cfg);
    let b = r.mean_breakdown();
    println!(
        "{name:<28} {:>9} cycles | {:>6} L2 misses | data stall {:>4.0}% | >=2 misses {:>4.0}% of time",
        r.cycles,
        r.counters.l2_misses,
        100.0 * b.data / b.total().max(1.0),
        100.0 * r.occupancy.read_at_least(2),
    );
}

fn main() {
    let cfg = MachineConfig::base_simulated(1, 64 * 1024);
    println!("Figure 1/2: {N}x{N} matrix traversals on the base machine\n");

    // (a) Exploits locality: minimal misses, zero clustering.
    let (fig2a, a) = base_traversal();
    run("(a) row-wise (locality)", &fig2a, a, &cfg);

    // (b) Exploits clustering: loop interchange. Misses overlap but
    // every access is a miss — locality is destroyed (N rows exceed the
    // cache, so lines are evicted before reuse).
    let (mut fig2b, _) = base_traversal();
    interchange(&mut fig2b, &NestPath::top(0)).expect("rectangular and legal");
    run("(b) column-wise (interchange)", &fig2b, a, &cfg);

    // (c) Exploits both: strip-mine the outer loop to the machine's
    // overlap capacity (10 MSHRs), then interchange.
    let (mut fig2c, _) = base_traversal();
    let strip = strip_mine(&mut fig2c, &NestPath::top(0), 10).expect("legal");
    interchange(&mut fig2c, &strip.child(0)).expect("legal");
    run("(c) strip-mine + interchange", &fig2c, a, &cfg);

    // (d) Unroll-and-jam: the form the paper prefers (same traversal as
    // (c) but with the short inner loop fully unrolled, enabling scalar
    // replacement and keeping the inner trip count).
    let (mut fig2d, _) = base_traversal();
    unroll_and_jam(&mut fig2d, &NestPath::top(0), 10).expect("legal");
    run("(d) unroll-and-jam", &fig2d, a, &cfg);

    println!(
        "\n(a) has the fewest misses but no overlap; (b) overlaps everything\n\
         but multiplies misses; (c)/(d) keep (a)'s miss count with (b)'s\n\
         overlap — the paper's point in Section 2.2."
    );
}
