//! Quickstart: build a loop nest, let the framework cluster it, and
//! simulate both versions on the paper's base machine.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use mempar::{cluster_program, machine_summary, run_program, MachineConfig, MissProfile};
use mempar_ir::{ArrayData, ProgramBuilder, SimMem};

fn main() {
    // The paper's motivating example (Figure 2(a)): a row-wise matrix
    // traversal. Spatial locality is perfect — and read misses never
    // overlap, because every window's loads hit the same cache line.
    let n = 512usize;
    let mut b = ProgramBuilder::new("fig2a");
    let a = b.array_f64("a", &[n, n]);
    let row_sum = b.array_f64("row_sum", &[n]);
    let s = b.scalar_f64("sum", 0.0);
    let j = b.var("j");
    let i = b.var("i");
    b.for_const(j, 0, n as i64, |b| {
        let zero = b.constf(0.0);
        b.assign_scalar(s, zero);
        b.for_const(i, 0, n as i64, |b| {
            let v = b.load(a, &[b.idx(j), b.idx(i)]);
            let acc = b.scalar(s);
            let sum = b.add(acc, v);
            b.assign_scalar(s, sum);
        });
        let fin = b.scalar(s);
        b.assign_array(row_sum, &[b.idx(j)], fin);
    });
    let base = b.finish();

    println!("--- base program ---\n{base}");

    // Apply the paper's framework: analysis finds the cache-line
    // recurrence (alpha = 1) and unroll-and-jams the outer loop until the
    // estimated overlapped misses fill the machine's 10 MSHRs.
    let cfg = MachineConfig::base_simulated(1, 64 * 1024);
    let mut clustered = base.clone();
    let report = cluster_program(
        &mut clustered,
        &machine_summary(&cfg),
        &MissProfile::pessimistic(),
    );
    println!("--- transformations ---\n{}", report.summary());
    println!("--- clustered program ---\n{clustered}");

    // Simulate both on the Table 1 machine.
    let data = ArrayData::F64((0..n * n).map(|x| (x % 13) as f64).collect());
    let mut base_mem = SimMem::new(&base, 1);
    base_mem.set_array(a, data.clone());
    let base_run = run_program(&base, &mut base_mem, &cfg);

    let mut clust_mem = SimMem::new(&clustered, 1);
    clust_mem.set_array(a, data);
    let clust_run = run_program(&clustered, &mut clust_mem, &cfg);

    assert_eq!(
        base_mem.read_f64(row_sum),
        clust_mem.read_f64(row_sum),
        "transformations must preserve results"
    );

    let b0 = base_run.mean_breakdown();
    let b1 = clust_run.mean_breakdown();
    println!("--- simulated on {} ---", cfg.name);
    println!(
        "base:      {:>9} cycles ({:.0}% data stall)",
        base_run.cycles,
        100.0 * b0.data / b0.total()
    );
    println!(
        "clustered: {:>9} cycles ({:.0}% data stall)",
        clust_run.cycles,
        100.0 * b1.data / b1.total()
    );
    println!(
        "execution time reduction: {:.1}%",
        b1.percent_reduction_from(&b0)
    );
    println!(
        "mean read misses in flight: {:.2} -> {:.2}",
        base_run.occupancy.mean_read_occupancy(),
        clust_run.occupancy.mean_read_occupancy()
    );
}
