//! Software prefetching vs read-miss clustering — the comparison behind
//! the paper's Section 1 claim that prefetching "can be less effective in
//! ILP systems", and its companion work (Pai & Adve, Rice TR 9910) on
//! combining the two.
//!
//! ```text
//! cargo run --release --example prefetch_interplay
//! ```

use mempar::{machine_summary, profile_miss_rates, run_program, MachineConfig};
use mempar_transform::{cluster_program, innermost_loops, insert_prefetches};
use mempar_workloads::{erlebacher, latbench, ErlebacherParams, LatbenchParams};

fn main() {
    let cfg = MachineConfig::base_simulated(1, 64 * 1024);

    // ---- A regular workload: both techniques apply -------------------
    let w = erlebacher(ErlebacherParams { n: 48 });
    let mut profile_mem = w.memory(1);
    let profile = profile_miss_rates(&w.program, &mut profile_mem, &cfg.l2);

    let mut prefetched = w.program.clone();
    let mut inserted = 0;
    for nest in innermost_loops(&prefetched) {
        inserted +=
            insert_prefetches(&mut prefetched, &nest, 16, cfg.l2.line_bytes, &profile).unwrap_or(0);
    }
    let mut clustered = w.program.clone();
    cluster_program(&mut clustered, &machine_summary(&cfg), &profile);
    let mut both = clustered.clone();
    for nest in innermost_loops(&both) {
        let _ = insert_prefetches(&mut both, &nest, 16, cfg.l2.line_bytes, &profile);
    }

    println!("Erlebacher (3-D sweeps, {inserted} prefetch sites):");
    let mut base_cycles = 0;
    for (name, prog) in [
        ("base", &w.program),
        ("prefetch only", &prefetched),
        ("clustering only", &clustered),
        ("clustering + prefetch", &both),
    ] {
        let mut mem = w.memory(1);
        let r = run_program(prog, &mut mem, &cfg);
        if base_cycles == 0 {
            base_cycles = r.cycles;
        }
        println!(
            "  {name:<22} {:>9} cycles  ({:+5.1}%)",
            r.cycles,
            100.0 * (r.cycles as f64 - base_cycles as f64) / base_cycles as f64
        );
    }

    // ---- A pointer chase: prefetching has no address to fetch --------
    let w2 = latbench(LatbenchParams {
        chains: 48,
        chain_len: 128,
        pool: 1 << 15,
        seed: 5,
    });
    let mut pm2 = w2.memory(1);
    let profile2 = profile_miss_rates(&w2.program, &mut pm2, &cfg.l2);
    let mut pf2 = w2.program.clone();
    let mut insertable = 0;
    for nest in innermost_loops(&pf2) {
        insertable +=
            insert_prefetches(&mut pf2, &nest, 8, cfg.l2.line_bytes, &profile2).unwrap_or(0);
    }
    let mut cl2 = w2.program.clone();
    cluster_program(&mut cl2, &machine_summary(&cfg), &profile2);
    println!("\nLatbench (pointer chase): {insertable} prefetch sites insertable");
    for (name, prog) in [("base", &w2.program), ("clustering", &cl2)] {
        let mut mem = w2.memory(1);
        let r = run_program(prog, &mut mem, &cfg);
        println!("  {name:<22} {:>9} cycles", r.cycles);
    }
    println!(
        "\nPrefetching needs a computable future address; the chase's next\n\
         address *is* the missing datum. Clustering sidesteps this by\n\
         overlapping independent chains — the paper's core argument."
    );
}
