//! Offline stand-in for the `criterion` crate.
//!
//! Implements the subset of the criterion 0.5 API the workspace's bench
//! targets use (`criterion_group!`, `criterion_main!`, benchmark groups,
//! `Bencher::iter`, `black_box`) with plain wall-clock measurement: each
//! benchmark runs one warm-up iteration and then `sample_size` timed
//! iterations, printing mean/min per-iteration times. There is no
//! statistical analysis, HTML report, or baseline comparison.

use std::time::Instant;

/// Prevents the optimizer from discarding a value.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// The benchmark driver handed to `criterion_group!` functions.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        println!("group {name}");
        BenchmarkGroup {
            _c: self,
            sample_size: 10,
        }
    }

    /// Registers a stand-alone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        run_one(name, 10, &mut f);
        self
    }
}

/// A named collection of benchmarks sharing a sample size.
#[derive(Debug)]
pub struct BenchmarkGroup<'c> {
    _c: &'c mut Criterion,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed iterations per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Runs one benchmark in the group.
    pub fn bench_function<N: std::fmt::Display, F: FnMut(&mut Bencher)>(
        &mut self,
        name: N,
        mut f: F,
    ) -> &mut Self {
        run_one(&name.to_string(), self.sample_size, &mut f);
        self
    }

    /// Ends the group (no-op; exists for API compatibility).
    pub fn finish(self) {}
}

fn run_one<F: FnMut(&mut Bencher)>(name: &str, samples: usize, f: &mut F) {
    // Warm-up pass (also primes lazy state inside the closure).
    let mut b = Bencher {
        iters: 1,
        elapsed_ns: 0.0,
    };
    f(&mut b);
    let mut total = 0.0f64;
    let mut min = f64::INFINITY;
    for _ in 0..samples {
        let mut b = Bencher {
            iters: 1,
            elapsed_ns: 0.0,
        };
        f(&mut b);
        let per_iter = b.elapsed_ns / b.iters as f64;
        total += per_iter;
        min = min.min(per_iter);
    }
    let mean = total / samples as f64;
    println!(
        "  {name:<40} mean {:>12} min {:>12}",
        fmt_ns(mean),
        fmt_ns(min)
    );
}

fn fmt_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3} us", ns / 1e3)
    } else {
        format!("{ns:.0} ns")
    }
}

/// Times closures handed to it by a benchmark body.
#[derive(Debug)]
pub struct Bencher {
    iters: u64,
    elapsed_ns: f64,
}

impl Bencher {
    /// Times `f`, recording its wall-clock duration.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut f: F) {
        let start = Instant::now();
        black_box(f());
        self.elapsed_ns += start.elapsed().as_nanos() as f64;
    }
}

/// Bundles benchmark functions into a runnable group.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Emits `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_body() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("t");
        g.sample_size(2);
        let mut runs = 0;
        g.bench_function("count", |b| b.iter(|| runs += 1));
        g.finish();
        // 1 warm-up + 2 samples.
        assert_eq!(runs, 3);
    }
}
