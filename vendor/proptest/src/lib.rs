//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no crates.io access, so this vendored
//! package implements the subset of the proptest API the workspace's
//! property tests use: the [`proptest!`] macro, `prop_assert*`
//! assertions, range / tuple / `Just` / `prop_oneof!` / `collection::vec`
//! / `bool::ANY` strategies, `prop_map`, and [`ProptestConfig`].
//!
//! Semantics differences from upstream, deliberately accepted:
//! * cases are generated from a per-test deterministic seed (FNV-1a of
//!   the test name), so runs are reproducible but not configurable via
//!   `PROPTEST_*` environment variables;
//! * there is no shrinking — a failing case panics with the generated
//!   inputs via the assertion message instead of a minimized example;
//! * `prop_assert*` panic immediately rather than returning `Err`.
//!
//! Regression persistence follows the upstream convention: when a case
//! fails, its RNG state is appended as a `cc <64 hex chars>` line to a
//! `<test-file>.proptest-regressions` sibling of the test source file,
//! and every persisted state is replayed *before* fresh cases on later
//! runs. Commit those files so all checkouts replay known failures.

use std::ops::{Range, RangeInclusive};

/// Per-run configuration. Only `cases` is honored.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases to execute per property.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

impl ProptestConfig {
    /// A configuration running `cases` random cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// Deterministic test-case RNG (xoshiro256++, seeded from the test name).
#[derive(Debug, Clone)]
pub struct TestRng {
    s: [u64; 4],
}

impl TestRng {
    /// An RNG seeded from `name` (FNV-1a) — stable across runs.
    pub fn deterministic(name: &str) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        let mut sm = h;
        let mut next = || {
            sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = sm;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        TestRng {
            s: [next(), next(), next(), next()],
        }
    }

    /// Next uniform 64-bit word.
    pub fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }

    /// Uniform value in `[0, span)`.
    pub fn below(&mut self, span: u128) -> u128 {
        debug_assert!(span > 0);
        (self.next_u64() as u128 * span) >> 64
    }

    /// The internal state as 64 hex characters (regression-file form).
    pub fn state_hex(&self) -> String {
        self.s.iter().map(|w| format!("{w:016x}")).collect()
    }

    /// Reconstructs an RNG from [`TestRng::state_hex`] output.
    pub fn from_state_hex(hex: &str) -> Option<Self> {
        if hex.len() != 64 || !hex.bytes().all(|b| b.is_ascii_hexdigit()) {
            return None;
        }
        let mut s = [0u64; 4];
        for (i, w) in s.iter_mut().enumerate() {
            *w = u64::from_str_radix(&hex[i * 16..(i + 1) * 16], 16).ok()?;
        }
        // The all-zero state is a xoshiro fixed point; refuse it.
        if s == [0; 4] {
            return None;
        }
        Some(TestRng { s })
    }
}

/// Path of the regression file for a test source file (`file!()` value):
/// the upstream `<stem>.proptest-regressions` sibling convention.
pub fn regression_path(source_file: &str) -> std::path::PathBuf {
    std::path::Path::new(source_file).with_extension("proptest-regressions")
}

/// Loads every persisted failure state from `path` (missing file = no
/// regressions). Lines are `cc <64 hex>` with an optional `# comment`;
/// anything else is ignored, matching upstream's tolerant parser.
pub fn load_regressions(path: &std::path::Path) -> Vec<TestRng> {
    let Ok(text) = std::fs::read_to_string(path) else {
        return Vec::new();
    };
    text.lines()
        .filter_map(|line| {
            let rest = line.trim().strip_prefix("cc ")?;
            let hex = rest.split_whitespace().next()?;
            TestRng::from_state_hex(hex)
        })
        .collect()
}

/// Appends a failing case's RNG state to `path`, creating the file with
/// the upstream header comment if needed. Best-effort: persistence must
/// never mask the original test failure.
pub fn record_regression(path: &std::path::Path, test_name: &str, state_hex: &str) {
    use std::io::Write as _;
    let existing = std::fs::read_to_string(path).unwrap_or_default();
    if existing
        .lines()
        .any(|l| l.trim().starts_with(&format!("cc {state_hex}")))
    {
        return;
    }
    let mut out = String::new();
    if existing.is_empty() {
        out.push_str(
            "# Seeds for failure cases proptest has generated in the past. It is\n\
             # automatically read and these particular cases re-run before any\n\
             # novel cases are generated.\n\
             #\n\
             # It is recommended to check this file in to source control so that\n\
             # everyone who runs the test benefits from these saved cases.\n",
        );
    }
    out.push_str(&format!(
        "cc {state_hex} # seeds a failing case of {test_name}\n"
    ));
    let _ = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(path)
        .and_then(|mut f| f.write_all(out.as_bytes()));
}

/// A generator of random values (no shrinking).
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Generates one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }

    /// Type-erases the strategy (used by [`prop_oneof!`]).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Box::new(move |rng| self.sample(rng)))
    }
}

/// A type-erased strategy.
pub struct BoxedStrategy<V>(Box<dyn Fn(&mut TestRng) -> V>);

impl<V> std::fmt::Debug for BoxedStrategy<V> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("BoxedStrategy")
    }
}

impl<V> Strategy for BoxedStrategy<V> {
    type Value = V;
    fn sample(&self, rng: &mut TestRng) -> V {
        (self.0)(rng)
    }
}

/// Always generates a clone of the wrapped value.
#[derive(Debug, Clone)]
pub struct Just<T>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// [`Strategy::prop_map`]'s return type.
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;
    fn sample(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.sample(rng))
    }
}

/// Uniform choice between boxed strategies ([`prop_oneof!`]).
#[derive(Debug)]
pub struct Union<V> {
    arms: Vec<BoxedStrategy<V>>,
}

impl<V> Union<V> {
    /// A union over `arms` (must be non-empty).
    pub fn new(arms: Vec<BoxedStrategy<V>>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Union { arms }
    }
}

impl<V> Strategy for Union<V> {
    type Value = V;
    fn sample(&self, rng: &mut TestRng) -> V {
        let i = rng.below(self.arms.len() as u128) as usize;
        self.arms[i].sample(rng)
    }
}

macro_rules! int_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let span = (self.end as i128 - self.start as i128) as u128;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty strategy range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                (lo as i128 + rng.below(span) as i128) as $t
            }
        }
    )*};
}

int_strategy!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn sample(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty strategy range");
        let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        self.start + (self.end - self.start) * unit
    }
}

macro_rules! tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                #[allow(non_snake_case)]
                let ($($name,)+) = self;
                ($($name.sample(rng),)+)
            }
        }
    };
}

tuple_strategy!(A);
tuple_strategy!(A, B);
tuple_strategy!(A, B, C);
tuple_strategy!(A, B, C, D);
tuple_strategy!(A, B, C, D, E);
tuple_strategy!(A, B, C, D, E, F);

/// Boolean strategies.
pub mod bool {
    use super::{Strategy, TestRng};

    /// Uniform `true`/`false`.
    #[derive(Debug, Clone, Copy)]
    pub struct Any;

    /// The uniform boolean strategy.
    pub const ANY: Any = Any;

    impl Strategy for Any {
        type Value = bool;
        fn sample(&self, rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }
}

/// Collection strategies.
pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::Range;

    /// Anything `vec`'s size argument accepts.
    pub trait IntoSizeRange {
        /// Inclusive-lo, exclusive-hi bounds.
        fn bounds(&self) -> (usize, usize);
    }

    impl IntoSizeRange for usize {
        fn bounds(&self) -> (usize, usize) {
            (*self, *self + 1)
        }
    }

    impl IntoSizeRange for Range<usize> {
        fn bounds(&self) -> (usize, usize) {
            (self.start, self.end)
        }
    }

    /// Strategy for vectors of `element` with length drawn from `size`.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        lo: usize,
        hi: usize,
    }

    /// A vector strategy: each element from `element`, length in `size`.
    pub fn vec<S: Strategy>(element: S, size: impl IntoSizeRange) -> VecStrategy<S> {
        let (lo, hi) = size.bounds();
        assert!(lo < hi, "empty vec size range");
        VecStrategy { element, lo, hi }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.hi - self.lo) as u128;
            let len = self.lo + rng.below(span) as usize;
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// The `use proptest::prelude::*` surface.
pub mod prelude {
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest, Just, ProptestConfig,
        Strategy,
    };
}

/// Asserts a condition inside a property (panics on failure).
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Asserts equality inside a property (panics on failure).
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Asserts inequality inside a property (panics on failure).
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// Uniform choice between strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::Union::new(vec![$($crate::Strategy::boxed($arm)),+])
    };
}

/// Declares property tests: each function runs `config.cases` times with
/// freshly sampled inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($cfg:expr)) => {};
    (($cfg:expr)
     $(#[$attr:meta])*
     fn $name:ident($($arg:ident in $strat:expr),* $(,)?) $body:block
     $($rest:tt)*) => {
        $(#[$attr])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            let reg_path = $crate::regression_path(file!());
            // Replay persisted failure states before any novel case, so a
            // committed regression file guards every checkout.
            for mut rng in $crate::load_regressions(&reg_path) {
                $(let $arg = $crate::Strategy::sample(&($strat), &mut rng);)*
                $body
            }
            let mut rng = $crate::TestRng::deterministic(concat!(module_path!(), "::", stringify!($name)));
            for _case in 0..config.cases {
                let snapshot = rng.state_hex();
                $(let $arg = $crate::Strategy::sample(&($strat), &mut rng);)*
                let outcome = ::std::panic::catch_unwind(::std::panic::AssertUnwindSafe(move || $body));
                if let Err(payload) = outcome {
                    $crate::record_regression(&reg_path, stringify!($name), &snapshot);
                    ::std::panic::resume_unwind(payload);
                }
            }
        }
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_respect_bounds(a in -5i64..5, b in 1usize..=4) {
            prop_assert!((-5..5).contains(&a));
            prop_assert!((1..=4).contains(&b));
        }

        #[test]
        fn vec_sizes(v in crate::collection::vec(0u32..10, 2..6), exact in crate::collection::vec(0u32..10, 3)) {
            prop_assert!(v.len() >= 2 && v.len() < 6);
            prop_assert_eq!(exact.len(), 3);
        }

        #[test]
        fn oneof_and_map(x in prop_oneof![Just(1i64), Just(2i64)].prop_map(|v| v * 10)) {
            prop_assert!(x == 10 || x == 20);
        }

        #[test]
        fn bools_vary(bits in crate::collection::vec(crate::bool::ANY, 64)) {
            // 64 coin flips virtually never agree entirely.
            let heads = bits.iter().filter(|&&b| b).count();
            prop_assert!(heads > 0 && heads < 64);
        }
    }

    #[test]
    fn deterministic_across_runs() {
        let mut a = crate::TestRng::deterministic("x");
        let mut b = crate::TestRng::deterministic("x");
        assert_eq!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn state_hex_roundtrips() {
        let mut a = crate::TestRng::deterministic("roundtrip");
        let mut b = crate::TestRng::from_state_hex(&a.state_hex()).expect("valid hex");
        assert_eq!(a.next_u64(), b.next_u64());
        assert!(crate::TestRng::from_state_hex("not-hex").is_none());
        assert!(crate::TestRng::from_state_hex(&"0".repeat(64)).is_none());
    }

    #[test]
    fn regressions_record_and_replay() {
        let dir = std::env::temp_dir().join("proptest-shim-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("case.proptest-regressions");
        let _ = std::fs::remove_file(&path);
        assert!(crate::load_regressions(&path).is_empty());
        let rng = crate::TestRng::deterministic("failing");
        crate::record_regression(&path, "some_test", &rng.state_hex());
        // Duplicate states are not appended twice.
        crate::record_regression(&path, "some_test", &rng.state_hex());
        let text = std::fs::read_to_string(&path).unwrap();
        assert_eq!(text.matches("cc ").count(), 1, "{text}");
        assert!(text.starts_with("# Seeds for failure cases"));
        let loaded = crate::load_regressions(&path);
        assert_eq!(loaded.len(), 1);
        assert_eq!(loaded[0].state_hex(), rng.state_hex());
    }

    #[test]
    fn regression_path_follows_upstream_convention() {
        assert_eq!(
            crate::regression_path("tests/prop_ir.rs"),
            std::path::Path::new("tests/prop_ir.proptest-regressions")
        );
    }
}
