//! Offline stand-in for the `rayon` crate.
//!
//! The build environment has no crates.io access, so this vendored
//! package provides the fork-join subset of rayon's API the workspace
//! uses — [`join`], [`scope`], and [`ThreadPool`] — implemented directly
//! on `std::thread::scope`. There is no work stealing: `join` runs its
//! second closure on a freshly spawned scoped thread, and pools are a
//! thread-count value that fan-out helpers (see `mempar-bench`'s
//! `run_matrix`) consult when sizing their worker sets. For the
//! coarse-grained parallelism in this repository (whole simulator runs
//! per task, seconds each) spawn cost is noise, so the observable
//! behavior matches real rayon; swap the workspace dependency back to
//! the registry crate when network access is available.

use std::sync::atomic::{AtomicUsize, Ordering};

/// Runs `a` and `b` potentially in parallel, returning both results.
///
/// `b` runs on a scoped thread while `a` runs on the caller; panics in
/// either closure propagate to the caller (as in rayon).
pub fn join<A, B, RA, RB>(a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA + Send,
    B: FnOnce() -> RB + Send,
    RA: Send,
    RB: Send,
{
    std::thread::scope(|s| {
        let hb = s.spawn(b);
        let ra = a();
        let rb = match hb.join() {
            Ok(v) => v,
            Err(p) => std::panic::resume_unwind(p),
        };
        (ra, rb)
    })
}

/// A fork-join scope: closures spawned on it may borrow from the stack.
#[derive(Debug)]
pub struct Scope<'scope, 'env: 'scope> {
    inner: &'scope std::thread::Scope<'scope, 'env>,
}

impl<'scope, 'env> Scope<'scope, 'env> {
    /// Spawns `f` on the scope.
    pub fn spawn<F>(&self, f: F)
    where
        F: FnOnce(&Scope<'scope, 'env>) + Send + 'scope,
    {
        let inner = self.inner;
        inner.spawn(move || f(&Scope { inner }));
    }
}

/// Creates a scope; all spawned work completes before `scope` returns.
pub fn scope<'env, F, R>(f: F) -> R
where
    F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
{
    std::thread::scope(|s| f(&Scope { inner: s }))
}

/// The number of threads pools default to (available parallelism).
pub fn current_num_threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Error from [`ThreadPoolBuilder::build`] (never produced here; kept
/// for signature compatibility).
#[derive(Debug)]
pub struct ThreadPoolBuildError;

impl std::fmt::Display for ThreadPoolBuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("thread pool build error")
    }
}

impl std::error::Error for ThreadPoolBuildError {}

/// Builder for [`ThreadPool`].
#[derive(Debug, Default)]
pub struct ThreadPoolBuilder {
    num_threads: usize,
}

impl ThreadPoolBuilder {
    /// A new builder with default (auto) thread count.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the pool's thread count (0 = auto).
    pub fn num_threads(mut self, n: usize) -> Self {
        self.num_threads = n;
        self
    }

    /// Builds the pool.
    pub fn build(self) -> Result<ThreadPool, ThreadPoolBuildError> {
        let n = if self.num_threads == 0 {
            current_num_threads()
        } else {
            self.num_threads
        };
        Ok(ThreadPool { threads: n })
    }
}

/// A thread-count-bounded pool. Work runs on scoped threads created per
/// [`ThreadPool::install`]/[`ThreadPool::run_indexed`] call rather than
/// on persistent workers; the thread *count* is what callers rely on.
#[derive(Debug)]
pub struct ThreadPool {
    threads: usize,
}

impl ThreadPool {
    /// The pool's thread count.
    pub fn current_num_threads(&self) -> usize {
        self.threads
    }

    /// Runs `f` in the pool's context (this shim: on the caller).
    pub fn install<R, F: FnOnce() -> R>(&self, f: F) -> R {
        f()
    }

    /// Runs `task(i)` for every `i < jobs` across the pool's threads and
    /// returns the results in index order. Tasks are claimed from a
    /// shared counter, so scheduling is dynamic but collection is
    /// deterministic.
    pub fn run_indexed<R, F>(&self, jobs: usize, task: F) -> Vec<R>
    where
        R: Send,
        F: Fn(usize) -> R + Sync,
    {
        let workers = self.threads.min(jobs).max(1);
        let mut slots: Vec<Option<R>> = (0..jobs).map(|_| None).collect();
        if workers <= 1 {
            for (i, slot) in slots.iter_mut().enumerate() {
                *slot = Some(task(i));
            }
            return slots.into_iter().map(|s| s.expect("task ran")).collect();
        }
        let next = AtomicUsize::new(0);
        let task = &task;
        let next = &next;
        std::thread::scope(|s| {
            let mut handles = Vec::with_capacity(workers);
            for _ in 0..workers {
                handles.push(s.spawn(move || {
                    let mut out = Vec::new();
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= jobs {
                            return out;
                        }
                        out.push((i, task(i)));
                    }
                }));
            }
            for h in handles {
                match h.join() {
                    Ok(part) => {
                        for (i, r) in part {
                            slots[i] = Some(r);
                        }
                    }
                    Err(p) => std::panic::resume_unwind(p),
                }
            }
        });
        slots
            .into_iter()
            .map(|s| s.expect("every index claimed"))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn join_returns_both() {
        let (a, b) = join(|| 1 + 1, || "x".to_string() + "y");
        assert_eq!(a, 2);
        assert_eq!(b, "xy");
    }

    #[test]
    fn join_runs_concurrently() {
        use std::sync::mpsc;
        // Each side blocks until the other has started: only true
        // concurrency completes this.
        let (txa, rxa) = mpsc::channel();
        let (txb, rxb) = mpsc::channel();
        join(
            move || {
                txa.send(()).unwrap();
                rxb.recv_timeout(std::time::Duration::from_secs(5)).unwrap();
            },
            move || {
                txb.send(()).unwrap();
                rxa.recv_timeout(std::time::Duration::from_secs(5)).unwrap();
            },
        );
    }

    #[test]
    fn scope_joins_spawned_work() {
        let counter = AtomicUsize::new(0);
        scope(|s| {
            for _ in 0..8 {
                s.spawn(|_| {
                    counter.fetch_add(1, Ordering::Relaxed);
                });
            }
        });
        assert_eq!(counter.load(Ordering::Relaxed), 8);
    }

    #[test]
    fn run_indexed_orders_results() {
        let pool = ThreadPoolBuilder::new().num_threads(4).build().unwrap();
        let out = pool.run_indexed(100, |i| i * 3);
        assert_eq!(out, (0..100).map(|i| i * 3).collect::<Vec<_>>());
    }

    #[test]
    fn single_thread_pool_serializes() {
        let pool = ThreadPoolBuilder::new().num_threads(1).build().unwrap();
        let out = pool.run_indexed(10, |i| i);
        assert_eq!(out, (0..10).collect::<Vec<_>>());
    }
}
