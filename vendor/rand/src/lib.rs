//! Offline stand-in for the `rand` crate.
//!
//! The build environment for this repository has no access to crates.io,
//! so this vendored package provides the small slice of the `rand 0.8`
//! API the workspace uses: [`SeedableRng::seed_from_u64`],
//! [`Rng::gen_range`] over integer and float ranges, [`Rng::gen_bool`],
//! and [`rngs::StdRng`] / [`rngs::SmallRng`].
//!
//! The generator is xoshiro256++ seeded through SplitMix64 — fully
//! deterministic for a given seed, which is all the workload generators
//! require (the numeric streams differ from upstream `rand`, but every
//! result in this repository is produced and compared within this
//! implementation).

use std::ops::{Range, RangeInclusive};

/// Core RNG interface: a source of uniform 64-bit words.
pub trait RngCore {
    /// The next uniform 64-bit word.
    fn next_u64(&mut self) -> u64;

    /// The next uniform 32-bit word.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Seeding interface (only the `seed_from_u64` entry point is provided).
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// User-facing sampling methods, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// Uniform sample from `range`.
    fn gen_range<R: SampleRange>(&mut self, range: R) -> R::Output
    where
        Self: Sized,
    {
        range.sample(self)
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!(
            (0.0..=1.0).contains(&p),
            "gen_bool probability out of range"
        );
        unit_f64(self.next_u64()) < p
    }
}

impl<T: RngCore> Rng for T {}

/// `u64` word to a uniform float in `[0, 1)`.
fn unit_f64(word: u64) -> f64 {
    (word >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Range types [`Rng::gen_range`] accepts.
pub trait SampleRange {
    /// The sampled element type.
    type Output;
    /// Uniform sample from the range.
    fn sample<R: RngCore>(self, rng: &mut R) -> Self::Output;
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange for Range<$t> {
            type Output = $t;
            fn sample<R: RngCore>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty gen_range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = mul_shift(rng.next_u64(), span);
                (self.start as i128 + v as i128) as $t
            }
        }
        impl SampleRange for RangeInclusive<$t> {
            type Output = $t;
            fn sample<R: RngCore>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty gen_range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let v = mul_shift(rng.next_u64(), span);
                (lo as i128 + v as i128) as $t
            }
        }
    )*};
}

int_sample_range!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

/// Maps a uniform `u64` onto `[0, span)` by 128-bit multiply-shift.
fn mul_shift(word: u64, span: u128) -> u128 {
    debug_assert!(span > 0 && span <= u64::MAX as u128 + 1);
    (word as u128 * span) >> 64
}

impl SampleRange for Range<f64> {
    type Output = f64;
    fn sample<R: RngCore>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "empty gen_range");
        self.start + (self.end - self.start) * unit_f64(rng.next_u64())
    }
}

impl SampleRange for Range<f32> {
    type Output = f32;
    fn sample<R: RngCore>(self, rng: &mut R) -> f32 {
        assert!(self.start < self.end, "empty gen_range");
        self.start + (self.end - self.start) * unit_f64(rng.next_u64()) as f32
    }
}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// xoshiro256++ — the stand-in for `rand`'s `StdRng`.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion, the canonical xoshiro seeding.
            let mut sm = seed;
            let mut next = || {
                sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }

    /// Alias of [`StdRng`] (upstream uses xoshiro for `SmallRng` too).
    pub type SmallRng = StdRng;
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0usize..1000), b.gen_range(0usize..1000));
        }
        let mut c = StdRng::seed_from_u64(8);
        let same: usize = (0..100)
            .filter(|_| a.gen_range(0u64..100) == c.gen_range(0u64..100))
            .count();
        assert!(same < 50, "different seeds must diverge");
    }

    #[test]
    fn ranges_in_bounds() {
        let mut r = StdRng::seed_from_u64(42);
        for _ in 0..1000 {
            let v = r.gen_range(-5i64..5);
            assert!((-5..5).contains(&v));
            let u = r.gen_range(3usize..=9);
            assert!((3..=9).contains(&u));
            let f = r.gen_range(-0.5..0.5);
            assert!((-0.5..0.5).contains(&f));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut r = StdRng::seed_from_u64(1);
        assert!(!(0..100).any(|_| r.gen_bool(0.0)));
        assert!((0..100).all(|_| r.gen_bool(1.0)));
        let heads = (0..10_000).filter(|_| r.gen_bool(0.5)).count();
        assert!((4000..6000).contains(&heads), "{heads}");
    }

    #[test]
    fn int_range_covers_endpoints() {
        let mut r = StdRng::seed_from_u64(3);
        let mut seen = [false; 4];
        for _ in 0..1000 {
            seen[r.gen_range(0usize..4)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }
}
