//! End-to-end directional checks of the paper's headline claims, at
//! test-friendly scales. These don't chase the paper's absolute numbers
//! (our substrate is a different simulator); they assert the *shape* of
//! every major result.

use mempar::{run_pair, run_pair_locality, Locality, MachineConfig, SimOptions};
use mempar_workloads::{latbench, App, LatbenchParams};

/// Section 2.1/5.1: clustered misses overlap — Latbench speeds up by a
/// large factor and per-miss stall collapses while *total* per-miss
/// latency rises (contention).
#[test]
fn latbench_clustering_overlaps_misses() {
    let w = latbench(LatbenchParams {
        chains: 32,
        chain_len: 96,
        pool: 1 << 15,
        seed: 9,
    });
    let cfg = MachineConfig::base_simulated(1, w.l2_bytes);
    let pair = run_pair(&w, &cfg);
    assert!(pair.outputs_match);
    assert!(
        pair.percent_reduction() > 40.0,
        "expected large reduction, got {:.1}%",
        pair.percent_reduction()
    );
    // The test-sized pool is partially cache-resident, so the speedup is
    // below the paper's 5.34x but must still be decisive.
    let stall_speedup =
        pair.base.avg_read_miss_stall_ns() / pair.clustered.avg_read_miss_stall_ns();
    assert!(stall_speedup > 2.0, "stall speedup {stall_speedup:.2}");
    assert!(
        pair.clustered.avg_read_miss_latency_ns() > pair.base.avg_read_miss_latency_ns(),
        "total latency should grow under contention"
    );
    assert!(
        pair.clustered.bus_util.fraction() > 2.0 * pair.base.bus_util.fraction(),
        "bus utilization must rise sharply"
    );
}

/// Figure 4: clustering converts LU from ~1 outstanding read miss to
/// several, while Ocean's base already has some parallelism.
#[test]
fn fig4_lu_gains_read_parallelism() {
    let w = App::Lu.build(0.25); // 128x128 against a 32 KB L2
    let cfg = MachineConfig::base_simulated(1, 32 * 1024);
    let pair = run_pair(&w, &cfg);
    assert!(pair.outputs_match);
    let base = pair.base.occupancy.mean_read_occupancy();
    let clust = pair.clustered.occupancy.mean_read_occupancy();
    assert!(
        clust > base * 1.2,
        "LU mean read-MSHR occupancy must rise: {base:.3} -> {clust:.3}"
    );
    assert!(
        pair.clustered.occupancy.read_at_least(4) > pair.base.occupancy.read_at_least(4),
        "deep clustering (>=4 outstanding) must appear"
    );
}

#[test]
fn fig4_ocean_base_already_clustered() {
    let w = App::Ocean.build(0.05);
    let cfg = MachineConfig::base_simulated(1, 32 * 1024);
    let pair = run_pair(&w, &cfg);
    // The stencil's distinct rows give the *base* version real read
    // parallelism (>= 2 misses outstanding a nontrivial fraction of
    // time) — the reason the paper sees little Ocean improvement.
    assert!(
        pair.base.occupancy.read_at_least(2) > 0.05,
        "base Ocean should already overlap: {:.3}",
        pair.base.occupancy.read_at_least(2)
    );
}

/// Section 5.2: the uniprocessor benefit exceeds... at minimum, both
/// configurations must benefit on a memory-bound recurrence workload.
#[test]
fn erlebacher_benefits_uni_and_multi() {
    let w = App::Erlebacher.build(0.08);
    let up = run_pair(&w, &MachineConfig::base_simulated(1, 32 * 1024));
    assert!(up.outputs_match);
    assert!(
        up.percent_reduction() > 5.0,
        "uniprocessor reduction {:.1}%",
        up.percent_reduction()
    );
    let w2 = App::Erlebacher.build(0.08);
    let mp = run_pair(&w2, &MachineConfig::base_simulated(4, 32 * 1024));
    assert!(mp.outputs_match);
    assert!(
        mp.percent_reduction() > 0.0,
        "multiprocessor reduction {:.1}%",
        mp.percent_reduction()
    );
}

/// The 1 GHz variant (Section 5.2): with a wider processor-memory gap,
/// memory stall dominates more, and clustering still wins.
#[test]
fn one_ghz_variant_still_wins() {
    let w = latbench(LatbenchParams {
        chains: 16,
        chain_len: 64,
        pool: 1 << 14,
        seed: 4,
    });
    let pair = run_pair(&w, &MachineConfig::fast_1ghz(1, w.l2_bytes));
    assert!(pair.outputs_match);
    assert!(pair.percent_reduction() > 40.0);
}

/// Table 3's machine: the Exemplar-like SMP also benefits.
#[test]
fn exemplar_machine_benefits() {
    let w = App::Mst.build(0.15);
    let pair = run_pair(&w, &MachineConfig::exemplar(1));
    assert!(pair.outputs_match);
    assert!(
        pair.percent_reduction() > 5.0,
        "MST on the Exemplar-like machine: {:.1}%",
        pair.percent_reduction()
    );
}

/// Calibrating the transform driver with *measured* locality (the
/// sampled reuse-distance profile) must never degrade its choices: on
/// every Table-2 workload, the measured-mode clustered run is at least
/// as fast as the analytic-mode one (small tolerance for decision-point
/// ties), outputs still match, and the calibration artifacts carry a
/// populated predicted-vs-measured delta table.
#[test]
fn measured_locality_never_degrades_clustering() {
    for app in App::all() {
        let w = app.build(0.04);
        let cfg = MachineConfig::base_simulated(1, 32 * 1024);
        let (analytic, _) = run_pair_locality(&w, &cfg, SimOptions::default(), Locality::Analytic);
        let (measured, artifacts) =
            run_pair_locality(&w, &cfg, SimOptions::default(), Locality::Measured);
        assert!(measured.outputs_match, "{}: outputs diverged", app.name());
        let a = artifacts.expect("measured mode returns artifacts");
        assert!(
            !a.delta.rows.is_empty(),
            "{}: empty delta table",
            app.name()
        );
        let (ac, mc) = (analytic.clustered.cycles, measured.clustered.cycles);
        assert!(
            mc as f64 <= ac as f64 * 1.02,
            "{}: measured locality degraded clustering: {ac} -> {mc} cycles",
            app.name()
        );
    }
}

/// The L2 miss *count* stays nearly unchanged (Section 5.2: "locality is
/// preserved"): clustering must not trade locality for parallelism.
#[test]
fn clustering_preserves_locality() {
    for app in [App::Erlebacher, App::Ocean, App::Mst] {
        let w = app.build(0.05);
        let cfg = MachineConfig::base_simulated(1, 32 * 1024);
        let pair = run_pair(&w, &cfg);
        let base = pair.base.counters.l2_misses as f64;
        let clust = pair.clustered.counters.l2_misses as f64;
        assert!(
            clust < base * 1.3,
            "{}: miss count should stay near base: {base} -> {clust}",
            app.name()
        );
    }
}
