//! The workhorse property: *any* sequence of framework transformations
//! applied to randomly generated loop nests preserves program semantics
//! (bit-identical memory images), and the clustering driver as a whole is
//! semantics-preserving on random stencil/reduction nests.

use mempar_analysis::{MachineSummary, MissProfile};
use mempar_ir::{run_single, ArrayData, Program, ProgramBuilder, SimMem};
use mempar_transform::{
    cluster_program, inner_unroll, innermost_loops, interchange, scalar_replace,
    schedule_for_misses, strip_mine, unroll_and_jam, NestPath,
};
use proptest::prelude::*;

/// A randomly parameterized two-deep stencil/reduction nest over a
/// matrix, with offsets chosen so the program is in-bounds.
#[derive(Debug, Clone)]
struct NestSpec {
    n: usize,
    /// Read offsets (dj, di) relative to (j, i).
    reads: Vec<(i64, i64)>,
    /// Write target: same array at (j, i) or a second array.
    write_self: bool,
    /// Inner stride multiplier for one read (1 or 2).
    stride: i64,
}

fn nest_strategy() -> impl Strategy<Value = NestSpec> {
    (
        8usize..24,
        proptest::collection::vec((-1i64..=1, -2i64..=2), 1..4),
        proptest::bool::ANY,
        prop_oneof![Just(1i64), Just(2i64)],
    )
        .prop_map(|(n, reads, write_self, stride)| NestSpec {
            n,
            reads,
            write_self,
            stride,
        })
}

fn build(spec: &NestSpec) -> (Program, mempar_ir::ArrayId, mempar_ir::ArrayId) {
    let mut b = ProgramBuilder::new("prop");
    let a = b.array_f64("a", &[spec.n, 2 * spec.n]);
    let out = b.array_f64("out", &[spec.n, 2 * spec.n]);
    let j = b.var("j");
    let i = b.var("i");
    let nj = spec.n as i64;
    let ni = (spec.n as i64) - 2; // headroom for offsets & stride
    b.for_const(j, 1, nj - 1, |b| {
        b.for_const(i, 2, ni, |b| {
            let mut acc = b.constf(1.0);
            for &(dj, di) in &spec.reads {
                let v = b.load(
                    a,
                    &[
                        b.idx_e(mempar_ir::AffineExpr::var(j).offset(dj)),
                        b.idx_e(mempar_ir::AffineExpr::scaled_var(i, spec.stride, di)),
                    ],
                );
                acc = b.add(acc, v);
            }
            if spec.write_self {
                // A forward-carried stencil write (distance >= 0 on j).
                b.assign_array(a, &[b.idx(j), b.idx(i)], acc);
            } else {
                b.assign_array(out, &[b.idx(j), b.idx(i)], acc);
            }
        });
    });
    (b.finish(), a, out)
}

fn image_after(prog: &Program, a: mempar_ir::ArrayId, n: usize) -> u64 {
    let mut mem = SimMem::new(prog, 1);
    mem.set_array(
        a,
        ArrayData::F64(
            (0..n * 2 * n)
                .map(|x| ((x * 37) % 19) as f64 - 9.0)
                .collect(),
        ),
    );
    run_single(prog, &mut mem);
    mem.fingerprint()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Unroll-and-jam (any accepted degree) preserves the memory image.
    #[test]
    fn uaj_preserves_semantics(spec in nest_strategy(), degree in 2u32..6) {
        let (base, a, _) = build(&spec);
        let want = image_after(&base, a, spec.n);
        let mut t = base.clone();
        // An Err means the nest was rejected as illegal: fine, nothing to check.
        if unroll_and_jam(&mut t, &NestPath::top(0), degree).is_ok() {
            prop_assert_eq!(image_after(&t, a, spec.n), want);
        }
    }

    /// Inner unrolling always succeeds on these nests and preserves
    /// the memory image.
    #[test]
    fn inner_unroll_preserves_semantics(spec in nest_strategy(), degree in 2u32..6) {
        let (base, a, _) = build(&spec);
        let want = image_after(&base, a, spec.n);
        let mut t = base.clone();
        let inner = innermost_loops(&t)[0].clone();
        inner_unroll(&mut t, &inner, degree).expect("inner unroll is always legal");
        prop_assert_eq!(image_after(&t, a, spec.n), want);
    }

    /// Strip-mining preserves the memory image for any strip size.
    #[test]
    fn strip_mine_preserves_semantics(spec in nest_strategy(), strip in 2u32..8) {
        let (base, a, _) = build(&spec);
        let want = image_after(&base, a, spec.n);
        let mut t = base.clone();
        strip_mine(&mut t, &NestPath::top(0), strip).expect("strip-mine is always legal");
        prop_assert_eq!(image_after(&t, a, spec.n), want);
    }

    /// Interchange, when accepted, preserves the memory image.
    #[test]
    fn interchange_preserves_semantics(spec in nest_strategy()) {
        let (base, a, _) = build(&spec);
        let want = image_after(&base, a, spec.n);
        let mut t = base.clone();
        if interchange(&mut t, &NestPath::top(0)).is_ok() {
            prop_assert_eq!(image_after(&t, a, spec.n), want);
        }
    }

    /// Scalar replacement and scheduling preserve the memory image.
    #[test]
    fn scalar_replace_and_schedule_preserve(spec in nest_strategy()) {
        let (base, a, _) = build(&spec);
        let want = image_after(&base, a, spec.n);
        let mut t = base.clone();
        let inner = innermost_loops(&t)[0].clone();
        let (_, new_path) = scalar_replace(&mut t, &inner).expect("path is a loop");
        let _ = schedule_for_misses(&mut t, &new_path, 64);
        prop_assert_eq!(image_after(&t, a, spec.n), want);
    }

    /// The full clustering driver preserves semantics on random nests.
    #[test]
    fn driver_preserves_semantics(spec in nest_strategy()) {
        let (base, a, _) = build(&spec);
        let want = image_after(&base, a, spec.n);
        let mut t = base.clone();
        let _report = cluster_program(&mut t, &MachineSummary::base(), &MissProfile::pessimistic());
        prop_assert_eq!(image_after(&t, a, spec.n), want);
    }

    /// Composition: driver output can be driven again (idempotent-safe)
    /// without changing semantics.
    #[test]
    fn driver_twice_still_preserves(spec in nest_strategy()) {
        let (base, a, _) = build(&spec);
        let want = image_after(&base, a, spec.n);
        let mut t = base.clone();
        cluster_program(&mut t, &MachineSummary::base(), &MissProfile::pessimistic());
        cluster_program(&mut t, &MachineSummary::exemplar(), &MissProfile::pessimistic());
        prop_assert_eq!(image_after(&t, a, spec.n), want);
    }
}
