//! Steady-state allocation budget for the simulation hot path.
//!
//! The event-driven multiprocessor fast path is designed to be
//! allocation-free in steady state: every per-access structure
//! (coherence transactions, MSHR slots, wake lists, completion bags,
//! interconnect routes) draws from buffers sized during setup and reused
//! for the whole run. This test pins that property with a counting
//! global allocator and the *two-scale delta* method: run the same
//! workload at two problem scales and compare allocation counts. Setup
//! cost (machine construction, program build, result assembly) is the
//! same for both runs, so any allocation that happens per simulated
//! access shows up as a delta that grows with the scale — a workload
//! ~2x the size making tens of thousands of extra allocations means
//! someone put an allocation back on the per-access path.
//!
//! The budget is deliberately loose (the measured delta is ~300, from
//! buffers crossing their high-water marks later in the bigger run) so
//! the test only fires on structural regressions, not on a buffer
//! gaining a few growth doublings.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

use mempar_sim::{run_program_with, MachineConfig, SimOptions, Stepper};
use mempar_workloads::App;

struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, l: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.alloc(l)
    }
    unsafe fn dealloc(&self, p: *mut u8, l: Layout) {
        System.dealloc(p, l)
    }
    unsafe fn realloc(&self, p: *mut u8, l: Layout, n: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.realloc(p, l, n)
    }
}

#[global_allocator]
static A: CountingAlloc = CountingAlloc;

/// Runs fft-mp under the event stepper and returns (cycles, allocation
/// count attributable to the run).
fn run_counted(scale: f64, shards: usize) -> (u64, u64) {
    let w = App::Fft.build(scale);
    let nprocs = w.mp_procs.max(1);
    let cfg = MachineConfig::base_simulated(nprocs, w.l2_bytes);
    let mut mem = w.memory(nprocs);
    let opts = SimOptions {
        stepper: Stepper::Event,
        shards,
        ..SimOptions::default()
    };
    let a0 = ALLOCS.load(Ordering::Relaxed);
    let r = run_program_with(&w.program, &mut mem, &cfg, opts);
    let a1 = ALLOCS.load(Ordering::Relaxed);
    (r.cycles, a1 - a0)
}

/// Doubling the simulated work must not meaningfully move the allocation
/// count: the hot path allocates per *structure high-water mark*, never
/// per access. fft-mp at scale 0.1 retires ~870k instructions through
/// ~30k coherence misses; one allocation per miss would blow this budget
/// by an order of magnitude.
#[test]
fn event_hot_path_is_allocation_free_in_steady_state() {
    // Warm-up run so one-time lazy init (workload tables, etc.) does not
    // pollute the comparison.
    let _ = run_counted(0.05, 1);

    let (cycles_small, allocs_small) = run_counted(0.05, 1);
    let (cycles_big, allocs_big) = run_counted(0.1, 1);
    // Sanity: the big run really does ~2x the work.
    assert!(cycles_big > cycles_small + cycles_small / 2);

    let delta = allocs_big.saturating_sub(allocs_small);
    assert!(
        delta < 5_000,
        "allocation count grew with simulated work: {allocs_small} at scale \
         0.05 vs {allocs_big} at scale 0.1 (delta {delta}); something is \
         allocating on the per-access path"
    );

    // Absolute ceiling on setup + run, so setup-path regressions (e.g. a
    // per-line Vec in a table constructor) stay visible too.
    assert!(
        allocs_big < 50_000,
        "run made {allocs_big} allocations in total; setup should stay in \
         the low thousands"
    );
}

/// Sharded coordination must not allocate per round either: the due
/// lists, guards, and publish buffers are all reused.
#[test]
fn sharded_rounds_do_not_allocate() {
    let _ = run_counted(0.05, 1);
    let (_, allocs_sh1) = run_counted(0.05, 1);
    let (_, allocs_sh4) = run_counted(0.05, 4);
    let delta = allocs_sh4.saturating_sub(allocs_sh1);
    assert!(
        delta < 2_000,
        "sharding added {delta} allocations ({allocs_sh1} -> {allocs_sh4}); \
         the round loop should reuse its buffers"
    );
}
