//! Golden-trace regression gates (see `crates/difftest/src/golden.rs`).
//!
//! Each test renders a canonical snapshot — dynamic-op trace digest,
//! sequential and parallel memory-image fingerprints, and integer
//! simulator counters — and compares it byte-for-byte against the
//! committed file under `tests/corpus/golden/`. Any semantic drift in
//! the interpreter, transforms used by the pinned programs, or the
//! simulator fails here with a line diff. Intentional changes are
//! re-recorded with `MEMPAR_BLESS=1 cargo test --test golden_traces`.

use std::path::PathBuf;

use mempar_difftest::golden::{
    check_golden, protocol_snapshot, snapshot, snapshot_gen_seed, PINNED_GEN_SEEDS,
};
use mempar_sim::Protocol;
use mempar_workloads::App;

fn golden_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/corpus/golden")
}

fn snapshots_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/snapshots")
}

#[test]
fn pinned_generator_seeds_match_snapshots() {
    let mut drift = Vec::new();
    for &seed in &PINNED_GEN_SEEDS {
        let actual = snapshot_gen_seed(seed);
        let path = golden_dir().join(format!("gen-{seed}.golden"));
        if let Err(e) = check_golden(&path, &actual) {
            drift.push(e);
        }
    }
    assert!(drift.is_empty(), "{}", drift.join("\n"));
}

/// Per-protocol cycle snapshots under `tests/snapshots/`: each golden
/// workload simulated once under every coherence machine. The cycle and
/// coherence-traffic lines pin each protocol's timing; the functional
/// lines must be identical across the four files of one app (asserted
/// here, and visible in a plain `diff` of the committed snapshots).
/// Re-bless with `MEMPAR_BLESS=1 cargo test --test golden_traces`.
#[test]
fn per_protocol_cycle_snapshots() {
    let mut drift = Vec::new();
    for app in GOLDEN_APPS {
        let w = app.build(0.02);
        let nprocs = w.mp_procs.max(1);
        let mut functional: Vec<(Protocol, Vec<String>)> = Vec::new();
        for protocol in Protocol::all() {
            let actual = protocol_snapshot(
                &format!("{}-s0.02", app.name()),
                &w.program,
                |n| w.memory(n),
                nprocs,
                w.l2_bytes,
                protocol,
            );
            functional.push((
                protocol,
                actual
                    .lines()
                    .filter(|l| {
                        l.starts_with("sim.retired")
                            || l.starts_with("sim.loads")
                            || l.starts_with("sim.stores")
                            || l.starts_with("sim.mem_fingerprint")
                    })
                    .map(str::to_string)
                    .collect(),
            ));
            let path = snapshots_dir().join(format!(
                "protocol-{}-{protocol}.golden",
                app.name().to_ascii_lowercase()
            ));
            if let Err(e) = check_golden(&path, &actual) {
                drift.push(e);
            }
        }
        for (protocol, lines) in &functional[1..] {
            assert_eq!(
                lines,
                &functional[0].1,
                "{}: {protocol} functional lines diverge from {}",
                app.name(),
                functional[0].0
            );
        }
    }
    assert!(drift.is_empty(), "{}", drift.join("\n"));
}

/// Workloads snapshotted at a tiny input scale: Latbench (the paper's
/// pointer-chasing microbenchmark), Em3d (indirect accesses), FFT
/// (strided phases) and MST (linked structures).
const GOLDEN_APPS: [App; 4] = [App::Latbench, App::Em3d, App::Fft, App::Mst];

#[test]
fn workload_traces_match_snapshots() {
    let mut drift = Vec::new();
    for app in GOLDEN_APPS {
        let w = app.build(0.02);
        let par = (w.mp_procs > 1).then_some(w.mp_procs);
        let actual = snapshot(
            &format!("{}-s0.02", app.name()),
            &w.program,
            |n| w.memory(n),
            par,
            Some(w.l2_bytes),
        );
        let path = golden_dir().join(format!(
            "workload-{}.golden",
            app.name().to_ascii_lowercase()
        ));
        if let Err(e) = check_golden(&path, &actual) {
            drift.push(e);
        }
    }
    assert!(drift.is_empty(), "{}", drift.join("\n"));
}
