//! Stepper equality cube over adversarially generated programs.
//!
//! `tests/strict_vs_skip.rs` pins the cube on the real workloads; this
//! sweep pins it on the difftest generator's output — every committed
//! corpus reproducer seed, every pinned golden seed, and a block of
//! fresh seeds. For each generated program the simulator runs under
//! strict, skip, and event stepping (and, for multiprocessor specs,
//! event stepping sharded across 2 and 4 worker threads), and every
//! [`SimResult`] field plus the final memory-image fingerprint must be
//! bit-identical to the strict reference. The comparison goes through
//! `Debug` formatting, which prints floats with shortest-roundtrip
//! precision, so any bit-level divergence shows up.

use std::path::PathBuf;

use mempar_difftest::{gen_spec, materialize, PINNED_GEN_SEEDS};
use mempar_sim::{run_program_with, MachineConfig, SimOptions, Stepper};

/// Fresh seeds beyond the pinned/corpus sets, disjoint from
/// `engine_diff`'s block so the two sweeps compound coverage.
const FRESH_SEEDS: std::ops::Range<u64> = 2000..2100;

fn corpus_seeds() -> Vec<u64> {
    let dir = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/corpus");
    let mut seeds: Vec<u64> = std::fs::read_dir(dir)
        .expect("tests/corpus exists")
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .filter(|p| p.extension().is_some_and(|x| x == "repro"))
        .filter_map(|p| {
            let text = std::fs::read_to_string(&p).ok()?;
            text.lines()
                .find_map(|l| l.strip_prefix("# seed: "))
                .and_then(|s| s.trim().parse().ok())
        })
        .collect();
    seeds.sort_unstable();
    seeds.dedup();
    assert!(!seeds.is_empty(), "corpus reproducers carry seeds");
    seeds
}

/// Simulates one generated program under `opts`, returning the full
/// `Debug`-rendered [`mempar_sim::SimResult`] and the final memory
/// fingerprint.
fn run_leg(seed: u64, nprocs: usize, opts: SimOptions) -> (String, u64) {
    let built = materialize(&gen_spec(seed));
    let cfg = MachineConfig::base_simulated(nprocs, 32 * 1024);
    let mut mem = built.memory(nprocs);
    let r = run_program_with(&built.prog, &mut mem, &cfg, opts);
    (format!("{r:?}"), mem.fingerprint())
}

/// Checks one seed across the stepper cube; returns a description of
/// the first divergence, if any.
fn check_seed(seed: u64) -> Option<String> {
    let built = materialize(&gen_spec(seed));
    // Multiprocessor legs only for specs whose SPMD execution is
    // deterministic; everything else simulates as a uniprocessor.
    let nprocs = if built.mode.parallel_checked() {
        built.nprocs
    } else {
        1
    };
    let reference = run_leg(seed, nprocs, SimOptions::default());
    let strict = run_leg(
        seed,
        nprocs,
        SimOptions {
            stepper: Stepper::Strict,
            ..SimOptions::default()
        },
    );
    let mut legs = vec![("strict", strict)];
    legs.push((
        "skip",
        run_leg(
            seed,
            nprocs,
            SimOptions {
                stepper: Stepper::Skip,
                ..SimOptions::default()
            },
        ),
    ));
    if nprocs > 1 {
        for (name, shards) in [("event-sh2", 2), ("event-sh4", 4)] {
            legs.push((
                name,
                run_leg(
                    seed,
                    nprocs,
                    SimOptions {
                        stepper: Stepper::Event,
                        shards,
                        ..SimOptions::default()
                    },
                ),
            ));
        }
    }
    for (name, (result, fp)) in &legs {
        if result != &reference.0 {
            return Some(format!(
                "seed {seed} ({nprocs}p): {name} SimResult diverges from the event reference"
            ));
        }
        if *fp != reference.1 {
            return Some(format!(
                "seed {seed} ({nprocs}p): {name} memory fingerprint diverges \
                 ({fp:#018x} vs {:#018x})",
                reference.1
            ));
        }
    }
    None
}

fn sweep(seeds: impl IntoIterator<Item = u64>) {
    let failures: Vec<String> = seeds.into_iter().filter_map(check_seed).collect();
    assert!(
        failures.is_empty(),
        "steppers diverged on {} seed(s):\n{}",
        failures.len(),
        failures.join("\n")
    );
}

#[test]
fn steppers_agree_on_corpus_and_pinned_seeds() {
    let mut seeds = corpus_seeds();
    seeds.extend(PINNED_GEN_SEEDS);
    sweep(seeds);
}

#[test]
fn steppers_agree_on_fresh_seed_block() {
    sweep(FRESH_SEEDS);
}
