//! Observability gates: tracing must be invisible in the simulation
//! results (bit-identical `SimResult` with the tracer on or off, in both
//! driver modes), the Chrome trace_event export must stay well-formed
//! JSON, and one pinned tiny Latbench configuration is held to a golden
//! Perfetto snapshot so the export format cannot drift silently.
//!
//! Regenerate the golden file after an intentional format change with
//!
//! ```text
//! MEMPAR_BLESS=1 cargo test --test obs_trace golden
//! ```

use mempar::{chrome_trace_json, observe_pair, validate_json, ChromeRun, MachineConfig};
use mempar_sim::{
    run_program_observed, run_program_with, SimObservation, SimOptions, Stepper, Tracer,
};
use mempar_workloads::{latbench, App, LatbenchParams, Workload};

/// The pinned configuration behind the golden snapshot. Do not change
/// these numbers without re-blessing the snapshot.
fn pinned_latbench() -> Workload {
    latbench(LatbenchParams {
        chains: 4,
        chain_len: 16,
        pool: 1 << 10,
        seed: 42,
    })
}

fn observed_run(w: &Workload, stepper: Stepper) -> (String, SimObservation) {
    let cfg = MachineConfig::base_simulated(1, w.l2_bytes);
    let mut mem = w.memory(1);
    let (r, obs) = run_program_observed(
        &w.program,
        &mut mem,
        &cfg,
        SimOptions {
            stepper,
            ..SimOptions::default()
        },
        Tracer::with_capacity(1 << 16),
    );
    (format!("{r:?}"), obs)
}

/// Tracing enabled vs disabled, crossed with the three clock drivers:
/// all six `SimResult`s must be bit-identical (compared through `Debug`,
/// which prints floats at shortest-roundtrip precision).
#[test]
fn tracing_is_invisible_in_results() {
    for app in [App::Latbench, App::Erlebacher] {
        let w = app.build(0.03);
        let cfg = MachineConfig::base_simulated(1, w.l2_bytes);
        let mut results = Vec::new();
        for stepper in [Stepper::Strict, Stepper::Skip, Stepper::Event] {
            let mut mem = w.memory(1);
            let untraced = run_program_with(
                &w.program,
                &mut mem,
                &cfg,
                SimOptions {
                    stepper,
                    ..SimOptions::default()
                },
            );
            results.push(format!("{untraced:?}"));
            let (traced, obs) = observed_run(&w, stepper);
            assert!(
                !obs.trace.is_empty(),
                "{}: tracer saw no events",
                app.name()
            );
            results.push(traced);
        }
        for r in &results[1..] {
            assert_eq!(
                &results[0],
                r,
                "{}: tracing or driver mode changed the simulation result",
                app.name()
            );
        }
    }
}

/// The trace itself must not depend on the driver mode: skipping and
/// event stepping only compress idle spans, so every miss/MSHR/stall
/// event must appear at the same cycle in every mode (horizon jumps are
/// scheduler bookkeeping and are filtered out before comparing).
#[test]
fn trace_events_match_across_driver_modes() {
    let w = pinned_latbench();
    let scrub = |obs: &SimObservation| -> Vec<String> {
        obs.trace
            .iter()
            .filter(|e| !format!("{:?}", e.kind).starts_with("HorizonJump"))
            .map(|e| format!("{e:?}"))
            .collect()
    };
    let (_, strict) = observed_run(&w, Stepper::Strict);
    for stepper in [Stepper::Skip, Stepper::Event] {
        let (_, other) = observed_run(&w, stepper);
        assert_eq!(
            scrub(&strict),
            scrub(&other),
            "{stepper} trace diverges from strict"
        );
    }
}

/// End-to-end profile sanity on a real workload pair: clustering must
/// raise the achieved overlap the profiler reports.
#[test]
fn profiler_reports_clustering_gain() {
    let w = latbench(LatbenchParams {
        chains: 16,
        chain_len: 64,
        pool: 1 << 15,
        seed: 3,
    });
    let cfg = MachineConfig::base_simulated(1, w.l2_bytes);
    let pair = observe_pair(&w, &cfg, 1 << 18);
    let base = pair.base.profile.overall_mean_overlap();
    let clustered = pair.clustered.profile.overall_mean_overlap();
    assert!(
        clustered > base * 1.5,
        "clustered overlap {clustered:.2} should clearly beat base {base:.2}"
    );
    // The profile's serialization ratio must move the other way.
    let table = pair.clustered.profile.format_table("clustered");
    assert!(
        table.contains("next"),
        "profile must attribute the chase ref"
    );
}

fn golden_trace_json() -> String {
    // Pinned to the skip stepper: its HorizonJump spans are part of the
    // blessed snapshot, so changing the stepper here would force a
    // re-bless for a pure bookkeeping difference.
    let w = pinned_latbench();
    let (_, obs) = observed_run(&w, Stepper::Skip);
    assert_eq!(obs.dropped, 0, "pinned config must fit the ring");
    let runs = [ChromeRun {
        name: "latbench/golden",
        pid: 0,
        events: &obs.trace,
        end_cycle: obs.end_cycle,
        reuse: &obs.reuse_samples,
    }];
    chrome_trace_json(&runs, obs.clock_mhz)
}

/// Golden Perfetto snapshot: the exported JSON for the pinned Latbench
/// configuration must match `tests/snapshots/latbench_trace.json` byte
/// for byte. Bless intentional changes with `MEMPAR_BLESS=1`.
#[test]
fn golden_perfetto_snapshot() {
    let json = golden_trace_json();
    validate_json(&json).expect("golden trace must be well-formed JSON");
    let path = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/tests/snapshots/latbench_trace.json"
    );
    if std::env::var("MEMPAR_BLESS").is_ok() {
        std::fs::write(path, &json).expect("bless golden snapshot");
        return;
    }
    let golden = std::fs::read_to_string(path)
        .expect("golden snapshot missing — run with MEMPAR_BLESS=1 to create it");
    assert_eq!(
        json, golden,
        "Perfetto export drifted from the golden snapshot; \
         re-bless with MEMPAR_BLESS=1 if the change is intentional"
    );
}
