//! Property-based tests on the simulator substrate: cache, MSHR,
//! resource and interconnect invariants under random stimulus.

use mempar_sim::{
    bank_of, CacheParams, Interleave, LineState, MachineConfig, Mesh, MshrFile, MshrOutcome,
    NetParams, Resource, TagArray,
};
use proptest::prelude::*;

fn small_cache_params(assoc: usize) -> CacheParams {
    CacheParams {
        size_bytes: 16 * 64 * assoc.max(1),
        assoc: assoc.max(1),
        line_bytes: 64,
        hit_latency: 1,
        ports: 1,
        mshrs: 4,
    }
}

proptest! {
    /// A line just filled always probes present; invalidation always
    /// removes it; the tag array never "loses" more than capacity.
    #[test]
    fn cache_fill_probe_invalidate(
        assoc in 1usize..5,
        lines in proptest::collection::vec(0u64..4096, 1..200),
    ) {
        let mut c = TagArray::new(&small_cache_params(assoc));
        for &l in &lines {
            if c.probe(l) == LineState::Invalid {
                c.fill(l, LineState::Shared);
            }
            prop_assert_ne!(c.peek(l), LineState::Invalid, "line {} just filled", l);
            // Invalidate and reinstate occasionally (deterministic rule).
            if l % 7 == 0 {
                c.invalidate(l);
                prop_assert_eq!(c.peek(l), LineState::Invalid);
                c.fill(l, LineState::Modified);
                prop_assert_eq!(c.peek(l), LineState::Modified);
            }
        }
    }

    /// LRU within a set: after touching `assoc` distinct lines of one
    /// set, the least-recently-used one is the victim of the next fill.
    #[test]
    fn cache_lru_evicts_oldest(assoc in 2usize..5) {
        let params = small_cache_params(assoc);
        let sets = params.sets() as u64;
        let mut c = TagArray::new(&params);
        // Lines mapping to set 0: multiples of `sets`.
        for k in 0..assoc as u64 {
            c.fill(k * sets, LineState::Shared);
        }
        // Touch all but line 0 so it becomes LRU.
        for k in 1..assoc as u64 {
            c.probe(k * sets);
        }
        let v = c.fill((assoc as u64) * sets, LineState::Shared).expect("full set evicts");
        prop_assert_eq!(v.line, 0);
    }

    /// The MSHR file never exceeds capacity, coalesces same lines, and
    /// frees on release.
    #[test]
    fn mshr_occupancy_bounds(
        ops in proptest::collection::vec((0u64..16, proptest::bool::ANY), 1..200),
    ) {
        let mut m = MshrFile::new(4);
        let mut outstanding: Vec<u64> = Vec::new();
        for &(line, is_write) in &ops {
            match m.register(line, is_write) {
                MshrOutcome::Allocated => {
                    outstanding.push(line);
                    m.set_fill_time(line, 100);
                }
                MshrOutcome::Coalesced { .. } => {
                    prop_assert!(outstanding.contains(&line));
                }
                MshrOutcome::Full => {
                    prop_assert_eq!(outstanding.len(), 4);
                    prop_assert!(!outstanding.contains(&line));
                    // Free one to make room.
                    let freed = outstanding.remove(0);
                    m.release(freed);
                }
            }
            let (reads, total) = m.occupancy();
            prop_assert!(reads <= total);
            prop_assert!(total <= 4);
            prop_assert_eq!(total, outstanding.len());
        }
    }

    /// Resource reservations are non-overlapping and busy time is
    /// conserved: total busy equals the sum of requested durations.
    #[test]
    fn resource_conserves_time(
        reqs in proptest::collection::vec((0u64..1000, 1u64..20), 1..60),
    ) {
        let mut r = Resource::new();
        let mut intervals: Vec<(u64, u64)> = Vec::new();
        let mut total = 0;
        for &(at, dur) in &reqs {
            let start = r.reserve(at, dur);
            prop_assert!(start >= at, "grant may not precede the request");
            intervals.push((start, start + dur));
            total += dur;
        }
        intervals.sort_unstable();
        for w in intervals.windows(2) {
            prop_assert!(w[0].1 <= w[1].0, "overlap: {:?}", w);
        }
        prop_assert_eq!(r.busy_cycles(), total);
    }

    /// Bank interleavings are total functions onto 0..banks, and
    /// sequential lines spread over multiple banks.
    #[test]
    fn interleavings_are_valid(lines in proptest::collection::vec(0u64..100_000, 1..100)) {
        for scheme in [Interleave::Sequential, Interleave::Permutation, Interleave::Skewed] {
            for &l in &lines {
                prop_assert!(bank_of(l, 8, scheme) < 8);
            }
        }
    }

    /// Mesh messages arrive no earlier than the hop latency allows, and
    /// monotonically later with distance for a fresh network.
    #[test]
    fn mesh_latency_monotone(bytes in 8u32..256) {
        let params = NetParams { cycle_ratio: 2, flit_bytes: 8, hop_cycles: 2, ni_cycles: 4 };
        let mut last = 0;
        for dest in [1usize, 2, 3, 7, 11, 15] {
            let mut m = Mesh::new(4, &params);
            let t = m.send(0, dest, bytes, 0);
            let hops = m.hops(0, dest);
            prop_assert!(t >= hops * 4, "at least hop latency each");
            prop_assert!(t >= last, "farther is never faster on an idle mesh");
            last = t;
        }
    }

    /// Machine configurations derived from the base validate for any
    /// processor count and L2 size we use.
    #[test]
    fn configs_validate(nprocs in 1usize..17, l2_pow in 15u32..21) {
        MachineConfig::base_simulated(nprocs, 1 << l2_pow).validate();
        MachineConfig::fast_1ghz(nprocs, 1 << l2_pow).validate();
        if nprocs <= 8 {
            MachineConfig::exemplar(nprocs).validate();
        }
    }
}
