//! Tuner determinism and memo-soundness gates.
//!
//! * The winning composition and its score must be identical at
//!   `--threads 1` and `--threads N` — candidate fan-out changes
//!   wall-clock only, never the result.
//! * A memo-warm rerun (same tuner, same program) must reproduce the
//!   cold run's outcome bit-identically.
//! * Scores cached under one `SimOptions` must never be served to
//!   another, even for byte-identical op streams.
//!
//! Coverage: the pinned generator corpus plus a block of fresh seeds
//! (quick tier here, the full 100-seed block behind `--ignored`), plus
//! Latbench as a real workload.

use mempar::{profile_miss_rates, MachineConfig};
use mempar_analysis::Locality;
use mempar_difftest::{gen_spec, materialize, PINNED_GEN_SEEDS};
use mempar_tune::{opts_signature, tune_workload, MemoKey, TuneOptions, TuneReport, Tuner};
use mempar_workloads::{latbench, LatbenchParams};

fn tune_seed(tuner: &Tuner, seed: u64) -> TuneReport {
    let built = materialize(&gen_spec(seed));
    let nprocs = if built.mode.parallel_checked() {
        built.nprocs
    } else {
        1
    };
    let cfg = MachineConfig::base_simulated(nprocs, 64 * 1024);
    let mut pmem = built.memory(1);
    let profile = profile_miss_rates(&built.prog, &mut pmem, &cfg.l2);
    let mem_at = |n: usize| built.memory(n);
    let (_, report) =
        tuner.tune_program(&format!("gen-{seed}"), &built.prog, &cfg, &profile, &mem_at);
    report
}

fn opts_with_threads(threads: usize) -> TuneOptions {
    TuneOptions {
        threads,
        ..TuneOptions::default()
    }
}

fn assert_thread_invariance(seeds: impl Iterator<Item = u64>) {
    let serial = Tuner::new(opts_with_threads(1));
    let wide = Tuner::new(opts_with_threads(4));
    for seed in seeds {
        let a = tune_seed(&serial, seed);
        let b = tune_seed(&wide, seed);
        assert_eq!(
            a.outcome_signature(),
            b.outcome_signature(),
            "seed {seed}: 1-thread and 4-thread tunes must agree"
        );
    }
}

#[test]
fn threads_do_not_change_the_winner_quick() {
    assert_thread_invariance(PINNED_GEN_SEEDS.iter().copied().chain(0..10));
}

#[test]
#[ignore = "acceptance-scale; run via cargo test -- --ignored (CI tune-smoke job)"]
fn threads_do_not_change_the_winner_full() {
    assert_thread_invariance(PINNED_GEN_SEEDS.iter().copied().chain(0..100));
}

#[test]
fn memo_warm_rerun_is_bit_identical() {
    let tuner = Tuner::new(TuneOptions::default());
    for seed in PINNED_GEN_SEEDS.iter().copied().chain(0..10) {
        let cold = tune_seed(&tuner, seed);
        let warm = tune_seed(&tuner, seed);
        assert_eq!(
            cold.outcome_signature(),
            warm.outcome_signature(),
            "seed {seed}: memo-warm rerun drifted"
        );
        // The warm run really did come from the memo: every candidate
        // score (and the base/default probes) was already cached.
        assert!(
            warm.candidates.iter().all(|c| c.memo_hit),
            "seed {seed}: warm rerun should hit on every candidate"
        );
    }
}

#[test]
fn latbench_tune_is_thread_and_memo_invariant() {
    let w = latbench(LatbenchParams {
        chains: 16,
        chain_len: 64,
        pool: 1 << 15,
        seed: 3,
    });
    let cfg = MachineConfig::base_simulated(1, w.l2_bytes);
    let serial = Tuner::new(opts_with_threads(1));
    let wide = Tuner::new(opts_with_threads(4));
    let (_, a, _) = tune_workload(&w, &cfg, &serial, Locality::Analytic);
    let (_, b, _) = tune_workload(&w, &cfg, &wide, Locality::Analytic);
    let (_, warm, _) = tune_workload(&w, &cfg, &wide, Locality::Analytic);
    assert_eq!(a.outcome_signature(), b.outcome_signature());
    assert_eq!(b.outcome_signature(), warm.outcome_signature());
    assert!(a.tuned_cycles < a.base_cycles, "{}", a.summary());
}

/// End-to-end memo-key soundness: take digests of real scored
/// candidates from a real tune, then probe the same memo under every
/// other (stepper, engine, protocol) signature — each must MISS, never
/// serve the cached score.
#[test]
fn cached_scores_never_cross_sim_options() {
    use mempar::{Protocol, SimOptions, Stepper};
    let tuner = Tuner::new(TuneOptions::default());
    let report = tune_seed(&tuner, 3);
    assert!(!report.candidates.is_empty(), "need scored candidates");
    let cfg = MachineConfig::base_simulated(1, 64 * 1024);
    let config = mempar_tune::config_fingerprint(&cfg);
    let base_sig = opts_signature(SimOptions::default());
    let variants = [
        SimOptions {
            stepper: Stepper::Strict,
            ..SimOptions::default()
        },
        SimOptions {
            stepper: Stepper::Skip,
            ..SimOptions::default()
        },
        SimOptions {
            engine: mempar::Engine::Interp,
            ..SimOptions::default()
        },
        SimOptions {
            protocol: Protocol::Mesi,
            ..SimOptions::default()
        },
        SimOptions {
            protocol: Protocol::Moesi,
            ..SimOptions::default()
        },
        SimOptions {
            protocol: Protocol::Dragon,
            ..SimOptions::default()
        },
    ];
    // Candidates can share digests (identical op streams); probe each
    // distinct digest once per variant — the probe itself caches.
    let mut digests: Vec<u64> = report.candidates.iter().map(|c| c.digest).collect();
    digests.sort_unstable();
    digests.dedup();
    for digest in digests {
        for v in variants {
            let sig = opts_signature(v);
            assert_ne!(sig, base_sig, "every variant must re-key");
            let key = MemoKey {
                digest,
                opts: sig,
                config,
            };
            let sentinel = u64::MAX - 1;
            let (got, hit) = tuner.memo.get_or_insert(&key, || sentinel);
            assert!(
                !hit && got == sentinel,
                "digest {digest:#x} cached under '{base_sig}' leaked to '{}'",
                key.opts
            );
        }
    }
}
