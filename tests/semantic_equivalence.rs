//! The central correctness property of the whole reproduction: the
//! clustering transformations are *semantics-preserving*. For every
//! workload, the base and framework-clustered programs must produce
//! bit-identical output arrays, sequentially and in parallel.

use mempar::{cluster_workload, MachineConfig};
use mempar_ir::{run_parallel_functional, run_single};
use mempar_workloads::App;

fn check_app(app: App, scale: f64) {
    let w = app.build(scale);
    let cfg = MachineConfig::base_simulated(1, 32 * 1024);
    let (clustered, report) = cluster_workload(&w, &cfg);

    // Sequential equivalence.
    let mut base_mem = w.memory(1);
    run_single(&w.program, &mut base_mem);
    let mut clust_mem = w.memory(1);
    run_single(&clustered, &mut clust_mem);
    assert_eq!(
        w.read_outputs(&base_mem),
        w.read_outputs(&clust_mem),
        "{}: clustered outputs differ (sequential)\n{}",
        app.name(),
        report.summary()
    );

    // Parallel equivalence at the workload's Table 2 processor count.
    let nprocs = w.mp_procs.clamp(2, 4);
    let mut base_mp = w.memory(nprocs);
    run_parallel_functional(&w.program, &mut base_mp, nprocs);
    let mut clust_mp = w.memory(nprocs);
    run_parallel_functional(&clustered, &mut clust_mp, nprocs);
    assert_eq!(
        w.read_outputs(&base_mp),
        w.read_outputs(&clust_mp),
        "{}: clustered outputs differ (parallel x{nprocs})",
        app.name()
    );
    // Parallel == sequential, too.
    assert_eq!(
        w.read_outputs(&base_mem),
        w.read_outputs(&base_mp),
        "{}: parallel base run differs from sequential",
        app.name()
    );
}

#[test]
fn latbench_equivalent() {
    check_app(App::Latbench, 0.02);
}

#[test]
fn em3d_equivalent() {
    check_app(App::Em3d, 0.02);
}

#[test]
fn erlebacher_equivalent() {
    check_app(App::Erlebacher, 0.02);
}

#[test]
fn fft_equivalent() {
    check_app(App::Fft, 0.02);
}

#[test]
fn lu_equivalent() {
    check_app(App::Lu, 0.02);
}

#[test]
fn mp3d_equivalent() {
    check_app(App::Mp3d, 0.02);
}

#[test]
fn mst_equivalent() {
    check_app(App::Mst, 0.02);
}

#[test]
fn ocean_equivalent() {
    check_app(App::Ocean, 0.02);
}

/// Exemplar-targeted clustering (different window/line size) is also
/// semantics-preserving.
#[test]
fn exemplar_clustering_equivalent() {
    for app in [App::Latbench, App::Erlebacher, App::Mst] {
        let w = app.build(0.02);
        let cfg = MachineConfig::exemplar(1);
        let (clustered, _) = cluster_workload(&w, &cfg);
        let mut base_mem = w.memory(1);
        run_single(&w.program, &mut base_mem);
        let mut clust_mem = w.memory(1);
        run_single(&clustered, &mut clust_mem);
        assert_eq!(
            w.read_outputs(&base_mem),
            w.read_outputs(&clust_mem),
            "{} (exemplar)",
            app.name()
        );
    }
}

/// Every shipped workload — and its framework-clustered variant — passes
/// the IR well-formedness validator.
#[test]
fn all_workloads_validate() {
    for app in App::all() {
        let w = app.build(0.02);
        let errs = w.program.validate();
        assert!(errs.is_empty(), "{}: {errs:?}", app.name());
        let cfg = MachineConfig::base_simulated(1, 32 * 1024);
        let (clustered, _) = cluster_workload(&w, &cfg);
        let errs = clustered.validate();
        assert!(errs.is_empty(), "{} clustered: {errs:?}", app.name());
    }
}
