//! Differential sweep of the two functional engines.
//!
//! The bytecode VM's contract is *op-stream equivalence*: for any valid
//! program it must yield exactly the dynamic-op sequence the tree-walking
//! interpreter yields, and therefore the same final memory image. This
//! sweep checks that contract on adversarially generated programs —
//! every committed corpus reproducer seed, every pinned golden seed, and
//! a block of fresh seeds — comparing order-sensitive trace digests and
//! memory fingerprints between [`Engine::Interp`] and
//! [`Engine::Bytecode`], sequentially and (where the spec's mode makes
//! SPMD execution deterministic) under the parallel functional oracle.

use std::path::PathBuf;

use mempar_difftest::{gen_spec, materialize, Built, PINNED_GEN_SEEDS};
use mempar_ir::{
    run_parallel_functional_with, BytecodeProgram, Engine, Interp, Program, TraceDigest, Vm,
};

/// Fresh seeds beyond the pinned/corpus sets; 200 per the sweep contract.
const FRESH_SEEDS: std::ops::Range<u64> = 1000..1200;

fn corpus_seeds() -> Vec<u64> {
    let dir = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/corpus");
    let mut seeds: Vec<u64> = std::fs::read_dir(dir)
        .expect("tests/corpus exists")
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .filter(|p| p.extension().is_some_and(|x| x == "repro"))
        .filter_map(|p| {
            let text = std::fs::read_to_string(&p).ok()?;
            text.lines()
                .find_map(|l| l.strip_prefix("# seed: "))
                .and_then(|s| s.trim().parse().ok())
        })
        .collect();
    seeds.sort_unstable();
    seeds.dedup();
    assert!(!seeds.is_empty(), "corpus reproducers carry seeds");
    seeds
}

/// Drains the uniprocessor op stream under `engine`, returning the
/// order-sensitive digest and the final memory fingerprint.
fn drain(prog: &Program, built: &Built, engine: Engine) -> (TraceDigest, u64) {
    let mut mem = built.memory(1);
    let mut digest = TraceDigest::new();
    match engine {
        Engine::Interp => {
            let mut interp = Interp::new(prog, 0, 1);
            while let Some(op) = interp.next_op(&mut mem) {
                digest.absorb(&op);
            }
        }
        Engine::Bytecode => {
            let code = BytecodeProgram::compile(prog);
            let mut vm = Vm::new(&code, 0, 1);
            while let Some(op) = vm.next_op(&mut mem) {
                digest.absorb(&op);
            }
        }
    }
    (digest, mem.fingerprint())
}

/// Checks one seed; returns a description of the first divergence, if
/// any.
fn check_seed(seed: u64) -> Option<String> {
    let built = materialize(&gen_spec(seed));
    let (d_interp, fp_interp) = drain(&built.prog, &built, Engine::Interp);
    let (d_vm, fp_vm) = drain(&built.prog, &built, Engine::Bytecode);
    if d_interp != d_vm {
        return Some(format!(
            "seed {seed}: trace digests diverge\n  interp:   {d_interp:?}\n  bytecode: {d_vm:?}"
        ));
    }
    if fp_interp != fp_vm {
        return Some(format!(
            "seed {seed}: sequential memory fingerprints diverge \
             ({fp_interp:#018x} vs {fp_vm:#018x})"
        ));
    }
    if built.mode.parallel_checked() {
        let par_fp = |engine| {
            let mut mem = built.memory(1);
            run_parallel_functional_with(&built.prog, &mut mem, built.nprocs, engine);
            mem.fingerprint()
        };
        let (pi, pv) = (par_fp(Engine::Interp), par_fp(Engine::Bytecode));
        if pi != pv {
            return Some(format!(
                "seed {seed}: parallel ({}p) memory fingerprints diverge \
                 ({pi:#018x} vs {pv:#018x})",
                built.nprocs
            ));
        }
    }
    None
}

fn sweep(seeds: impl IntoIterator<Item = u64>) {
    let failures: Vec<String> = seeds.into_iter().filter_map(check_seed).collect();
    assert!(
        failures.is_empty(),
        "engines diverged on {} seed(s):\n{}",
        failures.len(),
        failures.join("\n")
    );
}

#[test]
fn engines_agree_on_corpus_and_pinned_seeds() {
    let mut seeds = corpus_seeds();
    seeds.extend(PINNED_GEN_SEEDS);
    sweep(seeds);
}

#[test]
fn engines_agree_on_fresh_seed_block() {
    sweep(FRESH_SEEDS);
}
