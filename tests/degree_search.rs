//! Regression gate for the degree search's monotonicity fallback
//! (`tests/corpus/seed-14.repro`).
//!
//! The re-analyzed overlapped-miss estimate `f(d)` is *not* monotone in
//! the unroll-and-jam degree — each leading reference contributes
//! `C_m = ceil(W/(i·L_m))` and the jammed body size `i` grows with `d`,
//! so `f` dips whenever a ceiling steps down. The difftest generator
//! produces such profiles readily (seed 14, shrunk); the driver's
//! binary search must detect the violated assumption from its own
//! probes and fall back to a bounded linear scan, landing on the
//! feasible argmax of `f`.

use mempar_analysis::{analyze_inner_loop, MachineSummary, MissProfile};
use mempar_difftest::{gen_spec, materialize};
use mempar_ir::{run_single, Program};
use mempar_transform::{
    cluster_program, innermost_loops, loop_at, scalar_replace, unroll_and_jam, NestPath,
};

/// The degree the reproducer pins, parsed from the corpus file so the
/// two cannot drift apart.
fn corpus_seed() -> u64 {
    let text = std::fs::read_to_string(concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/tests/corpus/seed-14.repro"
    ))
    .expect("reproducer present");
    text.lines()
        .find_map(|l| l.strip_prefix("# seed: "))
        .expect("seed header")
        .trim()
        .parse()
        .expect("numeric seed")
}

/// `f` after jamming by `d` + scalar replacement — the same pipeline
/// the driver's search probes.
fn f_of(
    prog: &Program,
    parent: &NestPath,
    m: &MachineSummary,
    profile: &MissProfile,
    d: u32,
) -> Option<f64> {
    let mut trial = prog.clone();
    let r = unroll_and_jam(&mut trial, parent, d).ok()?;
    let mut all = innermost_loops(&trial);
    all.retain(|p| p.0.starts_with(&r.main.0));
    let ip = all
        .into_iter()
        .max_by_key(|p| loop_at(&trial, p).map(|l| l.body.len()).unwrap_or(0))?;
    let (_, ip) = scalar_replace(&mut trial, &ip).ok()?;
    let l = loop_at(&trial, &ip)?;
    Some(analyze_inner_loop(&trial, &l.body, l.var, m, profile).f)
}

#[test]
fn corpus_seed_14_degree_is_feasible_argmax() {
    let built = materialize(&gen_spec(corpus_seed()));
    let prog = &built.prog;
    let m = MachineSummary::base();
    let profile = MissProfile::pessimistic();

    let inner = innermost_loops(prog)
        .into_iter()
        .find(|p| p.parent().is_some())
        .expect("a 2-nest");
    let parent = inner.parent().unwrap();

    let fs: Vec<(u32, f64)> = (2..=m.max_unroll)
        .filter_map(|d| f_of(prog, &parent, &m, &profile, d).map(|f| (d, f)))
        .collect();
    assert!(
        fs.windows(2).any(|w| w[0].1 > w[1].1 + 1e-9),
        "premise: the pinned profile must stay non-monotone, got {fs:?}"
    );

    let l = loop_at(prog, &inner).unwrap();
    let an = analyze_inner_loop(prog, &l.body, l.var, &m, &profile);
    let target = an.target_f(&m);

    let mut clustered = prog.clone();
    let report = cluster_program(&mut clustered, &m, &profile);
    let degree = report
        .decisions
        .iter()
        .map(|d| d.uaj_degree)
        .max()
        .unwrap_or(1);

    if degree > 1 {
        let f_chosen = fs
            .iter()
            .find(|(d, _)| *d == degree)
            .map(|(_, f)| *f)
            .expect("chosen degree was probed");
        let best = fs
            .iter()
            .filter(|(_, f)| *f <= target)
            .map(|(_, f)| *f)
            .fold(f64::MIN, f64::max);
        assert!(
            (f_chosen - best).abs() < 1e-9,
            "driver chose degree {degree} (f={f_chosen}) but the feasible argmax \
             under target {target} is f={best}; profile {fs:?}"
        );
    }

    // Whatever it chose, semantics hold.
    let mut base_mem = built.memory(1);
    run_single(prog, &mut base_mem);
    let mut clust_mem = built.memory(1);
    run_single(&clustered, &mut clust_mem);
    assert_eq!(
        base_mem.fingerprint(),
        clust_mem.fingerprint(),
        "clustering must preserve the memory image"
    );
}
