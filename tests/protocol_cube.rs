//! Cross-protocol conformance cube over adversarially generated
//! programs.
//!
//! The coherence protocol is a *timing* oracle: swapping the directory
//! for MESI, MOESI, or Dragon may move cycle counts but must never
//! change what the program computes. This sweep pins that contract on
//! the difftest generator's output — every committed corpus reproducer
//! seed, every pinned golden seed, and a fresh seed block (disjoint from
//! `engine_diff`'s and `stepper_cube`'s blocks so the three sweeps
//! compound coverage). For each generated program:
//!
//! * a pure functional drain establishes the dynamic-op-stream
//!   [`TraceDigest`] and final memory fingerprint with no timing model
//!   attached;
//! * the simulated run under **every** protocol must reproduce that
//!   fingerprint exactly, and every protocol's functional counters
//!   (retired ops, loads, stores, prefetches) must match the directory
//!   reference — the trace-digest/fingerprint anchor plus the counter
//!   match is the cross-protocol identity;
//! * within each protocol, the stepper/engine/shard cube must be
//!   bit-identical (full `Debug`-rendered [`mempar_sim::SimResult`]),
//!   exactly as `stepper_cube.rs` asserts for the directory default.

use std::path::PathBuf;

use mempar_difftest::{gen_spec, materialize, Built, PINNED_GEN_SEEDS};
use mempar_ir::{run_parallel_functional, Interp, TraceDigest};
use mempar_sim::{run_program_with, Engine, MachineConfig, Protocol, SimOptions, Stepper};

/// Fresh seeds beyond the pinned/corpus sets, disjoint from
/// `engine_diff` (1000..1200) and `stepper_cube` (2000..2100).
const FRESH_SEEDS: std::ops::Range<u64> = 3000..3100;

/// Second fresh block, added with the allocation-free memory-system
/// fast path (flat directory table, pooled coherence transactions,
/// O(1) MSHR, precomputed routes). Never sampled by any sweep before
/// that change landed, so agreement here is evidence the fast path is
/// observation-equivalent on programs it was not tuned against.
const FRESH_SEEDS_FAST_PATH: std::ops::Range<u64> = 4000..4100;

fn corpus_seeds() -> Vec<u64> {
    let dir = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/corpus");
    let mut seeds: Vec<u64> = std::fs::read_dir(dir)
        .expect("tests/corpus exists")
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .filter(|p| p.extension().is_some_and(|x| x == "repro"))
        .filter_map(|p| {
            let text = std::fs::read_to_string(&p).ok()?;
            text.lines()
                .find_map(|l| l.strip_prefix("# seed: "))
                .and_then(|s| s.trim().parse().ok())
        })
        .collect();
    seeds.sort_unstable();
    seeds.dedup();
    assert!(!seeds.is_empty(), "corpus reproducers carry seeds");
    seeds
}

/// The timing-free anchor: drains the dynamic-op stream (uniprocessor)
/// or the parallel functional oracle (deterministic SPMD) and returns
/// the stream digest hash plus the final memory fingerprint. Every
/// simulated run, under every protocol, must land on this fingerprint.
fn functional_anchor(built: &Built, nprocs: usize) -> (u64, u64) {
    if nprocs > 1 {
        let mut mem = built.memory(nprocs);
        run_parallel_functional(&built.prog, &mut mem, nprocs);
        // The parallel oracle interleaves streams, so the per-proc
        // digest is not order-canonical; the memory image is the
        // anchor and the digest comes from the sequential projection.
        let mut seq = built.memory(1);
        let mut digest = TraceDigest::new();
        let mut interp = Interp::new(&built.prog, 0, 1);
        while let Some(op) = interp.next_op(&mut seq) {
            digest.absorb(&op);
        }
        (digest.hash(), mem.fingerprint())
    } else {
        let mut mem = built.memory(1);
        let mut digest = TraceDigest::new();
        let mut interp = Interp::new(&built.prog, 0, 1);
        while let Some(op) = interp.next_op(&mut mem) {
            digest.absorb(&op);
        }
        (digest.hash(), mem.fingerprint())
    }
}

/// One simulated leg: the full `Debug`-rendered result (protocol-local
/// identity), the final memory fingerprint, and the protocol-independent
/// functional counters (cross-protocol identity).
struct Leg {
    debug: String,
    fingerprint: u64,
    functional: String,
}

fn run_leg(built: &Built, nprocs: usize, opts: SimOptions) -> Leg {
    let cfg = MachineConfig::base_simulated(nprocs, 32 * 1024);
    let mut mem = built.memory(nprocs);
    let r = run_program_with(&built.prog, &mut mem, &cfg, opts);
    Leg {
        debug: format!("{r:?}"),
        fingerprint: mem.fingerprint(),
        functional: format!(
            "retired={} loads={} stores={} prefetches={}",
            r.retired, r.counters.loads, r.counters.stores, r.counters.prefetches
        ),
    }
}

/// Checks one seed across the protocol cube; returns a description of
/// the first divergence, if any.
fn check_seed(seed: u64) -> Option<String> {
    let built = materialize(&gen_spec(seed));
    // Multiprocessor legs only for specs whose SPMD execution is
    // deterministic; everything else simulates as a uniprocessor.
    let nprocs = if built.mode.parallel_checked() {
        built.nprocs
    } else {
        1
    };
    let (digest_hash, anchor_fp) = functional_anchor(&built, nprocs);
    let opts = |protocol, stepper, shards, engine| SimOptions {
        stepper,
        shards,
        engine,
        protocol,
    };
    // The directory event leg is the cross-protocol reference.
    let dir_ref = run_leg(
        &built,
        nprocs,
        opts(Protocol::Directory, Stepper::Event, 1, Engine::Bytecode),
    );
    if dir_ref.fingerprint != anchor_fp {
        return Some(format!(
            "seed {seed} ({nprocs}p): directory sim diverges from the functional anchor \
             (digest {digest_hash:#018x}): {:#018x} vs {anchor_fp:#018x}",
            dir_ref.fingerprint
        ));
    }
    for protocol in [Protocol::Mesi, Protocol::Moesi, Protocol::Dragon] {
        // Per-protocol event reference, checked against the directory
        // leg (functional identity) and the anchor (op-stream identity).
        let proto_ref = run_leg(
            &built,
            nprocs,
            opts(protocol, Stepper::Event, 1, Engine::Bytecode),
        );
        if proto_ref.functional != dir_ref.functional {
            return Some(format!(
                "seed {seed} ({nprocs}p): {protocol} functional counters diverge from \
                 directory\n  directory: {}\n  {protocol}: {}",
                dir_ref.functional, proto_ref.functional
            ));
        }
        if proto_ref.fingerprint != anchor_fp {
            return Some(format!(
                "seed {seed} ({nprocs}p): {protocol} memory fingerprint diverges from the \
                 functional anchor ({:#018x} vs {anchor_fp:#018x})",
                proto_ref.fingerprint
            ));
        }
        // Within the protocol: the stepper, shard, and engine axes must
        // be bit-identical to the protocol's own event reference.
        let mut legs = vec![
            (
                "strict",
                run_leg(
                    &built,
                    nprocs,
                    opts(protocol, Stepper::Strict, 1, Engine::Bytecode),
                ),
            ),
            (
                "skip",
                run_leg(
                    &built,
                    nprocs,
                    opts(protocol, Stepper::Skip, 1, Engine::Bytecode),
                ),
            ),
            (
                "event-interp",
                run_leg(
                    &built,
                    nprocs,
                    opts(protocol, Stepper::Event, 1, Engine::Interp),
                ),
            ),
        ];
        if nprocs > 1 {
            for (name, shards) in [("event-sh2", 2), ("event-sh4", 4)] {
                legs.push((
                    name,
                    run_leg(
                        &built,
                        nprocs,
                        opts(protocol, Stepper::Event, shards, Engine::Bytecode),
                    ),
                ));
            }
        }
        for (name, leg) in &legs {
            if leg.debug != proto_ref.debug {
                return Some(format!(
                    "seed {seed} ({nprocs}p): {protocol} {name} SimResult diverges from the \
                     protocol's event reference"
                ));
            }
            if leg.fingerprint != proto_ref.fingerprint {
                return Some(format!(
                    "seed {seed} ({nprocs}p): {protocol} {name} memory fingerprint diverges \
                     ({:#018x} vs {:#018x})",
                    leg.fingerprint, proto_ref.fingerprint
                ));
            }
        }
    }
    None
}

fn sweep(seeds: impl IntoIterator<Item = u64>) {
    let failures: Vec<String> = seeds.into_iter().filter_map(check_seed).collect();
    assert!(
        failures.is_empty(),
        "protocols diverged on {} seed(s):\n{}",
        failures.len(),
        failures.join("\n")
    );
}

#[test]
fn protocols_agree_on_corpus_and_pinned_seeds() {
    let mut seeds = corpus_seeds();
    seeds.extend(PINNED_GEN_SEEDS);
    sweep(seeds);
}

#[test]
fn protocols_agree_on_fresh_seed_block() {
    sweep(FRESH_SEEDS);
}

#[test]
fn protocols_agree_on_fast_path_seed_block() {
    sweep(FRESH_SEEDS_FAST_PATH);
}
