//! Property-based tests on the IR layer: affine algebra, distribution
//! coverage, and trace invariants.

use mempar_ir::{
    run_parallel_functional, run_single, AffineExpr, ArrayData, Dist, Interp, OpKind,
    ProgramBuilder, SimMem, SrcList, VarId,
};
use proptest::prelude::*;

fn var(n: u32) -> VarId {
    VarId::from_raw(n)
}

proptest! {
    /// Affine substitution commutes with evaluation:
    /// eval(subst(e, v, r)) == eval(e) with v bound to eval(r).
    #[test]
    fn affine_subst_commutes_with_eval(
        coeffs in proptest::collection::vec((0u32..4, -5i64..5), 0..4),
        konst in -100i64..100,
        rcoeff in -3i64..3,
        roff in -10i64..10,
        env in proptest::collection::vec(-7i64..7, 4),
    ) {
        let mut e = AffineExpr::konst(konst);
        for &(v, c) in &coeffs {
            e = e.add(&AffineExpr::scaled_var(var(v), c, 0));
        }
        let target = var(0);
        let repl = AffineExpr::scaled_var(var(1), rcoeff, roff);
        let substituted = e.subst(target, &repl);
        let lookup = |v: VarId| env[v.index()];
        let repl_val = repl.eval(lookup);
        let direct = e.eval(|v| if v == target { repl_val } else { lookup(v) });
        prop_assert_eq!(substituted.eval(lookup), direct);
    }

    /// Affine arithmetic is a commutative group under add/sub.
    #[test]
    fn affine_add_sub_roundtrip(
        c1 in -20i64..20,
        c2 in -20i64..20,
        k1 in -50i64..50,
        k2 in -50i64..50,
    ) {
        let a = AffineExpr::scaled_var(var(0), c1, k1);
        let b = AffineExpr::scaled_var(var(1), c2, k2);
        prop_assert_eq!(a.add(&b), b.add(&a));
        prop_assert_eq!(a.add(&b).sub(&b), a.clone());
        prop_assert_eq!(a.sub(&a).as_const(), Some(0));
        prop_assert_eq!(a.scale(3).scale(-1), a.scale(-3));
    }

    /// Block and cyclic distributions partition the iteration space:
    /// every iteration executed by exactly one processor.
    #[test]
    fn distribution_partitions_iterations(
        trip in 1usize..64,
        nprocs in 1usize..9,
        block in proptest::bool::ANY,
    ) {
        let mut b = ProgramBuilder::new("cover");
        let c = b.array_f64("c", &[trip]);
        let i = b.var("i");
        let dist = if block { Dist::Block } else { Dist::Cyclic };
        b.for_dist(i, 0, trip as i64, dist, |b| {
            let old = b.load(c, &[b.idx(i)]);
            let one = b.constf(1.0);
            let inc = b.add(old, one);
            b.assign_array(c, &[b.idx(i)], inc);
        });
        let p = b.finish();
        let mut mem = SimMem::new(&p, nprocs);
        run_parallel_functional(&p, &mut mem, nprocs);
        let out = mem.read_f64(c);
        prop_assert!(
            out.iter().all(|&v| v == 1.0),
            "each element incremented exactly once: {out:?}"
        );
    }

    /// The op trace respects data-flow: every source vreg was produced by
    /// an earlier op.
    #[test]
    fn trace_sources_precede_uses(n in 1usize..24) {
        let mut b = ProgramBuilder::new("t");
        let a = b.array_f64("a", &[n.max(2), 8]);
        let s = b.scalar_f64("s", 0.0);
        let j = b.var("j");
        let i = b.var("i");
        b.for_const(j, 0, n as i64, |b| {
            b.for_const(i, 0, 8, |b| {
                let v = b.load(a, &[b.idx(j), b.idx(i)]);
                let acc = b.scalar(s);
                let e = b.add(acc, v);
                b.assign_scalar(s, e);
            });
        });
        let p = b.finish();
        let mut mem = SimMem::new(&p, 1);
        let mut interp = Interp::new(&p, 0, 1);
        let mut produced = std::collections::HashSet::new();
        while let Some(op) = interp.next_op(&mut mem) {
            for &src in op.srcs.as_slice() {
                prop_assert!(produced.contains(&src), "use of unproduced vreg {src}");
            }
            if let Some(dst) = op.dst {
                prop_assert!(produced.insert(dst), "vreg {dst} produced twice");
            }
        }
    }

    /// SrcList never exceeds capacity and never stores duplicates.
    #[test]
    fn srclist_invariants(vregs in proptest::collection::vec(0u32..40, 0..12)) {
        let mut s = SrcList::new();
        for &v in &vregs {
            s.push(v);
        }
        prop_assert!(s.len() <= mempar_ir::MAX_SRCS);
        let slice = s.as_slice();
        let mut dedup = slice.to_vec();
        dedup.sort_unstable();
        dedup.dedup();
        prop_assert_eq!(dedup.len(), slice.len(), "duplicates in {:?}", slice);
        for &v in slice {
            prop_assert!(vregs.contains(&v));
        }
    }

    /// Functional runs are deterministic: identical programs and data
    /// produce identical memory images and op counts.
    #[test]
    fn functional_run_deterministic(n in 2usize..32, seedish in 0i64..1000) {
        let mut b = ProgramBuilder::new("det");
        let a = b.array_f64("a", &[n]);
        let out = b.array_f64("out", &[n]);
        let i = b.var("i");
        b.for_const(i, 0, n as i64, |b| {
            let v = b.load(a, &[b.idx(i)]);
            let c = b.constf(seedish as f64);
            let e = b.mul(v, c);
            b.assign_array(out, &[b.idx(i)], e);
        });
        let p = b.finish();
        let data = ArrayData::F64((0..n).map(|x| (x as f64) + 0.5).collect());
        let run = |p: &mempar_ir::Program| {
            let mut mem = SimMem::new(p, 1);
            mem.set_array(a, data.clone());
            let s = run_single(p, &mut mem);
            (mem.fingerprint(), s)
        };
        prop_assert_eq!(run(&p), run(&p));
    }
}

/// Halt is always the final op of a trace (non-proptest sanity anchor).
#[test]
fn trace_ends_with_halt() {
    let mut b = ProgramBuilder::new("h");
    let s = b.scalar_f64("s", 0.0);
    let one = b.constf(1.0);
    b.assign_scalar(s, one);
    let p = b.finish();
    let mut mem = SimMem::new(&p, 1);
    let mut interp = Interp::new(&p, 0, 1);
    let mut last = None;
    while let Some(op) = interp.next_op(&mut mem) {
        last = Some(op.kind);
    }
    assert_eq!(last, Some(OpKind::Halt));
}
