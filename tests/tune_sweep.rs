//! Difftest sweep over tuner-chosen compositions: every candidate the
//! tuner scores is oracle-checked against the interpreter (sequential
//! and parallel-functional memory images), so a legality bug anywhere
//! in the composed transform pipeline surfaces as an oracle failure
//! here. On failure the offending spec is shrunk and written to
//! `tests/corpus/` before the assert fires.
//!
//! The quick test covers the pinned golden seeds plus a fresh block;
//! the `#[ignore]` acceptance sweep covers ≥500 seeds (CI `tune-smoke`
//! runs the quick tier; the difftest-smoke pattern applies).

use mempar::{profile_miss_rates, MachineConfig};
use mempar_difftest::{
    gen_spec, materialize, render_reproducer, shrink_with, ProgSpec, PINNED_GEN_SEEDS,
};
use mempar_tune::{TuneOptions, Tuner};

/// Tunes one spec and returns its oracle failures (empty = every
/// scored composition preserved semantics).
fn tune_failures(tuner: &Tuner, spec: &ProgSpec) -> Vec<String> {
    let built = materialize(spec);
    let nprocs = if built.mode.parallel_checked() {
        built.nprocs
    } else {
        1
    };
    let cfg = MachineConfig::base_simulated(nprocs, 64 * 1024);
    let mut pmem = built.memory(1);
    let profile = profile_miss_rates(&built.prog, &mut pmem, &cfg.l2);
    let mem_at = |n: usize| built.memory(n);
    let (_, report) = tuner.tune_program(
        &format!("gen-{}", spec.seed),
        &built.prog,
        &cfg,
        &profile,
        &mem_at,
    );
    assert!(
        report.tuned_cycles <= report.base_cycles && report.tuned_cycles <= report.default_cycles,
        "seed {}: tuned must floor at min(base, default): {}",
        spec.seed,
        report.summary()
    );
    report.oracle_failures
}

fn sweep(seeds: impl Iterator<Item = u64>) {
    // One tuner for the whole stream: repeated subproblems across the
    // generator's programs hit the shared memo.
    let tuner = Tuner::new(TuneOptions::default());
    let mut failing: Vec<(u64, Vec<String>)> = Vec::new();
    for seed in seeds {
        let failures = tune_failures(&tuner, &gen_spec(seed));
        if !failures.is_empty() {
            failing.push((seed, failures));
        }
    }
    if let Some((seed, failures)) = failing.first() {
        // Shrink the first offender under the same predicate and leave
        // a reproducer for the corpus before failing.
        let spec = gen_spec(*seed);
        let fresh = Tuner::new(TuneOptions::default());
        let small = shrink_with(&spec, |s| !tune_failures(&fresh, s).is_empty());
        let repro = render_reproducer(
            &small,
            "TunerOracle|composed-transform",
            &failures.join("; "),
        );
        let path = format!(
            "{}/tests/corpus/seed-{seed}.repro",
            env!("CARGO_MANIFEST_DIR")
        );
        std::fs::write(&path, &repro).expect("write reproducer");
        panic!("tuner oracle failures (reproducer at {path}): {failing:?}");
    }
}

#[test]
fn tuned_compositions_preserve_semantics_quick() {
    sweep(PINNED_GEN_SEEDS.iter().copied().chain(0..40));
}

#[test]
#[ignore = "acceptance-scale; run via cargo test -- --ignored (CI tune-smoke job)"]
fn tuned_compositions_preserve_semantics_full() {
    sweep(PINNED_GEN_SEEDS.iter().copied().chain(0..500));
}
