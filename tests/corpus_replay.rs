//! Replays every committed reproducer in `tests/corpus/`.
//!
//! Each `.repro` file was written by the differential harness when a
//! generated program exposed a real bug (see the `# signature:` header
//! and the pretty-printed minimized program inside). The underlying
//! bugs are fixed; this test re-runs the full differential check on
//! each pinned generator seed so the fixes can never silently regress.

use std::path::PathBuf;

use mempar_difftest::{check_spec, gen_spec};

fn corpus_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/corpus")
}

/// Parses the `# seed: N` header line of a reproducer file.
fn seed_of(text: &str) -> Option<u64> {
    text.lines()
        .find_map(|l| l.strip_prefix("# seed: "))
        .and_then(|s| s.trim().parse().ok())
}

#[test]
fn committed_reproducers_stay_fixed() {
    let mut entries: Vec<_> = std::fs::read_dir(corpus_dir())
        .expect("tests/corpus exists")
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .filter(|p| p.extension().is_some_and(|x| x == "repro"))
        .collect();
    entries.sort();
    assert!(
        !entries.is_empty(),
        "corpus is empty — reproducers from fixed bugs should be committed"
    );
    let mut regressions = Vec::new();
    for path in &entries {
        let text = std::fs::read_to_string(path).expect("readable reproducer");
        let seed =
            seed_of(&text).unwrap_or_else(|| panic!("{} lacks a `# seed:` header", path.display()));
        let report = check_spec(&gen_spec(seed));
        if !report.passed() {
            let sigs: Vec<String> = report.divergences.iter().map(|d| d.signature()).collect();
            regressions.push(format!(
                "{} (seed {seed}): {}",
                path.display(),
                sigs.join(", ")
            ));
        }
    }
    assert!(
        regressions.is_empty(),
        "previously fixed bugs regressed:\n{}",
        regressions.join("\n")
    );
}
