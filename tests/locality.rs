//! Measured-locality gates: SHARDS sampling must be seed-stable, the
//! fetch-stage reuse tap must never move a simulated cycle, analytic
//! mode must stay byte-identical to the profiler-free seed path, and one
//! pinned Latbench configuration holds a golden predicted-vs-measured
//! snapshot so the calibration format cannot drift silently.
//!
//! Regenerate the golden file after an intentional format change with
//!
//! ```text
//! MEMPAR_BLESS=1 cargo test --test locality golden
//! ```

use mempar::{
    calibrate_locality, observe_pair_locality, observe_pair_with, run_pair_locality, run_pair_with,
    run_program_observed_reuse, run_program_with, sim_reuse_profiler, Locality, MachineConfig,
    ReuseConfig, SimOptions,
};
use mempar_sim::Tracer;
use mempar_workloads::{latbench, App, LatbenchParams, Workload};

/// The pinned configuration behind the golden snapshot. Do not change
/// these numbers without re-blessing the snapshot.
fn pinned_latbench() -> Workload {
    latbench(LatbenchParams {
        chains: 8,
        chain_len: 32,
        pool: 1 << 12,
        seed: 7,
    })
}

/// The sampled profiler is deterministic: two calibration passes over
/// the same workload must agree bin for bin, and an explicit seed change
/// must still produce a full report (the hash-based sampling is seeded,
/// not wall-clock driven).
#[test]
fn sampling_is_seed_stable() {
    let w = App::Erlebacher.build(0.05);
    let cfg = MachineConfig::base_simulated(1, 32 * 1024);
    let (p1, a1) = calibrate_locality(&w, &cfg);
    let (p2, a2) = calibrate_locality(&w, &cfg);
    assert_eq!(a1.report, a2.report, "reuse report must be seed-stable");
    assert_eq!(a1.delta, a2.delta, "delta report must be seed-stable");
    assert_eq!(
        format!("{p1:?}"),
        format!("{p2:?}"),
        "measured miss profile must be seed-stable"
    );
    // A different sampling seed monitors a different subset but must
    // still attribute every array.
    let mut mem = w.memory(1);
    let (_, report) = mempar::measure_locality(
        &w.program,
        &mut mem,
        &cfg,
        ReuseConfig {
            seed: 0xDEAD_BEEF,
            ..ReuseConfig::default()
        },
    );
    // Untouched arrays (and an unused "(other)" bucket) are omitted.
    assert!(!report.arrays.is_empty());
    assert!(report.arrays.len() <= w.program.arrays.len() + 1);
    assert!(report.sampled > 0);
}

/// The in-sim fetch-stage tap is pure observation: a run with the
/// profiler attached must report the bit-identical `SimResult` of an
/// untapped run.
#[test]
fn reuse_tap_causes_zero_cycle_drift() {
    for app in [App::Latbench, App::Erlebacher] {
        let w = app.build(0.03);
        let cfg = MachineConfig::base_simulated(1, w.l2_bytes);
        let mut mem = w.memory(1);
        let plain = run_program_with(&w.program, &mut mem, &cfg, SimOptions::default());
        let mut mem = w.memory(1);
        let (tapped, obs, profiler) = run_program_observed_reuse(
            &w.program,
            &mut mem,
            &cfg,
            SimOptions::default(),
            Tracer::with_capacity(1 << 14),
            sim_reuse_profiler(&w.program, &cfg, ReuseConfig::default()),
        );
        assert_eq!(
            format!("{plain:?}"),
            format!("{tapped:?}"),
            "{}: the reuse tap changed the simulation result",
            app.name()
        );
        assert!(
            profiler.accesses() > 0,
            "{}: tap saw no accesses",
            app.name()
        );
        assert!(
            !obs.reuse_samples.is_empty(),
            "{}: no counter-track samples",
            app.name()
        );
        assert!(
            obs.metrics.counter_value("sim.reuse.accesses").is_some(),
            "{}: sim.reuse.* metrics missing",
            app.name()
        );
    }
}

/// `--locality analytic` (the default) must be byte-identical to the
/// profiler-free seed path: same pair results, no artifacts.
#[test]
fn analytic_mode_is_bit_identical_to_seed_path() {
    let w = pinned_latbench();
    let cfg = MachineConfig::base_simulated(1, w.l2_bytes);
    let plain = run_pair_with(&w, &cfg, SimOptions::default());
    let (analytic, artifacts) =
        run_pair_locality(&w, &cfg, SimOptions::default(), Locality::Analytic);
    assert!(artifacts.is_none(), "analytic mode must not calibrate");
    assert_eq!(plain.base.cycles, analytic.base.cycles);
    assert_eq!(plain.clustered.cycles, analytic.clustered.cycles);
    assert_eq!(
        format!("{:?}", plain.report),
        format!("{:?}", analytic.report)
    );
    let obs_plain = observe_pair_with(&w, &cfg, 1 << 14, SimOptions::default());
    let (obs_analytic, obs_artifacts) =
        observe_pair_locality(&w, &cfg, 1 << 14, SimOptions::default(), Locality::Analytic);
    assert!(obs_artifacts.is_none());
    assert_eq!(
        obs_plain.base.result.cycles,
        obs_analytic.base.result.cycles
    );
    assert_eq!(
        obs_plain.clustered.result.cycles,
        obs_analytic.clustered.result.cycles
    );
}

/// Measured mode really runs: it returns calibration artifacts with one
/// delta row per profiled leading reference, and the transformed program
/// still produces matching outputs.
#[test]
fn measured_mode_calibrates_and_matches_outputs() {
    let w = pinned_latbench();
    let cfg = MachineConfig::base_simulated(1, w.l2_bytes);
    let (pair, artifacts) = run_pair_locality(&w, &cfg, SimOptions::default(), Locality::Measured);
    assert!(pair.outputs_match, "measured clustering changed outputs");
    let a = artifacts.expect("measured mode must return artifacts");
    assert!(a.report.sampled > 0);
    assert!(!a.delta.rows.is_empty(), "delta table must have rows");
    for r in &a.delta.rows {
        assert!(
            (0.0..=1.0).contains(&r.p_meas),
            "{}: measured P_m {} out of range",
            r.array,
            r.p_meas
        );
        assert!(r.f_meas >= 1.0, "{}: f must stay >= 1", r.array);
    }
}

/// Golden predicted-vs-measured snapshot: the `--reuse-out` JSON body
/// for the pinned Latbench configuration must match
/// `tests/snapshots/latbench_reuse.json` byte for byte. Bless
/// intentional changes with `MEMPAR_BLESS=1`.
#[test]
fn golden_delta_snapshot() {
    let w = pinned_latbench();
    let cfg = MachineConfig::base_simulated(1, w.l2_bytes);
    let (_, a) = calibrate_locality(&w, &cfg);
    let json = format!(
        "{{\n\"workloads\": [\n  {{\"name\": \"latbench\", \"report\": {}, \"delta\": {}}}\n]\n}}\n",
        a.report.to_json(),
        a.delta.to_json()
    );
    mempar::validate_json(&json).expect("reuse export must be well-formed JSON");
    let path = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/tests/snapshots/latbench_reuse.json"
    );
    if std::env::var("MEMPAR_BLESS").is_ok() {
        std::fs::write(path, &json).expect("bless golden snapshot");
        return;
    }
    let golden = std::fs::read_to_string(path)
        .expect("golden snapshot missing — run with MEMPAR_BLESS=1 to create it");
    assert_eq!(
        json, golden,
        "measured-locality export drifted from the golden snapshot; \
         re-bless with MEMPAR_BLESS=1 if the change is intentional"
    );
}
