//! Differential sweep over generated programs: every transform pass,
//! alone and in random compositions, against the interpreter oracle.
//!
//! The quick sweep runs in the default test pass. The full
//! acceptance-scale sweep (500 programs) is `#[ignore]`d and run by the
//! CI `difftest-smoke` job via `cargo test -- --ignored`.
//!
//! Any divergence is auto-shrunk and written to `tests/corpus/` as a
//! pretty-printed reproducer before the test fails; fixed bugs stay
//! pinned there and are replayed by `tests/corpus_replay.rs`.

use std::path::PathBuf;

use mempar_difftest::{check_spec, gen_spec, render_reproducer, shrink, CheckReport};

fn corpus_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/corpus")
}

/// Runs the differential check over `seeds`, shrinking and recording
/// any failure, and returns the aggregate tallies.
fn sweep(seeds: std::ops::Range<u64>) -> CheckReport {
    let mut total = CheckReport::default();
    let mut failures = Vec::new();
    for seed in seeds {
        let spec = gen_spec(seed);
        let report = check_spec(&spec);
        total.singles_ok += report.singles_ok;
        total.singles_rejected += report.singles_rejected;
        total.rejections_justified += report.rejections_justified;
        total.rejections_conservative += report.rejections_conservative;
        total.compositions_ok += report.compositions_ok;
        for d in report.divergences {
            let sig = d.signature();
            let small = shrink(&spec, &sig);
            let file = corpus_dir().join(format!("seed-{seed}.repro"));
            let _ = std::fs::create_dir_all(corpus_dir());
            let _ = std::fs::write(&file, render_reproducer(&small, &sig, &d.detail));
            failures.push(format!(
                "seed {seed}: {sig} (reproducer: {})",
                file.display()
            ));
        }
    }
    assert!(
        failures.is_empty(),
        "differential divergences:\n{}",
        failures.join("\n")
    );
    total
}

#[test]
fn quick_differential_sweep() {
    let t = sweep(0..60);
    assert!(t.singles_ok > 60, "too few single-pass applications: {t:?}");
    assert!(t.compositions_ok > 0, "no compositions checked: {t:?}");
}

/// Acceptance-scale sweep: 500 generated programs, every pass applied
/// at every loop nest, ≥100 random pass compositions, every legality
/// rejection probed for soundness. ~minutes; run explicitly or in CI.
#[test]
#[ignore = "acceptance-scale; run via cargo test -- --ignored (CI difftest-smoke job)"]
fn full_differential_sweep() {
    let t = sweep(0..500);
    assert!(t.singles_ok >= 500, "single-pass coverage too low: {t:?}");
    assert!(
        t.compositions_ok >= 100,
        "composition coverage too low: {t:?}"
    );
    assert!(
        t.rejections_justified > 0,
        "no rejection ever probed as load-bearing: {t:?}"
    );
}
