//! End-to-end tests of the two extensions the paper sketches:
//! loop fusion for unnested recurrences (Conclusions) and software
//! prefetching alongside clustering (Section 1 / TR 9910).

use mempar::{machine_summary, profile_miss_rates, run_program, MachineConfig};
use mempar_analysis::{analyze_inner_loop, MissProfile};
use mempar_ir::{run_single, ArrayData, ProgramBuilder, SimMem, Stmt};
use mempar_transform::{
    cluster_program, fuse_adjacent_loops, innermost_loops, insert_prefetches, loop_at,
};
use mempar_workloads::{erlebacher, latbench, ErlebacherParams, LatbenchParams};

/// Fusing two unnested streaming loops doubles the miss streams per
/// window — `f` grows — and the fused program runs faster on the
/// simulated machine.
#[test]
fn fusion_improves_unnested_recurrences() {
    let n = 1 << 15; // two 256 KB streams vs a 64 KB L2
    let mut b = ProgramBuilder::new("unnested");
    let a = b.array_f64("a", &[n]);
    let c = b.array_f64("c", &[n]);
    let oa = b.array_f64("oa", &[1]);
    let oc = b.array_f64("oc", &[1]);
    let s1 = b.scalar_f64("s1", 0.0);
    let s2 = b.scalar_f64("s2", 0.0);
    let i = b.var("i");
    let j = b.var("j");
    b.for_const(i, 0, n as i64, |b| {
        let v = b.load(a, &[b.idx(i)]);
        let acc = b.scalar(s1);
        let e = b.add(acc, v);
        b.assign_scalar(s1, e);
    });
    b.for_const(j, 0, n as i64, |b| {
        let v = b.load(c, &[b.idx(j)]);
        let acc = b.scalar(s2);
        let e = b.add(acc, v);
        b.assign_scalar(s2, e);
    });
    let v1 = b.scalar(s1);
    b.assign_array(oa, &[b.idx_e(mempar_ir::AffineExpr::konst(0))], v1);
    let v2 = b.scalar(s2);
    b.assign_array(oc, &[b.idx_e(mempar_ir::AffineExpr::konst(0))], v2);
    let base = b.finish();

    let cfg = MachineConfig::base_simulated(1, 64 * 1024);
    let m = machine_summary(&cfg);

    // Analysis before/after: f doubles.
    let f_of = |p: &mempar_ir::Program| {
        let nest = innermost_loops(p)[0].clone();
        let l = loop_at(p, &nest).expect("loop");
        analyze_inner_loop(p, &l.body, l.var, &m, &MissProfile::pessimistic()).f
    };
    let f_before = f_of(&base);
    let mut fused = base.clone();
    assert_eq!(fuse_adjacent_loops(&mut fused), 1);
    let f_after = f_of(&fused);
    assert!(f_after > f_before, "f must grow: {f_before} -> {f_after}");

    // Semantics preserved and time reduced.
    let data_a = ArrayData::F64((0..n).map(|x| (x % 7) as f64).collect());
    let data_c = ArrayData::F64((0..n).map(|x| (x % 11) as f64).collect());
    let run = |p: &mempar_ir::Program| {
        let mut mem = SimMem::new(p, 1);
        mem.set_array(a, data_a.clone());
        mem.set_array(c, data_c.clone());
        let r = run_program(p, &mut mem, &cfg);
        (mem.read_f64(oa), mem.read_f64(oc), r.cycles)
    };
    let (ba, bc, base_cycles) = run(&base);
    let (fa, fc, fused_cycles) = run(&fused);
    assert_eq!(ba, fa);
    assert_eq!(bc, fc);
    assert!(
        fused_cycles < base_cycles,
        "fusion should overlap the two streams: {base_cycles} -> {fused_cycles}"
    );
}

/// Prefetching helps a regular workload, clustering helps more here, and
/// the combination is at least as good as prefetching alone.
#[test]
fn prefetch_and_clustering_compose() {
    let w = erlebacher(ErlebacherParams { n: 32 });
    let cfg = MachineConfig::base_simulated(1, 32 * 1024);
    let mut pm = w.memory(1);
    let profile = profile_miss_rates(&w.program, &mut pm, &cfg.l2);

    let mut prefetched = w.program.clone();
    for nest in innermost_loops(&prefetched) {
        let _ = insert_prefetches(&mut prefetched, &nest, 16, cfg.l2.line_bytes, &profile);
    }
    let mut both = w.program.clone();
    cluster_program(&mut both, &machine_summary(&cfg), &profile);
    for nest in innermost_loops(&both) {
        let _ = insert_prefetches(&mut both, &nest, 16, cfg.l2.line_bytes, &profile);
    }

    let run = |p: &mempar_ir::Program| {
        let mut mem = w.memory(1);
        let r = run_program(p, &mut mem, &cfg);
        (w.read_outputs(&mem), r.cycles, r.counters.prefetches)
    };
    let (out_base, cycles_base, pf_base) = run(&w.program);
    let (out_pf, cycles_pf, pf_count) = run(&prefetched);
    let (out_both, cycles_both, _) = run(&both);
    assert_eq!(pf_base, 0);
    assert!(pf_count > 0, "prefetches must issue");
    assert_eq!(out_base, out_pf, "prefetching is non-binding");
    assert_eq!(out_base, out_both);
    assert!(
        cycles_pf < cycles_base,
        "prefetching helps the regular code: {cycles_base} -> {cycles_pf}"
    );
    assert!(
        cycles_both < cycles_base,
        "the combination also wins: {cycles_base} -> {cycles_both}"
    );
}

/// Pointer chases admit no prefetches at all (the address to fetch *is*
/// the missing value) — the Section 1 motivation for clustering.
#[test]
fn chase_has_no_prefetchable_sites() {
    let w = latbench(LatbenchParams {
        chains: 8,
        chain_len: 32,
        pool: 4096,
        seed: 1,
    });
    let mut p = w.program.clone();
    let mut inserted = 0;
    for nest in innermost_loops(&p) {
        inserted +=
            insert_prefetches(&mut p, &nest, 8, 64, &MissProfile::pessimistic()).unwrap_or(0);
    }
    assert_eq!(inserted, 0);
    // And the program is untouched (no stray statements).
    let mut m1 = w.memory(1);
    run_single(&w.program, &mut m1);
    let mut m2 = w.memory(1);
    run_single(&p, &mut m2);
    assert_eq!(w.read_outputs(&m1), w.read_outputs(&m2));
    assert!(!p.body.iter().any(|s| matches!(s, Stmt::Prefetch { .. })));
}
