//! The stepper equality cube: every clock-advance strategy must be
//! invisible in the results. Each field of [`SimResult`] — cycle counts,
//! stall breakdowns, memory counters, latency stats, MSHR occupancy
//! histograms — must be bit-identical between strict per-cycle stepping,
//! event-horizon skipping, and discrete-event stepping (single-threaded
//! and sharded across 2 and 4 worker threads). The comparison goes
//! through `Debug` formatting, which prints floats with
//! shortest-roundtrip precision, so any bit-level divergence shows up.
//!
//! The same cube has an engine axis (the bytecode VM front-end must be
//! as invisible as the stepper; interp strict is the reference corner)
//! and a tracing axis (attaching the observability tracer must change
//! nothing).

use mempar_sim::{
    run_program_observed, run_program_with, Engine, MachineConfig, SimOptions, Stepper, Tracer,
};
use mempar_workloads::App;

fn options(stepper: Stepper, shards: usize, engine: Engine) -> SimOptions {
    SimOptions {
        stepper,
        shards,
        engine,
    }
}

fn run_debug(app: App, scale: f64, mp: bool, opts: SimOptions) -> String {
    let w = app.build(scale);
    let nprocs = if mp { w.mp_procs.max(1) } else { 1 };
    let cfg = MachineConfig::base_simulated(nprocs, 64 * 1024);
    let mut mem = w.memory(nprocs);
    let r = run_program_with(&w.program, &mut mem, &cfg, opts);
    format!("{r:?}")
}

/// Same run with the observability tracer attached — tracing must be as
/// invisible as the stepper choice.
fn run_debug_traced(app: App, scale: f64, mp: bool, opts: SimOptions) -> String {
    let w = app.build(scale);
    let nprocs = if mp { w.mp_procs.max(1) } else { 1 };
    let cfg = MachineConfig::base_simulated(nprocs, 64 * 1024);
    let mut mem = w.memory(nprocs);
    let (r, _) = run_program_observed(
        &w.program,
        &mut mem,
        &cfg,
        opts,
        Tracer::with_capacity(1 << 16),
    );
    format!("{r:?}")
}

fn assert_identical(app: App, mp: bool) {
    // Multiprocessor strict legs are the expensive corner (16 cores
    // stepped every cycle on one host thread), so they run at a smaller
    // scale; the cube is about equality, not workload size.
    let scale = if mp { 0.03 } else { 0.05 };
    let strict = run_debug(
        app,
        scale,
        mp,
        options(Stepper::Strict, 1, Engine::Bytecode),
    );
    let ctx = |leg: &str, engine: Engine| {
        format!(
            "{} ({}, engine {engine}, {leg}) diverges from strict stepping",
            app.name(),
            if mp { "mp" } else { "up" }
        )
    };
    // The stepper and tracing axes, under the default (bytecode) engine.
    for stepper in [Stepper::Skip, Stepper::Event] {
        let leg = run_debug(app, scale, mp, options(stepper, 1, Engine::Bytecode));
        assert_eq!(
            leg,
            strict,
            "{}",
            ctx(&stepper.to_string(), Engine::Bytecode)
        );
        let traced = run_debug_traced(app, scale, mp, options(stepper, 1, Engine::Bytecode));
        assert_eq!(
            traced,
            strict,
            "{}",
            ctx(&format!("{stepper}+trace"), Engine::Bytecode)
        );
    }
    // Deterministic sharding: bit-identical at every thread count.
    for shards in [2, 4] {
        let leg = run_debug(
            app,
            scale,
            mp,
            options(Stepper::Event, shards, Engine::Bytecode),
        );
        assert_eq!(
            leg,
            strict,
            "{}",
            ctx(&format!("event, {shards} shards"), Engine::Bytecode)
        );
    }
    // The engine axis: the tree-walking interpreter must agree at the
    // strict corner (same driver, different front-end) and at the event
    // corner (engine x stepper interaction). Exhaustive engine
    // invisibility on the op-stream level is `tests/engine_diff.rs`'s
    // job; simulated-cycle invisibility needs only these two corners
    // plus `benchsim`'s per-run assertion.
    let strict_tw = run_debug(app, scale, mp, options(Stepper::Strict, 1, Engine::Interp));
    assert_eq!(strict_tw, strict, "{}", ctx("strict", Engine::Interp));
    let event_tw = run_debug(app, scale, mp, options(Stepper::Event, 1, Engine::Interp));
    assert_eq!(event_tw, strict, "{}", ctx("event", Engine::Interp));
}

#[test]
fn latbench_steppers_agree() {
    // Pointer chase: the best case for skipping (window-full stalls on
    // dependent misses), so also the most likely to expose bulk-account
    // errors.
    assert_identical(App::Latbench, false);
}

#[test]
fn fft_steppers_agree_multiprocessor() {
    // Barrier-synchronized phases exercise the barrier-release horizon
    // and the event stepper's sync-version wakeups.
    assert_identical(App::Fft, true);
}

#[test]
fn lu_steppers_agree_multiprocessor() {
    // Flag-based pipelined producer/consumer sync exercises the
    // flag-wait and release-fence (FlagSet) horizons, including the
    // event stepper's same-cycle flag visibility pull-in.
    assert_identical(App::Lu, true);
}

#[test]
fn em3d_steppers_agree_uniprocessor() {
    // Irregular-graph streaming: MSHR-saturated phases where the
    // scheduler must *not* skip (ready-but-retrying loads).
    assert_identical(App::Em3d, false);
}
