//! The stepper equality cube: every clock-advance strategy must be
//! invisible in the results. Each field of [`SimResult`] — cycle counts,
//! stall breakdowns, memory counters, latency stats, MSHR occupancy
//! histograms — must be bit-identical between strict per-cycle stepping,
//! event-horizon skipping, and discrete-event stepping (single-threaded
//! and sharded across 2 and 4 worker threads). The comparison goes
//! through `Debug` formatting, which prints floats with
//! shortest-roundtrip precision, so any bit-level divergence shows up.
//!
//! The same cube has an engine axis (the bytecode VM front-end must be
//! as invisible as the stepper; interp strict is the reference corner),
//! a tracing axis (attaching the observability tracer must change
//! nothing), and a protocol axis: every coherence machine
//! (directory/MESI/MOESI/Dragon) must itself be stepper-invisible — the
//! full historical cube runs under the directory default, and a reduced
//! leg set re-runs under each alternative protocol.

use mempar_sim::{
    run_program_observed, run_program_with, Engine, MachineConfig, Protocol, SimOptions, Stepper,
    Tracer,
};
use mempar_workloads::App;

fn options(stepper: Stepper, shards: usize, engine: Engine) -> SimOptions {
    SimOptions {
        stepper,
        shards,
        engine,
        protocol: Protocol::Directory,
    }
}

fn run_debug(app: App, scale: f64, mp: bool, opts: SimOptions) -> String {
    let w = app.build(scale);
    let nprocs = if mp { w.mp_procs.max(1) } else { 1 };
    let cfg = MachineConfig::base_simulated(nprocs, 64 * 1024);
    let mut mem = w.memory(nprocs);
    let r = run_program_with(&w.program, &mut mem, &cfg, opts);
    format!("{r:?}")
}

/// Same run with the observability tracer attached — tracing must be as
/// invisible as the stepper choice.
fn run_debug_traced(app: App, scale: f64, mp: bool, opts: SimOptions) -> String {
    let w = app.build(scale);
    let nprocs = if mp { w.mp_procs.max(1) } else { 1 };
    let cfg = MachineConfig::base_simulated(nprocs, 64 * 1024);
    let mut mem = w.memory(nprocs);
    let (r, _) = run_program_observed(
        &w.program,
        &mut mem,
        &cfg,
        opts,
        Tracer::with_capacity(1 << 16),
    );
    format!("{r:?}")
}

fn assert_identical(app: App, mp: bool) {
    // Multiprocessor strict legs are the expensive corner (16 cores
    // stepped every cycle on one host thread), so they run at a smaller
    // scale; the cube is about equality, not workload size.
    let scale = if mp { 0.03 } else { 0.05 };
    let strict = run_debug(
        app,
        scale,
        mp,
        options(Stepper::Strict, 1, Engine::Bytecode),
    );
    let ctx = |leg: &str, engine: Engine| {
        format!(
            "{} ({}, engine {engine}, {leg}) diverges from strict stepping",
            app.name(),
            if mp { "mp" } else { "up" }
        )
    };
    // The stepper and tracing axes, under the default (bytecode) engine.
    for stepper in [Stepper::Skip, Stepper::Event] {
        let leg = run_debug(app, scale, mp, options(stepper, 1, Engine::Bytecode));
        assert_eq!(
            leg,
            strict,
            "{}",
            ctx(&stepper.to_string(), Engine::Bytecode)
        );
        let traced = run_debug_traced(app, scale, mp, options(stepper, 1, Engine::Bytecode));
        assert_eq!(
            traced,
            strict,
            "{}",
            ctx(&format!("{stepper}+trace"), Engine::Bytecode)
        );
    }
    // Deterministic sharding: bit-identical at every thread count.
    for shards in [2, 4] {
        let leg = run_debug(
            app,
            scale,
            mp,
            options(Stepper::Event, shards, Engine::Bytecode),
        );
        assert_eq!(
            leg,
            strict,
            "{}",
            ctx(&format!("event, {shards} shards"), Engine::Bytecode)
        );
    }
    // The engine axis: the tree-walking interpreter must agree at the
    // strict corner (same driver, different front-end) and at the event
    // corner (engine x stepper interaction). Exhaustive engine
    // invisibility on the op-stream level is `tests/engine_diff.rs`'s
    // job; simulated-cycle invisibility needs only these two corners
    // plus `benchsim`'s per-run assertion.
    let strict_tw = run_debug(app, scale, mp, options(Stepper::Strict, 1, Engine::Interp));
    assert_eq!(strict_tw, strict, "{}", ctx("strict", Engine::Interp));
    let event_tw = run_debug(app, scale, mp, options(Stepper::Event, 1, Engine::Interp));
    assert_eq!(event_tw, strict, "{}", ctx("event", Engine::Interp));
}

/// The protocol axis of the cube: each alternative coherence machine has
/// its own cycle counts, but within a protocol every stepper, engine,
/// and shard count must still be bit-identical. Runs at a smaller scale
/// than the directory cube — the strict reference leg is the expensive
/// corner and there are three extra machines to cover.
fn assert_identical_per_protocol(app: App, mp: bool) {
    let scale = if mp { 0.02 } else { 0.03 };
    for protocol in [Protocol::Mesi, Protocol::Moesi, Protocol::Dragon] {
        let opts = |stepper, shards, engine| SimOptions {
            stepper,
            shards,
            engine,
            protocol,
        };
        let strict = run_debug(app, scale, mp, opts(Stepper::Strict, 1, Engine::Bytecode));
        let ctx = |leg: &str| {
            format!(
                "{} ({}, protocol {protocol}, {leg}) diverges from strict stepping",
                app.name(),
                if mp { "mp" } else { "up" }
            )
        };
        for stepper in [Stepper::Skip, Stepper::Event] {
            let leg = run_debug(app, scale, mp, opts(stepper, 1, Engine::Bytecode));
            assert_eq!(leg, strict, "{}", ctx(&stepper.to_string()));
        }
        let strict_tw = run_debug(app, scale, mp, opts(Stepper::Strict, 1, Engine::Interp));
        assert_eq!(strict_tw, strict, "{}", ctx("strict interp"));
        if mp {
            let sharded = run_debug(app, scale, mp, opts(Stepper::Event, 2, Engine::Bytecode));
            assert_eq!(sharded, strict, "{}", ctx("event, 2 shards"));
        }
    }
}

/// Hard-coded cycle counts recorded from the implementation *before*
/// the allocation-free memory-system fast path (flat directory table,
/// pooled coherence transactions, O(1) MSHR, precomputed routes,
/// lazily-drained completion bags) landed. The fast path's contract is
/// bit-identity, not approximation: every data structure swap on the
/// hot path must be observation-equivalent, so these exact numbers must
/// keep reproducing forever. A divergence here means a "performance"
/// change altered simulated timing — which is a correctness bug in this
/// codebase, however plausible the new numbers look.
#[test]
fn fast_path_matches_seed_golden_cycles() {
    let cycles = |scale: f64, shards: usize| {
        let w = App::Fft.build(scale);
        let nprocs = w.mp_procs.max(1);
        let cfg = MachineConfig::base_simulated(nprocs, 64 * 1024);
        let mut mem = w.memory(nprocs);
        run_program_with(
            &w.program,
            &mut mem,
            &cfg,
            options(Stepper::Event, shards, Engine::Bytecode),
        )
        .cycles
    };
    // fft-mp under the event stepper, as recorded from the pre-fast-path
    // tree (seed commit c928b48) and reverified after every hot-path
    // data-structure change in the fast-path series.
    assert_eq!(cycles(0.05, 1), 94_722, "fft-mp scale 0.05, 1 shard");
    assert_eq!(cycles(0.05, 2), 94_722, "fft-mp scale 0.05, 2 shards");
    assert_eq!(cycles(0.05, 4), 94_722, "fft-mp scale 0.05, 4 shards");
    assert_eq!(cycles(0.1, 1), 207_640, "fft-mp scale 0.1, 1 shard");
}

#[test]
fn latbench_steppers_agree() {
    // Pointer chase: the best case for skipping (window-full stalls on
    // dependent misses), so also the most likely to expose bulk-account
    // errors.
    assert_identical(App::Latbench, false);
}

#[test]
fn fft_steppers_agree_multiprocessor() {
    // Barrier-synchronized phases exercise the barrier-release horizon
    // and the event stepper's sync-version wakeups.
    assert_identical(App::Fft, true);
}

#[test]
fn lu_steppers_agree_multiprocessor() {
    // Flag-based pipelined producer/consumer sync exercises the
    // flag-wait and release-fence (FlagSet) horizons, including the
    // event stepper's same-cycle flag visibility pull-in.
    assert_identical(App::Lu, true);
}

#[test]
fn em3d_steppers_agree_uniprocessor() {
    // Irregular-graph streaming: MSHR-saturated phases where the
    // scheduler must *not* skip (ready-but-retrying loads).
    assert_identical(App::Em3d, false);
}

#[test]
fn latbench_steppers_agree_per_protocol() {
    // Dependent misses under each machine: MESI/Dragon's silent E -> M
    // upgrades and MOESI's Owned evictions must be stepper-invisible.
    assert_identical_per_protocol(App::Latbench, false);
}

#[test]
fn fft_steppers_agree_multiprocessor_per_protocol() {
    // Shared lines across barrier phases: invalidations (MESI/MOESI)
    // and bus updates (Dragon) ride the same event queue under every
    // stepper and shard count.
    assert_identical_per_protocol(App::Fft, true);
}

#[test]
fn lu_steppers_agree_multiprocessor_per_protocol() {
    // Producer/consumer flag sync is where protocol timing differences
    // are largest (the flag line ping-pongs); the cube must still agree.
    assert_identical_per_protocol(App::Lu, true);
}
