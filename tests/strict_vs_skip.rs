//! Event-horizon cycle skipping must be invisible in the results: every
//! field of [`SimResult`] — cycle counts, stall breakdowns, memory
//! counters, latency stats, MSHR occupancy histograms — must be
//! bit-identical to the strict build that steps the clock one cycle at a
//! time. The comparison goes through `Debug` formatting, which prints
//! floats with shortest-roundtrip precision, so any bit-level divergence
//! shows up.
//!
//! The same square has an engine axis: the bytecode VM front-end must be
//! as invisible as skipping and tracing, so every workload is also run
//! under both `--engine` legs (interp strict is the reference corner).

use mempar_sim::{
    run_program_observed, run_program_with, Engine, MachineConfig, SimOptions, Tracer,
};
use mempar_workloads::App;

fn run_debug(app: App, scale: f64, mp: bool, cycle_skip: bool, engine: Engine) -> String {
    let w = app.build(scale);
    let nprocs = if mp { w.mp_procs.max(1) } else { 1 };
    let cfg = MachineConfig::base_simulated(nprocs, 64 * 1024);
    let mut mem = w.memory(nprocs);
    let r = run_program_with(
        &w.program,
        &mut mem,
        &cfg,
        SimOptions { cycle_skip, engine },
    );
    format!("{r:?}")
}

/// Same run with the observability tracer attached — the third leg of
/// the determinism square: tracing must be as invisible as skipping.
fn run_debug_traced(app: App, scale: f64, mp: bool, cycle_skip: bool, engine: Engine) -> String {
    let w = app.build(scale);
    let nprocs = if mp { w.mp_procs.max(1) } else { 1 };
    let cfg = MachineConfig::base_simulated(nprocs, 64 * 1024);
    let mut mem = w.memory(nprocs);
    let (r, _) = run_program_observed(
        &w.program,
        &mut mem,
        &cfg,
        SimOptions { cycle_skip, engine },
        Tracer::with_capacity(1 << 16),
    );
    format!("{r:?}")
}

fn assert_identical(app: App, mp: bool) {
    let scale = 0.05;
    let strict = run_debug(app, scale, mp, false, Engine::Interp);
    for engine in [Engine::Interp, Engine::Bytecode] {
        let skip = run_debug(app, scale, mp, true, engine);
        assert_eq!(
            skip,
            strict,
            "{} ({}, engine {engine}) diverges between cycle-skip and strict stepping",
            app.name(),
            if mp { "mp" } else { "up" }
        );
        let traced = run_debug_traced(app, scale, mp, true, engine);
        assert_eq!(
            traced,
            strict,
            "{} ({}, engine {engine}) diverges when the tracer is attached",
            app.name(),
            if mp { "mp" } else { "up" }
        );
    }
    // Close the square: bytecode under strict stepping, too.
    let strict_vm = run_debug(app, scale, mp, false, Engine::Bytecode);
    assert_eq!(
        strict_vm,
        strict,
        "{} ({}) diverges between engines under strict stepping",
        app.name(),
        if mp { "mp" } else { "up" }
    );
}

#[test]
fn latbench_skip_matches_strict() {
    // Pointer chase: the best case for skipping (window-full stalls on
    // dependent misses), so also the most likely to expose bulk-account
    // errors.
    assert_identical(App::Latbench, false);
}

#[test]
fn fft_skip_matches_strict_multiprocessor() {
    // Barrier-synchronized phases exercise the barrier-release horizon.
    assert_identical(App::Fft, true);
}

#[test]
fn lu_skip_matches_strict_multiprocessor() {
    // Flag-based pipelined producer/consumer sync exercises the
    // flag-wait and release-fence (FlagSet) horizons.
    assert_identical(App::Lu, true);
}

#[test]
fn em3d_skip_matches_strict_uniprocessor() {
    // Irregular-graph streaming: MSHR-saturated phases where the
    // scheduler must *not* skip (ready-but-retrying loads).
    assert_identical(App::Em3d, false);
}
