//! Property-based tests on the coherence-protocol state machines.
//!
//! Each protocol oracle is driven with random legal event sequences
//! (read misses, writes, evictions — legality judged exactly the way
//! `MemSystem` judges it: reads only miss on `Invalid` lines, writes
//! take the silent-upgrade path when `write_hits` says so) while a tiny
//! reference model mirrors the outcome-application rules the memory
//! system uses. After every event the model and the oracle must agree,
//! and the classic single-writer invariants must hold:
//!
//! * at most one processor holds a dirty (`Modified`/`Owned`) copy of
//!   any line;
//! * a `Modified` or `Exclusive` copy is the *only* copy;
//! * Dragon never invalidates on a write (update lists instead);
//! * MESI never supplies dirty data cache-to-cache without writing
//!   memory back and downgrading the owner, while MOESI does exactly
//!   the opposite (the supplier keeps the line `Owned`);
//! * a cache-to-cache supplier actually holds the line;
//! * the oracle's population gauges match the model's holder counts.

use mempar_sim::{CoherenceProtocol, DataSource, LineState, Protocol};
use proptest::prelude::*;

const NPROCS: usize = 4;
const NLINES: u64 = 8;

/// The reference model: per-line, per-processor `LineState`, updated by
/// the same rules `MemSystem` applies to its tag arrays.
type Model = [[LineState; NPROCS]; NLINES as usize];

fn check_invariants(protocol: Protocol, proto: &dyn CoherenceProtocol, model: &Model, step: usize) {
    let mut lines = 0;
    let mut sharers = 0;
    for (line, procs) in model.iter().enumerate() {
        let dirty = procs.iter().filter(|s| s.is_dirty()).count();
        prop_assert!(
            dirty <= 1,
            "{protocol} step {step}: line {line} dirty in {dirty} caches: {procs:?}"
        );
        let holders = procs.iter().filter(|&&s| s != LineState::Invalid).count();
        for (p, &s) in procs.iter().enumerate() {
            if matches!(s, LineState::Modified | LineState::Exclusive) {
                prop_assert_eq!(
                    holders,
                    1,
                    "{} step {}: proc {} holds line {} {:?} alongside other copies: {:?}",
                    protocol,
                    step,
                    p,
                    line,
                    s,
                    procs
                );
            }
        }
        if holders > 0 {
            lines += 1;
            sharers += holders;
        }
    }
    prop_assert_eq!(
        proto.line_count(),
        lines,
        "{} step {}: oracle tracks {} lines, model holds {}",
        protocol,
        step,
        proto.line_count(),
        lines
    );
    prop_assert_eq!(
        proto.total_sharers(),
        sharers,
        "{} step {}: oracle counts {} sharers, model holds {}",
        protocol,
        step,
        proto.total_sharers(),
        sharers
    );
}

/// Drives one protocol through `ops`, mirroring `MemSystem`'s
/// outcome-application rules in `model` and checking invariants after
/// every event.
fn drive(protocol: Protocol, ops: &[(u8, usize, u64)]) {
    let mut proto = protocol.build();
    let mut model: Model = [[LineState::Invalid; NPROCS]; NLINES as usize];
    for (step, &(op, proc, line)) in ops.iter().enumerate() {
        let pre = model[line as usize];
        match op {
            // Read: the memory system consults the oracle only on a
            // miss; a valid copy is a pure cache hit.
            0 => {
                if pre[proc] != LineState::Invalid {
                    continue;
                }
                let out = proto.read_req(line, proc);
                prop_assert!(
                    !out.demote.contains(&proc),
                    "{protocol} step {step}: read demotes the requester"
                );
                match out.install {
                    LineState::Shared => {}
                    LineState::Exclusive => {
                        let others = pre
                            .iter()
                            .enumerate()
                            .any(|(p, &s)| p != proc && s != LineState::Invalid);
                        prop_assert!(
                            !others,
                            "{protocol} step {step}: read installs Exclusive over live copies"
                        );
                    }
                    s => prop_assert!(false, "{protocol} step {step}: read installs {s:?}"),
                }
                if let DataSource::CacheToCache { owner } = out.source {
                    prop_assert_ne!(
                        pre[owner],
                        LineState::Invalid,
                        "{} step {}: supplier {} does not hold line {}",
                        protocol,
                        step,
                        owner,
                        line
                    );
                    if pre[owner].is_dirty() {
                        match protocol {
                            // Illinois-MESI has no dirty-shared state:
                            // supplying dirty data must write memory
                            // back and downgrade the owner.
                            Protocol::Mesi | Protocol::Directory => prop_assert!(
                                out.memory_update,
                                "{protocol} step {step}: dirty supply without memory update"
                            ),
                            // MOESI/Dragon keep the supplier
                            // responsible (`Owned`); memory stays stale.
                            Protocol::Moesi | Protocol::Dragon => prop_assert!(
                                !out.memory_update,
                                "{protocol} step {step}: dirty supply updated memory"
                            ),
                        }
                    }
                    match model[line as usize][owner] {
                        LineState::Modified => {
                            model[line as usize][owner] = if out.memory_update {
                                LineState::Shared
                            } else {
                                LineState::Owned
                            };
                        }
                        LineState::Exclusive => {
                            model[line as usize][owner] = LineState::Shared;
                        }
                        _ => {}
                    }
                } else {
                    for &p in &out.demote {
                        if model[line as usize][p] == LineState::Exclusive {
                            model[line as usize][p] = LineState::Shared;
                        }
                    }
                }
                model[line as usize][proc] = out.install;
            }
            // Write: silent upgrade when the protocol says the held
            // state completes locally; otherwise a global transaction.
            1 => {
                if proto.write_hits(pre[proc]) {
                    if pre[proc] != LineState::Modified {
                        proto.silent_upgrade(line, proc);
                        model[line as usize][proc] = LineState::Modified;
                    }
                    continue;
                }
                let out = proto.write_req(line, proc);
                prop_assert!(
                    !out.invalidees.contains(&proc) && !out.updatees.contains(&proc),
                    "{protocol} step {step}: write targets the requester"
                );
                if protocol == Protocol::Dragon {
                    prop_assert!(
                        out.invalidees.is_empty(),
                        "{protocol} step {step}: write-update protocol invalidated {:?}",
                        out.invalidees
                    );
                    let mut others: Vec<usize> = pre
                        .iter()
                        .enumerate()
                        .filter(|&(p, &s)| p != proc && s != LineState::Invalid)
                        .map(|(p, _)| p)
                        .collect();
                    others.sort_unstable();
                    prop_assert_eq!(
                        out.updatees.clone(),
                        others,
                        "{} step {}: update list misses a live copy",
                        protocol,
                        step
                    );
                    prop_assert_eq!(
                        out.install,
                        if out.updatees.is_empty() {
                            LineState::Modified
                        } else {
                            LineState::Owned
                        },
                        "{} step {}: Dragon install state",
                        protocol,
                        step
                    );
                } else {
                    prop_assert!(
                        out.updatees.is_empty(),
                        "{protocol} step {step}: invalidation protocol sent updates"
                    );
                    prop_assert_eq!(
                        out.install,
                        LineState::Modified,
                        "{} step {}: write install state",
                        protocol,
                        step
                    );
                }
                if let DataSource::CacheToCache { owner } = out.source {
                    prop_assert_ne!(
                        pre[owner],
                        LineState::Invalid,
                        "{} step {}: write supplier {} does not hold line {}",
                        protocol,
                        step,
                        owner,
                        line
                    );
                }
                for &p in &out.invalidees {
                    model[line as usize][p] = LineState::Invalid;
                }
                for &p in &out.updatees {
                    if !matches!(
                        model[line as usize][p],
                        LineState::Invalid | LineState::Shared
                    ) {
                        model[line as usize][p] = LineState::Shared;
                    }
                }
                model[line as usize][proc] = out.install;
            }
            // Evict: only a held line can be evicted.
            _ => {
                if pre[proc] == LineState::Invalid {
                    continue;
                }
                proto.evict(line, proc);
                model[line as usize][proc] = LineState::Invalid;
            }
        }
        check_invariants(protocol, proto.as_ref(), &model, step);
    }
}

proptest! {
    /// Random legal event sequences against every protocol: the oracle
    /// must track the reference model exactly and never violate the
    /// single-writer invariants.
    #[test]
    fn protocol_oracles_match_reference_model(
        ops in proptest::collection::vec(
            (0u8..3, 0usize..NPROCS, 0u64..NLINES),
            1..100,
        ),
    ) {
        for protocol in Protocol::all() {
            drive(protocol, &ops);
        }
    }
}
