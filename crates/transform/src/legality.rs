//! Conservative data-dependence legality tests for the loop
//! transformations.
//!
//! The memory-parallelism framework (in `mempar-analysis`) is optimistic
//! by design — it estimates performance potential. Legality, as the paper
//! notes in Section 3.1, must use conventional conservative dependence
//! analysis; this module provides it for the subset of programs the IR
//! can express:
//!
//! * separable single-variable affine subscripts (GCD/offset distances);
//! * subscript **value-range disjointness** using loop bounds (proves the
//!   LU trailing submatrix independent of its pivot panels);
//! * **coupled two-variable subscripts** `c1·v1 + c2·v2 + k` with a
//!   bounded minor variable (proves FFT butterfly halves `2m·g + x` vs
//!   `2m·g + x + m` independent);
//!
//! with everything else treated as unanalyzable unless the loop is
//! explicitly marked parallel.

use mempar_ir::{
    AffineExpr, ArrayRef, Bound, DynIndex, Expr, Loop, Program, ScalarId, Stmt, VarId,
};

/// Known value ranges of loop variables (inclusive bounds), harvested
/// from constant/affine loop bounds along a nest.
#[derive(Debug, Clone, Default)]
pub struct VarRanges {
    entries: Vec<(VarId, i64, i64)>,
}

impl VarRanges {
    /// An empty range map (every variable unbounded).
    pub fn new() -> Self {
        Self::default()
    }

    /// Records `v ∈ [lo, hi]` (inclusive).
    pub fn insert(&mut self, v: VarId, lo: i64, hi: i64) {
        self.entries.retain(|&(w, _, _)| w != v);
        if lo <= hi {
            self.entries.push((v, lo, hi));
        }
    }

    /// The recorded range of `v`.
    pub fn get(&self, v: VarId) -> Option<(i64, i64)> {
        self.entries
            .iter()
            .find(|&&(w, _, _)| w == v)
            .map(|&(_, lo, hi)| (lo, hi))
    }

    /// Inclusive interval of an affine expression, when every variable is
    /// ranged.
    pub fn interval(&self, e: &AffineExpr) -> Option<(i64, i64)> {
        let mut min = e.constant_term();
        let mut max = e.constant_term();
        for (v, c) in e.terms() {
            let (lo, hi) = self.get(v)?;
            if c >= 0 {
                min += c * lo;
                max += c * hi;
            } else {
                min += c * hi;
                max += c * lo;
            }
        }
        Some((min, max))
    }
}

fn bound_interval(b: &Bound, r: &VarRanges) -> Option<(i64, i64)> {
    match b {
        Bound::Const(c) => Some((*c, *c)),
        Bound::Affine(e) => r.interval(e),
        Bound::Scalar(_) => None,
    }
}

/// Harvests variable ranges from the loops along `path` and every loop
/// nested in the final loop's body (half-open bounds become inclusive
/// `[lo, hi-1]`; unresolvable bounds leave the variable unbounded).
pub fn collect_ranges(prog: &Program, path: &crate::nest::NestPath) -> VarRanges {
    let mut ranges = VarRanges::new();
    let mut body: &[Stmt] = &prog.body;
    for &idx in &path.0 {
        let Some(Stmt::Loop(l)) = body.get(idx) else {
            return ranges;
        };
        add_loop_range(l, &mut ranges);
        body = &l.body;
    }
    add_body_ranges(body, &mut ranges);
    ranges
}

fn add_loop_range(l: &Loop, ranges: &mut VarRanges) {
    let lo = bound_interval(&l.lo, ranges);
    let hi = bound_interval(&l.hi, ranges);
    if let (Some((lo_min, _)), Some((_, hi_max))) = (lo, hi) {
        // Iteration values lie in [lo, hi-1]; for positive non-unit steps
        // (unrolled loops) the last value is lo + step*floor(span/step),
        // which matters when copies add constant offsets up to step-1.
        let mut hi_incl = hi_max - 1;
        if l.step > 1 && lo == hi {
            // Exact bounds (constants): tighten to the stride grid.
            if let (Some((lo_c, _)), Some((_, hi_c))) = (lo, hi) {
                let span = (hi_c - 1 - lo_c).max(0);
                hi_incl = lo_c + (span / l.step) * l.step;
            }
        } else if l.step > 1 {
            if let (Some((lo_c, lo_hi)), Some((_, hi_c))) = (lo, hi) {
                if lo_c == lo_hi {
                    let span = (hi_c - 1 - lo_c).max(0);
                    hi_incl = lo_c + (span / l.step) * l.step;
                }
            }
        }
        ranges.insert(l.var, lo_min, hi_incl);
    }
}

fn add_body_ranges(body: &[Stmt], ranges: &mut VarRanges) {
    for s in body {
        match s {
            Stmt::Loop(l) => {
                add_loop_range(l, ranges);
                add_body_ranges(&l.body, ranges);
            }
            Stmt::If {
                then_branch,
                else_branch,
                ..
            } => {
                add_body_ranges(then_branch, ranges);
                add_body_ranges(else_branch, ranges);
            }
            _ => {}
        }
    }
}

/// Result of testing one reference pair for a dependence.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PairDep {
    /// Proven independent.
    Independent,
    /// Dependent with the given per-variable distances (entries align
    /// with the queried variable list; `None` = unconstrained, '*').
    Distances(Vec<Option<i64>>),
    /// Could not analyze — must be assumed dependent in every direction.
    Unknown,
}

/// Computes the dependence between two same-array references with respect
/// to the loop variables `vars` (outermost first), using `ranges` for
/// value-based disjointness.
pub fn pair_dependence(
    prog: &Program,
    a: &ArrayRef,
    b: &ArrayRef,
    vars: &[VarId],
    ranges: &VarRanges,
) -> PairDep {
    if a.array != b.array {
        return PairDep::Independent;
    }
    if !a.is_affine() || !b.is_affine() {
        return PairDep::Unknown;
    }
    let decl = prog.array(a.array);
    debug_assert_eq!(a.indices.len(), decl.dims.len());
    let mut distances: Vec<Option<i64>> = vec![None; vars.len()];
    let mut constrained = vec![false; vars.len()];
    let mut unknown = false;

    let record = |vi: usize,
                  d: i64,
                  distances: &mut Vec<Option<i64>>,
                  constrained: &mut Vec<bool>|
     -> bool {
        match distances[vi] {
            Some(prev) if prev != d => false, // inconsistent: independent
            _ => {
                distances[vi] = Some(d);
                constrained[vi] = true;
                true
            }
        }
    };

    for (ia, ib) in a.indices.iter().zip(&b.indices) {
        let ea = &ia.affine;
        let eb = &ib.affine;
        // 1) Value-range disjointness: if this dimension's possible values
        //    never overlap, the references are independent outright.
        if let (Some((amin, amax)), Some((bmin, bmax))) = (ranges.interval(ea), ranges.interval(eb))
        {
            if amax < bmin || bmax < amin {
                return PairDep::Independent;
            }
        }
        // Residual (out-of-scope) variables must match symbolically.
        let residual_a: Vec<_> = ea.terms().filter(|(v, _)| !vars.contains(v)).collect();
        let residual_b: Vec<_> = eb.terms().filter(|(v, _)| !vars.contains(v)).collect();
        if residual_a != residual_b {
            unknown = true;
            continue;
        }
        let in_vars: Vec<VarId> = {
            let mut vs: Vec<VarId> = ea
                .terms()
                .chain(eb.terms())
                .map(|(v, _)| v)
                .filter(|v| vars.contains(v))
                .collect();
            vs.sort_unstable();
            vs.dedup();
            vs
        };
        let delta = ea.constant_term() - eb.constant_term();
        match in_vars.as_slice() {
            [] => {
                if delta != 0 {
                    return PairDep::Independent;
                }
            }
            [v] => {
                let (ca, cb) = (ea.coeff(*v), eb.coeff(*v));
                if ca != cb || ca == 0 {
                    unknown = true;
                    continue;
                }
                if delta % ca != 0 {
                    return PairDep::Independent;
                }
                let d = delta / ca;
                let vi = vars.iter().position(|x| x == v).expect("in vars");
                if !record(vi, d, &mut distances, &mut constrained) {
                    return PairDep::Independent;
                }
            }
            [v1, v2] => {
                // Coupled 2-variable subscript. Require matching coeffs.
                let (c1a, c1b) = (ea.coeff(*v1), eb.coeff(*v1));
                let (c2a, c2b) = (ea.coeff(*v2), eb.coeff(*v2));
                if c1a != c1b || c2a != c2b || c1a == 0 || c2a == 0 {
                    unknown = true;
                    continue;
                }
                // Order so |cmaj| >= |cmin|.
                let (vmaj, cmaj, vmin, cmin) = if c1a.abs() >= c2a.abs() {
                    (*v1, c1a, *v2, c2a)
                } else {
                    (*v2, c2a, *v1, c1a)
                };
                // Need the minor variable's iteration-difference range.
                let Some((lo2, hi2)) = ranges.get(vmin) else {
                    unknown = true;
                    continue;
                };
                let span = hi2 - lo2; // |D_min| <= span
                                      // cmaj*Dmaj + cmin*Dmin = delta with |Dmin| <= span.
                                      // Unique decomposition needs |cmin|*span*2 < 2*|cmaj|...
                                      // enumerate the few candidate Dmaj around delta/cmaj.
                let mut feasible: Vec<(i64, i64)> = Vec::new();
                let base = delta / cmaj;
                for q in (base - 2)..=(base + 2) {
                    let rem = delta - cmaj * q;
                    if rem % cmin == 0 {
                        let dmin = rem / cmin;
                        if dmin.abs() <= span {
                            feasible.push((q, dmin));
                        }
                    }
                }
                match feasible.len() {
                    0 => return PairDep::Independent,
                    1 => {
                        let (dmaj, dmin) = feasible[0];
                        let i_maj = vars.iter().position(|x| *x == vmaj).expect("in vars");
                        let i_min = vars.iter().position(|x| *x == vmin).expect("in vars");
                        if !record(i_maj, dmaj, &mut distances, &mut constrained)
                            || !record(i_min, dmin, &mut distances, &mut constrained)
                        {
                            return PairDep::Independent;
                        }
                    }
                    _ => {
                        unknown = true;
                        continue;
                    }
                }
            }
            _ => {
                unknown = true;
                continue;
            }
        }
    }
    if unknown {
        return PairDep::Unknown;
    }
    for (i, c) in constrained.iter().enumerate() {
        if !c {
            distances[i] = None;
        }
    }
    PairDep::Distances(distances)
}

/// Collects every array reference in `body` (recursively), tagged with
/// whether it is a write and the flattened index of its owning statement
/// (used to restrict carried dependences to intra-statement pairs, which
/// the jam's copy ordering preserves).
pub fn all_refs(body: &[Stmt]) -> Vec<(ArrayRef, bool, usize)> {
    let mut out = Vec::new();
    let mut stmt = 0usize;
    fn walk(body: &[Stmt], stmt: &mut usize, out: &mut Vec<(ArrayRef, bool, usize)>) {
        for s in body {
            match s {
                Stmt::Loop(l) => walk(&l.body, stmt, out),
                Stmt::If {
                    then_branch,
                    else_branch,
                    ..
                } => {
                    walk(then_branch, stmt, out);
                    walk(else_branch, stmt, out);
                }
                _ => {
                    let tag = *stmt;
                    s.visit_local_refs(&mut |r, w| out.push((r.clone(), w, tag)));
                    *stmt += 1;
                }
            }
        }
    }
    walk(body, &mut stmt, &mut out);
    out
}

fn expr_scalars(e: &Expr, out: &mut Vec<ScalarId>) {
    match e {
        Expr::Scalar(s) => out.push(*s),
        Expr::Load(r) => ref_scalars(r, out),
        Expr::Unary(_, a) => expr_scalars(a, out),
        Expr::Binary(_, a, b) => {
            expr_scalars(a, out);
            expr_scalars(b, out);
        }
        _ => {}
    }
}

fn ref_scalars(r: &ArrayRef, out: &mut Vec<ScalarId>) {
    for ix in &r.indices {
        match &ix.dynamic {
            Some(DynIndex::Scalar { scalar, .. }) => out.push(*scalar),
            Some(DynIndex::Indirect { inner, .. }) => ref_scalars(inner, out),
            None => {}
        }
    }
}

fn bound_scalars(b: &Bound, out: &mut Vec<ScalarId>) {
    if let Bound::Scalar(s) = b {
        out.push(*s);
    }
}

/// Every scalar accessed anywhere in `body` — expression reads,
/// assignment targets, dynamic indices and loop bounds. Fusion legality
/// needs the full access set of each body, not just its assignments.
pub fn touched_scalars(body: &[Stmt]) -> Vec<ScalarId> {
    let mut out = Vec::new();
    fn walk(body: &[Stmt], out: &mut Vec<ScalarId>) {
        for s in body {
            match s {
                Stmt::AssignArray { lhs, rhs } => {
                    ref_scalars(lhs, out);
                    expr_scalars(rhs, out);
                }
                Stmt::AssignScalar { lhs, rhs } => {
                    out.push(*lhs);
                    expr_scalars(rhs, out);
                }
                Stmt::Prefetch { target } => ref_scalars(target, out),
                Stmt::Loop(l) => {
                    bound_scalars(&l.lo, out);
                    bound_scalars(&l.hi, out);
                    walk(&l.body, out);
                }
                Stmt::If {
                    then_branch,
                    else_branch,
                    ..
                } => {
                    walk(then_branch, out);
                    walk(else_branch, out);
                }
                Stmt::Barrier | Stmt::FlagSet { .. } | Stmt::FlagWait { .. } => {}
            }
        }
    }
    walk(body, &mut out);
    out.sort_unstable();
    out.dedup();
    out
}

/// Scalar-dataflow precondition for jamming.
///
/// Private scalars (defined before use) are renamed per copy and carry no
/// cross-copy state. Any *shared* scalar that the body writes is only
/// safe when every access to it — reads, writes, and loop-bound reads —
/// sits in a single leaf statement: that is the recognized reduction
/// shape `s = s ⊕ e`, whose per-position copies the jam emits in
/// iteration order. Accesses spread across statements (e.g. `s = s + a[i]`
/// followed by `out[i] = s`) would be reordered by the position-major
/// emission and must reject the jam. Found by differential testing
/// (`crates/difftest`); see the regression test in `unroll.rs`.
fn scalar_chains_jammable(body: &[Stmt]) -> bool {
    // One entry per leaf statement: the set of scalars it touches.
    fn collect(body: &[Stmt], leaves: &mut Vec<Vec<ScalarId>>) {
        for s in body {
            let mut touched = Vec::new();
            match s {
                Stmt::AssignArray { lhs, rhs } => {
                    ref_scalars(lhs, &mut touched);
                    expr_scalars(rhs, &mut touched);
                }
                Stmt::AssignScalar { lhs, rhs } => {
                    touched.push(*lhs);
                    expr_scalars(rhs, &mut touched);
                }
                Stmt::Prefetch { target } => ref_scalars(target, &mut touched),
                Stmt::Loop(l) => {
                    bound_scalars(&l.lo, &mut touched);
                    bound_scalars(&l.hi, &mut touched);
                    leaves.push(std::mem::take(&mut touched));
                    collect(&l.body, leaves);
                    continue;
                }
                Stmt::If {
                    then_branch,
                    else_branch,
                    ..
                } => {
                    collect(then_branch, leaves);
                    collect(else_branch, leaves);
                    continue;
                }
                Stmt::Barrier | Stmt::FlagSet { .. } | Stmt::FlagWait { .. } => continue,
            }
            leaves.push(touched);
        }
    }
    let mut leaves = Vec::new();
    collect(body, &mut leaves);
    for &written in &crate::subst::assigned_scalars(body) {
        if crate::subst::first_access_is_def(body, written) {
            continue; // private: renamed per copy
        }
        let touching = leaves.iter().filter(|l| l.contains(&written)).count();
        if touching > 1 {
            return false;
        }
    }
    true
}

/// Whether it is legal to unroll-and-jam the loop over `target` whose
/// body is `body`, given the loop variables `inner_vars` of loops nested
/// inside it and the harvested `ranges`.
///
/// Legal when, for every pair of references to the same array with at
/// least one write, the pair is independent, not carried by `target`
/// (distance 0), or carried by `target` with all inner distances zero
/// (copies execute in source order inside the jammed body). Explicitly
/// parallel loops ([`mempar_ir::Loop::dist`]) are trusted to be
/// dependence-free across iterations, as the paper assumes for MST and
/// Mp3d.
pub fn can_unroll_and_jam(
    prog: &Program,
    body: &[Stmt],
    target: VarId,
    inner_vars: &[VarId],
    explicitly_parallel: bool,
    ranges: &VarRanges,
) -> bool {
    if crate::nest::contains_sync(body) {
        return false;
    }
    if explicitly_parallel {
        return true;
    }
    if !scalar_chains_jammable(body) {
        return false;
    }
    let refs = all_refs(body);
    let mut vars = vec![target];
    vars.extend_from_slice(inner_vars);
    for i in 0..refs.len() {
        for j in i..refs.len() {
            let (ra, wa, sa) = &refs[i];
            let (rb, wb, sb) = &refs[j];
            if !wa && !wb {
                continue;
            }
            match pair_dependence(prog, ra, rb, &vars, ranges) {
                PairDep::Independent => {}
                PairDep::Unknown => return false,
                PairDep::Distances(d) => {
                    let dt = d[0];
                    let inner_zero = d[1..].iter().all(|x| *x == Some(0));
                    let ok = match dt {
                        // Loop-independent pairs: the jam preserves
                        // intra-copy statement order.
                        Some(0) => true,
                        // Carried pairs survive only when no inner loop
                        // reorders them and both references sit in the
                        // same statement (the jam emits each statement
                        // position's copies in iteration order).
                        Some(_) | None => inner_zero && sa == sb,
                    };
                    if !ok {
                        return false;
                    }
                }
            }
        }
    }
    true
}

/// Whether interchanging the loop over `outer` with the directly nested
/// loop over `inner` is legal: no dependence with direction `(<, >)`
/// (i.e. distances `(positive, negative)` in (outer, inner)).
pub fn can_interchange(
    prog: &Program,
    body: &[Stmt],
    outer: VarId,
    inner: VarId,
    ranges: &VarRanges,
) -> bool {
    if crate::nest::contains_sync(body) {
        return false;
    }
    // Interchange permutes the iteration order, so scalar state woven
    // through multiple statements (e.g. a pointer chase feeding a store)
    // would observe a different update sequence. The same single-leaf
    // discipline that gates jamming applies; found by differential
    // testing (crates/difftest, seed 233).
    if !scalar_chains_jammable(body) {
        return false;
    }
    let refs = all_refs(body);
    for i in 0..refs.len() {
        for j in i..refs.len() {
            let (ra, wa, _) = &refs[i];
            let (rb, wb, _) = &refs[j];
            if !wa && !wb {
                continue;
            }
            match pair_dependence(prog, ra, rb, &[outer, inner], ranges) {
                PairDep::Independent => {}
                PairDep::Unknown => return false,
                PairDep::Distances(d) => {
                    let (o, n) = (d[0], d[1]);
                    let could_pos = matches!(o, Some(x) if x != 0) || o.is_none();
                    let could_neg = matches!(n, Some(x) if x != 0) || n.is_none();
                    if could_pos && could_neg {
                        if let (Some(a), Some(b)) = (o, n) {
                            if (a > 0 && b < 0) || (a < 0 && b > 0) {
                                return false;
                            }
                        } else {
                            return false;
                        }
                    }
                }
            }
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use mempar_ir::{AffineExpr, ProgramBuilder};

    struct Fixture {
        prog: Program,
        a: mempar_ir::ArrayId,
        j: VarId,
        i: VarId,
    }

    fn fixture() -> Fixture {
        let mut b = ProgramBuilder::new("f");
        let a = b.array_f64("a", &[64, 64]);
        let j = b.var("j");
        let i = b.var("i");
        Fixture {
            prog: b.finish(),
            a,
            j,
            i,
        }
    }

    fn r(f: &Fixture, ej: AffineExpr, ei: AffineExpr) -> ArrayRef {
        ArrayRef::new(
            f.a,
            vec![mempar_ir::Index::affine(ej), mempar_ir::Index::affine(ei)],
        )
    }

    #[test]
    fn same_ref_distance_zero() {
        let f = fixture();
        let x = r(&f, AffineExpr::var(f.j), AffineExpr::var(f.i));
        match pair_dependence(&f.prog, &x, &x.clone(), &[f.j, f.i], &VarRanges::new()) {
            PairDep::Distances(d) => assert_eq!(d, vec![Some(0), Some(0)]),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn offset_gives_distance() {
        let f = fixture();
        let x = r(&f, AffineExpr::var(f.j), AffineExpr::var(f.i));
        let y = r(
            &f,
            AffineExpr::var(f.j).offset(-1),
            AffineExpr::var(f.i).offset(2),
        );
        match pair_dependence(&f.prog, &x, &y, &[f.j, f.i], &VarRanges::new()) {
            PairDep::Distances(d) => assert_eq!(d, vec![Some(1), Some(-2)]),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn gcd_test_proves_independence() {
        let f = fixture();
        let x = r(&f, AffineExpr::var(f.j), AffineExpr::scaled_var(f.i, 2, 0));
        let y = r(&f, AffineExpr::var(f.j), AffineExpr::scaled_var(f.i, 2, 1));
        assert_eq!(
            pair_dependence(&f.prog, &x, &y, &[f.j, f.i], &VarRanges::new()),
            PairDep::Independent
        );
    }

    #[test]
    fn range_disjointness_proves_lu_panels_independent() {
        // Write A[r, c] with r in [16, 63]; read A[kk, c] with kk in
        // [8, 15]: the rows never meet (the LU trailing-update pattern).
        let f = fixture();
        let rr = f.prog.clone();
        let _ = rr;
        let kk = VarId::from_raw(9);
        let c = VarId::from_raw(10);
        let rvar = VarId::from_raw(11);
        let write = ArrayRef::new(
            f.a,
            vec![
                mempar_ir::Index::affine(AffineExpr::var(rvar)),
                mempar_ir::Index::affine(AffineExpr::var(c)),
            ],
        );
        let read = ArrayRef::new(
            f.a,
            vec![
                mempar_ir::Index::affine(AffineExpr::var(kk)),
                mempar_ir::Index::affine(AffineExpr::var(c)),
            ],
        );
        let mut ranges = VarRanges::new();
        ranges.insert(rvar, 16, 63);
        ranges.insert(kk, 8, 15);
        ranges.insert(c, 16, 63);
        assert_eq!(
            pair_dependence(&f.prog, &write, &read, &[kk, c], &ranges),
            PairDep::Independent
        );
        // Without ranges the same pair is unanalyzable.
        assert_eq!(
            pair_dependence(&f.prog, &write, &read, &[kk, c], &VarRanges::new()),
            PairDep::Unknown
        );
    }

    #[test]
    fn coupled_butterfly_halves_independent() {
        // FFT stage m=4: A[r, 8g + x + 4] vs A[r, 8g' + x'], x in [0,3]:
        // the halves never alias.
        let f = fixture();
        let g = VarId::from_raw(20);
        let x = VarId::from_raw(21);
        let e_hi = AffineExpr::scaled_var(g, 8, 4).add(&AffineExpr::var(x));
        let e_lo = AffineExpr::scaled_var(g, 8, 0).add(&AffineExpr::var(x));
        let hi_ref = r(&f, AffineExpr::var(f.j), e_hi);
        let lo_ref = r(&f, AffineExpr::var(f.j), e_lo);
        let mut ranges = VarRanges::new();
        ranges.insert(x, 0, 3);
        ranges.insert(g, 0, 7);
        assert_eq!(
            pair_dependence(&f.prog, &hi_ref, &lo_ref, &[g, x], &ranges),
            PairDep::Independent
        );
        // Same half against itself: distance (0, 0).
        match pair_dependence(&f.prog, &hi_ref, &hi_ref.clone(), &[g, x], &ranges) {
            PairDep::Distances(d) => assert_eq!(d, vec![Some(0), Some(0)]),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn coupled_without_ranges_is_unknown() {
        let f = fixture();
        let g = VarId::from_raw(20);
        let x = VarId::from_raw(21);
        let e = AffineExpr::scaled_var(g, 8, 0).add(&AffineExpr::var(x));
        let a_ref = r(&f, AffineExpr::var(f.j), e);
        assert_eq!(
            pair_dependence(&f.prog, &a_ref, &a_ref.clone(), &[g, x], &VarRanges::new()),
            PairDep::Unknown
        );
    }

    #[test]
    fn transpose_pattern_unknown() {
        let f = fixture();
        let x = r(&f, AffineExpr::var(f.j), AffineExpr::var(f.i));
        let y = r(&f, AffineExpr::var(f.i), AffineExpr::var(f.j));
        assert_eq!(
            pair_dependence(&f.prog, &x, &y, &[f.j, f.i], &VarRanges::new()),
            PairDep::Unknown
        );
    }

    fn stencil_program(write_off: i64) -> (Program, Vec<Stmt>, VarId, VarId) {
        let mut b = ProgramBuilder::new("st");
        let a = b.array_f64("a", &[16, 16]);
        let j = b.var("j");
        let i = b.var("i");
        b.for_const(j, 1, 15, |b| {
            b.for_const(i, 1, 15, |b| {
                let up = b.load(
                    a,
                    &[b.idx_e(AffineExpr::var(j).offset(write_off)), b.idx(i)],
                );
                b.assign_array(a, &[b.idx(j), b.idx(i)], up);
            });
        });
        let p = b.finish();
        let Stmt::Loop(outer) = &p.body[0] else {
            panic!()
        };
        let body = outer.body.clone();
        (p, body, j, i)
    }

    #[test]
    fn uaj_legal_for_independent_rows() {
        let (p, body, j, i) = stencil_program(-1);
        assert!(can_unroll_and_jam(
            &p,
            &body,
            j,
            &[i],
            false,
            &VarRanges::new()
        ));
    }

    #[test]
    fn uaj_respects_parallel_annotation() {
        let mut b = ProgramBuilder::new("par");
        let a = b.array_i64("ind", &[16]);
        let d = b.array_f64("d", &[64]);
        let j = b.var("j");
        b.for_dist(j, 0, 16, mempar_ir::Dist::Block, |b| {
            let inner = ArrayRef::new(a, vec![mempar_ir::Index::affine(AffineExpr::var(j))]);
            let v = b.load_ref(ArrayRef::new(d, vec![mempar_ir::Index::indirect(inner)]));
            b.assign_ref(
                ArrayRef::new(d, vec![mempar_ir::Index::affine(AffineExpr::var(j))]),
                v,
            );
        });
        let p = b.finish();
        let Stmt::Loop(l) = &p.body[0] else { panic!() };
        assert!(!can_unroll_and_jam(
            &p,
            &l.body,
            j,
            &[],
            false,
            &VarRanges::new()
        ));
        assert!(can_unroll_and_jam(
            &p,
            &l.body,
            j,
            &[],
            true,
            &VarRanges::new()
        ));
    }

    #[test]
    fn uaj_blocked_by_sync() {
        let mut b = ProgramBuilder::new("s");
        let j = b.var("j");
        b.for_const(j, 0, 4, |b| b.barrier());
        let p = b.finish();
        let Stmt::Loop(l) = &p.body[0] else { panic!() };
        assert!(!can_unroll_and_jam(
            &p,
            &l.body,
            j,
            &[],
            true,
            &VarRanges::new()
        ));
    }

    #[test]
    fn interchange_legal_for_forward_stencil() {
        let (p, body, j, i) = stencil_program(-1);
        assert!(can_interchange(&p, &body, j, i, &VarRanges::new()));
    }

    #[test]
    fn interchange_blocked_by_skewed_dependence() {
        let mut b = ProgramBuilder::new("skew");
        let a = b.array_f64("a", &[16, 16]);
        let j = b.var("j");
        let i = b.var("i");
        b.for_const(j, 1, 15, |b| {
            b.for_const(i, 0, 15, |b| {
                let up = b.load(
                    a,
                    &[
                        b.idx_e(AffineExpr::var(j).offset(-1)),
                        b.idx_e(AffineExpr::var(i).offset(1)),
                    ],
                );
                b.assign_array(a, &[b.idx(j), b.idx(i)], up);
            });
        });
        let p = b.finish();
        let Stmt::Loop(outer) = &p.body[0] else {
            panic!()
        };
        assert!(!can_interchange(&p, &outer.body, j, i, &VarRanges::new()));
    }

    #[test]
    fn reads_never_conflict() {
        let mut b = ProgramBuilder::new("ro");
        let a = b.array_f64("a", &[16, 16]);
        let s = b.scalar_f64("s", 0.0);
        let j = b.var("j");
        let i = b.var("i");
        b.for_const(j, 0, 16, |b| {
            b.for_const(i, 0, 16, |b| {
                let x = b.load(a, &[b.idx(j), b.idx(i)]);
                let y = b.load(a, &[b.idx(i), b.idx(j)]);
                let acc = b.scalar(s);
                let e1 = b.add(x, y);
                let e = b.add(acc, e1);
                b.assign_scalar(s, e);
            });
        });
        let p = b.finish();
        let Stmt::Loop(outer) = &p.body[0] else {
            panic!()
        };
        assert!(can_unroll_and_jam(
            &p,
            &outer.body,
            j,
            &[i],
            false,
            &VarRanges::new()
        ));
        assert!(can_interchange(&p, &outer.body, j, i, &VarRanges::new()));
    }

    #[test]
    fn collect_ranges_walks_nest() {
        let mut b = ProgramBuilder::new("cr");
        let a = b.array_f64("a", &[32, 32]);
        let j = b.var("j");
        let i = b.var("i");
        b.for_const(j, 2, 30, |b| {
            b.for_affine(i, AffineExpr::var(j), AffineExpr::konst(32), |b| {
                let v = b.load(a, &[b.idx(j), b.idx(i)]);
                b.assign_array(a, &[b.idx(j), b.idx(i)], v);
            });
        });
        let p = b.finish();
        let ranges = collect_ranges(&p, &crate::nest::NestPath::top(0));
        assert_eq!(ranges.get(j), Some((2, 29)));
        // i's lower bound is affine in j: conservative superset [2, 31].
        assert_eq!(ranges.get(i), Some((2, 31)));
    }
}
