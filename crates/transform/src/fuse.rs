//! Loop fusion — the extension the paper's conclusion proposes:
//! "we can seek to resolve memory-parallelism recurrences for unnested
//! loops by fusing otherwise unrelated loops."
//!
//! Two adjacent, compatible loops each carrying a cache-line recurrence
//! (e.g. two independent streaming reductions) fuse into one loop whose
//! body holds both miss streams, doubling the independent misses per
//! window without any enclosing loop to unroll-and-jam.

use mempar_ir::{AffineExpr, Loop, Program, Stmt};

use crate::legality::{collect_ranges, pair_dependence, PairDep};
use crate::nest::{container_mut, contains_sync, loop_at, NestPath};
use crate::subst::subst_body;
use crate::TransformError;

/// Fuses the loop at `path` with its *immediately following* sibling
/// loop. Both must be unit-step loops with identical constant bounds and
/// no internal synchronization; the second loop's body is rewritten onto
/// the first's loop variable.
///
/// Fusion is legal when no dependence flows *backward*: for every pair of
/// references (one a write) between the first loop's body and the
/// second's, iterations may only depend on same-or-earlier iterations
/// (distance ≥ 0 when expressed on the fused variable).
///
/// # Errors
/// [`TransformError::NotALoop`] when `path` or its next sibling is not a
/// loop; [`TransformError::UnsupportedStep`] / `NotPerfectNest` for
/// shape mismatches; [`TransformError::IllegalDependence`] when fusion
/// would reverse a dependence.
pub fn fuse_next(prog: &mut Program, path: &NestPath) -> Result<(), TransformError> {
    let first = loop_at(prog, path).ok_or(TransformError::NotALoop)?.clone();
    let mut sibling = path.0.clone();
    let last = sibling.pop().ok_or(TransformError::NotALoop)?;
    sibling.push(last + 1);
    let second_path = NestPath(sibling);
    let second = loop_at(prog, &second_path)
        .ok_or(TransformError::NotALoop)?
        .clone();

    if first.step != 1 || second.step != 1 {
        return Err(TransformError::UnsupportedStep);
    }
    if first.lo.as_const().is_none()
        || first.lo != second.lo
        || first.hi != second.hi
        || first.dist != second.dist
    {
        return Err(TransformError::NotPerfectNest);
    }
    if contains_sync(&first.body) || contains_sync(&second.body) {
        return Err(TransformError::SyncInBody);
    }

    // Rename the second loop's variable onto the first's.
    let renamed = subst_body(&second.body, second.var, &AffineExpr::var(first.var));

    // Scalar dataflow: in the original program every iteration of loop 1
    // precedes every iteration of loop 2, so a scalar written by one
    // loop and accessed by the other observes all-before or all-after
    // semantics that interleaving destroys (e.g. loop 1 stores `f`,
    // loop 2 accumulates into `f`). Reject any shared scalar with a
    // write on either side; found by differential testing
    // (crates/difftest, seed 265).
    let writes1 = crate::subst::assigned_scalars(&first.body);
    let writes2 = crate::subst::assigned_scalars(&renamed);
    let touched1 = crate::legality::touched_scalars(&first.body);
    let touched2 = crate::legality::touched_scalars(&renamed);
    if writes1.iter().any(|s| touched2.contains(s)) || writes2.iter().any(|s| touched1.contains(s))
    {
        return Err(TransformError::IllegalDependence);
    }

    // Legality: cross-loop dependences must not reverse. In the original
    // program every iteration of loop 1 precedes every iteration of
    // loop 2; after fusion, iteration i of loop 2 runs before iteration
    // i+1 of loop 1. A dependence from loop-1's iteration i1 to loop-2's
    // iteration i2 is preserved iff i2 >= i1 (distance >= 0); any
    // unanalyzable pair rejects.
    let ranges = collect_ranges(prog, path);
    let refs1 = crate::legality::all_refs(&first.body);
    let refs2 = crate::legality::all_refs(&renamed);
    for (r1, w1, _) in &refs1 {
        for (r2, w2, _) in &refs2 {
            if !w1 && !w2 {
                continue;
            }
            match pair_dependence(prog, r1, r2, &[first.var], &ranges) {
                PairDep::Independent => {}
                PairDep::Unknown => return Err(TransformError::IllegalDependence),
                PairDep::Distances(d) => {
                    // Distance convention: d = i1 - i2 for a dependence
                    // between instances touching the same element; the
                    // flow is legal after fusion only when the loop-2
                    // instance is not earlier than the loop-1 instance.
                    match d[0] {
                        Some(dd) if dd <= 0 => {}
                        _ => return Err(TransformError::IllegalDependence),
                    }
                }
            }
        }
    }

    let fused = Loop {
        var: first.var,
        lo: first.lo.clone(),
        hi: first.hi.clone(),
        step: 1,
        dist: first.dist,
        body: {
            let mut b = first.body.clone();
            b.extend(renamed);
            b
        },
    };
    let (container, idx) = container_mut(prog, path).ok_or(TransformError::NotALoop)?;
    container[idx] = Stmt::Loop(fused);
    container.remove(idx + 1);
    Ok(())
}

/// Greedily fuses runs of adjacent compatible top-level loops in `prog`.
/// Returns how many fusions were performed. This implements the
/// conclusion's suggestion mechanically: afterwards the ordinary
/// clustering driver sees the combined miss streams in one loop.
pub fn fuse_adjacent_loops(prog: &mut Program) -> usize {
    let mut fused = 0;
    let mut idx = 0;
    while idx + 1 < prog.body.len() {
        let here = NestPath::top(idx);
        if matches!(prog.body[idx], Stmt::Loop(_)) && fuse_next(prog, &here).is_ok() {
            fused += 1;
            // Try fusing the next sibling into the same loop.
            continue;
        }
        idx += 1;
    }
    fused
}

#[cfg(test)]
mod tests {
    use super::*;
    use mempar_ir::{run_single, ArrayData, ProgramBuilder, SimMem};

    /// Two independent streaming reductions over different arrays — the
    /// "unrelated loops" case from the conclusion.
    fn two_reductions(n: usize) -> (Program, [mempar_ir::ArrayId; 4]) {
        let mut b = ProgramBuilder::new("two");
        let a = b.array_f64("a", &[n]);
        let c = b.array_f64("c", &[n]);
        let oa = b.array_f64("oa", &[1]);
        let oc = b.array_f64("oc", &[1]);
        let s1 = b.scalar_f64("s1", 0.0);
        let s2 = b.scalar_f64("s2", 0.0);
        let i = b.var("i");
        let j = b.var("j");
        b.for_const(i, 0, n as i64, |b| {
            let v = b.load(a, &[b.idx(i)]);
            let acc = b.scalar(s1);
            let e = b.add(acc, v);
            b.assign_scalar(s1, e);
        });
        b.for_const(j, 0, n as i64, |b| {
            let v = b.load(c, &[b.idx(j)]);
            let acc = b.scalar(s2);
            let e = b.add(acc, v);
            b.assign_scalar(s2, e);
        });
        let v1 = b.scalar(s1);
        b.assign_array(oa, &[b.idx_e(AffineExpr::konst(0))], v1);
        let v2 = b.scalar(s2);
        b.assign_array(oc, &[b.idx_e(AffineExpr::konst(0))], v2);
        (b.finish(), [a, c, oa, oc])
    }

    fn run(p: &Program, ids: [mempar_ir::ArrayId; 4], n: usize) -> (Vec<f64>, Vec<f64>) {
        let mut mem = SimMem::new(p, 1);
        mem.set_array(ids[0], ArrayData::F64((0..n).map(|x| x as f64).collect()));
        mem.set_array(
            ids[1],
            ArrayData::F64((0..n).map(|x| (2 * x) as f64).collect()),
        );
        run_single(p, &mut mem);
        (mem.read_f64(ids[2]), mem.read_f64(ids[3]))
    }

    #[test]
    fn fuses_independent_reductions() {
        let n = 64;
        let (mut p, ids) = two_reductions(n);
        let want = run(&p, ids, n);
        fuse_next(&mut p, &NestPath::top(0)).expect("independent loops fuse");
        assert_eq!(
            p.body.iter().filter(|s| matches!(s, Stmt::Loop(_))).count(),
            1,
            "one fused loop remains"
        );
        assert_eq!(run(&p, ids, n), want);
        // The fused body carries both miss streams.
        let Stmt::Loop(l) = &p.body[0] else { panic!() };
        assert_eq!(l.body.len(), 2);
    }

    #[test]
    fn fuse_adjacent_handles_runs() {
        let n = 32;
        let (mut p, ids) = two_reductions(n);
        let want = run(&p, ids, n);
        assert_eq!(fuse_adjacent_loops(&mut p), 1);
        assert_eq!(run(&p, ids, n), want);
    }

    #[test]
    fn rejects_backward_dependence() {
        // Loop 1 reads b[i+1]; loop 2 writes b[i]: after fusion iteration
        // i of loop 2 would clobber what loop-1's iteration i+1 still
        // needs... in the original, ALL of loop 1 runs first.
        let n = 16;
        let mut b = ProgramBuilder::new("bad");
        let arr = b.array_f64("b", &[n + 1]);
        let out = b.array_f64("out", &[n]);
        let i = b.var("i");
        let j = b.var("j");
        b.for_const(i, 0, n as i64, |b| {
            let v = b.load(arr, &[b.idx_e(AffineExpr::var(i).offset(1))]);
            b.assign_array(out, &[b.idx(i)], v);
        });
        b.for_const(j, 0, n as i64, |b| {
            let c = b.constf(5.0);
            b.assign_array(arr, &[b.idx(j)], c);
        });
        let mut p = b.finish();
        assert_eq!(
            fuse_next(&mut p, &NestPath::top(0)),
            Err(TransformError::IllegalDependence)
        );
    }

    #[test]
    fn forward_dependence_is_fine() {
        // Loop 1 writes b[i]; loop 2 reads b[i]: distance 0, legal.
        let n = 16;
        let mut b = ProgramBuilder::new("fwd");
        let arr = b.array_f64("b", &[n]);
        let out = b.array_f64("out", &[n]);
        let i = b.var("i");
        let j = b.var("j");
        b.for_const(i, 0, n as i64, |b| {
            let c = b.constf(5.0);
            b.assign_array(arr, &[b.idx(i)], c);
        });
        b.for_const(j, 0, n as i64, |b| {
            let v = b.load(arr, &[b.idx(j)]);
            b.assign_array(out, &[b.idx(j)], v);
        });
        let mut p = b.finish();
        fuse_next(&mut p, &NestPath::top(0)).expect("forward dep fuses");
        let mut mem = SimMem::new(&p, 1);
        run_single(&p, &mut mem);
        assert!(mem.read_f64(out).iter().all(|&v| v == 5.0));
    }

    #[test]
    fn rejects_mismatched_bounds() {
        let mut b = ProgramBuilder::new("mm");
        let a = b.array_f64("a", &[32]);
        let i = b.var("i");
        let j = b.var("j");
        b.for_const(i, 0, 16, |b| {
            let c = b.constf(1.0);
            b.assign_array(a, &[b.idx(i)], c);
        });
        b.for_const(j, 0, 20, |b| {
            let c = b.constf(2.0);
            b.assign_array(a, &[b.idx(j)], c);
        });
        let mut p = b.finish();
        assert_eq!(
            fuse_next(&mut p, &NestPath::top(0)),
            Err(TransformError::NotPerfectNest)
        );
    }
}
