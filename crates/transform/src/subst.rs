//! Substitution machinery: rewriting loop variables and renaming scalars
//! inside statements — the mechanical core of unrolling transformations.

use mempar_ir::{
    AffineExpr, ArrayRef, BinOp, Bound, Cond, DynIndex, Expr, Index, Loop, ScalarId, Stmt, VarId,
};

/// Converts an affine expression into an equivalent [`Expr`] tree
/// (integer arithmetic over loop variables).
pub fn affine_to_expr(e: &AffineExpr) -> Expr {
    let mut acc: Option<Expr> = None;
    for (v, c) in e.terms() {
        let term = if c == 1 {
            Expr::LoopVar(v)
        } else {
            Expr::bin(BinOp::Mul, Expr::ConstI(c), Expr::LoopVar(v))
        };
        acc = Some(match acc {
            None => term,
            Some(a) => Expr::bin(BinOp::Add, a, term),
        });
    }
    let k = e.constant_term();
    match acc {
        None => Expr::ConstI(k),
        Some(a) if k == 0 => a,
        Some(a) => Expr::bin(BinOp::Add, a, Expr::ConstI(k)),
    }
}

/// Converts a loop bound into an equivalent [`Expr`].
pub fn bound_to_expr(b: &Bound) -> Expr {
    match b {
        Bound::Const(c) => Expr::ConstI(*c),
        Bound::Affine(e) => affine_to_expr(e),
        Bound::Scalar(s) => Expr::Scalar(*s),
    }
}

/// Substitutes `v := repl` in an index.
fn subst_index(ix: &Index, v: VarId, repl: &AffineExpr) -> Index {
    Index {
        affine: ix.affine.subst(v, repl),
        dynamic: ix.dynamic.as_ref().map(|d| match d {
            DynIndex::Scalar { scalar, scale } => DynIndex::Scalar {
                scalar: *scalar,
                scale: *scale,
            },
            DynIndex::Indirect { inner, scale } => DynIndex::Indirect {
                inner: Box::new(subst_ref(inner, v, repl)),
                scale: *scale,
            },
        }),
    }
}

/// Substitutes `v := repl` in an array reference.
pub fn subst_ref(r: &ArrayRef, v: VarId, repl: &AffineExpr) -> ArrayRef {
    ArrayRef {
        array: r.array,
        indices: r
            .indices
            .iter()
            .map(|ix| subst_index(ix, v, repl))
            .collect(),
    }
}

/// Substitutes `v := repl` in an expression. `LoopVar(v)` occurrences
/// become integer arithmetic over the replacement.
pub fn subst_expr(e: &Expr, v: VarId, repl: &AffineExpr) -> Expr {
    match e {
        Expr::ConstF(_) | Expr::ConstI(_) | Expr::Scalar(_) => e.clone(),
        Expr::LoopVar(w) => {
            if *w == v {
                affine_to_expr(repl)
            } else {
                e.clone()
            }
        }
        Expr::Load(r) => Expr::Load(subst_ref(r, v, repl)),
        Expr::Unary(op, a) => Expr::un(*op, subst_expr(a, v, repl)),
        Expr::Binary(op, a, b) => Expr::bin(*op, subst_expr(a, v, repl), subst_expr(b, v, repl)),
    }
}

fn subst_bound(b: &Bound, v: VarId, repl: &AffineExpr) -> Bound {
    match b {
        Bound::Affine(e) => Bound::from(e.subst(v, repl)),
        other => other.clone(),
    }
}

/// Substitutes `v := repl` throughout a statement (recursively).
pub fn subst_stmt(s: &Stmt, v: VarId, repl: &AffineExpr) -> Stmt {
    match s {
        Stmt::AssignArray { lhs, rhs } => Stmt::AssignArray {
            lhs: subst_ref(lhs, v, repl),
            rhs: subst_expr(rhs, v, repl),
        },
        Stmt::AssignScalar { lhs, rhs } => Stmt::AssignScalar {
            lhs: *lhs,
            rhs: subst_expr(rhs, v, repl),
        },
        Stmt::Loop(l) => Stmt::Loop(Loop {
            var: l.var,
            lo: subst_bound(&l.lo, v, repl),
            hi: subst_bound(&l.hi, v, repl),
            step: l.step,
            dist: l.dist,
            body: subst_body(&l.body, v, repl),
        }),
        Stmt::If {
            cond,
            then_branch,
            else_branch,
        } => Stmt::If {
            cond: Cond {
                lhs: cond.lhs.subst(v, repl),
                op: cond.op,
            },
            then_branch: subst_body(then_branch, v, repl),
            else_branch: subst_body(else_branch, v, repl),
        },
        Stmt::Barrier => Stmt::Barrier,
        Stmt::FlagSet { idx } => Stmt::FlagSet {
            idx: idx.subst(v, repl),
        },
        Stmt::FlagWait { idx } => Stmt::FlagWait {
            idx: idx.subst(v, repl),
        },
        Stmt::Prefetch { target } => Stmt::Prefetch {
            target: subst_ref(target, v, repl),
        },
    }
}

/// Substitutes throughout a statement list.
pub fn subst_body(body: &[Stmt], v: VarId, repl: &AffineExpr) -> Vec<Stmt> {
    body.iter().map(|s| subst_stmt(s, v, repl)).collect()
}

/// Renames scalar `from` to `to` in an expression.
pub fn rename_scalar_expr(e: &Expr, from: ScalarId, to: ScalarId) -> Expr {
    match e {
        Expr::Scalar(s) if *s == from => Expr::Scalar(to),
        Expr::ConstF(_) | Expr::ConstI(_) | Expr::LoopVar(_) | Expr::Scalar(_) => e.clone(),
        Expr::Load(r) => Expr::Load(rename_scalar_ref(r, from, to)),
        Expr::Unary(op, a) => Expr::un(*op, rename_scalar_expr(a, from, to)),
        Expr::Binary(op, a, b) => Expr::bin(
            *op,
            rename_scalar_expr(a, from, to),
            rename_scalar_expr(b, from, to),
        ),
    }
}

fn rename_scalar_ref(r: &ArrayRef, from: ScalarId, to: ScalarId) -> ArrayRef {
    ArrayRef {
        array: r.array,
        indices: r
            .indices
            .iter()
            .map(|ix| Index {
                affine: ix.affine.clone(),
                dynamic: ix.dynamic.as_ref().map(|d| match d {
                    DynIndex::Scalar { scalar, scale } => DynIndex::Scalar {
                        scalar: if *scalar == from { to } else { *scalar },
                        scale: *scale,
                    },
                    DynIndex::Indirect { inner, scale } => DynIndex::Indirect {
                        inner: Box::new(rename_scalar_ref(inner, from, to)),
                        scale: *scale,
                    },
                }),
            })
            .collect(),
    }
}

/// Renames scalar `from` to `to` throughout a statement.
pub fn rename_scalar_stmt(s: &Stmt, from: ScalarId, to: ScalarId) -> Stmt {
    match s {
        Stmt::AssignArray { lhs, rhs } => Stmt::AssignArray {
            lhs: rename_scalar_ref(lhs, from, to),
            rhs: rename_scalar_expr(rhs, from, to),
        },
        Stmt::AssignScalar { lhs, rhs } => Stmt::AssignScalar {
            lhs: if *lhs == from { to } else { *lhs },
            rhs: rename_scalar_expr(rhs, from, to),
        },
        Stmt::Loop(l) => Stmt::Loop(Loop {
            var: l.var,
            lo: rename_scalar_bound(&l.lo, from, to),
            hi: rename_scalar_bound(&l.hi, from, to),
            step: l.step,
            dist: l.dist,
            body: l
                .body
                .iter()
                .map(|x| rename_scalar_stmt(x, from, to))
                .collect(),
        }),
        Stmt::If {
            cond,
            then_branch,
            else_branch,
        } => Stmt::If {
            cond: cond.clone(),
            then_branch: then_branch
                .iter()
                .map(|x| rename_scalar_stmt(x, from, to))
                .collect(),
            else_branch: else_branch
                .iter()
                .map(|x| rename_scalar_stmt(x, from, to))
                .collect(),
        },
        other => other.clone(),
    }
}

fn rename_scalar_bound(b: &Bound, from: ScalarId, to: ScalarId) -> Bound {
    match b {
        Bound::Scalar(s) if *s == from => Bound::Scalar(to),
        other => other.clone(),
    }
}

/// Scalars *assigned* anywhere in `body` (recursively).
pub fn assigned_scalars(body: &[Stmt]) -> Vec<ScalarId> {
    let mut out = Vec::new();
    fn walk(body: &[Stmt], out: &mut Vec<ScalarId>) {
        for s in body {
            match s {
                Stmt::AssignScalar { lhs, .. } if !out.contains(lhs) => {
                    out.push(*lhs);
                }
                Stmt::Loop(l) => walk(&l.body, out),
                Stmt::If {
                    then_branch,
                    else_branch,
                    ..
                } => {
                    walk(then_branch, out);
                    walk(else_branch, out);
                }
                _ => {}
            }
        }
    }
    walk(body, &mut out);
    out
}

/// True when the first access to `scalar` in `body` (walking statements
/// in order, descending into loops and guards) is a definition — i.e. the
/// scalar is iteration-private and must be renamed per unroll copy.
/// Scalars read before being written (accumulators) carry values across
/// iterations and must *not* be renamed.
pub fn first_access_is_def(body: &[Stmt], scalar: ScalarId) -> bool {
    fn expr_reads(e: &Expr, scalar: ScalarId) -> bool {
        match e {
            Expr::Scalar(s) => *s == scalar,
            Expr::Load(r) => ref_reads(r, scalar),
            Expr::Unary(_, a) => expr_reads(a, scalar),
            Expr::Binary(_, a, b) => expr_reads(a, scalar) || expr_reads(b, scalar),
            _ => false,
        }
    }
    fn ref_reads(r: &ArrayRef, scalar: ScalarId) -> bool {
        r.indices.iter().any(|ix| match &ix.dynamic {
            Some(DynIndex::Scalar { scalar: s, .. }) => *s == scalar,
            Some(DynIndex::Indirect { inner, .. }) => ref_reads(inner, scalar),
            None => false,
        })
    }
    /// Returns Some(true) if first access is a def, Some(false) if a use,
    /// None if not accessed.
    fn walk(body: &[Stmt], scalar: ScalarId) -> Option<bool> {
        for s in body {
            match s {
                Stmt::AssignScalar { lhs, rhs } => {
                    if expr_reads(rhs, scalar) {
                        return Some(false);
                    }
                    if *lhs == scalar {
                        return Some(true);
                    }
                }
                Stmt::AssignArray { lhs, rhs }
                    if (expr_reads(rhs, scalar) || ref_reads(lhs, scalar)) => {
                        return Some(false);
                    }
                Stmt::Loop(l) => {
                    if let Bound::Scalar(s) = &l.lo {
                        if *s == scalar {
                            return Some(false);
                        }
                    }
                    if let Bound::Scalar(s) = &l.hi {
                        if *s == scalar {
                            return Some(false);
                        }
                    }
                    if let Some(r) = walk(&l.body, scalar) {
                        return Some(r);
                    }
                }
                Stmt::If { then_branch, else_branch, .. }
                    // Conservative: a def under a guard may not execute;
                    // treat guard-first access as a use (do not privatize).
                    if (walk(then_branch, scalar).is_some()
                        || walk(else_branch, scalar).is_some())
                    => {
                        return Some(false);
                    }
                _ => {}
            }
        }
        None
    }
    walk(body, scalar) == Some(true)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mempar_ir::ProgramBuilder;

    #[test]
    fn affine_to_expr_roundtrip_values() {
        let v = VarId::from_raw(0);
        let e = AffineExpr::scaled_var(v, 3, -7);
        let expr = affine_to_expr(&e);
        // Evaluate the Expr by hand for v = 5: 3*5 - 7 = 8.
        fn eval(e: &Expr, val: i64) -> i64 {
            match e {
                Expr::ConstI(c) => *c,
                Expr::LoopVar(_) => val,
                Expr::Binary(BinOp::Add, a, b) => eval(a, val) + eval(b, val),
                Expr::Binary(BinOp::Mul, a, b) => eval(a, val) * eval(b, val),
                _ => panic!("unexpected node"),
            }
        }
        assert_eq!(eval(&expr, 5), 8);
        assert_eq!(affine_to_expr(&AffineExpr::konst(4)), Expr::ConstI(4));
    }

    #[test]
    fn subst_rewrites_refs_and_exprs() {
        let mut b = ProgramBuilder::new("t");
        let a = b.array_f64("a", &[8, 8]);
        let j = b.var("j");
        let i = b.var("i");
        b.for_const(j, 0, 8, |b| {
            b.for_const(i, 0, 8, |b| {
                let v = b.load(a, &[b.idx(j), b.idx(i)]);
                b.assign_array(a, &[b.idx(j), b.idx(i)], v);
            });
        });
        let p = b.finish();
        let Stmt::Loop(outer) = &p.body[0] else {
            panic!()
        };
        let Stmt::Loop(inner) = &outer.body[0] else {
            panic!()
        };
        // j := j + 2
        let repl = AffineExpr::var(j).offset(2);
        let s2 = subst_stmt(&inner.body[0], j, &repl);
        let Stmt::AssignArray { lhs, .. } = &s2 else {
            panic!()
        };
        assert_eq!(lhs.indices[0].affine.constant_term(), 2);
        assert_eq!(lhs.indices[0].affine.coeff(j), 1);
    }

    #[test]
    fn rename_scalar_in_stmt() {
        let mut b = ProgramBuilder::new("t");
        let s0 = b.scalar_f64("x", 0.0);
        let one = b.constf(1.0);
        let x = b.scalar(s0);
        let sum = b.add(x, one);
        b.assign_scalar(s0, sum);
        let p = b.finish();
        let s1 = ScalarId::from_raw(99);
        let renamed = rename_scalar_stmt(&p.body[0], s0, s1);
        let Stmt::AssignScalar { lhs, rhs } = &renamed else {
            panic!()
        };
        assert_eq!(*lhs, s1);
        assert_eq!(rename_scalar_expr(rhs, s1, s0), {
            let Stmt::AssignScalar { rhs, .. } = &p.body[0] else {
                panic!()
            };
            rhs.clone()
        });
    }

    #[test]
    fn privatization_classification() {
        // p = head; use p  -> first access is def: private.
        let mut b = ProgramBuilder::new("t");
        let head = b.scalar_i64("head", 0);
        let pp = b.scalar_i64("p", 0);
        let acc = b.scalar_f64("acc", 0.0);
        let data = b.array_f64("data", &[8]);
        let h = b.scalar(head);
        b.assign_scalar(pp, h);
        let v = b.load_ref(mempar_ir::ArrayRef::new(
            data,
            vec![mempar_ir::Index::scalar(pp)],
        ));
        let a0 = b.scalar(acc);
        let sum = b.add(a0, v);
        b.assign_scalar(acc, sum);
        let p = b.finish();
        assert!(first_access_is_def(&p.body, pp), "p initialized before use");
        assert!(
            !first_access_is_def(&p.body, acc),
            "accumulator reads first"
        );
        assert!(!first_access_is_def(&p.body, head), "head only read");
        let assigned = assigned_scalars(&p.body);
        assert!(assigned.contains(&pp) && assigned.contains(&acc));
        assert!(!assigned.contains(&head));
    }
}
