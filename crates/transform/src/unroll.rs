//! Unroll-and-jam (Section 3.2) and inner-loop unrolling (Section 3.3).

use mempar_ir::{AffineExpr, BinOp, Bound, ElemType, Expr, Loop, Program, Stmt};

use crate::legality::{can_unroll_and_jam, collect_ranges};
use crate::nest::{container_mut, contains_sync, loop_at, NestPath};
use crate::subst::{
    assigned_scalars, bound_to_expr, first_access_is_def, rename_scalar_stmt, subst_body,
};
use crate::{Legality, TransformError};

/// Where the pieces of an unrolled loop ended up.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UnrollResult {
    /// Path to the main (unrolled) loop.
    pub main: NestPath,
    /// Path to the postlude loop of leftover iterations, if one was
    /// needed.
    pub postlude: Option<NestPath>,
}

/// Applies **unroll-and-jam** with the given degree to the loop at
/// `path`: the loop is unrolled `degree` times and the copies of each
/// directly nested loop are fused (jammed) into one. Leftover iterations
/// run in an untransformed postlude (Section 2.2).
///
/// Iteration-private scalars (defined before use in the body, e.g. chased
/// pointers) are renamed per copy; cross-iteration scalars (accumulators)
/// are left shared, which keeps copies sequentially dependent through
/// them — exactly as source-level unrolling would.
///
/// Nested loops whose bounds differ between copies (variable trip counts,
/// as in MST's hash chains) are fused up to the *minimum* of their
/// bounds, with per-copy remainder loops — the paper's treatment of
/// variable inner-loop lengths.
///
/// # Errors
///
/// Returns an error when the target is not a step-1 loop, when the body
/// contains synchronization, or when the conservative dependence test
/// cannot prove the jam legal (loops marked parallel are trusted).
pub fn unroll_and_jam(
    prog: &mut Program,
    path: &NestPath,
    degree: u32,
) -> Result<UnrollResult, TransformError> {
    unroll_and_jam_with(prog, path, degree, Legality::Enforce)
}

/// [`unroll_and_jam`] with an explicit [`Legality`] mode. With
/// [`Legality::Bypass`] the dependence test is skipped (structural checks
/// still apply) so a testing harness can force rejected applications and
/// observe the damage.
pub fn unroll_and_jam_with(
    prog: &mut Program,
    path: &NestPath,
    degree: u32,
    legality: Legality,
) -> Result<UnrollResult, TransformError> {
    if degree <= 1 {
        return Ok(UnrollResult {
            main: path.clone(),
            postlude: None,
        });
    }
    let l = loop_at(prog, path).ok_or(TransformError::NotALoop)?;
    if l.step != 1 {
        return Err(TransformError::UnsupportedStep);
    }
    let inner_vars: Vec<_> = collect_loop_vars(&l.body);
    let ranges = collect_ranges(prog, path);
    if legality.enforced()
        && !can_unroll_and_jam(prog, &l.body, l.var, &inner_vars, l.dist.is_some(), &ranges)
    {
        return Err(TransformError::IllegalDependence);
    }
    let l = l.clone();
    let d = degree as i64;

    // Unrolled copies with per-copy renaming of private scalars.
    let private: Vec<_> = assigned_scalars(&l.body)
        .into_iter()
        .filter(|&s| first_access_is_def(&l.body, s))
        .collect();
    let mut copies: Vec<Vec<Stmt>> = Vec::with_capacity(degree as usize);
    for k in 0..d {
        let mut body = subst_body(&l.body, l.var, &AffineExpr::var(l.var).offset(k));
        if k > 0 {
            for &s in &private {
                let decl = prog.scalar(s).clone();
                let fresh = prog.fresh_scalar(format!("{}_u{k}", decl.name), decl.elem);
                prog.scalars[fresh.index()].init_bits = decl.init_bits;
                body = body
                    .iter()
                    .map(|st| rename_scalar_stmt(st, s, fresh))
                    .collect();
            }
        }
        copies.push(body);
    }

    let jammed = jam(prog, copies)?;

    // Bound bookkeeping: main loop runs lo .. t (a multiple of `degree`
    // past lo), postlude runs t .. hi.
    let needs_postlude = match (l.lo.as_const(), l.hi.as_const()) {
        (Some(lo), Some(hi)) => (hi - lo).max(0) % d != 0,
        _ => true,
    };
    if needs_postlude {
        return unroll_and_jam_with_postlude(prog, path, degree, l, jammed);
    }
    let main = Loop {
        var: l.var,
        lo: l.lo.clone(),
        hi: l.hi.clone(),
        step: d,
        dist: l.dist,
        body: jammed,
    };
    let (body_list, idx) = container_mut(prog, path).ok_or(TransformError::NotALoop)?;
    body_list[idx] = Stmt::Loop(main);
    Ok(UnrollResult {
        main: path.clone(),
        postlude: None,
    })
}

/// The postlude-carrying variant (split out to keep borrows simple).
fn unroll_and_jam_with_postlude(
    prog: &mut Program,
    path: &NestPath,
    degree: u32,
    l: Loop,
    jammed: Vec<Stmt>,
) -> Result<UnrollResult, TransformError> {
    let d = degree as i64;
    let t = prog.fresh_scalar(format!("uaj_t_{}", prog.var_name(l.var)), ElemType::I64);
    let lo_e = bound_to_expr(&l.lo);
    let hi_e = bound_to_expr(&l.hi);
    // t = lo + d * ((hi - lo) / d); integer division truncates.
    let span = Expr::bin(BinOp::Sub, hi_e, lo_e.clone());
    let whole = Expr::bin(BinOp::Div, span, Expr::ConstI(d));
    let scaled = Expr::bin(BinOp::Mul, Expr::ConstI(d), whole);
    let t_expr = Expr::bin(BinOp::Add, lo_e, scaled);
    let prelude = Stmt::AssignScalar {
        lhs: t,
        rhs: t_expr,
    };

    let main = Loop {
        var: l.var,
        lo: l.lo.clone(),
        hi: Bound::Scalar(t),
        step: d,
        dist: l.dist,
        body: jammed,
    };
    let postlude = Loop {
        var: l.var,
        lo: Bound::Scalar(t),
        hi: l.hi.clone(),
        step: 1,
        dist: l.dist,
        body: l.body.clone(),
    };
    let (body_list, idx) = container_mut(prog, path).ok_or(TransformError::NotALoop)?;
    body_list[idx] = Stmt::Loop(main);
    body_list.insert(idx + 1, Stmt::Loop(postlude));
    body_list.insert(idx, prelude);

    let mut parent = path.0.clone();
    let last = parent.pop().expect("paths are non-empty");
    let main_path = NestPath([parent.clone(), vec![last + 1]].concat());
    let post_path = NestPath([parent, vec![last + 2]].concat());
    Ok(UnrollResult {
        main: main_path,
        postlude: Some(post_path),
    })
}

/// Fuses the per-copy bodies: non-loop statements are emitted copy-major
/// per position; loops at the same position are jammed (min-jammed when
/// bounds differ).
fn jam(prog: &mut Program, copies: Vec<Vec<Stmt>>) -> Result<Vec<Stmt>, TransformError> {
    let len = copies[0].len();
    debug_assert!(copies.iter().all(|c| c.len() == len));
    let mut out = Vec::new();
    // Transpose access: position-major.
    let mut copies: Vec<Vec<Option<Stmt>>> = copies
        .into_iter()
        .map(|c| c.into_iter().map(Some).collect())
        .collect();
    for p in 0..len {
        let is_loop = matches!(copies[0][p], Some(Stmt::Loop(_)));
        if !is_loop {
            for c in copies.iter_mut() {
                out.push(c[p].take().expect("statement visited once"));
            }
            continue;
        }
        let loops: Vec<Loop> = copies
            .iter_mut()
            .map(|c| match c[p].take() {
                Some(Stmt::Loop(l)) => l,
                _ => unreachable!("copies are structural clones"),
            })
            .collect();
        jam_loops(prog, loops, &mut out)?;
    }
    Ok(out)
}

/// Jams the copies of one nested loop.
fn jam_loops(
    prog: &mut Program,
    loops: Vec<Loop>,
    out: &mut Vec<Stmt>,
) -> Result<(), TransformError> {
    let first = &loops[0];
    let same_bounds = loops
        .iter()
        .all(|l| l.lo == first.lo && l.hi == first.hi && l.step == first.step);
    if same_bounds {
        // Recursive jam: deeper same-structure loops fuse too, so an
        // outer-outer unroll still brings its copies' innermost
        // statements into one loop body (Carr & Kennedy's multi-level
        // unroll-and-jam).
        let (var, lo, hi, step, dist) = (
            first.var,
            first.lo.clone(),
            first.hi.clone(),
            first.step,
            first.dist,
        );
        let body = jam(prog, loops.into_iter().map(|l| l.body).collect())?;
        out.push(Stmt::Loop(Loop {
            var,
            lo,
            hi,
            step,
            dist,
            body,
        }));
        return Ok(());
    }
    // Min-jam: requires equal lower bounds and unit steps.
    if loops.iter().any(|l| l.step != 1 || l.lo != first.lo) {
        return Err(TransformError::UnjammableInnerLoop);
    }
    if loops.iter().any(|l| contains_sync(&l.body)) {
        return Err(TransformError::SyncInBody);
    }
    let m = prog.fresh_scalar(
        format!("jam_min_{}", prog.var_name(first.var)),
        ElemType::I64,
    );
    let mut min_expr = bound_to_expr(&loops[0].hi);
    for l in &loops[1..] {
        min_expr = Expr::bin(BinOp::Min, min_expr, bound_to_expr(&l.hi));
    }
    out.push(Stmt::AssignScalar {
        lhs: m,
        rhs: min_expr,
    });
    let mut fused_body = Vec::new();
    for l in &loops {
        fused_body.extend(l.body.clone());
    }
    out.push(Stmt::Loop(Loop {
        var: first.var,
        lo: first.lo.clone(),
        hi: Bound::Scalar(m),
        step: 1,
        dist: first.dist,
        body: fused_body,
    }));
    // Per-copy remainders continue from the fused minimum.
    for l in loops {
        out.push(Stmt::Loop(Loop {
            var: l.var,
            lo: Bound::Scalar(m),
            hi: l.hi,
            step: 1,
            dist: l.dist,
            body: l.body,
        }));
    }
    Ok(())
}

/// Unrolls the loop at `path` in place (no jamming): the body is repeated
/// `degree` times with adjusted indices, preserving execution order
/// exactly — always legal. Used for window-constraint resolution
/// (Section 3.3).
pub fn inner_unroll(
    prog: &mut Program,
    path: &NestPath,
    degree: u32,
) -> Result<UnrollResult, TransformError> {
    if degree <= 1 {
        return Ok(UnrollResult {
            main: path.clone(),
            postlude: None,
        });
    }
    let l = loop_at(prog, path).ok_or(TransformError::NotALoop)?.clone();
    if l.step != 1 {
        return Err(TransformError::UnsupportedStep);
    }
    let d = degree as i64;
    let mut body = Vec::new();
    for k in 0..d {
        body.extend(subst_body(
            &l.body,
            l.var,
            &AffineExpr::var(l.var).offset(k),
        ));
    }
    let exact = match (l.lo.as_const(), l.hi.as_const()) {
        (Some(lo), Some(hi)) => (hi - lo).max(0) % d == 0,
        _ => false,
    };
    if exact {
        let lm = loop_at_mut_ok(prog, path)?;
        lm.body = body;
        lm.step = d;
        return Ok(UnrollResult {
            main: path.clone(),
            postlude: None,
        });
    }
    unroll_and_jam_with_postlude(prog, path, degree, l.clone(), body)
}

fn loop_at_mut_ok<'p>(
    prog: &'p mut Program,
    path: &NestPath,
) -> Result<&'p mut Loop, TransformError> {
    crate::nest::loop_at_mut(prog, path).ok_or(TransformError::NotALoop)
}

fn collect_loop_vars(body: &[Stmt]) -> Vec<mempar_ir::VarId> {
    let mut out = Vec::new();
    fn walk(body: &[Stmt], out: &mut Vec<mempar_ir::VarId>) {
        for s in body {
            match s {
                Stmt::Loop(l) => {
                    out.push(l.var);
                    walk(&l.body, out);
                }
                Stmt::If {
                    then_branch,
                    else_branch,
                    ..
                } => {
                    walk(then_branch, out);
                    walk(else_branch, out);
                }
                _ => {}
            }
        }
    }
    walk(body, &mut out);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::nest::innermost_loops;
    use mempar_ir::{run_single, ArrayData, ProgramBuilder, SimMem};

    /// Builds the Figure 2(a) traversal writing `out[j] = sum(a[j][*])`.
    fn fig2a(n: usize) -> (Program, mempar_ir::ArrayId, mempar_ir::ArrayId) {
        let mut b = ProgramBuilder::new("fig2a");
        let a = b.array_f64("a", &[n, n]);
        let out = b.array_f64("out", &[n]);
        let s = b.scalar_f64("sum", 0.0);
        let j = b.var("j");
        let i = b.var("i");
        b.for_const(j, 0, n as i64, |b| {
            let zero = b.constf(0.0);
            b.assign_scalar(s, zero);
            b.for_const(i, 0, n as i64, |b| {
                let v = b.load(a, &[b.idx(j), b.idx(i)]);
                let acc = b.scalar(s);
                let e = b.add(acc, v);
                b.assign_scalar(s, e);
            });
            let fin = b.scalar(s);
            b.assign_array(out, &[b.idx(j)], fin);
        });
        (b.finish(), a, out)
    }

    fn run_fingerprint(p: &Program, a: mempar_ir::ArrayId, n: usize) -> Vec<f64> {
        let mut mem = SimMem::new(p, 1);
        mem.set_array(
            a,
            ArrayData::F64((0..n * n).map(|x| (x % 17) as f64).collect()),
        );
        run_single(p, &mut mem);
        mem.read_f64(mempar_ir::ArrayId::from_raw(1))
    }

    #[test]
    fn uaj_preserves_semantics_even_division() {
        let (mut p, a, _) = fig2a(16);
        let base = run_fingerprint(&p, a, 16);
        let r = unroll_and_jam(&mut p, &NestPath::top(0), 4).expect("legal");
        assert!(r.postlude.is_none(), "16 % 4 == 0: no postlude");
        let clustered = run_fingerprint(&p, a, 16);
        assert_eq!(base, clustered);
    }

    #[test]
    fn uaj_preserves_semantics_with_postlude() {
        let (mut p, a, _) = fig2a(19);
        let base = run_fingerprint(&p, a, 19);
        let r = unroll_and_jam(&mut p, &NestPath::top(0), 4).expect("legal");
        assert!(r.postlude.is_some(), "19 % 4 != 0: postlude required");
        let clustered = run_fingerprint(&p, a, 19);
        assert_eq!(base, clustered);
    }

    #[test]
    fn uaj_jams_inner_loops() {
        let (mut p, _, _) = fig2a(16);
        unroll_and_jam(&mut p, &NestPath::top(0), 4).expect("legal");
        // The outer loop's body should contain exactly one inner loop
        // (the jam) with 4x the statements.
        let outer = loop_at(&p, &NestPath::top(0)).expect("main loop");
        let inner_count = outer
            .body
            .iter()
            .filter(|s| matches!(s, Stmt::Loop(_)))
            .count();
        assert_eq!(inner_count, 1, "4 inner copies fused into one");
        let Stmt::Loop(inner) = outer
            .body
            .iter()
            .find(|s| matches!(s, Stmt::Loop(_)))
            .expect("inner loop")
        else {
            unreachable!()
        };
        assert_eq!(inner.body.len(), 4, "4 copies x 1 statement");
        assert_eq!(outer.step, 4);
    }

    #[test]
    fn uaj_renames_private_scalars() {
        let (mut p, _, _) = fig2a(16);
        let before = p.scalars.len();
        unroll_and_jam(&mut p, &NestPath::top(0), 4).expect("legal");
        // `sum` is defined (zeroed) before use: 3 extra copies.
        assert_eq!(p.scalars.len(), before + 3);
    }

    #[test]
    fn uaj_degree_one_is_noop() {
        let (mut p, _, _) = fig2a(8);
        let before = p.clone();
        let r = unroll_and_jam(&mut p, &NestPath::top(0), 1).expect("noop");
        assert_eq!(p, before);
        assert_eq!(r.main, NestPath::top(0));
    }

    #[test]
    fn uaj_min_jams_variable_inner_loops() {
        // for j: { len = lens[j]; p = starts[j];
        //          for k in 0..len { sum[j] += data[p]; p = next[p] } }
        let n = 12usize;
        let mut b = ProgramBuilder::new("chains");
        let lens = b.array_i64("lens", &[n]);
        let starts = b.array_i64("starts", &[n]);
        let next = b.array_i64("next", &[64]);
        let data = b.array_f64("data", &[64]);
        let sums = b.array_f64("sums", &[n]);
        let len_s = b.scalar_i64("len", 0);
        let p_s = b.scalar_i64("p", 0);
        let j = b.var("j");
        let k = b.var("k");
        b.for_const(j, 0, n as i64, |b| {
            let lv = b.load(lens, &[b.idx(j)]);
            b.assign_scalar(len_s, lv);
            let sv = b.load(starts, &[b.idx(j)]);
            b.assign_scalar(p_s, sv);
            b.for_scalar(k, 0, len_s, |b| {
                let d = b.load_ref(mempar_ir::ArrayRef::new(
                    data,
                    vec![mempar_ir::Index::scalar(p_s)],
                ));
                let old = b.load(sums, &[b.idx(j)]);
                let e = b.add(old, d);
                b.assign_array(sums, &[b.idx(j)], e);
                let nx = b.load_ref(mempar_ir::ArrayRef::new(
                    next,
                    vec![mempar_ir::Index::scalar(p_s)],
                ));
                b.assign_scalar(p_s, nx);
            });
        });
        // The outer loop is parallel in spirit (distinct sums[j]); our
        // conservative test cannot see that through the irregular refs,
        // so mark it parallel the way the paper does for MST.
        let mut p = b.finish();
        {
            let Stmt::Loop(l) = &mut p.body[0] else {
                panic!()
            };
            l.dist = Some(mempar_ir::Dist::Block);
        }

        // Reference run.
        let mk_mem = |p: &Program| {
            let mut mem = SimMem::new(p, 1);
            mem.set_array(lens, ArrayData::I64((0..n as i64).map(|x| x % 5).collect()));
            mem.set_array(
                starts,
                ArrayData::I64((0..n as i64).map(|x| (x * 7) % 64).collect()),
            );
            mem.set_array(
                next,
                ArrayData::I64((0..64).map(|x| (x + 13) % 64).collect()),
            );
            mem.set_array(data, ArrayData::F64((0..64).map(|x| x as f64).collect()));
            mem
        };
        let mut mem = mk_mem(&p);
        run_single(&p, &mut mem);
        let base = mem.read_f64(sums);

        let r = unroll_and_jam(&mut p, &NestPath::top(0), 3).expect("min-jam");
        assert!(r.postlude.is_none(), "12 % 3 == 0");
        let main = loop_at(&p, &r.main).expect("main");
        // Copy-private scalars renamed: len/p for copies 1 and 2.
        assert!(p.scalars.len() >= 2 + 4);
        // Structure: 6 scalar loads/assigns, min assign, fused loop, 3 remainders.
        let loops: Vec<&Loop> = main
            .body
            .iter()
            .filter_map(|s| if let Stmt::Loop(l) = s { Some(l) } else { None })
            .collect();
        assert_eq!(loops.len(), 4, "one fused + three remainder loops");

        let mut mem2 = mk_mem(&p);
        run_single(&p, &mut mem2);
        assert_eq!(mem2.read_f64(sums), base, "min-jam preserves results");
    }

    #[test]
    fn uaj_rejects_illegal_and_sync() {
        // Backward-carried dependence with negative inner distance:
        // a[j][i] = a[j-1][i+1].
        let mut b = ProgramBuilder::new("skew");
        let a = b.array_f64("a", &[8, 8]);
        let j = b.var("j");
        let i = b.var("i");
        b.for_const(j, 1, 8, |b| {
            b.for_const(i, 0, 7, |b| {
                let v = b.load(
                    a,
                    &[
                        b.idx_e(AffineExpr::var(j).offset(-1)),
                        b.idx_e(AffineExpr::var(i).offset(1)),
                    ],
                );
                b.assign_array(a, &[b.idx(j), b.idx(i)], v);
            });
        });
        let mut p = b.finish();
        assert_eq!(
            unroll_and_jam(&mut p, &NestPath::top(0), 2),
            Err(TransformError::IllegalDependence)
        );
    }

    #[test]
    fn inner_unroll_preserves_semantics() {
        let (mut p, a, _) = fig2a(10);
        let base = run_fingerprint(&p, a, 10);
        // Unroll the inner (innermost) loop by 4 (10 % 4 != 0: postlude).
        let inner = innermost_loops(&p)[0].clone();
        let r = inner_unroll(&mut p, &inner, 4).expect("always legal");
        assert!(r.postlude.is_some());
        assert_eq!(run_fingerprint(&p, a, 10), base);
    }

    #[test]
    fn inner_unroll_exact_division_in_place() {
        let (mut p, a, _) = fig2a(16);
        let base = run_fingerprint(&p, a, 16);
        let inner = innermost_loops(&p)[0].clone();
        let r = inner_unroll(&mut p, &inner, 4).expect("legal");
        assert!(r.postlude.is_none());
        let l = loop_at(&p, &inner).expect("in place");
        assert_eq!(l.step, 4);
        assert_eq!(l.body.len(), 4);
        assert_eq!(run_fingerprint(&p, a, 16), base);
    }

    #[test]
    fn uaj_on_distributed_loop_keeps_coverage() {
        // A parallel loop unrolled-and-jammed must still cover all
        // iterations across processors.
        let n = 19usize;
        let mut b = ProgramBuilder::new("dist");
        let c = b.array_f64("c", &[n]);
        let j = b.var("j");
        b.for_dist(j, 0, n as i64, mempar_ir::Dist::Block, |b| {
            let one = b.constf(1.0);
            b.assign_array(c, &[b.idx(j)], one);
        });
        let mut p = b.finish();
        unroll_and_jam(&mut p, &NestPath::top(0), 4).expect("parallel");
        let mut mem = SimMem::new(&p, 4);
        mempar_ir::run_parallel_functional(&p, &mut mem, 4);
        assert!(mem.read_f64(c).iter().all(|&v| v == 1.0));
    }

    /// Regression (found by differential testing): a shared accumulator
    /// read by a *second* statement in the body is reordered by the jam's
    /// position-major emission and must be rejected, not silently
    /// mis-compiled. `s = s + a[i]; out[i] = s` unrolled by 2 used to
    /// produce `out[i] = s + a[i] + a[i+1]`.
    #[test]
    fn uaj_rejects_shared_scalar_chain_across_statements() {
        let mut b = ProgramBuilder::new("chain");
        let a = b.array_f64("a", &[16]);
        let out = b.array_f64("out", &[16]);
        let s = b.scalar_f64("s", 0.0);
        let i = b.var("i");
        b.for_const(i, 0, 16, |b| {
            let v = b.load(a, &[b.idx(i)]);
            let acc = b.scalar(s);
            let e = b.add(acc, v);
            b.assign_scalar(s, e);
            let rd = b.scalar(s);
            b.assign_array(out, &[b.idx(i)], rd);
        });
        let mut p = b.finish();
        assert_eq!(
            unroll_and_jam(&mut p, &NestPath::top(0), 2),
            Err(TransformError::IllegalDependence)
        );
        // But forcing it through Bypass must rewrite (and diverge) —
        // that is what the difftest harness leans on to prove the
        // rejection was load-bearing.
        assert!(
            crate::unroll_and_jam_with(&mut p, &NestPath::top(0), 2, crate::Legality::Bypass)
                .is_ok()
        );
    }
}
