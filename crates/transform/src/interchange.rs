//! Loop interchange and strip-mine — Figure 2(b)/(c) of the paper, plus
//! postlude interchange (Section 2.2).

use mempar_ir::{AffineExpr, BinOp, Bound, ElemType, Expr, Loop, Program, Stmt};

use crate::legality::{can_interchange, collect_ranges};
use crate::nest::{container_mut, loop_at, loop_at_mut, NestPath};
use crate::subst::bound_to_expr;
use crate::{Legality, TransformError};

/// Interchanges the loop at `path` with its directly nested loop — the
/// nest must be perfectly nested (`for j { for i { body } }` with nothing
/// between the loop headers) and rectangular (each loop's bounds free of
/// the other's variable).
///
/// # Errors
/// [`TransformError::NotPerfectNest`] for imperfect/triangular nests,
/// [`TransformError::IllegalDependence`] when a `(<,>)` dependence blocks
/// the interchange.
pub fn interchange(prog: &mut Program, path: &NestPath) -> Result<(), TransformError> {
    interchange_with(prog, path, Legality::Enforce)
}

/// [`interchange`] with an explicit [`Legality`] mode. With
/// [`Legality::Bypass`] the `(<,>)`-dependence test is skipped (the
/// perfect-nest and rectangularity requirements still apply) so a testing
/// harness can force rejected applications and observe the damage.
pub fn interchange_with(
    prog: &mut Program,
    path: &NestPath,
    legality: Legality,
) -> Result<(), TransformError> {
    let outer = loop_at(prog, path).ok_or(TransformError::NotALoop)?;
    if outer.body.len() != 1 {
        return Err(TransformError::NotPerfectNest);
    }
    let Stmt::Loop(inner) = &outer.body[0] else {
        return Err(TransformError::NotPerfectNest);
    };
    // Rectangularity.
    let free = |b: &Bound, v: mempar_ir::VarId| match b {
        Bound::Affine(e) => e.is_free_of(v),
        _ => true,
    };
    if !(free(&inner.lo, outer.var)
        && free(&inner.hi, outer.var)
        && free(&outer.lo, inner.var)
        && free(&outer.hi, inner.var))
    {
        return Err(TransformError::NotPerfectNest);
    }
    let ranges = collect_ranges(prog, path);
    if legality.enforced() && !can_interchange(prog, &inner.body, outer.var, inner.var, &ranges) {
        return Err(TransformError::IllegalDependence);
    }
    let outer_mut = loop_at_mut(prog, path).expect("checked above");
    let Stmt::Loop(inner_owned) = outer_mut.body.pop().expect("checked") else {
        unreachable!()
    };
    let new_inner = Loop {
        var: outer_mut.var,
        lo: std::mem::replace(&mut outer_mut.lo, inner_owned.lo),
        hi: std::mem::replace(&mut outer_mut.hi, inner_owned.hi),
        step: std::mem::replace(&mut outer_mut.step, inner_owned.step),
        dist: outer_mut.dist.take(),
        body: inner_owned.body,
    };
    outer_mut.var = inner_owned.var;
    outer_mut.dist = inner_owned.dist;
    outer_mut.body = vec![Stmt::Loop(new_inner)];
    Ok(())
}

/// Strip-mines the loop at `path` into an outer loop of strips of
/// `strip` iterations and an inner loop walking one strip — the first
/// half of Figure 2(c)'s strip-mine-and-interchange. A remainder loop
/// covers leftover iterations.
pub fn strip_mine(
    prog: &mut Program,
    path: &NestPath,
    strip: u32,
) -> Result<NestPath, TransformError> {
    if strip <= 1 {
        return Ok(path.clone());
    }
    let l = loop_at(prog, path).ok_or(TransformError::NotALoop)?.clone();
    if l.step != 1 {
        return Err(TransformError::UnsupportedStep);
    }
    let s = strip as i64;
    // t = lo + strip * ((hi - lo) / strip): end of the whole-strip region.
    let t = prog.fresh_scalar(format!("strip_t_{}", prog.var_name(l.var)), ElemType::I64);
    let lo_e = bound_to_expr(&l.lo);
    let hi_e = bound_to_expr(&l.hi);
    let whole = Expr::bin(
        BinOp::Div,
        Expr::bin(BinOp::Sub, hi_e, lo_e.clone()),
        Expr::ConstI(s),
    );
    let t_expr = Expr::bin(
        BinOp::Add,
        lo_e,
        Expr::bin(BinOp::Mul, Expr::ConstI(s), whole),
    );
    let prelude = Stmt::AssignScalar {
        lhs: t,
        rhs: t_expr,
    };

    let jj = prog.fresh_var(format!("{}{}", prog.var_name(l.var), l.var.index()));
    let inner = Loop {
        var: l.var,
        lo: Bound::Affine(AffineExpr::var(jj)),
        hi: Bound::Affine(AffineExpr::var(jj).offset(s)),
        step: 1,
        dist: None,
        body: l.body.clone(),
    };
    let outer = Loop {
        var: jj,
        lo: l.lo.clone(),
        hi: Bound::Scalar(t),
        step: s,
        dist: l.dist,
        body: vec![Stmt::Loop(inner)],
    };
    let remainder = Loop {
        var: l.var,
        lo: Bound::Scalar(t),
        hi: l.hi.clone(),
        step: 1,
        dist: l.dist,
        body: l.body,
    };
    let (body_list, idx) = container_mut(prog, path).ok_or(TransformError::NotALoop)?;
    body_list[idx] = Stmt::Loop(outer);
    body_list.insert(idx + 1, Stmt::Loop(remainder));
    body_list.insert(idx, prelude);
    let mut parent = path.0.clone();
    let last = parent.pop().expect("non-empty path");
    Ok(NestPath([parent, vec![last + 1]].concat()))
}

/// Interchanges the postlude nest left by unroll-and-jam when legal
/// ("To enable clustering in the postlude, we simply interchange the
/// postlude when possible" — Section 2.2). Returns whether it happened.
pub fn interchange_postlude(prog: &mut Program, postlude: &NestPath) -> bool {
    interchange(prog, postlude).is_ok()
}

#[cfg(test)]
mod tests {
    use super::*;
    use mempar_ir::{run_single, ArrayData, ProgramBuilder, SimMem};

    fn traversal(n: usize) -> (Program, mempar_ir::ArrayId, mempar_ir::ArrayId) {
        let mut b = ProgramBuilder::new("trav");
        let a = b.array_f64("a", &[n, n]);
        let out = b.array_f64("out", &[n, n]);
        let j = b.var("j");
        let i = b.var("i");
        b.for_const(j, 0, n as i64, |b| {
            b.for_const(i, 0, n as i64, |b| {
                let v = b.load(a, &[b.idx(j), b.idx(i)]);
                let two = b.constf(2.0);
                let e = b.mul(v, two);
                b.assign_array(out, &[b.idx(j), b.idx(i)], e);
            });
        });
        (b.finish(), a, out)
    }

    fn run_with_data(
        p: &Program,
        a: mempar_ir::ArrayId,
        out: mempar_ir::ArrayId,
        n: usize,
    ) -> Vec<f64> {
        let mut mem = SimMem::new(p, 1);
        mem.set_array(a, ArrayData::F64((0..n * n).map(|x| x as f64).collect()));
        run_single(p, &mut mem);
        mem.read_f64(out)
    }

    #[test]
    fn interchange_swaps_and_preserves() {
        let n = 12;
        let (mut p, a, out) = traversal(n);
        let base = run_with_data(&p, a, out, n);
        interchange(&mut p, &NestPath::top(0)).expect("legal");
        let l = loop_at(&p, &NestPath::top(0)).expect("loop");
        assert_eq!(p.var_name(l.var), "i", "inner var now outer");
        assert_eq!(run_with_data(&p, a, out, n), base);
    }

    #[test]
    fn interchange_rejects_imperfect_nest() {
        let mut b = ProgramBuilder::new("imp");
        let a = b.array_f64("a", &[4, 4]);
        let j = b.var("j");
        let i = b.var("i");
        b.for_const(j, 0, 4, |b| {
            let one = b.constf(1.0);
            b.assign_array(a, &[b.idx(j), b.idx_e(AffineExpr::konst(0))], one);
            b.for_const(i, 0, 4, |b| {
                let v = b.load(a, &[b.idx(j), b.idx(i)]);
                b.assign_array(a, &[b.idx(j), b.idx(i)], v);
            });
        });
        let mut p = b.finish();
        assert_eq!(
            interchange(&mut p, &NestPath::top(0)),
            Err(TransformError::NotPerfectNest)
        );
    }

    #[test]
    fn interchange_rejects_triangular() {
        let mut b = ProgramBuilder::new("tri");
        let a = b.array_f64("a", &[8, 8]);
        let j = b.var("j");
        let i = b.var("i");
        b.for_const(j, 0, 8, |b| {
            b.for_affine(i, AffineExpr::var(j), AffineExpr::konst(8), |b| {
                let one = b.constf(1.0);
                b.assign_array(a, &[b.idx(j), b.idx(i)], one);
            });
        });
        let mut p = b.finish();
        assert_eq!(
            interchange(&mut p, &NestPath::top(0)),
            Err(TransformError::NotPerfectNest)
        );
    }

    #[test]
    fn strip_mine_preserves_semantics() {
        let n = 13; // not a multiple of the strip
        let (mut p, a, out) = traversal(n);
        let base = run_with_data(&p, a, out, n);
        let new_path = strip_mine(&mut p, &NestPath::top(0), 4).expect("legal");
        assert_eq!(run_with_data(&p, a, out, n), base);
        // Structure: strip loop over jj containing the j loop.
        let outer = loop_at(&p, &new_path).expect("strip loop");
        assert_eq!(outer.step, 4);
        let Stmt::Loop(inner) = &outer.body[0] else {
            panic!("inner strip")
        };
        assert_eq!(p.var_name(inner.var), "j");
    }

    #[test]
    fn strip_mine_then_interchange_is_fig2c() {
        // Figure 2(c): strip-mine j then interchange jj with i... here we
        // verify the classic composition strip+interchange stays correct.
        let n = 16;
        let (mut p, a, out) = traversal(n);
        let base = run_with_data(&p, a, out, n);
        let strip_path = strip_mine(&mut p, &NestPath::top(0), 4).expect("strip");
        // The strip loop's body is the j-loop; interchange j with i.
        let j_path = strip_path.child(0);
        interchange(&mut p, &j_path).expect("interchange");
        assert_eq!(run_with_data(&p, a, out, n), base);
    }

    use mempar_ir::AffineExpr;
}
