//! Locating and navigating loop nests inside a [`Program`].

use mempar_ir::{Loop, Program, Stmt, VarId};

/// A path to a loop: successive statement indices, each stepping into the
/// body of the loop at that index (intermediate elements must all be
/// [`Stmt::Loop`] statements).
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default)]
pub struct NestPath(pub Vec<usize>);

impl NestPath {
    /// Path to a top-level statement.
    pub fn top(idx: usize) -> Self {
        NestPath(vec![idx])
    }

    /// The path one level in (child statement `idx` of this loop's body).
    pub fn child(&self, idx: usize) -> Self {
        let mut v = self.0.clone();
        v.push(idx);
        NestPath(v)
    }

    /// The enclosing loop's path (`None` at top level).
    pub fn parent(&self) -> Option<NestPath> {
        if self.0.len() <= 1 {
            None
        } else {
            Some(NestPath(self.0[..self.0.len() - 1].to_vec()))
        }
    }

    /// Nesting depth (1 = top-level loop).
    pub fn depth(&self) -> usize {
        self.0.len()
    }
}

/// Immutable access to the loop at `path`.
///
/// Returns `None` when the path does not lead to a loop.
pub fn loop_at<'p>(prog: &'p Program, path: &NestPath) -> Option<&'p Loop> {
    let mut body: &[Stmt] = &prog.body;
    let mut found: Option<&Loop> = None;
    for &idx in &path.0 {
        match body.get(idx) {
            Some(Stmt::Loop(l)) => {
                found = Some(l);
                body = &l.body;
            }
            _ => return None,
        }
    }
    found
}

/// Mutable access to the loop at `path`.
pub fn loop_at_mut<'p>(prog: &'p mut Program, path: &NestPath) -> Option<&'p mut Loop> {
    let mut body: &mut Vec<Stmt> = &mut prog.body;
    let (last, init) = path.0.split_last()?;
    for &idx in init {
        match body.get_mut(idx) {
            Some(Stmt::Loop(l)) => body = &mut l.body,
            _ => return None,
        }
    }
    match body.get_mut(*last) {
        Some(Stmt::Loop(l)) => Some(l),
        _ => None,
    }
}

/// Mutable access to the statement list *containing* the loop at `path`,
/// plus the loop's index in it.
pub fn container_mut<'p>(
    prog: &'p mut Program,
    path: &NestPath,
) -> Option<(&'p mut Vec<Stmt>, usize)> {
    let (last, init) = path.0.split_last()?;
    let mut body: &mut Vec<Stmt> = &mut prog.body;
    for &idx in init {
        match body.get_mut(idx) {
            Some(Stmt::Loop(l)) => body = &mut l.body,
            _ => return None,
        }
    }
    if matches!(body.get(*last), Some(Stmt::Loop(_))) {
        Some((body, *last))
    } else {
        None
    }
}

/// Paths to every *innermost* loop (loops whose bodies contain no loops),
/// in program order. Guards are descended but do not extend paths (a loop
/// inside an `if` is not addressable by a `NestPath`, so it is skipped —
/// the transformations never target guard-nested loops).
pub fn innermost_loops(prog: &Program) -> Vec<NestPath> {
    let mut out = Vec::new();
    fn walk(body: &[Stmt], prefix: &NestPath, out: &mut Vec<NestPath>) {
        for (idx, s) in body.iter().enumerate() {
            if let Stmt::Loop(l) = s {
                let here = prefix.child(idx);
                let had = out.len();
                walk(&l.body, &here, out);
                if out.len() == had && !contains_loop(&l.body) {
                    out.push(here);
                }
            }
        }
    }
    let root = NestPath(Vec::new());
    walk(&prog.body, &root, &mut out);
    out
}

/// True when `body` contains a loop anywhere (including inside guards).
pub fn contains_loop(body: &[Stmt]) -> bool {
    body.iter().any(|s| match s {
        Stmt::Loop(_) => true,
        Stmt::If {
            then_branch,
            else_branch,
            ..
        } => contains_loop(then_branch) || contains_loop(else_branch),
        _ => false,
    })
}

/// True when `body` contains synchronization statements anywhere.
pub fn contains_sync(body: &[Stmt]) -> bool {
    body.iter().any(|s| match s {
        Stmt::Barrier | Stmt::FlagSet { .. } | Stmt::FlagWait { .. } => true,
        Stmt::Loop(l) => contains_sync(&l.body),
        Stmt::If {
            then_branch,
            else_branch,
            ..
        } => contains_sync(then_branch) || contains_sync(else_branch),
        _ => false,
    })
}

/// The loop variables of the loops along `path`, outermost first.
pub fn enclosing_vars(prog: &Program, path: &NestPath) -> Vec<VarId> {
    let mut vars = Vec::new();
    let mut body: &[Stmt] = &prog.body;
    for &idx in &path.0 {
        if let Some(Stmt::Loop(l)) = body.get(idx) {
            vars.push(l.var);
            body = &l.body;
        } else {
            break;
        }
    }
    vars
}

#[cfg(test)]
mod tests {
    use super::*;
    use mempar_ir::ProgramBuilder;

    fn two_nests() -> Program {
        let mut b = ProgramBuilder::new("two");
        let a = b.array_f64("a", &[8, 8]);
        let j = b.var("j");
        let i = b.var("i");
        let k = b.var("k");
        b.for_const(j, 0, 8, |b| {
            b.for_const(i, 0, 8, |b| {
                let one = b.constf(1.0);
                b.assign_array(a, &[b.idx(j), b.idx(i)], one);
            });
        });
        b.for_const(k, 0, 8, |b| {
            let one = b.constf(2.0);
            b.assign_array(a, &[b.idx(k), b.idx(k)], one);
        });
        b.finish()
    }

    #[test]
    fn finds_innermost_loops() {
        let p = two_nests();
        let paths = innermost_loops(&p);
        assert_eq!(paths, vec![NestPath(vec![0, 0]), NestPath(vec![1])]);
    }

    #[test]
    fn loop_lookup_and_vars() {
        let p = two_nests();
        let path = NestPath(vec![0, 0]);
        let l = loop_at(&p, &path).expect("inner loop");
        assert_eq!(p.var_name(l.var), "i");
        let vars = enclosing_vars(&p, &path);
        assert_eq!(vars.len(), 2);
        assert_eq!(p.var_name(vars[0]), "j");
        assert_eq!(loop_at(&p, &NestPath(vec![5])), None);
        assert_eq!(loop_at(&p, &NestPath(vec![0, 0, 0])), None);
    }

    #[test]
    fn parent_paths() {
        let path = NestPath(vec![2, 1, 0]);
        assert_eq!(path.parent(), Some(NestPath(vec![2, 1])));
        assert_eq!(NestPath::top(3).parent(), None);
        assert_eq!(path.depth(), 3);
    }

    #[test]
    fn container_access() {
        let mut p = two_nests();
        let (body, idx) = container_mut(&mut p, &NestPath(vec![0, 0])).expect("container");
        assert_eq!(idx, 0);
        assert_eq!(body.len(), 1);
    }

    #[test]
    fn sync_detection() {
        let mut b = ProgramBuilder::new("s");
        let j = b.var("j");
        b.for_const(j, 0, 4, |b| b.barrier());
        let p = b.finish();
        let mempar_ir::Stmt::Loop(l) = &p.body[0] else {
            panic!()
        };
        assert!(contains_sync(&l.body));
        assert!(!contains_loop(&l.body));
    }
}
