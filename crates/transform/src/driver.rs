//! The clustering driver: applies the paper's full recipe to a program.
//!
//! For every innermost loop nest (Sections 3.2–3.3):
//!
//! 1. Analyze locality, dependences and recurrences.
//! 2. If a miss recurrence caps `f` below `α·lp`, **unroll-and-jam** the
//!    enclosing loop, choosing the degree by binary search on the
//!    re-analyzed `f` (at most `⌈log₂U⌉` re-analyses, as in Carr &
//!    Kennedy) while keeping `f ≤ α·lp` — conservative, to avoid MSHR
//!    contention. Loops whose unrolling would add only write misses are
//!    skipped.
//! 3. **Scalar-replace** invariant references exposed by the jam.
//! 4. If window constraints remain (no recurrence but `f < lp`),
//!    **inner-unroll** to expose enough independent misses.
//! 5. **Schedule** the body to pack miss references together.
//! 6. **Interchange the postlude** when possible.

use mempar_analysis::{analyze_inner_loop, MachineSummary, MissProfile, NestAnalysis};
use mempar_ir::Program;

use crate::interchange::interchange_postlude;
use crate::nest::{enclosing_vars, innermost_loops, loop_at, NestPath};
use crate::scalar_replace::scalar_replace;
use crate::schedule::schedule_for_misses;
use crate::unroll::{inner_unroll, unroll_and_jam};

/// What happened to one loop nest.
#[derive(Debug, Clone)]
pub struct NestDecision {
    /// Path of the innermost loop before transformation.
    pub path: NestPath,
    /// Loop-nest description (variable names outer→inner).
    pub nest_desc: String,
    /// Recurrence bound `α` of the original loop.
    pub alpha: f64,
    /// `f` before transformation.
    pub f_before: f64,
    /// `f` after transformation (re-analyzed).
    pub f_after: f64,
    /// Unroll-and-jam degree applied (1 = none).
    pub uaj_degree: u32,
    /// Inner unrolling applied (1 = none).
    pub inner_unroll: u32,
    /// Invariant references scalar-replaced.
    pub scalar_replaced: usize,
    /// Whether the body was rescheduled.
    pub scheduled: bool,
    /// Whether the postlude was interchanged.
    pub postlude_interchanged: bool,
    /// Why unroll-and-jam was skipped, if it was wanted but not applied.
    pub uaj_skip_reason: Option<String>,
}

/// Summary of a whole-program clustering pass.
#[derive(Debug, Clone, Default)]
pub struct ClusterReport {
    /// Per-nest decisions, in program order.
    pub decisions: Vec<NestDecision>,
}

impl ClusterReport {
    /// True when any transformation was applied.
    pub fn any_transformed(&self) -> bool {
        self.decisions
            .iter()
            .any(|d| d.uaj_degree > 1 || d.inner_unroll > 1 || d.scheduled || d.scalar_replaced > 0)
    }

    /// One-line-per-nest human-readable summary.
    pub fn summary(&self) -> String {
        let mut s = String::new();
        for d in &self.decisions {
            s.push_str(&format!(
                "{}: alpha={:.2} f={:.1}->{:.1} uaj={} unroll={} sr={} sched={} postlude-ix={}{}\n",
                d.nest_desc,
                d.alpha,
                d.f_before,
                d.f_after,
                d.uaj_degree,
                d.inner_unroll,
                d.scalar_replaced,
                d.scheduled,
                d.postlude_interchanged,
                d.uaj_skip_reason
                    .as_deref()
                    .map(|r| format!(" (uaj skipped: {r})"))
                    .unwrap_or_default(),
            ));
        }
        s
    }
}

/// Applies the clustering transformations to every innermost nest of
/// `prog` in place, returning the per-nest report.
pub fn cluster_program(
    prog: &mut Program,
    m: &MachineSummary,
    profile: &MissProfile,
) -> ClusterReport {
    let mut report = ClusterReport::default();
    // Reverse program order keeps earlier sibling paths valid while we
    // splice prelude/postlude statements around later ones.
    let mut nests = innermost_loops(prog);
    nests.reverse();
    let mut consumed_parents: Vec<NestPath> = Vec::new();
    for path in nests {
        // Skip nests whose enclosing loop we already transformed (a jam
        // rewrites every inner loop it contains).
        if consumed_parents.iter().any(|p| path.0.starts_with(&p.0)) {
            continue;
        }
        if let Some(d) = cluster_nest(prog, &path, m, profile) {
            if d.uaj_degree > 1 {
                if let Some(parent) = path.parent() {
                    consumed_parents.push(parent);
                }
            }
            report.decisions.push(d);
        }
    }
    report.decisions.reverse();
    report
}

/// Applies the recipe to the single innermost nest at `path`.
fn cluster_nest(
    prog: &mut Program,
    path: &NestPath,
    m: &MachineSummary,
    profile: &MissProfile,
) -> Option<NestDecision> {
    let l = loop_at(prog, path)?;
    let iv = l.var;
    let an = analyze_inner_loop(prog, &l.body, iv, m, profile);
    let vars = enclosing_vars(prog, path);
    let nest_desc = format!(
        "{}({})",
        prog.name,
        vars.iter()
            .map(|&v| prog.var_name(v).to_string())
            .collect::<Vec<_>>()
            .join(",")
    );
    let mut decision = NestDecision {
        path: path.clone(),
        nest_desc,
        alpha: an.recurrences.alpha,
        f_before: an.f,
        f_after: an.f,
        uaj_degree: 1,
        inner_unroll: 1,
        scalar_replaced: 0,
        scheduled: false,
        postlude_interchanged: false,
        uaj_skip_reason: None,
    };

    let mut cur_inner = path.clone();

    // ---- Stage 1: recurrence resolution via unroll-and-jam ----
    // Candidate outer loops are considered from the innermost's parent
    // outward (the "choice of outer loops to unroll for deeper nests" the
    // paper defers to Carr & Kennedy). A candidate is rejected when the
    // innermost body's writes do not vary with it (unrolling a reduction
    // loop chains copies through the same memory locations and adds no
    // miss streams — the LU `kk` trap), when unrolling would add only
    // write or redundant misses, or when no profitable legal degree
    // exists.
    if an.needs_unroll_and_jam(m) {
        let mut reasons: Vec<String> = Vec::new();
        let mut cand = path.parent();
        if cand.is_none() {
            decision.uaj_skip_reason = Some("no enclosing loop to unroll".into());
        }
        while let Some(parent) = cand {
            let Some(pl) = loop_at(prog, &parent) else {
                break;
            };
            let pv = pl.var;
            let pname = prog.var_name(pv).to_string();
            if !writes_vary_with(prog, path, pv) {
                reasons.push(format!("{pname}: writes invariant (reduction)"));
                cand = parent.parent();
                continue;
            }
            if !unrolling_adds_read_misses(prog, &an, pv) {
                reasons.push(format!("{pname}: adds only write/redundant misses"));
                cand = parent.parent();
                continue;
            }
            let target = an.target_f(m);
            let degree = search_degree(prog, &parent, path, m, profile, target);
            if degree <= 1 {
                reasons.push(format!("{pname}: no profitable degree"));
                cand = parent.parent();
                continue;
            }
            match unroll_and_jam(prog, &parent, degree) {
                Ok(r) => {
                    decision.uaj_degree = degree;
                    if let Some(post) = &r.postlude {
                        decision.postlude_interchanged = interchange_postlude(prog, post);
                    }
                    cur_inner = deepest_inner(prog, &r.main)?;
                    break;
                }
                Err(e) => {
                    reasons.push(format!("{pname}: {e}"));
                    cand = parent.parent();
                }
            }
        }
        if decision.uaj_degree == 1 && !reasons.is_empty() {
            decision.uaj_skip_reason = Some(reasons.join("; "));
        }
    }

    // ---- Stage 2: scalar replacement on the (possibly jammed) body ----
    if let Ok((n, new_path)) = scalar_replace(prog, &cur_inner) {
        decision.scalar_replaced = n;
        cur_inner = new_path;
    }

    // ---- Stage 3: window constraints via inner unrolling ----
    let an2 = {
        let l = loop_at(prog, &cur_inner)?;
        analyze_inner_loop(prog, &l.body, l.var, m, profile)
    };
    if decision.uaj_degree == 1 && an2.window_constrained(m) {
        let deg = an2.inner_unroll_degree(m);
        if deg > 1 {
            if let Ok(r) = inner_unroll(prog, &cur_inner, deg) {
                decision.inner_unroll = deg;
                cur_inner = r.main;
            }
        }
    }

    // ---- Stage 4: local scheduling to pack misses ----
    if decision.uaj_degree > 1 || decision.inner_unroll > 1 {
        if let Ok(changed) = schedule_for_misses(prog, &cur_inner, m.line_bytes) {
            decision.scheduled = changed;
        }
    }

    // Final f for the report.
    if let Some(l) = loop_at(prog, &cur_inner) {
        let an3 = analyze_inner_loop(prog, &l.body, l.var, m, profile);
        decision.f_after = an3.f;
    }
    Some(decision)
}

/// Searches for the degree `d ≤ U` maximizing re-analyzed `f(d)`
/// subject to `f(d) ≤ target` — bracketing binary search first (at
/// most `⌈log₂U⌉` trial jams on clones, as in Carr & Kennedy), with a
/// bounded linear verification pass when the probes contradict the
/// search's monotonicity assumption.
///
/// `f` is *not* monotone in the degree: each leading reference
/// contributes `C_m = ceil(W / (i·L_m))` (Equation 1) and the jammed
/// body size `i` grows with `d`, so `f(d) ≈ d·ceil(K/d)` dips every
/// time the ceiling steps down. The binary search assumes monotonicity
/// and can bracket onto a dip's shoulder; every probe is therefore
/// memoized, and when any probed pair has `f` decreasing — or the
/// candidate right above the proposed answer is still under `target` —
/// the search falls back to probing every candidate (at most `U - 1`
/// jams, most already cached) and picks the feasible argmax, ties to
/// the *larger* degree (same predicted overlap, fewer outer iterations
/// — matching where the bracketing search lands on monotone profiles).
///
/// For *distributed* loops only exact divisors of the trip count are
/// considered: a leftover postlude of a parallel loop executes on the
/// first processors while its data lives at the last one's home memory,
/// and the resulting coherence ping-pong (observed on Ocean) swamps the
/// clustering benefit. With a dividing degree every processor unrolls
/// its own chunk and no postlude exists.
fn search_degree(
    prog: &Program,
    parent: &NestPath,
    inner: &NestPath,
    m: &MachineSummary,
    profile: &MissProfile,
    target: f64,
) -> u32 {
    let cache = std::cell::RefCell::new(std::collections::BTreeMap::<u32, Option<f64>>::new());
    let f_of = |d: u32| -> Option<f64> {
        if let Some(v) = cache.borrow().get(&d) {
            return *v;
        }
        let v = (|| {
            let mut trial = prog.clone();
            let r = unroll_and_jam(&mut trial, parent, d).ok()?;
            let inner_path = deepest_inner(&trial, &r.main)?;
            let (_, inner_path) = scalar_replace(&mut trial, &inner_path).ok()?;
            let l = loop_at(&trial, &inner_path)?;
            Some(analyze_inner_loop(&trial, &l.body, l.var, m, profile).f)
        })();
        cache.borrow_mut().insert(d, v);
        v
    };
    let _ = inner;
    // Candidate degrees, ascending.
    let candidates: Vec<u32> = match loop_at(prog, parent) {
        Some(l) if l.dist.is_some() && m.procs > 1 => {
            let Some(trip) = l.const_trip_count() else {
                return 1;
            };
            (2..=m.max_unroll)
                .filter(|&d| trip % d as i64 == 0)
                .collect()
        }
        _ => (2..=m.max_unroll).collect(),
    };
    if candidates.is_empty() {
        return 1;
    }
    // Quick legality/profit probe on the smallest candidate.
    let f_small = match f_of(candidates[0]) {
        None => return 1,
        Some(f) if f > target => return 1,
        Some(f) => f,
    };
    // Bracketing binary search over the candidate list.
    let (mut lo, mut hi) = (0usize, candidates.len() - 1);
    let mut best_f = f_small;
    while lo < hi {
        let mid = (lo + hi).div_ceil(2);
        match f_of(candidates[mid]) {
            Some(f) if f <= target => {
                lo = mid;
                best_f = f;
            }
            _ => hi = mid - 1,
        }
    }
    // Verify the monotonicity assumption against the probe record. The
    // search is only sound when `f` is non-decreasing in the degree;
    // `f(d) = Σ C_m` dips exactly when some ceiling `C_m = ceil(W/(i·L_m))`
    // steps down as the jammed body grows, and that always shows up as
    // *sublinear* growth between probes (`f(d)/d` shrinking) even when
    // the probed values themselves happen to ascend past an unprobed
    // dip. Three triggers, from cheapest to most general: the candidate
    // just above the proposed answer is still feasible; some probed
    // pair has `f` decreasing outright; or some probed pair grows
    // sublinearly.
    let neighbor_feasible =
        lo + 1 < candidates.len() && f_of(candidates[lo + 1]).is_some_and(|f| f <= target + 1e-9);
    let probes_suspect = {
        let snap: Vec<(u32, f64)> = cache
            .borrow()
            .iter()
            .filter(|(d, _)| **d >= candidates[0])
            .filter_map(|(&d, &f)| f.map(|f| (d, f)))
            .collect();
        snap.windows(2).any(|w| {
            let (d1, f1) = w[0];
            let (d2, f2) = w[1];
            f1 > f2 + 1e-9 || f2 / d2 as f64 + 1e-9 < f1 / d1 as f64
        })
    };
    if neighbor_feasible || probes_suspect {
        // Bounded linear verification: probe everything (memoized) and
        // take the feasible argmax; ties keep the larger degree — the
        // model predicts the same overlap, and the larger jam spends
        // fewer outer iterations on loop overhead (this is also where
        // the bracketing search lands when the profile is monotone, so
        // well-behaved nests keep their seed degrees).
        let mut best: Option<(usize, f64)> = None;
        for (idx, &d) in candidates.iter().enumerate() {
            if let Some(f) = f_of(d) {
                if f <= target && best.is_none_or(|(_, bf)| f + 1e-9 >= bf) {
                    best = Some((idx, f));
                }
            }
        }
        match best {
            Some((idx, f)) => {
                lo = idx;
                best_f = f;
            }
            None => return 1,
        }
    }
    // Unrolling that never increases the overlapped-miss estimate (all
    // copies coalesce onto the same lines) is pure code expansion: skip.
    if let Some(f1) = f_of(1) {
        if best_f <= f1 + 1e-9 {
            return 1;
        }
    }
    candidates[lo]
}

/// The deepest first innermost loop under `start` (after a jam, the fused
/// loop is the one with the largest body; prefer it).
fn deepest_inner(prog: &Program, start: &NestPath) -> Option<NestPath> {
    let mut all = innermost_loops(prog);
    all.retain(|p| p.0.starts_with(&start.0));
    if all.is_empty() {
        // `start` itself is innermost.
        return loop_at(prog, start).map(|_| start.clone());
    }
    // Prefer the innermost loop with the largest body (the fused jam).
    all.into_iter()
        .max_by_key(|p| loop_at(prog, p).map(|l| l.body.len()).unwrap_or(0))
}

/// True when unrolling the loop over `pv` would add new *read* miss
/// opportunities: some leading read reference's address varies with it
/// (otherwise copies coalesce, or only writes are added — the paper's
/// "we prefer not to unroll-and-jam loops that only expose additional
/// write miss references").
fn unrolling_adds_read_misses(_prog: &Program, an: &NestAnalysis, pv: mempar_ir::VarId) -> bool {
    an.refs
        .leading()
        .any(|r| !r.is_write && ref_varies_with(&r.r, pv))
}

/// True when every array write in the innermost body at `inner` varies
/// with `pv`. A write invariant in `pv` means the unrolled copies rewrite
/// the same elements — a memory-carried reduction whose copies serialize.
fn writes_vary_with(prog: &Program, inner: &NestPath, pv: mempar_ir::VarId) -> bool {
    let Some(l) = loop_at(prog, inner) else {
        return false;
    };
    let mut ok = true;
    for s in &l.body {
        s.visit_local_refs(&mut |r, w| {
            if w && !ref_varies_with(r, pv) {
                ok = false;
            }
        });
    }
    ok
}

fn ref_varies_with(r: &mempar_ir::ArrayRef, v: mempar_ir::VarId) -> bool {
    r.indices.iter().any(|ix| {
        !ix.affine.is_free_of(v)
            || match &ix.dynamic {
                Some(mempar_ir::DynIndex::Indirect { inner, .. }) => ref_varies_with(inner, v),
                // A scalar-carried address varies unpredictably: assume yes.
                Some(mempar_ir::DynIndex::Scalar { .. }) => true,
                None => false,
            }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use mempar_ir::{run_single, ArrayData, ProgramBuilder, SimMem};

    fn fig2a(n: usize) -> (Program, mempar_ir::ArrayId, mempar_ir::ArrayId) {
        let mut b = ProgramBuilder::new("fig2a");
        let a = b.array_f64("a", &[n, n]);
        let out = b.array_f64("out", &[n]);
        let s = b.scalar_f64("sum", 0.0);
        let j = b.var("j");
        let i = b.var("i");
        b.for_const(j, 0, n as i64, |b| {
            let zero = b.constf(0.0);
            b.assign_scalar(s, zero);
            b.for_const(i, 0, n as i64, |b| {
                let v = b.load(a, &[b.idx(j), b.idx(i)]);
                let acc = b.scalar(s);
                let e = b.add(acc, v);
                b.assign_scalar(s, e);
            });
            let fin = b.scalar(s);
            b.assign_array(out, &[b.idx(j)], fin);
        });
        (b.finish(), a, out)
    }

    #[test]
    fn clusters_fig2a_with_uaj() {
        let n = 64;
        let (mut p, a, out) = fig2a(n);
        let mut mem = SimMem::new(&p, 1);
        mem.set_array(
            a,
            ArrayData::F64((0..n * n).map(|x| (x % 11) as f64).collect()),
        );
        run_single(&p, &mut mem);
        let base_out = mem.read_f64(out);

        let m = MachineSummary::base();
        let report = cluster_program(&mut p, &m, &MissProfile::pessimistic());
        assert_eq!(report.decisions.len(), 1);
        let d = &report.decisions[0];
        assert!(d.uaj_degree > 1, "recurrence must trigger UAJ: {report:?}");
        assert!(d.f_after > d.f_before);
        assert!(
            d.f_after <= d.alpha * m.mshrs as f64 + 1e-9,
            "conservative bound"
        );

        // Semantics preserved.
        let mut mem2 = SimMem::new(&p, 1);
        mem2.set_array(
            a,
            ArrayData::F64((0..n * n).map(|x| (x % 11) as f64).collect()),
        );
        run_single(&p, &mut mem2);
        assert_eq!(mem2.read_f64(out), base_out);
    }

    #[test]
    fn report_summary_mentions_degree() {
        let (mut p, _, _) = fig2a(64);
        let m = MachineSummary::base();
        let report = cluster_program(&mut p, &m, &MissProfile::pessimistic());
        let s = report.summary();
        assert!(s.contains("uaj="), "{s}");
        assert!(report.any_transformed());
    }

    #[test]
    fn column_traversal_untouched() {
        // Already clustered: driver must leave it alone.
        let mut b = ProgramBuilder::new("col");
        let a = b.array_f64("a", &[64, 64]);
        let s = b.scalar_f64("s", 0.0);
        let j = b.var("j");
        let i = b.var("i");
        b.for_const(j, 0, 64, |b| {
            b.for_const(i, 0, 64, |b| {
                let v = b.load(a, &[b.idx(i), b.idx(j)]);
                let acc = b.scalar(s);
                let e = b.add(acc, v);
                b.assign_scalar(s, e);
            });
        });
        let mut p = b.finish();
        let before = p.clone();
        let report = cluster_program(&mut p, &MachineSummary::base(), &MissProfile::pessimistic());
        assert!(!report.any_transformed(), "{}", report.summary());
        assert_eq!(p, before);
    }

    #[test]
    fn top_level_loop_cannot_uaj_but_reports() {
        // Latbench-minus-outer-loop: a bare pointer chase.
        let mut b = ProgramBuilder::new("bare-chase");
        let next = b.array_i64("next", &[1024]);
        let ps = b.scalar_i64("p", 0);
        let i = b.var("i");
        b.for_const(i, 0, 1024, |b| {
            let v = b.load_ref(mempar_ir::ArrayRef::new(
                next,
                vec![mempar_ir::Index::scalar(ps)],
            ));
            b.assign_scalar(ps, v);
        });
        let mut p = b.finish();
        let report = cluster_program(&mut p, &MachineSummary::base(), &MissProfile::pessimistic());
        let d = &report.decisions[0];
        assert_eq!(d.uaj_degree, 1);
        assert!(d.uaj_skip_reason.as_deref() == Some("no enclosing loop to unroll"));
    }

    #[test]
    fn latbench_shape_gets_uaj() {
        // Outer loop over independent chains: UAJ overlaps them.
        let nchains = 32usize;
        let len = 16usize;
        let mut b = ProgramBuilder::new("latbench");
        let heads = b.array_i64("heads", &[nchains]);
        let next = b.array_i64("next", &[1024]);
        let ps = b.scalar_i64("p", 0);
        let sink = b.array_i64("sink", &[nchains]);
        let j = b.var("j");
        let i = b.var("i");
        b.for_const(j, 0, nchains as i64, |b| {
            let h = b.load(heads, &[b.idx(j)]);
            b.assign_scalar(ps, h);
            b.for_const(i, 0, len as i64, |b| {
                let v = b.load_ref(mempar_ir::ArrayRef::new(
                    next,
                    vec![mempar_ir::Index::scalar(ps)],
                ));
                b.assign_scalar(ps, v);
            });
            let fin = b.scalar(ps);
            b.assign_array(sink, &[b.idx(j)], fin);
        });
        let mut p = b.finish();
        // The chase is irregular; mark the chain loop parallel (the
        // paper's Latbench chains are independent by construction).
        let mempar_ir::Stmt::Loop(l) = &mut p.body[0] else {
            panic!()
        };
        l.dist = Some(mempar_ir::Dist::Block);

        // Functional reference.
        let mk = |p: &Program| {
            let mut mem = SimMem::new(p, 1);
            mem.set_array(
                heads,
                ArrayData::I64((0..nchains as i64).map(|x| x * 31 % 1024).collect()),
            );
            mem.set_array(
                next,
                ArrayData::I64((0..1024).map(|x| (x + 97) % 1024).collect()),
            );
            mem
        };
        let mut mem = mk(&p);
        run_single(&p, &mut mem);
        let base = mem.read_i64(sink);

        let report = cluster_program(&mut p, &MachineSummary::base(), &MissProfile::pessimistic());
        let d = &report.decisions[0];
        assert!(d.uaj_degree > 1, "{}", report.summary());
        // alpha = 1 address recurrence: degree should reach ~lp.
        assert!(
            d.uaj_degree >= 8,
            "degree {} should approach lp",
            d.uaj_degree
        );

        let mut mem2 = mk(&p);
        run_single(&p, &mut mem2);
        assert_eq!(mem2.read_i64(sink), base);
    }

    /// A unit-stride 2-D copy-scale: after jamming by `d`, each copy
    /// contributes leading references with `C_m = ceil(W/(i·L_m))`, so
    /// `f(d) ≈ d·ceil(K/d)` — which *dips* every time the ceiling steps
    /// down. The profile at `W = 160` is
    /// `f = [12, 12, 16, 20, 12, 14, 16, 18, ...]` for `d = 2..`.
    fn row_copy(n: usize) -> Program {
        let mut b = ProgramBuilder::new("rowcopy");
        let a = b.array_f64("a", &[n, n]);
        let out = b.array_f64("out", &[n, n]);
        let j = b.var("j");
        let i = b.var("i");
        b.for_const(j, 0, n as i64, |b| {
            b.for_const(i, 0, n as i64, |b| {
                let v = b.load(a, &[b.idx(j), b.idx(i)]);
                let two = b.constf(2.0);
                let e = b.mul(v, two);
                b.assign_array(out, &[b.idx(j), b.idx(i)], e);
            });
        });
        b.finish()
    }

    fn brute_f(
        prog: &Program,
        parent: &NestPath,
        m: &MachineSummary,
        profile: &MissProfile,
        d: u32,
    ) -> Option<f64> {
        let mut trial = prog.clone();
        let r = unroll_and_jam(&mut trial, parent, d).ok()?;
        let inner_path = deepest_inner(&trial, &r.main)?;
        let (_, inner_path) = scalar_replace(&mut trial, &inner_path).ok()?;
        let l = loop_at(&trial, &inner_path)?;
        Some(analyze_inner_loop(&trial, &l.body, l.var, m, profile).f)
    }

    /// Regression for the monotonicity bug: at `W = 160`, `target = 14`,
    /// the probes the binary search records disagree (f decreases from
    /// d=5 to d=9), and without the linear fallback it brackets onto
    /// d=3 (f=12) while d=7 achieves f=14 within target.
    #[test]
    fn search_degree_survives_non_monotone_f() {
        let prog = row_copy(128);
        let inner = innermost_loops(&prog)[0].clone();
        let parent = inner.parent().unwrap();
        let m = MachineSummary {
            window: 160,
            procs: 1,
            mshrs: 16,
            line_bytes: 64,
            max_unroll: 16,
        };
        let profile = MissProfile::pessimistic();
        let fs: Vec<(u32, f64)> = (2..=m.max_unroll)
            .filter_map(|d| brute_f(&prog, &parent, &m, &profile, d).map(|f| (d, f)))
            .collect();
        assert!(
            fs.windows(2).any(|w| w[0].1 > w[1].1 + 1e-9),
            "premise: f must be non-monotone here, got {fs:?}"
        );
        let target = 14.0;
        let best = fs
            .iter()
            .filter(|(_, f)| *f <= target)
            .fold(None::<(u32, f64)>, |acc, &(d, f)| match acc {
                Some((_, bf)) if f <= bf + 1e-9 => acc,
                _ => Some((d, f)),
            })
            .expect("a feasible degree exists");
        assert_eq!(best, (7, 14.0), "premise drifted: {fs:?}");
        let chosen = search_degree(&prog, &parent, &inner, &m, &profile, target);
        assert_eq!(
            chosen, best.0,
            "search must match the feasible argmax (profile {fs:?})"
        );
    }

    /// The search's answer always achieves the feasible argmax of `f`
    /// whenever it unrolls at all, across window sizes and targets.
    #[test]
    fn search_degree_is_optimal_across_windows_and_targets() {
        let prog = row_copy(128);
        let inner = innermost_loops(&prog)[0].clone();
        let parent = inner.parent().unwrap();
        let profile = MissProfile::pessimistic();
        for window in [64, 96, 128, 160, 256] {
            let m = MachineSummary {
                window,
                procs: 1,
                mshrs: 16,
                line_bytes: 64,
                max_unroll: 16,
            };
            let f1 = brute_f(&prog, &parent, &m, &profile, 1).unwrap();
            let fs: Vec<(u32, f64)> = (2..=m.max_unroll)
                .filter_map(|d| brute_f(&prog, &parent, &m, &profile, d).map(|f| (d, f)))
                .collect();
            for target in (8..=24).map(|t| t as f64) {
                let best = fs.iter().filter(|(_, f)| *f <= target).fold(
                    None::<(u32, f64)>,
                    |acc, &(d, f)| match acc {
                        Some((_, bf)) if f <= bf + 1e-9 => acc,
                        _ => Some((d, f)),
                    },
                );
                let chosen = search_degree(&prog, &parent, &inner, &m, &profile, target);
                if chosen > 1 {
                    let f_chosen = fs.iter().find(|(d, _)| *d == chosen).unwrap().1;
                    let best_f = best.expect("chosen>1 implies feasible").1;
                    assert!(
                        (f_chosen - best_f).abs() < 1e-9,
                        "W={window} target={target}: chose d={chosen} (f={f_chosen}) \
                         but feasible argmax is {best:?} in {fs:?}"
                    );
                } else if let Some((bd, bf)) = best {
                    // Declining to unroll is only allowed when nothing
                    // feasible improves on f(1), or the smallest
                    // candidate already misses target (the quick-probe
                    // fast path documents that limitation).
                    assert!(
                        bf <= f1 + 1e-9 || fs.first().is_some_and(|(_, f2)| *f2 > target),
                        "W={window} target={target}: declined but d={bd} f={bf} was available"
                    );
                }
            }
        }
    }
}
