//! The clustering driver: applies the paper's full recipe to a program.
//!
//! For every innermost loop nest (Sections 3.2–3.3):
//!
//! 1. Analyze locality, dependences and recurrences.
//! 2. If a miss recurrence caps `f` below `α·lp`, **unroll-and-jam** the
//!    enclosing loop, choosing the degree by binary search on the
//!    re-analyzed `f` (at most `⌈log₂U⌉` re-analyses, as in Carr &
//!    Kennedy) while keeping `f ≤ α·lp` — conservative, to avoid MSHR
//!    contention. Loops whose unrolling would add only write misses are
//!    skipped.
//! 3. **Scalar-replace** invariant references exposed by the jam.
//! 4. If window constraints remain (no recurrence but `f < lp`),
//!    **inner-unroll** to expose enough independent misses.
//! 5. **Schedule** the body to pack miss references together.
//! 6. **Interchange the postlude** when possible.

use mempar_analysis::{analyze_inner_loop, MachineSummary, MissProfile, NestAnalysis};
use mempar_ir::Program;

use crate::interchange::interchange_postlude;
use crate::nest::{enclosing_vars, innermost_loops, loop_at, NestPath};
use crate::scalar_replace::scalar_replace;
use crate::schedule::schedule_for_misses;
use crate::unroll::{inner_unroll, unroll_and_jam};

/// What happened to one loop nest.
#[derive(Debug, Clone)]
pub struct NestDecision {
    /// Path of the innermost loop before transformation.
    pub path: NestPath,
    /// Loop-nest description (variable names outer→inner).
    pub nest_desc: String,
    /// Recurrence bound `α` of the original loop.
    pub alpha: f64,
    /// `f` before transformation.
    pub f_before: f64,
    /// `f` after transformation (re-analyzed).
    pub f_after: f64,
    /// Unroll-and-jam degree applied (1 = none).
    pub uaj_degree: u32,
    /// Inner unrolling applied (1 = none).
    pub inner_unroll: u32,
    /// Invariant references scalar-replaced.
    pub scalar_replaced: usize,
    /// Whether the body was rescheduled.
    pub scheduled: bool,
    /// Whether the postlude was interchanged.
    pub postlude_interchanged: bool,
    /// Why unroll-and-jam was skipped, if it was wanted but not applied.
    pub uaj_skip_reason: Option<String>,
}

/// Summary of a whole-program clustering pass.
#[derive(Debug, Clone, Default)]
pub struct ClusterReport {
    /// Per-nest decisions, in program order.
    pub decisions: Vec<NestDecision>,
}

impl ClusterReport {
    /// True when any transformation was applied.
    pub fn any_transformed(&self) -> bool {
        self.decisions
            .iter()
            .any(|d| d.uaj_degree > 1 || d.inner_unroll > 1 || d.scheduled || d.scalar_replaced > 0)
    }

    /// One-line-per-nest human-readable summary.
    pub fn summary(&self) -> String {
        let mut s = String::new();
        for d in &self.decisions {
            s.push_str(&format!(
                "{}: alpha={:.2} f={:.1}->{:.1} uaj={} unroll={} sr={} sched={} postlude-ix={}{}\n",
                d.nest_desc,
                d.alpha,
                d.f_before,
                d.f_after,
                d.uaj_degree,
                d.inner_unroll,
                d.scalar_replaced,
                d.scheduled,
                d.postlude_interchanged,
                d.uaj_skip_reason
                    .as_deref()
                    .map(|r| format!(" (uaj skipped: {r})"))
                    .unwrap_or_default(),
            ));
        }
        s
    }
}

/// Applies the clustering transformations to every innermost nest of
/// `prog` in place, returning the per-nest report.
pub fn cluster_program(
    prog: &mut Program,
    m: &MachineSummary,
    profile: &MissProfile,
) -> ClusterReport {
    let mut report = ClusterReport::default();
    // Reverse program order keeps earlier sibling paths valid while we
    // splice prelude/postlude statements around later ones.
    let mut nests = innermost_loops(prog);
    nests.reverse();
    let mut consumed_parents: Vec<NestPath> = Vec::new();
    for path in nests {
        // Skip nests whose enclosing loop we already transformed (a jam
        // rewrites every inner loop it contains).
        if consumed_parents.iter().any(|p| path.0.starts_with(&p.0)) {
            continue;
        }
        if let Some(d) = cluster_nest(prog, &path, m, profile) {
            if d.uaj_degree > 1 {
                if let Some(parent) = path.parent() {
                    consumed_parents.push(parent);
                }
            }
            report.decisions.push(d);
        }
    }
    report.decisions.reverse();
    report
}

/// Applies the recipe to the single innermost nest at `path`.
fn cluster_nest(
    prog: &mut Program,
    path: &NestPath,
    m: &MachineSummary,
    profile: &MissProfile,
) -> Option<NestDecision> {
    let l = loop_at(prog, path)?;
    let iv = l.var;
    let an = analyze_inner_loop(prog, &l.body, iv, m, profile);
    let vars = enclosing_vars(prog, path);
    let nest_desc = format!(
        "{}({})",
        prog.name,
        vars.iter()
            .map(|&v| prog.var_name(v).to_string())
            .collect::<Vec<_>>()
            .join(",")
    );
    let mut decision = NestDecision {
        path: path.clone(),
        nest_desc,
        alpha: an.recurrences.alpha,
        f_before: an.f,
        f_after: an.f,
        uaj_degree: 1,
        inner_unroll: 1,
        scalar_replaced: 0,
        scheduled: false,
        postlude_interchanged: false,
        uaj_skip_reason: None,
    };

    let mut cur_inner = path.clone();

    // ---- Stage 1: recurrence resolution via unroll-and-jam ----
    // Candidate outer loops are considered from the innermost's parent
    // outward (the "choice of outer loops to unroll for deeper nests" the
    // paper defers to Carr & Kennedy). A candidate is rejected when the
    // innermost body's writes do not vary with it (unrolling a reduction
    // loop chains copies through the same memory locations and adds no
    // miss streams — the LU `kk` trap), when unrolling would add only
    // write or redundant misses, or when no profitable legal degree
    // exists.
    if an.needs_unroll_and_jam(m) {
        let mut reasons: Vec<String> = Vec::new();
        let mut cand = path.parent();
        if cand.is_none() {
            decision.uaj_skip_reason = Some("no enclosing loop to unroll".into());
        }
        while let Some(parent) = cand {
            let Some(pl) = loop_at(prog, &parent) else {
                break;
            };
            let pv = pl.var;
            let pname = prog.var_name(pv).to_string();
            if !writes_vary_with(prog, path, pv) {
                reasons.push(format!("{pname}: writes invariant (reduction)"));
                cand = parent.parent();
                continue;
            }
            if !unrolling_adds_read_misses(prog, &an, pv) {
                reasons.push(format!("{pname}: adds only write/redundant misses"));
                cand = parent.parent();
                continue;
            }
            let target = an.target_f(m);
            let degree = search_degree(prog, &parent, path, m, profile, target);
            if degree <= 1 {
                reasons.push(format!("{pname}: no profitable degree"));
                cand = parent.parent();
                continue;
            }
            match unroll_and_jam(prog, &parent, degree) {
                Ok(r) => {
                    decision.uaj_degree = degree;
                    if let Some(post) = &r.postlude {
                        decision.postlude_interchanged = interchange_postlude(prog, post);
                    }
                    cur_inner = deepest_inner(prog, &r.main)?;
                    break;
                }
                Err(e) => {
                    reasons.push(format!("{pname}: {e}"));
                    cand = parent.parent();
                }
            }
        }
        if decision.uaj_degree == 1 && !reasons.is_empty() {
            decision.uaj_skip_reason = Some(reasons.join("; "));
        }
    }

    // ---- Stage 2: scalar replacement on the (possibly jammed) body ----
    if let Ok((n, new_path)) = scalar_replace(prog, &cur_inner) {
        decision.scalar_replaced = n;
        cur_inner = new_path;
    }

    // ---- Stage 3: window constraints via inner unrolling ----
    let an2 = {
        let l = loop_at(prog, &cur_inner)?;
        analyze_inner_loop(prog, &l.body, l.var, m, profile)
    };
    if decision.uaj_degree == 1 && an2.window_constrained(m) {
        let deg = an2.inner_unroll_degree(m);
        if deg > 1 {
            if let Ok(r) = inner_unroll(prog, &cur_inner, deg) {
                decision.inner_unroll = deg;
                cur_inner = r.main;
            }
        }
    }

    // ---- Stage 4: local scheduling to pack misses ----
    if decision.uaj_degree > 1 || decision.inner_unroll > 1 {
        if let Ok(changed) = schedule_for_misses(prog, &cur_inner, m.line_bytes) {
            decision.scheduled = changed;
        }
    }

    // Final f for the report.
    if let Some(l) = loop_at(prog, &cur_inner) {
        let an3 = analyze_inner_loop(prog, &l.body, l.var, m, profile);
        decision.f_after = an3.f;
    }
    Some(decision)
}

/// Searches for the largest degree `d ≤ U` with re-analyzed
/// `f(d) ≤ target` (binary search over candidate degrees, at most
/// `⌈log₂U⌉` trial jams on clones, as in Carr & Kennedy).
///
/// For *distributed* loops only exact divisors of the trip count are
/// considered: a leftover postlude of a parallel loop executes on the
/// first processors while its data lives at the last one's home memory,
/// and the resulting coherence ping-pong (observed on Ocean) swamps the
/// clustering benefit. With a dividing degree every processor unrolls
/// its own chunk and no postlude exists.
fn search_degree(
    prog: &Program,
    parent: &NestPath,
    inner: &NestPath,
    m: &MachineSummary,
    profile: &MissProfile,
    target: f64,
) -> u32 {
    let f_of = |d: u32| -> Option<f64> {
        let mut trial = prog.clone();
        let r = unroll_and_jam(&mut trial, parent, d).ok()?;
        let inner_path = deepest_inner(&trial, &r.main)?;
        let (_, inner_path) = scalar_replace(&mut trial, &inner_path).ok()?;
        let l = loop_at(&trial, &inner_path)?;
        Some(analyze_inner_loop(&trial, &l.body, l.var, m, profile).f)
    };
    let _ = inner;
    // Candidate degrees, ascending.
    let candidates: Vec<u32> = match loop_at(prog, parent) {
        Some(l) if l.dist.is_some() && m.procs > 1 => {
            let Some(trip) = l.const_trip_count() else {
                return 1;
            };
            (2..=m.max_unroll)
                .filter(|&d| trip % d as i64 == 0)
                .collect()
        }
        _ => (2..=m.max_unroll).collect(),
    };
    if candidates.is_empty() {
        return 1;
    }
    // Quick legality/profit probe on the smallest candidate.
    let f_small = match f_of(candidates[0]) {
        None => return 1,
        Some(f) if f > target => return 1,
        Some(f) => f,
    };
    // Binary search over the candidate list (f is monotone in degree).
    let (mut lo, mut hi) = (0usize, candidates.len() - 1);
    let mut best_f = f_small;
    while lo < hi {
        let mid = (lo + hi).div_ceil(2);
        match f_of(candidates[mid]) {
            Some(f) if f <= target => {
                lo = mid;
                best_f = f;
            }
            _ => hi = mid - 1,
        }
    }
    // Unrolling that never increases the overlapped-miss estimate (all
    // copies coalesce onto the same lines) is pure code expansion: skip.
    if let Some(f1) = f_of(1) {
        if best_f <= f1 + 1e-9 {
            return 1;
        }
    }
    candidates[lo]
}

/// The deepest first innermost loop under `start` (after a jam, the fused
/// loop is the one with the largest body; prefer it).
fn deepest_inner(prog: &Program, start: &NestPath) -> Option<NestPath> {
    let mut all = innermost_loops(prog);
    all.retain(|p| p.0.starts_with(&start.0));
    if all.is_empty() {
        // `start` itself is innermost.
        return loop_at(prog, start).map(|_| start.clone());
    }
    // Prefer the innermost loop with the largest body (the fused jam).
    all.into_iter()
        .max_by_key(|p| loop_at(prog, p).map(|l| l.body.len()).unwrap_or(0))
}

/// True when unrolling the loop over `pv` would add new *read* miss
/// opportunities: some leading read reference's address varies with it
/// (otherwise copies coalesce, or only writes are added — the paper's
/// "we prefer not to unroll-and-jam loops that only expose additional
/// write miss references").
fn unrolling_adds_read_misses(_prog: &Program, an: &NestAnalysis, pv: mempar_ir::VarId) -> bool {
    an.refs
        .leading()
        .any(|r| !r.is_write && ref_varies_with(&r.r, pv))
}

/// True when every array write in the innermost body at `inner` varies
/// with `pv`. A write invariant in `pv` means the unrolled copies rewrite
/// the same elements — a memory-carried reduction whose copies serialize.
fn writes_vary_with(prog: &Program, inner: &NestPath, pv: mempar_ir::VarId) -> bool {
    let Some(l) = loop_at(prog, inner) else {
        return false;
    };
    let mut ok = true;
    for s in &l.body {
        s.visit_local_refs(&mut |r, w| {
            if w && !ref_varies_with(r, pv) {
                ok = false;
            }
        });
    }
    ok
}

fn ref_varies_with(r: &mempar_ir::ArrayRef, v: mempar_ir::VarId) -> bool {
    r.indices.iter().any(|ix| {
        !ix.affine.is_free_of(v)
            || match &ix.dynamic {
                Some(mempar_ir::DynIndex::Indirect { inner, .. }) => ref_varies_with(inner, v),
                // A scalar-carried address varies unpredictably: assume yes.
                Some(mempar_ir::DynIndex::Scalar { .. }) => true,
                None => false,
            }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use mempar_ir::{run_single, ArrayData, ProgramBuilder, SimMem};

    fn fig2a(n: usize) -> (Program, mempar_ir::ArrayId, mempar_ir::ArrayId) {
        let mut b = ProgramBuilder::new("fig2a");
        let a = b.array_f64("a", &[n, n]);
        let out = b.array_f64("out", &[n]);
        let s = b.scalar_f64("sum", 0.0);
        let j = b.var("j");
        let i = b.var("i");
        b.for_const(j, 0, n as i64, |b| {
            let zero = b.constf(0.0);
            b.assign_scalar(s, zero);
            b.for_const(i, 0, n as i64, |b| {
                let v = b.load(a, &[b.idx(j), b.idx(i)]);
                let acc = b.scalar(s);
                let e = b.add(acc, v);
                b.assign_scalar(s, e);
            });
            let fin = b.scalar(s);
            b.assign_array(out, &[b.idx(j)], fin);
        });
        (b.finish(), a, out)
    }

    #[test]
    fn clusters_fig2a_with_uaj() {
        let n = 64;
        let (mut p, a, out) = fig2a(n);
        let mut mem = SimMem::new(&p, 1);
        mem.set_array(
            a,
            ArrayData::F64((0..n * n).map(|x| (x % 11) as f64).collect()),
        );
        run_single(&p, &mut mem);
        let base_out = mem.read_f64(out);

        let m = MachineSummary::base();
        let report = cluster_program(&mut p, &m, &MissProfile::pessimistic());
        assert_eq!(report.decisions.len(), 1);
        let d = &report.decisions[0];
        assert!(d.uaj_degree > 1, "recurrence must trigger UAJ: {report:?}");
        assert!(d.f_after > d.f_before);
        assert!(
            d.f_after <= d.alpha * m.mshrs as f64 + 1e-9,
            "conservative bound"
        );

        // Semantics preserved.
        let mut mem2 = SimMem::new(&p, 1);
        mem2.set_array(
            a,
            ArrayData::F64((0..n * n).map(|x| (x % 11) as f64).collect()),
        );
        run_single(&p, &mut mem2);
        assert_eq!(mem2.read_f64(out), base_out);
    }

    #[test]
    fn report_summary_mentions_degree() {
        let (mut p, _, _) = fig2a(64);
        let m = MachineSummary::base();
        let report = cluster_program(&mut p, &m, &MissProfile::pessimistic());
        let s = report.summary();
        assert!(s.contains("uaj="), "{s}");
        assert!(report.any_transformed());
    }

    #[test]
    fn column_traversal_untouched() {
        // Already clustered: driver must leave it alone.
        let mut b = ProgramBuilder::new("col");
        let a = b.array_f64("a", &[64, 64]);
        let s = b.scalar_f64("s", 0.0);
        let j = b.var("j");
        let i = b.var("i");
        b.for_const(j, 0, 64, |b| {
            b.for_const(i, 0, 64, |b| {
                let v = b.load(a, &[b.idx(i), b.idx(j)]);
                let acc = b.scalar(s);
                let e = b.add(acc, v);
                b.assign_scalar(s, e);
            });
        });
        let mut p = b.finish();
        let before = p.clone();
        let report = cluster_program(&mut p, &MachineSummary::base(), &MissProfile::pessimistic());
        assert!(!report.any_transformed(), "{}", report.summary());
        assert_eq!(p, before);
    }

    #[test]
    fn top_level_loop_cannot_uaj_but_reports() {
        // Latbench-minus-outer-loop: a bare pointer chase.
        let mut b = ProgramBuilder::new("bare-chase");
        let next = b.array_i64("next", &[1024]);
        let ps = b.scalar_i64("p", 0);
        let i = b.var("i");
        b.for_const(i, 0, 1024, |b| {
            let v = b.load_ref(mempar_ir::ArrayRef::new(
                next,
                vec![mempar_ir::Index::scalar(ps)],
            ));
            b.assign_scalar(ps, v);
        });
        let mut p = b.finish();
        let report = cluster_program(&mut p, &MachineSummary::base(), &MissProfile::pessimistic());
        let d = &report.decisions[0];
        assert_eq!(d.uaj_degree, 1);
        assert!(d.uaj_skip_reason.as_deref() == Some("no enclosing loop to unroll"));
    }

    #[test]
    fn latbench_shape_gets_uaj() {
        // Outer loop over independent chains: UAJ overlaps them.
        let nchains = 32usize;
        let len = 16usize;
        let mut b = ProgramBuilder::new("latbench");
        let heads = b.array_i64("heads", &[nchains]);
        let next = b.array_i64("next", &[1024]);
        let ps = b.scalar_i64("p", 0);
        let sink = b.array_i64("sink", &[nchains]);
        let j = b.var("j");
        let i = b.var("i");
        b.for_const(j, 0, nchains as i64, |b| {
            let h = b.load(heads, &[b.idx(j)]);
            b.assign_scalar(ps, h);
            b.for_const(i, 0, len as i64, |b| {
                let v = b.load_ref(mempar_ir::ArrayRef::new(
                    next,
                    vec![mempar_ir::Index::scalar(ps)],
                ));
                b.assign_scalar(ps, v);
            });
            let fin = b.scalar(ps);
            b.assign_array(sink, &[b.idx(j)], fin);
        });
        let mut p = b.finish();
        // The chase is irregular; mark the chain loop parallel (the
        // paper's Latbench chains are independent by construction).
        let mempar_ir::Stmt::Loop(l) = &mut p.body[0] else {
            panic!()
        };
        l.dist = Some(mempar_ir::Dist::Block);

        // Functional reference.
        let mk = |p: &Program| {
            let mut mem = SimMem::new(p, 1);
            mem.set_array(
                heads,
                ArrayData::I64((0..nchains as i64).map(|x| x * 31 % 1024).collect()),
            );
            mem.set_array(
                next,
                ArrayData::I64((0..1024).map(|x| (x + 97) % 1024).collect()),
            );
            mem
        };
        let mut mem = mk(&p);
        run_single(&p, &mut mem);
        let base = mem.read_i64(sink);

        let report = cluster_program(&mut p, &MachineSummary::base(), &MissProfile::pessimistic());
        let d = &report.decisions[0];
        assert!(d.uaj_degree > 1, "{}", report.summary());
        // alpha = 1 address recurrence: degree should reach ~lp.
        assert!(
            d.uaj_degree >= 8,
            "degree {} should approach lp",
            d.uaj_degree
        );

        let mut mem2 = mk(&p);
        run_single(&p, &mut mem2);
        assert_eq!(mem2.read_i64(sink), base);
    }
}
