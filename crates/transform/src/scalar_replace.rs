//! Scalar replacement of loop-invariant array references — one of the
//! secondary benefits unroll-and-jam was originally proposed for
//! (Callahan/Carr/Kennedy), and the source of the CPU-side gains the
//! paper reports for FFT and LU.

use mempar_ir::{ArrayRef, Expr, Program, Stmt, VarId};

use crate::legality::{collect_ranges, pair_dependence, PairDep};
use crate::nest::{container_mut, loop_at, NestPath};
use crate::TransformError;

/// Applies scalar replacement to the innermost loop at `path`:
///
/// * **Read-only invariants** — `t = A[...]` hoisted before the loop,
///   body loads become scalar reads.
/// * **Invariant reductions** — `A[...] = f(A[...], ...)` with an
///   invariant target becomes a scalar accumulator, stored back once
///   after the loop.
///
/// Only references provably independent of every other write in the body
/// are replaced. Returns the number of replaced references, and the new
/// path of the loop (hoisting inserts statements before it).
pub fn scalar_replace(
    prog: &mut Program,
    path: &NestPath,
) -> Result<(usize, NestPath), TransformError> {
    let l = loop_at(prog, path).ok_or(TransformError::NotALoop)?.clone();
    let var = l.var;
    let ranges = collect_ranges(prog, path);
    // Only handle straight-line bodies (no nested control flow).
    if l.body
        .iter()
        .any(|s| !matches!(s, Stmt::AssignArray { .. } | Stmt::AssignScalar { .. }))
    {
        return Ok((0, path.clone()));
    }

    // Collect distinct invariant refs and all refs.
    let mut reads: Vec<ArrayRef> = Vec::new();
    let mut writes: Vec<ArrayRef> = Vec::new();
    for s in &l.body {
        s.visit_local_refs(&mut |r, w| {
            if w {
                writes.push(r.clone());
            } else {
                reads.push(r.clone());
            }
        });
    }
    let invariant =
        |r: &ArrayRef| r.is_affine() && r.indices.iter().all(|ix| ix.affine.is_free_of(var));

    let mut candidates: Vec<(ArrayRef, bool)> = Vec::new(); // (ref, is_reduction)
    let mut seen: Vec<ArrayRef> = Vec::new();
    for r in reads.iter().filter(|r| invariant(r)) {
        if seen.contains(r) {
            continue;
        }
        seen.push(r.clone());
        // Writes to the same array must be exactly `r` (reduction) or
        // provably independent.
        let mut reduction = false;
        let mut safe = true;
        for w in &writes {
            if w.array != r.array {
                continue;
            }
            if w == r {
                reduction = true;
            } else {
                match pair_dependence(prog, r, w, &[var], &ranges) {
                    PairDep::Independent => {}
                    _ => {
                        safe = false;
                        break;
                    }
                }
            }
        }
        // Scalarizing the write target defers the memory store to the
        // postlude, so every *other* read of the same array must be
        // provably independent of `r` too — otherwise an aliasing read
        // (e.g. `a[4 - 2i]` meeting `a[0]` at i = 2) would see stale
        // memory. Found by differential testing (crates/difftest,
        // seed 397).
        if safe && reduction {
            for rd in &reads {
                if rd.array != r.array || rd == r {
                    continue;
                }
                match pair_dependence(prog, r, rd, &[var], &ranges) {
                    PairDep::Independent => {}
                    _ => {
                        safe = false;
                        break;
                    }
                }
            }
        }
        if safe {
            candidates.push((r.clone(), reduction));
        }
    }
    // Also pure write-invariant reductions where the read form matches.
    if candidates.is_empty() {
        return Ok((0, path.clone()));
    }

    // Build replacement: prelude loads, rewritten body, postlude stores.
    let mut preludes = Vec::new();
    let mut postludes = Vec::new();
    let mut body = l.body.clone();
    let n = candidates.len();
    for (r, reduction) in candidates {
        let name = format!("sr_{}", prog.array(r.array).name);
        let t = prog.fresh_scalar(name, prog.array(r.array).elem);
        preludes.push(Stmt::AssignScalar {
            lhs: t,
            rhs: Expr::Load(r.clone()),
        });
        body = body.iter().map(|s| replace_in_stmt(s, &r, t)).collect();
        if reduction {
            postludes.push(Stmt::AssignArray {
                lhs: r.clone(),
                rhs: Expr::Scalar(t),
            });
        }
    }

    let dist = l.dist;
    let new_loop = Stmt::Loop(mempar_ir::Loop {
        var,
        lo: l.lo,
        hi: l.hi,
        step: l.step,
        dist,
        body,
    });
    let (container, idx) = container_mut(prog, path).ok_or(TransformError::NotALoop)?;
    container[idx] = new_loop;
    let shift = preludes.len();
    for (k, s) in preludes.into_iter().enumerate() {
        container.insert(idx + k, s);
    }
    for (k, s) in postludes.into_iter().enumerate() {
        container.insert(idx + shift + 1 + k, s);
    }
    let mut p = path.0.clone();
    let last = p.pop().expect("non-empty");
    p.push(last + shift);
    Ok((n, NestPath(p)))
}

/// Replaces loads of `target` with scalar `t`, and stores to `target`
/// with scalar assignments.
fn replace_in_stmt(s: &Stmt, target: &ArrayRef, t: mempar_ir::ScalarId) -> Stmt {
    match s {
        Stmt::AssignArray { lhs, rhs } if lhs == target => Stmt::AssignScalar {
            lhs: t,
            rhs: replace_in_expr(rhs, target, t),
        },
        Stmt::AssignArray { lhs, rhs } => Stmt::AssignArray {
            lhs: lhs.clone(),
            rhs: replace_in_expr(rhs, target, t),
        },
        Stmt::AssignScalar { lhs, rhs } => Stmt::AssignScalar {
            lhs: *lhs,
            rhs: replace_in_expr(rhs, target, t),
        },
        other => other.clone(),
    }
}

fn replace_in_expr(e: &Expr, target: &ArrayRef, t: mempar_ir::ScalarId) -> Expr {
    match e {
        Expr::Load(r) if r == target => Expr::Scalar(t),
        Expr::Load(_) | Expr::ConstF(_) | Expr::ConstI(_) | Expr::Scalar(_) | Expr::LoopVar(_) => {
            e.clone()
        }
        Expr::Unary(op, a) => Expr::un(*op, replace_in_expr(a, target, t)),
        Expr::Binary(op, a, b) => Expr::bin(
            *op,
            replace_in_expr(a, target, t),
            replace_in_expr(b, target, t),
        ),
    }
}

/// Counts array loads in a loop body (before/after comparisons in tests
/// and reports).
pub fn count_loads(body: &[Stmt]) -> usize {
    let mut n = 0;
    for s in body {
        s.visit_local_refs(&mut |_, w| {
            if !w {
                n += 1;
            }
        });
    }
    n
}

#[allow(dead_code)]
fn _unused(_: VarId) {}

#[cfg(test)]
mod tests {
    use super::*;
    use mempar_ir::{run_single, ArrayData, ProgramBuilder, SimMem};

    /// LU-like update: C[i][j] -= L[i][k] * U[k][j] over k — C[i][j] is
    /// invariant in k (a reduction).
    fn matmul_kernel(n: usize) -> (mempar_ir::Program, [mempar_ir::ArrayId; 3], NestPath) {
        let mut b = ProgramBuilder::new("mm");
        let c = b.array_f64("c", &[n, n]);
        let lmat = b.array_f64("l", &[n, n]);
        let umat = b.array_f64("u", &[n, n]);
        let i = b.var("i");
        let j = b.var("j");
        let k = b.var("k");
        b.for_const(i, 0, n as i64, |b| {
            b.for_const(j, 0, n as i64, |b| {
                b.for_const(k, 0, n as i64, |b| {
                    let cv = b.load(c, &[b.idx(i), b.idx(j)]);
                    let lv = b.load(lmat, &[b.idx(i), b.idx(k)]);
                    let uv = b.load(umat, &[b.idx(k), b.idx(j)]);
                    let prod = b.mul(lv, uv);
                    let e = b.sub(cv, prod);
                    b.assign_array(c, &[b.idx(i), b.idx(j)], e);
                });
            });
        });
        (b.finish(), [c, lmat, umat], NestPath(vec![0, 0, 0]))
    }

    fn run_mm(p: &mempar_ir::Program, ids: [mempar_ir::ArrayId; 3], n: usize) -> Vec<f64> {
        let mut mem = SimMem::new(p, 1);
        for a in ids {
            mem.set_array(
                a,
                ArrayData::F64((0..n * n).map(|x| ((x % 7) as f64) - 3.0).collect()),
            );
        }
        run_single(p, &mut mem);
        mem.read_f64(ids[0])
    }

    #[test]
    fn reduction_replaced_and_correct() {
        let n = 8;
        let (mut p, ids, path) = matmul_kernel(n);
        let base = run_mm(&p, ids, n);
        let (count, new_path) = scalar_replace(&mut p, &path).expect("ok");
        assert_eq!(count, 1, "C[i][j] is the one invariant");
        assert_eq!(run_mm(&p, ids, n), base);
        // The k-loop body no longer loads C.
        let l = loop_at(&p, &new_path).expect("loop moved by prelude");
        assert_eq!(count_loads(&l.body), 2, "only L and U remain");
        // Store-back exists after the loop.
        let parent = loop_at(&p, &new_path.parent().expect("j loop")).expect("j loop");
        assert!(
            parent
                .body
                .iter()
                .any(|s| matches!(s, Stmt::AssignArray { .. })),
            "store-back after the k loop"
        );
    }

    #[test]
    fn read_only_invariant_hoisted() {
        // y[i] += x[0] * a[i]: x[0] invariant read-only.
        let n = 16;
        let mut b = ProgramBuilder::new("ax");
        let x = b.array_f64("x", &[1]);
        let a = b.array_f64("a", &[n]);
        let y = b.array_f64("y", &[n]);
        let i = b.var("i");
        b.for_const(i, 0, n as i64, |b| {
            let xv = b.load(x, &[b.idx_e(mempar_ir::AffineExpr::konst(0))]);
            let av = b.load(a, &[b.idx(i)]);
            let yv = b.load(y, &[b.idx(i)]);
            let prod = b.mul(xv, av);
            let e = b.add(yv, prod);
            b.assign_array(y, &[b.idx(i)], e);
        });
        let mut p = b.finish();
        let (count, new_path) = scalar_replace(&mut p, &NestPath::top(0)).expect("ok");
        assert_eq!(count, 1);
        let l = loop_at(&p, &new_path).expect("loop");
        assert_eq!(count_loads(&l.body), 2, "x[0] hoisted");
        let mut mem = SimMem::new(&p, 1);
        mem.set_array(x, ArrayData::F64(vec![3.0]));
        mem.set_array(a, ArrayData::f64_fill(n, 2.0));
        run_single(&p, &mut mem);
        assert!(mem.read_f64(y).iter().all(|&v| v == 6.0));
    }

    #[test]
    fn aliasing_write_blocks_replacement() {
        // t-candidate a[0] but body writes a[i]: may alias at i=0.
        let n = 8;
        let mut b = ProgramBuilder::new("alias");
        let a = b.array_f64("a", &[n]);
        let i = b.var("i");
        b.for_const(i, 0, n as i64, |b| {
            let first = b.load(a, &[b.idx_e(mempar_ir::AffineExpr::konst(0))]);
            b.assign_array(a, &[b.idx(i)], first);
        });
        let mut p = b.finish();
        let (count, _) = scalar_replace(&mut p, &NestPath::top(0)).expect("ok");
        assert_eq!(count, 0, "possible alias must block replacement");
    }

    #[test]
    fn nested_control_flow_skipped() {
        let mut b = ProgramBuilder::new("ctl");
        let a = b.array_f64("a", &[8]);
        let j = b.var("j");
        let i = b.var("i");
        b.for_const(j, 0, 4, |b| {
            b.for_const(i, 0, 8, |b| {
                let v = b.load(a, &[b.idx(i)]);
                b.assign_array(a, &[b.idx(i)], v);
            });
        });
        let mut p = b.finish();
        // The *outer* loop body contains a loop: bail without changing.
        let (count, path) = scalar_replace(&mut p, &NestPath::top(0)).expect("ok");
        assert_eq!(count, 0);
        assert_eq!(path, NestPath::top(0));
    }
}
