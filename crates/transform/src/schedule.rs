//! Miss-packing local instruction (statement) scheduling — the intra-
//! iteration window-constraint resolution of Section 3.3.
//!
//! For loop bodies larger than an instruction window, independent miss
//! references must sit close together to share a window. This scheduler
//! reorders the body's statements, subject to conservative dependences,
//! so that statements containing leading (potentially missing) references
//! come first. It is the paper's stand-in for balanced scheduling
//! [Kerns & Eggers], with the window-packing priority the paper argues
//! balanced scheduling lacks.

use mempar_analysis::{collect_refs, MissProfile};
use mempar_ir::{Program, Stmt, VarId};

use crate::nest::{loop_at_mut, NestPath};
use crate::TransformError;

/// Reorders the innermost loop body at `path` to pack statements with
/// leading miss references at the top. Returns `true` when the order
/// changed.
pub fn schedule_for_misses(
    prog: &mut Program,
    path: &NestPath,
    line_bytes: usize,
) -> Result<bool, TransformError> {
    let Some(l) = crate::nest::loop_at(prog, path) else {
        return Err(TransformError::NotALoop);
    };
    let var = l.var;
    let body = l.body.clone();
    if body.len() < 2
        || body
            .iter()
            .any(|s| !matches!(s, Stmt::AssignArray { .. } | Stmt::AssignScalar { .. }))
    {
        return Ok(false);
    }
    let order = schedule_order(prog, &body, var, line_bytes);
    let changed = order.iter().enumerate().any(|(a, &b)| a != b);
    if changed {
        let new_body: Vec<Stmt> = order.iter().map(|&i| body[i].clone()).collect();
        let lm = loop_at_mut(prog, path).ok_or(TransformError::NotALoop)?;
        lm.body = new_body;
    }
    Ok(changed)
}

/// Reorders the innermost loop body at `path` in the spirit of
/// *balanced scheduling* (Kerns & Eggers): loads are spread evenly
/// through the body so each gets equal slack, without modeling the
/// window. The paper argues this "may miss some opportunities since it
/// does not explicitly consider window size" — the ablation harness
/// compares it against [`schedule_for_misses`]. Returns whether the
/// order changed.
pub fn schedule_balanced(prog: &mut Program, path: &NestPath) -> Result<bool, TransformError> {
    let Some(l) = crate::nest::loop_at(prog, path) else {
        return Err(TransformError::NotALoop);
    };
    let body = l.body.clone();
    if body.len() < 2
        || body
            .iter()
            .any(|s| !matches!(s, Stmt::AssignArray { .. } | Stmt::AssignScalar { .. }))
    {
        return Ok(false);
    }
    // Partition into load-carrying and compute-only statements, then
    // interleave them evenly, respecting dependences via repair passes.
    let n = body.len();
    let mut is_load_stmt = vec![false; n];
    for (i, s) in body.iter().enumerate() {
        s.visit_local_refs(&mut |_, w| {
            if !w {
                is_load_stmt[i] = true;
            }
        });
    }
    let loads: Vec<usize> = (0..n).filter(|&i| is_load_stmt[i]).collect();
    let others: Vec<usize> = (0..n).filter(|&i| !is_load_stmt[i]).collect();
    if loads.is_empty() || others.is_empty() {
        return Ok(false);
    }
    // Even interleave: one load, then floor(others/loads) compute, ...
    let mut desired = Vec::with_capacity(n);
    let mut oi = 0;
    for (k, &ld) in loads.iter().enumerate() {
        desired.push(ld);
        let upto = ((k + 1) * others.len()) / loads.len();
        while oi < upto {
            desired.push(others[oi]);
            oi += 1;
        }
    }
    while oi < others.len() {
        desired.push(others[oi]);
        oi += 1;
    }
    // Legalize: greedily emit from `desired`, deferring statements whose
    // predecessors have not been placed.
    let mut preds: Vec<Vec<usize>> = vec![Vec::new(); n];
    for b_idx in 0..n {
        for a_idx in 0..b_idx {
            if stmts_conflict(&body[a_idx], &body[b_idx]) {
                preds[b_idx].push(a_idx);
            }
        }
    }
    let mut placed = vec![false; n];
    let mut order = Vec::with_capacity(n);
    let mut pending: Vec<usize> = Vec::new();
    for &cand in &desired {
        pending.push(cand);
        loop {
            let mut advanced = false;
            pending.retain(|&i| {
                if !placed[i] && preds[i].iter().all(|&p| placed[p]) {
                    placed[i] = true;
                    order.push(i);
                    advanced = true;
                    false
                } else {
                    !placed[i]
                }
            });
            if !advanced {
                break;
            }
        }
    }
    // Anything still pending goes in original order (dependences force it).
    for (i, &done) in placed.iter().enumerate() {
        if !done {
            order.push(i);
        }
    }
    let changed = order.iter().enumerate().any(|(a, &b)| a != b);
    if changed {
        let new_body: Vec<Stmt> = order.iter().map(|&i| body[i].clone()).collect();
        let lm = loop_at_mut(prog, path).ok_or(TransformError::NotALoop)?;
        lm.body = new_body;
    }
    Ok(changed)
}

/// Computes the scheduled order (indices into `body`).
fn schedule_order(prog: &Program, body: &[Stmt], var: VarId, line_bytes: usize) -> Vec<usize> {
    let n = body.len();
    let coll = collect_refs(prog, body, var, line_bytes, &MissProfile::pessimistic());
    // Statements carrying a leading load reference get priority.
    let mut is_miss_stmt = vec![false; n];
    for r in coll.leading() {
        if !r.is_write {
            is_miss_stmt[r.stmt_idx] = true;
        }
    }
    // Conservative dependence edges a -> b (a must stay before b).
    let mut preds: Vec<Vec<usize>> = vec![Vec::new(); n];
    for b_idx in 0..n {
        for a_idx in 0..b_idx {
            if stmts_conflict(&body[a_idx], &body[b_idx]) {
                preds[b_idx].push(a_idx);
            }
        }
    }
    // Kahn's algorithm with priority (miss statements first, then
    // original order).
    let mut remaining: Vec<usize> = (0..n).collect();
    let mut placed = vec![false; n];
    let mut order = Vec::with_capacity(n);
    while order.len() < n {
        let ready: Vec<usize> = remaining
            .iter()
            .copied()
            .filter(|&i| preds[i].iter().all(|&p| placed[p]))
            .collect();
        debug_assert!(
            !ready.is_empty(),
            "dependence graph is acyclic by construction"
        );
        let pick = ready
            .iter()
            .copied()
            .find(|&i| is_miss_stmt[i])
            .unwrap_or(ready[0]);
        placed[pick] = true;
        order.push(pick);
        remaining.retain(|&i| i != pick);
    }
    order
}

/// Conservative conflict test: scalar def/use overlap, or same-array
/// access with at least one write.
fn stmts_conflict(a: &Stmt, b: &Stmt) -> bool {
    let (ar, aw_arrays, a_scal_def, a_scal_use) = stmt_effects(a);
    let (br, bw_arrays, b_scal_def, b_scal_use) = stmt_effects(b);
    // Scalar dependences (flow, anti, output).
    if a_scal_def
        .iter()
        .any(|s| b_scal_use.contains(s) || b_scal_def.contains(s))
    {
        return true;
    }
    if a_scal_use.iter().any(|s| b_scal_def.contains(s)) {
        return true;
    }
    // Array dependences: same array with a write on either side.
    if aw_arrays
        .iter()
        .any(|x| br.contains(x) || bw_arrays.contains(x))
    {
        return true;
    }
    if bw_arrays.iter().any(|x| ar.contains(x)) {
        return true;
    }
    false
}

type Effects = (
    Vec<mempar_ir::ArrayId>,  // arrays read
    Vec<mempar_ir::ArrayId>,  // arrays written
    Vec<mempar_ir::ScalarId>, // scalars defined
    Vec<mempar_ir::ScalarId>, // scalars used
);

fn stmt_effects(s: &Stmt) -> Effects {
    let mut read = Vec::new();
    let mut written = Vec::new();
    let mut sdef = Vec::new();
    let mut suse = Vec::new();
    s.visit_local_refs(&mut |r, w| {
        if w {
            written.push(r.array);
        } else {
            read.push(r.array);
        }
        for ix in &r.indices {
            if let Some(mempar_ir::DynIndex::Scalar { scalar, .. }) = &ix.dynamic {
                suse.push(*scalar);
            }
        }
    });
    match s {
        Stmt::AssignScalar { lhs, rhs } => {
            sdef.push(*lhs);
            collect_scalar_uses(rhs, &mut suse);
        }
        Stmt::AssignArray { rhs, .. } => collect_scalar_uses(rhs, &mut suse),
        _ => {}
    }
    (read, written, sdef, suse)
}

fn collect_scalar_uses(e: &mempar_ir::Expr, out: &mut Vec<mempar_ir::ScalarId>) {
    match e {
        mempar_ir::Expr::Scalar(s) => out.push(*s),
        mempar_ir::Expr::Unary(_, a) => collect_scalar_uses(a, out),
        mempar_ir::Expr::Binary(_, a, b) => {
            collect_scalar_uses(a, out);
            collect_scalar_uses(b, out);
        }
        mempar_ir::Expr::Load(r) => {
            for ix in &r.indices {
                match &ix.dynamic {
                    Some(mempar_ir::DynIndex::Scalar { scalar, .. }) => out.push(*scalar),
                    Some(mempar_ir::DynIndex::Indirect { inner, .. }) => {
                        for jx in &inner.indices {
                            if let Some(mempar_ir::DynIndex::Scalar { scalar, .. }) = &jx.dynamic {
                                out.push(*scalar);
                            }
                        }
                    }
                    None => {}
                }
            }
        }
        _ => {}
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mempar_ir::{run_single, ArrayData, ProgramBuilder, SimMem};

    /// Body: compute-heavy statements interleaved with independent
    /// record loads (the Mp3d shape).
    fn mp3d_like() -> (Program, [mempar_ir::ArrayId; 3]) {
        let mut b = ProgramBuilder::new("mp");
        let pos = b.array_f64("pos", &[64, 8]);
        let vel = b.array_f64("vel", &[64, 8]);
        let out = b.array_f64("out", &[64, 8]);
        let t1 = b.scalar_f64("t1", 0.0);
        let t2 = b.scalar_f64("t2", 0.0);
        let t3 = b.scalar_f64("t3", 0.0);
        let i = b.var("i");
        b.for_const(i, 0, 64, |b| {
            let zero = b.idx_e(mempar_ir::AffineExpr::konst(0));
            // record load, then compute, then another (independent)
            // record load buried behind the computation.
            let p0 = b.load(pos, &[b.idx(i), zero.clone()]);
            b.assign_scalar(t1, p0);
            let c1 = b.constf(1.5);
            let t1v = b.scalar(t1);
            let m = b.mul(t1v, c1);
            b.assign_scalar(t2, m);
            let v0 = b.load(vel, &[b.idx(i), zero.clone()]);
            b.assign_scalar(t3, v0);
            let t2v = b.scalar(t2);
            let t3v = b.scalar(t3);
            let s = b.add(t2v, t3v);
            b.assign_array(out, &[b.idx(i), zero], s);
        });
        (b.finish(), [pos, vel, out])
    }

    #[test]
    fn packs_miss_loads_first_and_preserves_results() {
        let (mut p, ids) = mp3d_like();
        let run = |p: &Program| {
            let mut mem = SimMem::new(p, 1);
            mem.set_array(ids[0], ArrayData::F64((0..512).map(|x| x as f64).collect()));
            mem.set_array(
                ids[1],
                ArrayData::F64((0..512).map(|x| (x * 2) as f64).collect()),
            );
            run_single(p, &mut mem);
            mem.read_f64(ids[2])
        };
        let base = run(&p);
        let changed = schedule_for_misses(&mut p, &NestPath::top(0), 64).expect("schedulable");
        assert!(changed, "the vel load should move up");
        assert_eq!(run(&p), base, "scheduling preserves semantics");
        // First two statements are now the two record loads... statement 0
        // defines t1 from pos; the vel consumer moved relative to compute.
        let l = crate::nest::loop_at(&p, &NestPath::top(0)).expect("loop");
        let mut arrays_in_order = Vec::new();
        for s in &l.body {
            s.visit_local_refs(&mut |r, w| {
                if !w {
                    arrays_in_order.push(r.array);
                }
            });
        }
        // vel load should now be among the first loads.
        assert!(
            arrays_in_order[..2.min(arrays_in_order.len())].contains(&ids[1]),
            "{arrays_in_order:?}"
        );
    }

    #[test]
    fn balanced_spreads_clustered_loads_and_preserves() {
        // Loads packed at the top (the miss-packing order): balanced
        // scheduling spreads them back out between the compute.
        let mut b = ProgramBuilder::new("packed");
        let a = b.array_f64("a", &[64]);
        let c = b.array_f64("c", &[64]);
        let out = b.array_f64("out", &[64]);
        let t1 = b.scalar_f64("t1", 0.0);
        let t2 = b.scalar_f64("t2", 0.0);
        let t3 = b.scalar_f64("t3", 0.0);
        let t4 = b.scalar_f64("t4", 0.0);
        let i = b.var("i");
        b.for_const(i, 0, 64, |b| {
            let va = b.load(a, &[b.idx(i)]);
            b.assign_scalar(t1, va);
            let vc = b.load(c, &[b.idx(i)]);
            b.assign_scalar(t2, vc);
            let k = b.constf(1.5);
            let t1v = b.scalar(t1);
            let m1 = b.mul(t1v, k.clone());
            b.assign_scalar(t3, m1);
            let t2v = b.scalar(t2);
            let m2 = b.mul(t2v, k);
            b.assign_scalar(t4, m2);
            let t3v = b.scalar(t3);
            let t4v = b.scalar(t4);
            let sum = b.add(t3v, t4v);
            b.assign_array(out, &[b.idx(i)], sum);
        });
        let mut p = b.finish();
        let run = |p: &Program| {
            let mut mem = SimMem::new(p, 1);
            mem.set_array(a, ArrayData::F64((0..64).map(|x| x as f64).collect()));
            mem.set_array(c, ArrayData::F64((0..64).map(|x| (x * 3) as f64).collect()));
            run_single(p, &mut mem);
            mem.read_f64(out)
        };
        let want = run(&p);
        let changed = schedule_balanced(&mut p, &NestPath::top(0)).expect("ok");
        assert!(changed, "adjacent loads should be spread apart");
        assert_eq!(run(&p), want, "balanced scheduling preserves semantics");
    }

    #[test]
    fn respects_scalar_flow_dependences() {
        // s = a[i]; b[i] = s: order must hold.
        let mut b = ProgramBuilder::new("flow");
        let a = b.array_f64("a", &[8]);
        let c = b.array_f64("c", &[8]);
        let s = b.scalar_f64("s", 0.0);
        let i = b.var("i");
        b.for_const(i, 0, 8, |b| {
            let v = b.load(a, &[b.idx(i)]);
            b.assign_scalar(s, v);
            let sv = b.scalar(s);
            b.assign_array(c, &[b.idx(i)], sv);
        });
        let mut p = b.finish();
        let run = |p: &Program| {
            let mut mem = SimMem::new(p, 1);
            mem.set_array(a, ArrayData::F64((0..8).map(|x| x as f64).collect()));
            run_single(p, &mut mem);
            mem.read_f64(c)
        };
        let base = run(&p);
        schedule_for_misses(&mut p, &NestPath::top(0), 64).expect("ok");
        assert_eq!(run(&p), base);
    }

    #[test]
    fn bodies_with_control_flow_left_alone() {
        let mut b = ProgramBuilder::new("ctl");
        let j = b.var("j");
        let i = b.var("i");
        let a = b.array_f64("a", &[8, 8]);
        b.for_const(j, 0, 8, |b| {
            b.for_const(i, 0, 8, |b| {
                let one = b.constf(1.0);
                b.assign_array(a, &[b.idx(j), b.idx(i)], one);
            });
        });
        let mut p = b.finish();
        let changed = schedule_for_misses(&mut p, &NestPath::top(0), 64).expect("ok");
        assert!(!changed);
    }
}
