//! Software-prefetch insertion — the companion technique the paper
//! discusses (Mowry-style) and whose interaction with clustering its
//! follow-on work [Pai & Adve, TR 9910] studies.
//!
//! For each leading reference of an innermost loop body, a non-binding
//! prefetch is inserted `distance` iterations ahead. Prefetching attacks
//! the *same* latencies as read-miss clustering but differently: it needs
//! neither window space nor MSHR-resident loads, yet it costs address
//! bandwidth and can arrive late or be dropped when MSHRs are full — the
//! very effects that make prefetching "less effective in ILP systems"
//! (Section 1). Combining both lets the benchmark harness reproduce that
//! comparison.

use mempar_analysis::{collect_refs, MissProfile};
use mempar_ir::{AffineExpr, ArrayRef, Program, Stmt};

use crate::nest::{loop_at, loop_at_mut, NestPath};
use crate::subst::subst_ref;
use crate::TransformError;

/// Inserts prefetches into the innermost loop at `path` for every leading
/// reference expected to miss, targeting `distance` iterations ahead.
/// Returns how many prefetch statements were inserted.
///
/// Regular self-spatial references are prefetched one line ahead per
/// `distance/L_m` (rounded up to at least one line); irregular references
/// with an analyzable address (indirect through an affine index) are
/// prefetched by shifting the *index* reference ahead — pointer chases
/// (`p = next[p]`) cannot be prefetched and are skipped, exactly the
/// limitation that motivates clustering them instead.
pub fn insert_prefetches(
    prog: &mut Program,
    path: &NestPath,
    distance: i64,
    line_bytes: usize,
    profile: &MissProfile,
) -> Result<usize, TransformError> {
    let l = loop_at(prog, path).ok_or(TransformError::NotALoop)?.clone();
    if l.step != 1 {
        return Err(TransformError::UnsupportedStep);
    }
    let iv = l.var;
    let coll = collect_refs(prog, &l.body, iv, line_bytes, profile);
    let mut targets: Vec<ArrayRef> = Vec::new();
    for r in coll.leading() {
        // Skip references that rarely miss.
        if r.p_miss < 0.05 && r.irregular {
            continue;
        }
        if r.is_write {
            continue; // write misses are hidden by buffering
        }
        let prefetchable = r.r.indices.iter().all(|ix| match &ix.dynamic {
            None => true,
            Some(mempar_ir::DynIndex::Indirect { inner, .. }) => inner.is_affine(),
            Some(mempar_ir::DynIndex::Scalar { .. }) => false, // pointer chase
        });
        if !prefetchable {
            continue;
        }
        // Shift the whole reference `ahead` iterations forward (for the
        // indirect case this shifts the index load, fetching the datum
        // the future iteration will gather).
        let ahead = if r.self_spatial {
            distance.max(r.l_m as i64)
        } else {
            distance.max(1)
        };
        let shifted = subst_ref(&r.r, iv, &AffineExpr::var(iv).offset(ahead));
        if !targets.contains(&shifted) {
            targets.push(shifted);
        }
    }
    let n = targets.len();
    if n == 0 {
        return Ok(0);
    }
    let lm = loop_at_mut(prog, path).ok_or(TransformError::NotALoop)?;
    for (k, t) in targets.into_iter().enumerate() {
        lm.body.insert(k, Stmt::Prefetch { target: t });
    }
    Ok(n)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mempar_ir::{run_single, ArrayData, Interp, OpKind, ProgramBuilder, SimMem};

    fn streaming(n: usize) -> (Program, mempar_ir::ArrayId, mempar_ir::ArrayId) {
        let mut b = ProgramBuilder::new("s");
        let a = b.array_f64("a", &[n]);
        let out = b.array_f64("out", &[n]);
        let i = b.var("i");
        b.for_const(i, 0, n as i64, |b| {
            let v = b.load(a, &[b.idx(i)]);
            let two = b.constf(2.0);
            let e = b.mul(v, two);
            b.assign_array(out, &[b.idx(i)], e);
        });
        (b.finish(), a, out)
    }

    #[test]
    fn inserts_and_preserves_semantics() {
        let n = 64;
        let (mut p, a, out) = streaming(n);
        let run = |p: &Program| {
            let mut mem = SimMem::new(p, 1);
            mem.set_array(a, ArrayData::F64((0..n).map(|x| x as f64).collect()));
            run_single(p, &mut mem);
            mem.read_f64(out)
        };
        let want = run(&p);
        let k = insert_prefetches(
            &mut p,
            &NestPath::top(0),
            16,
            64,
            &MissProfile::pessimistic(),
        )
        .expect("loop");
        assert_eq!(k, 1, "one read stream prefetched");
        assert_eq!(run(&p), want);
    }

    #[test]
    fn prefetch_ops_appear_in_trace_and_clamp() {
        let n = 32;
        let (mut p, a, _) = streaming(n);
        insert_prefetches(
            &mut p,
            &NestPath::top(0),
            16,
            64,
            &MissProfile::pessimistic(),
        )
        .expect("loop");
        let mut mem = SimMem::new(&p, 1);
        mem.set_array(a, ArrayData::f64_fill(n, 1.0));
        let mut interp = Interp::new(&p, 0, 1);
        let base = mem.base(a);
        let mut count = 0;
        while let Some(op) = interp.next_op(&mut mem) {
            if let OpKind::Prefetch { addr } = op.kind {
                count += 1;
                assert!(
                    (base..base + (n as u64) * 8).contains(&addr),
                    "clamped into the array"
                );
            }
        }
        assert_eq!(count, n, "one prefetch per iteration");
    }

    #[test]
    fn pointer_chase_is_not_prefetchable() {
        let mut b = ProgramBuilder::new("chase");
        let next = b.array_i64("next", &[64]);
        let ps = b.scalar_i64("p", 0);
        let i = b.var("i");
        b.for_const(i, 0, 16, |b| {
            let v = b.load_ref(ArrayRef::new(next, vec![mempar_ir::Index::scalar(ps)]));
            b.assign_scalar(ps, v);
        });
        let mut p = b.finish();
        let k = insert_prefetches(
            &mut p,
            &NestPath::top(0),
            8,
            64,
            &MissProfile::pessimistic(),
        )
        .expect("loop");
        assert_eq!(k, 0, "a chase's address is unknowable ahead of time");
    }

    #[test]
    fn indirect_gather_prefetches_via_shifted_index() {
        let mut b = ProgramBuilder::new("gather");
        let ind = b.array_i64("ind", &[64]);
        let data = b.array_f64("data", &[256]);
        let out = b.array_f64("out", &[64]);
        let i = b.var("i");
        b.for_const(i, 0, 64, |b| {
            let iv = ArrayRef::new(ind, vec![mempar_ir::Index::affine(AffineExpr::var(i))]);
            let v = b.load_ref(ArrayRef::new(data, vec![mempar_ir::Index::indirect(iv)]));
            b.assign_array(out, &[b.idx(i)], v);
        });
        let mut p = b.finish();
        let k = insert_prefetches(
            &mut p,
            &NestPath::top(0),
            8,
            64,
            &MissProfile::pessimistic(),
        )
        .expect("loop");
        // The gather and the index stream are both prefetchable.
        assert!(k >= 1, "{k}");
        let mempar_ir::Stmt::Loop(l) = &p.body[0] else {
            panic!()
        };
        assert!(matches!(l.body[0], Stmt::Prefetch { .. }));
    }
}
