//! Loop transformations for read-miss clustering — the `mempar`
//! reproduction of Pai & Adve, *Code Transformations to Improve Memory
//! Parallelism* (MICRO-32, 1999).
//!
//! The crate provides the transformations of Sections 2–3 and the driver
//! that applies them using the analysis in `mempar-analysis`:
//!
//! * [`unroll_and_jam`] — unroll an outer loop and fuse the inner-loop
//!   copies, with postlude generation, per-copy privatization of
//!   iteration-local scalars, and minimum-trip-count jamming of
//!   variable-length inner loops (the MST treatment).
//! * [`inner_unroll`] — order-preserving inner-loop unrolling for window
//!   constraints.
//! * [`interchange`] / [`strip_mine`] — the Figure 2(b)/(c)
//!   alternatives, also used for postlude interchange.
//! * [`scalar_replace`] — invariant-reference replacement (the CPU-side
//!   benefit the paper observes in FFT and LU).
//! * [`schedule_for_misses`] — local scheduling that packs leading miss
//!   references together (Section 3.3).
//! * [`cluster_program`] — the whole-program driver with the binary
//!   search on unroll degree.
//!
//! # Example
//!
//! ```
//! use mempar_ir::ProgramBuilder;
//! use mempar_analysis::{MachineSummary, MissProfile};
//! use mempar_transform::cluster_program;
//!
//! let mut b = ProgramBuilder::new("row");
//! let a = b.array_f64("a", &[64, 64]);
//! let s = b.scalar_f64("sum", 0.0);
//! let (j, i) = (b.var("j"), b.var("i"));
//! b.for_const(j, 0, 64, |b| {
//!     b.for_const(i, 0, 64, |b| {
//!         let v = b.load(a, &[b.idx(j), b.idx(i)]);
//!         let acc = b.scalar(s);
//!         let sum = b.add(acc, v);
//!         b.assign_scalar(s, sum);
//!     });
//! });
//! let mut prog = b.finish();
//! let report = cluster_program(
//!     &mut prog,
//!     &MachineSummary::base(),
//!     &MissProfile::pessimistic(),
//! );
//! assert!(report.decisions[0].uaj_degree > 1);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod driver;
mod fuse;
mod interchange;
mod legality;
mod nest;
mod prefetch;
mod scalar_replace;
mod schedule;
mod subst;
mod unroll;

pub use driver::{cluster_program, ClusterReport, NestDecision};
pub use fuse::{fuse_adjacent_loops, fuse_next};
pub use interchange::{interchange, interchange_postlude, interchange_with, strip_mine};
pub use legality::{
    all_refs, can_interchange, can_unroll_and_jam, collect_ranges, pair_dependence, PairDep,
    VarRanges,
};
pub use nest::{
    contains_loop, contains_sync, enclosing_vars, innermost_loops, loop_at, loop_at_mut, NestPath,
};
pub use prefetch::insert_prefetches;
pub use scalar_replace::{count_loads, scalar_replace};
pub use schedule::{schedule_balanced, schedule_for_misses};
pub use subst::{
    affine_to_expr, assigned_scalars, bound_to_expr, first_access_is_def, subst_body, subst_expr,
    subst_ref, subst_stmt,
};
pub use unroll::{inner_unroll, unroll_and_jam, unroll_and_jam_with, UnrollResult};

/// Whether a transformation entry point consults the conservative
/// dependence tests before rewriting.
///
/// The default everywhere is [`Legality::Enforce`]. [`Legality::Bypass`]
/// exists for the differential-testing harness (`crates/difftest`): by
/// forcing a rewrite that the dependence framework rejected and checking
/// whether the result diverges from the oracle (or fails validation), the
/// harness classifies each rejection as *justified* or merely
/// *conservative* — and, crucially, proves the enforcement path is
/// load-bearing. Structural requirements (step, loop shape, jammability)
/// are still enforced under `Bypass`; only the dependence test is skipped.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Legality {
    /// Run the dependence tests and refuse illegal applications.
    #[default]
    Enforce,
    /// Skip the dependence tests and rewrite unconditionally. The result
    /// may be semantically wrong — callers must check it against an
    /// oracle. Never use outside testing.
    Bypass,
}

impl Legality {
    /// True when dependence tests must pass before rewriting.
    pub fn enforced(self) -> bool {
        matches!(self, Legality::Enforce)
    }
}

/// Why a transformation could not be applied.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TransformError {
    /// The path does not lead to a loop.
    NotALoop,
    /// Only unit-step loops are transformed.
    UnsupportedStep,
    /// The conservative dependence test could not prove legality.
    IllegalDependence,
    /// Inner loops could not be jammed (mismatched structure/bounds).
    UnjammableInnerLoop,
    /// The body contains synchronization.
    SyncInBody,
    /// Interchange needs a perfect rectangular 2-nest.
    NotPerfectNest,
}

impl std::fmt::Display for TransformError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let msg = match self {
            TransformError::NotALoop => "path does not lead to a loop",
            TransformError::UnsupportedStep => "only unit-step loops are supported",
            TransformError::IllegalDependence => "dependences prevent the transformation",
            TransformError::UnjammableInnerLoop => "inner loops cannot be jammed",
            TransformError::SyncInBody => "synchronization in the loop body",
            TransformError::NotPerfectNest => "not a perfect rectangular nest",
        };
        f.write_str(msg)
    }
}

impl std::error::Error for TransformError {}
