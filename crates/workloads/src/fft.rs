//! FFT — the SPLASH-2 six-step 1-D complex FFT: the N-point transform is
//! computed on a √N × √N matrix as transpose, row FFTs, twiddle scaling,
//! transpose, row FFTs, transpose.
//!
//! The row FFTs are iterative radix-2 with a bit-reversal gather (an
//! irregular reference) and per-stage butterfly nests whose coupled
//! `2m·g + x` subscripts exercise the dependence tester's modular
//! reasoning; the transposes are the strided-read phases.

use std::f64::consts::PI;

use mempar_ir::{AffineExpr, ArrayData, ArrayId, ArrayRef, Dist, Index, ProgramBuilder, VarId};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::workload::Workload;

/// Parameters for [`fft`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FftParams {
    /// Points; must be a power of 4 (Table 2: 65536 = 256²).
    pub points: usize,
    /// RNG seed for the input signal.
    pub seed: u64,
}

impl FftParams {
    /// The paper's simulated input scaled by `scale`.
    pub fn scaled(scale: f64) -> Self {
        let target = (65_536.0 * scale) as usize;
        let mut points = 256; // minimum 16x16
        while points * 4 <= target {
            points *= 4;
        }
        FftParams {
            points,
            seed: 0xff7,
        }
    }

    /// Matrix side (√points).
    pub fn side(&self) -> usize {
        let mut s = 1usize;
        while s * s < self.points {
            s *= 2;
        }
        s
    }
}

/// Builds the FFT workload. The transformed signal ends up in the
/// `b_re`/`b_im` output arrays, ordered `x_hat[k2*side + k1]` row-major.
///
/// # Panics
/// Panics when `points` is not a power of 4 (the matrix must be square
/// with power-of-two sides).
pub fn fft(params: FftParams) -> Workload {
    let l = params.side();
    assert_eq!(l * l, params.points, "points must be a power of 4");
    assert!(
        l >= 16 && l.is_power_of_two(),
        "side must be >= 16 (8x8 transpose tiles)"
    );
    let stages = l.trailing_zeros() as usize;
    let li = l as i64;

    let mut b = ProgramBuilder::new("fft");
    let a_re = b.array_f64("a_re", &[l, l]);
    let a_im = b.array_f64("a_im", &[l, l]);
    let b_re = b.array_f64("b_re", &[l, l]);
    let b_im = b.array_f64("b_im", &[l, l]);
    let tw_re = b.array_f64("tw_re", &[l, l]);
    let tw_im = b.array_f64("tw_im", &[l, l]);
    let st_re = b.array_f64("st_re", &[stages, l / 2]);
    let st_im = b.array_f64("st_im", &[stages, l / 2]);
    let rev = b.array_i64("rev", &[l]);
    let t_re = b.scalar_f64("t_re", 0.0);
    let t_im = b.scalar_f64("t_im", 0.0);
    let u_re = b.scalar_f64("u_re", 0.0);
    let u_im = b.scalar_f64("u_im", 0.0);

    // ---- helpers -------------------------------------------------------
    // Blocked transpose, as in the SPLASH-2 FFT: 8x8 tiles keep spatial
    // locality on both the read and write sides (one miss per line, not
    // one per element), which is precisely what makes read-miss
    // clustering worthwhile here.
    const TB: i64 = 8;
    let transpose = |b: &mut ProgramBuilder,
                     tag: &str,
                     src: (ArrayId, ArrayId),
                     dst: (ArrayId, ArrayId)| {
        let rb = b.var(format!("tr_rb{tag}"));
        let cb = b.var(format!("tr_cb{tag}"));
        let r0 = b.var(format!("tr_r{tag}"));
        let c0 = b.var(format!("tr_c{tag}"));
        let row = |blk: mempar_ir::VarId, off: mempar_ir::VarId| {
            AffineExpr::scaled_var(blk, TB, 0).add(&AffineExpr::var(off))
        };
        b.for_dist(rb, 0, li / TB, Dist::Block, |b| {
            b.for_const(cb, 0, li / TB, |b| {
                b.for_const(r0, 0, TB, |b| {
                    b.for_const(c0, 0, TB, |b| {
                        let vr = b.load(src.0, &[b.idx_e(row(cb, c0)), b.idx_e(row(rb, r0))]);
                        b.assign_array(dst.0, &[b.idx_e(row(rb, r0)), b.idx_e(row(cb, c0))], vr);
                        let vi = b.load(src.1, &[b.idx_e(row(cb, c0)), b.idx_e(row(rb, r0))]);
                        b.assign_array(dst.1, &[b.idx_e(row(rb, r0)), b.idx_e(row(cb, c0))], vi);
                    });
                });
            });
        });
        b.barrier();
    };

    // Row FFT over `dst` rows: bit-reversal gather from `src` into `dst`,
    // then in-place butterfly stages.
    let row_fft = |b: &mut ProgramBuilder,
                   tag: &str,
                   src: (ArrayId, ArrayId),
                   dst: (ArrayId, ArrayId)| {
        let r = b.var(format!("f_r{tag}"));
        let c = b.var(format!("f_c{tag}"));
        let gvars: Vec<VarId> = (0..stages)
            .map(|s| b.var(format!("f_g{tag}_{s}")))
            .collect();
        let xvars: Vec<VarId> = (0..stages)
            .map(|s| b.var(format!("f_x{tag}_{s}")))
            .collect();
        b.for_dist(r, 0, li, Dist::Block, |b| {
            // Gather in bit-reversed order.
            b.for_const(c, 0, li, |b| {
                let rv = ArrayRef::new(rev, vec![Index::affine(AffineExpr::var(c))]);
                let gre = b.load_ref(ArrayRef::new(
                    src.0,
                    vec![
                        Index::affine(AffineExpr::var(r)),
                        Index::indirect(rv.clone()),
                    ],
                ));
                b.assign_array(dst.0, &[b.idx(r), b.idx(c)], gre);
                let gim = b.load_ref(ArrayRef::new(
                    src.1,
                    vec![Index::affine(AffineExpr::var(r)), Index::indirect(rv)],
                ));
                b.assign_array(dst.1, &[b.idx(r), b.idx(c)], gim);
            });
            // log2(l) butterfly stages.
            for s in 0..stages {
                let m = 1i64 << s;
                let g = gvars[s];
                let x = xvars[s];
                b.for_const(g, 0, li / (2 * m), |b| {
                    b.for_const(x, 0, m, |b| {
                        let i0 =
                            |v: VarId| AffineExpr::scaled_var(v, 2 * m, 0).add(&AffineExpr::var(x));
                        let hi = |v: VarId| i0(v).offset(m);
                        let wr = b.load(st_re, &[b.idx_e(AffineExpr::konst(s as i64)), b.idx(x)]);
                        let wi = b.load(st_im, &[b.idx_e(AffineExpr::konst(s as i64)), b.idx(x)]);
                        let hre = b.load(dst.0, &[b.idx(r), b.idx_e(hi(g))]);
                        let him = b.load(dst.1, &[b.idx(r), b.idx_e(hi(g))]);
                        // t = w * hi
                        let p1 = b.mul(wr.clone(), hre.clone());
                        let p2 = b.mul(wi.clone(), him.clone());
                        let tre = b.sub(p1, p2);
                        b.assign_scalar(t_re, tre);
                        let p3 = b.mul(wr, him);
                        let p4 = b.mul(wi, hre);
                        let tim = b.add(p3, p4);
                        b.assign_scalar(t_im, tim);
                        // u = lo
                        let lre = b.load(dst.0, &[b.idx(r), b.idx_e(i0(g))]);
                        b.assign_scalar(u_re, lre);
                        let lim = b.load(dst.1, &[b.idx(r), b.idx_e(i0(g))]);
                        b.assign_scalar(u_im, lim);
                        // lo = u + t ; hi = u - t
                        let ur = b.scalar(u_re);
                        let tr = b.scalar(t_re);
                        let sum_r = b.add(ur.clone(), tr.clone());
                        b.assign_array(dst.0, &[b.idx(r), b.idx_e(i0(g))], sum_r);
                        let diff_r = b.sub(ur, tr);
                        b.assign_array(dst.0, &[b.idx(r), b.idx_e(hi(g))], diff_r);
                        let ui = b.scalar(u_im);
                        let ti = b.scalar(t_im);
                        let sum_i = b.add(ui.clone(), ti.clone());
                        b.assign_array(dst.1, &[b.idx(r), b.idx_e(i0(g))], sum_i);
                        let diff_i = b.sub(ui, ti);
                        b.assign_array(dst.1, &[b.idx(r), b.idx_e(hi(g))], diff_i);
                    });
                });
            }
        });
        b.barrier();
    };

    // ---- the six steps --------------------------------------------------
    transpose(&mut b, "1", (a_re, a_im), (b_re, b_im)); // 1: B = A^T
    row_fft(&mut b, "2", (b_re, b_im), (a_re, a_im)); // 2: A = rowfft(B)
    {
        // 3: A[j,i] *= tw[j,i]
        let j = b.var("tw_j");
        let i = b.var("tw_i");
        b.for_dist(j, 0, li, Dist::Block, |b| {
            b.for_const(i, 0, li, |b| {
                // Both products are computed into scalars before either
                // store: reusing the load expressions after the a_re
                // store would re-read the already-updated element.
                let ar = b.load(a_re, &[b.idx(j), b.idx(i)]);
                let ai = b.load(a_im, &[b.idx(j), b.idx(i)]);
                let wr = b.load(tw_re, &[b.idx(j), b.idx(i)]);
                let wi = b.load(tw_im, &[b.idx(j), b.idx(i)]);
                let p1 = b.mul(ar.clone(), wr.clone());
                let p2 = b.mul(ai.clone(), wi.clone());
                let nre = b.sub(p1, p2);
                b.assign_scalar(t_re, nre);
                let p3 = b.mul(ar, wi);
                let p4 = b.mul(ai, wr);
                let nim = b.add(p3, p4);
                b.assign_scalar(t_im, nim);
                let vr = b.scalar(t_re);
                b.assign_array(a_re, &[b.idx(j), b.idx(i)], vr);
                let vi = b.scalar(t_im);
                b.assign_array(a_im, &[b.idx(j), b.idx(i)], vi);
            });
        });
        b.barrier();
    }
    transpose(&mut b, "4", (a_re, a_im), (b_re, b_im)); // 4: B = A^T
    row_fft(&mut b, "5", (b_re, b_im), (a_re, a_im)); // 5: A = rowfft(B)
    transpose(&mut b, "6", (a_re, a_im), (b_re, b_im)); // 6: B = A^T (result)
    let program = b.finish();

    // ---- data ----------------------------------------------------------
    let mut rng = StdRng::seed_from_u64(params.seed);
    let sig_re: Vec<f64> = (0..l * l).map(|_| rng.gen_range(-1.0..1.0)).collect();
    let sig_im: Vec<f64> = (0..l * l).map(|_| rng.gen_range(-1.0..1.0)).collect();
    // Bit-reverse table.
    let mut rev_data = vec![0i64; l];
    for (i, slot) in rev_data.iter_mut().enumerate() {
        *slot = (i.reverse_bits() >> (usize::BITS - stages as u32)) as i64;
    }
    // Stage twiddles: e^{-2 pi i x / 2m}.
    let mut st_re_d = vec![0.0f64; stages * (l / 2)];
    let mut st_im_d = vec![0.0f64; stages * (l / 2)];
    for s in 0..stages {
        let m = 1usize << s;
        for x in 0..m {
            let ang = -2.0 * PI * (x as f64) / (2.0 * m as f64);
            st_re_d[s * (l / 2) + x] = ang.cos();
            st_im_d[s * (l / 2) + x] = ang.sin();
        }
    }
    // Inter-FFT twiddles: tw[c][k1] = e^{-2 pi i c k1 / N}.
    let nf = (l * l) as f64;
    let mut tw_re_d = vec![0.0f64; l * l];
    let mut tw_im_d = vec![0.0f64; l * l];
    for c in 0..l {
        for k1 in 0..l {
            let ang = -2.0 * PI * (c as f64) * (k1 as f64) / nf;
            tw_re_d[c * l + k1] = ang.cos();
            tw_im_d[c * l + k1] = ang.sin();
        }
    }

    Workload {
        name: "fft".into(),
        program,
        data: vec![
            (a_re, ArrayData::F64(sig_re)),
            (a_im, ArrayData::F64(sig_im)),
            (b_re, ArrayData::Zero),
            (b_im, ArrayData::Zero),
            (tw_re, ArrayData::F64(tw_re_d)),
            (tw_im, ArrayData::F64(tw_im_d)),
            (st_re, ArrayData::F64(st_re_d)),
            (st_im, ArrayData::F64(st_im_d)),
            (rev, ArrayData::I64(rev_data)),
        ],
        l2_bytes: 64 * 1024,
        mp_procs: 16,
        outputs: vec![b_re, b_im],
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mempar_ir::{run_parallel_functional, run_single};

    fn naive_dft(re: &[f64], im: &[f64]) -> (Vec<f64>, Vec<f64>) {
        let n = re.len();
        let mut or = vec![0.0; n];
        let mut oi = vec![0.0; n];
        for (k, (orr, oii)) in or.iter_mut().zip(oi.iter_mut()).enumerate() {
            for j in 0..n {
                let ang = -2.0 * PI * (k as f64) * (j as f64) / (n as f64);
                let (s, c) = ang.sin_cos();
                *orr += re[j] * c - im[j] * s;
                *oii += re[j] * s + im[j] * c;
            }
        }
        (or, oi)
    }

    #[test]
    fn matches_naive_dft() {
        let params = FftParams {
            points: 256,
            seed: 42,
        };
        let w = fft(params);
        let mut mem = w.memory(1);
        // Input viewed as x[r*L + c] from the A matrices.
        let in_re = mem.read_f64(mempar_ir::ArrayId::from_raw(0));
        let in_im = mem.read_f64(mempar_ir::ArrayId::from_raw(1));
        run_single(&w.program, &mut mem);
        let out_re = mem.read_f64(w.outputs[0]);
        let out_im = mem.read_f64(w.outputs[1]);
        let (er, ei) = naive_dft(&in_re, &in_im);
        for k in 0..256 {
            assert!(
                (out_re[k] - er[k]).abs() < 1e-5 && (out_im[k] - ei[k]).abs() < 1e-5,
                "bin {k}: got ({}, {}), want ({}, {})",
                out_re[k],
                out_im[k],
                er[k],
                ei[k]
            );
        }
    }

    #[test]
    fn parallel_matches_sequential() {
        let w = fft(FftParams {
            points: 256,
            seed: 7,
        });
        let mut m1 = w.memory(1);
        run_single(&w.program, &mut m1);
        let mut m4 = w.memory(4);
        run_parallel_functional(&w.program, &mut m4, 4);
        assert_eq!(w.read_outputs(&m1), w.read_outputs(&m4));
    }

    #[test]
    fn side_is_sqrt() {
        assert_eq!(
            FftParams {
                points: 65536,
                seed: 0
            }
            .side(),
            256
        );
        assert_eq!(
            FftParams {
                points: 256,
                seed: 0
            }
            .side(),
            16
        );
    }

    #[test]
    #[should_panic(expected = "power of 4")]
    fn rejects_non_square() {
        fft(FftParams {
            points: 512,
            seed: 0,
        });
    }
}
