//! The evaluation workload catalog — Table 2 of the paper.

use crate::em3d::{em3d, Em3dParams};
use crate::erlebacher::{erlebacher, ErlebacherParams};
use crate::fft::{fft, FftParams};
use crate::latbench::{latbench, LatbenchParams};
use crate::lu::{lu, LuParams};
use crate::mp3d::{mp3d, Mp3dParams};
use crate::mst::{mst, MstParams};
use crate::ocean::{ocean, OceanParams};
use crate::workload::Workload;

/// Application identifiers, in the paper's presentation order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum App {
    /// The latency-detection microbenchmark.
    Latbench,
    /// Electromagnetic propagation (Split-C).
    Em3d,
    /// 3-D tridiagonal solver (ICASE).
    Erlebacher,
    /// Six-step complex FFT (SPLASH-2).
    Fft,
    /// Blocked dense LU (SPLASH-2).
    Lu,
    /// Rarefied flow (SPLASH).
    Mp3d,
    /// Minimal spanning tree (Olden).
    Mst,
    /// Eddy-current simulation (SPLASH-2).
    Ocean,
}

impl App {
    /// Every application, in order.
    pub fn all() -> [App; 8] {
        [
            App::Latbench,
            App::Em3d,
            App::Erlebacher,
            App::Fft,
            App::Lu,
            App::Mp3d,
            App::Mst,
            App::Ocean,
        ]
    }

    /// The scientific applications of Figure 3 (everything but Latbench).
    pub fn applications() -> [App; 7] {
        [
            App::Em3d,
            App::Erlebacher,
            App::Fft,
            App::Lu,
            App::Mp3d,
            App::Mst,
            App::Ocean,
        ]
    }

    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            App::Latbench => "Latbench",
            App::Em3d => "Em3d",
            App::Erlebacher => "Erlebacher",
            App::Fft => "FFT",
            App::Lu => "LU",
            App::Mp3d => "Mp3d",
            App::Mst => "MST",
            App::Ocean => "Ocean",
        }
    }

    /// The Table 2 input-size description (simulated system).
    pub fn input_desc(self) -> &'static str {
        match self {
            App::Latbench => "6.4M data size",
            App::Em3d => "32K nodes, deg. 20, 20% rem.",
            App::Erlebacher => "64x64x64 cube, block 8",
            App::Fft => "65536 points",
            App::Lu => "256x256 matrix, block 16",
            App::Mp3d => "100K particles",
            App::Mst => "1024 nodes",
            App::Ocean => "258x258 grid",
        }
    }

    /// Builds the workload at `scale` (1.0 = the paper's simulated input
    /// size; smaller values shrink the dominant dimension accordingly).
    pub fn build(self, scale: f64) -> Workload {
        match self {
            App::Latbench => latbench(LatbenchParams::scaled(scale)),
            App::Em3d => em3d(Em3dParams::scaled(scale)),
            App::Erlebacher => erlebacher(ErlebacherParams::scaled(scale)),
            App::Fft => fft(FftParams::scaled(scale)),
            App::Lu => lu(LuParams::scaled(scale)),
            App::Mp3d => mp3d(Mp3dParams::scaled(scale)),
            App::Mst => mst(MstParams::scaled(scale)),
            App::Ocean => ocean(OceanParams::scaled(scale)),
        }
    }

    /// Whether the paper runs this application in the multiprocessor
    /// experiments (MST and, on the real machine, Mp3d are
    /// uniprocessor-only).
    pub fn runs_multiprocessor(self) -> bool {
        !matches!(self, App::Mst | App::Latbench)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_apps_build_tiny() {
        for app in App::all() {
            let w = app.build(0.02);
            assert!(!w.program.body.is_empty(), "{} has a body", app.name());
            assert!(!w.data.is_empty());
            let _ = w.memory(1);
        }
    }

    #[test]
    fn mp_proc_counts_match_table2() {
        assert_eq!(App::Em3d.build(0.02).mp_procs, 16);
        assert_eq!(App::Erlebacher.build(0.02).mp_procs, 16);
        assert_eq!(App::Fft.build(0.02).mp_procs, 16);
        assert_eq!(App::Lu.build(0.02).mp_procs, 8);
        assert_eq!(App::Mp3d.build(0.02).mp_procs, 8);
        assert_eq!(App::Mst.build(0.02).mp_procs, 1);
        assert_eq!(App::Ocean.build(0.02).mp_procs, 8);
    }

    #[test]
    fn l2_sizes_match_paper() {
        // 64 KB for Erlebacher, FFT, LU, Mp3d; 1 MB for Em3d, MST, Ocean.
        assert_eq!(App::Erlebacher.build(0.02).l2_bytes, 64 * 1024);
        assert_eq!(App::Fft.build(0.02).l2_bytes, 64 * 1024);
        assert_eq!(App::Lu.build(0.02).l2_bytes, 64 * 1024);
        assert_eq!(App::Mp3d.build(0.02).l2_bytes, 64 * 1024);
        assert_eq!(App::Em3d.build(0.02).l2_bytes, 1024 * 1024);
        assert_eq!(App::Mst.build(0.02).l2_bytes, 1024 * 1024);
        assert_eq!(App::Ocean.build(0.02).l2_bytes, 1024 * 1024);
    }
}
