//! Em3d — electromagnetic wave propagation on a bipartite graph
//! (Split-C application, adapted to shared memory as in the paper).
//!
//! Each iteration updates every E node from its H-node dependencies and
//! vice versa: `value[n] -= coeff[n,k] * value[from[n,k]]`. The `from`
//! and `coeff` streams carry cache-line recurrences; the gathered
//! `value[from[...]]` references are irregular. Clustering unroll-and-jams
//! the (parallel) node loop.

use mempar_ir::{AffineExpr, ArrayData, ArrayRef, Dist, Index, ProgramBuilder};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::workload::Workload;

/// Parameters for [`em3d`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Em3dParams {
    /// Nodes per side (E and H each).
    pub nodes: usize,
    /// Dependencies per node (Table 2: degree 20).
    pub degree: usize,
    /// Fraction of dependencies crossing the block partition
    /// (Table 2: 20 % remote).
    pub remote_frac: f64,
    /// Relaxation iterations.
    pub iters: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Em3dParams {
    /// The paper's simulated input (32 K nodes, degree 20, 20 % remote)
    /// scaled by `scale`.
    pub fn scaled(scale: f64) -> Self {
        Em3dParams {
            nodes: ((32_000.0 * scale) as usize).max(512),
            degree: 20,
            remote_frac: 0.20,
            iters: 2,
            seed: 0xe3d,
        }
    }
}

/// Builds the Em3d workload.
pub fn em3d(params: Em3dParams) -> Workload {
    let Em3dParams {
        nodes,
        degree,
        remote_frac,
        iters,
        seed,
    } = params;
    let mut b = ProgramBuilder::new("em3d");
    let value_e = b.array_f64("value_e", &[nodes]);
    let value_h = b.array_f64("value_h", &[nodes]);
    let from_h = b.array_i64("from_h", &[nodes, degree]);
    let coeff_h = b.array_f64("coeff_h", &[nodes, degree]);
    let from_e = b.array_i64("from_e", &[nodes, degree]);
    let coeff_e = b.array_f64("coeff_e", &[nodes, degree]);
    let acc = b.scalar_f64("acc", 0.0);
    let t = b.var("t");
    let n = b.var("n");
    let k = b.var("k");
    let n2 = b.var("n2");
    let k2 = b.var("k2");

    b.for_const(t, 0, iters as i64, |b| {
        // H update phase.
        b.for_dist(n, 0, nodes as i64, Dist::Block, |b| {
            let init = b.load(value_h, &[b.idx(n)]);
            b.assign_scalar(acc, init);
            b.for_const(k, 0, degree as i64, |b| {
                let c = b.load(coeff_h, &[b.idx(n), b.idx(k)]);
                let dep = ArrayRef::new(
                    from_h,
                    vec![
                        Index::affine(AffineExpr::var(n)),
                        Index::affine(AffineExpr::var(k)),
                    ],
                );
                let v = b.load_ref(ArrayRef::new(value_e, vec![Index::indirect(dep)]));
                let prod = b.mul(c, v);
                let a0 = b.scalar(acc);
                let e = b.sub(a0, prod);
                b.assign_scalar(acc, e);
            });
            let fin = b.scalar(acc);
            b.assign_array(value_h, &[b.idx(n)], fin);
        });
        b.barrier();
        // E update phase.
        b.for_dist(n2, 0, nodes as i64, Dist::Block, |b| {
            let init = b.load(value_e, &[b.idx(n2)]);
            b.assign_scalar(acc, init);
            b.for_const(k2, 0, degree as i64, |b| {
                let c = b.load(coeff_e, &[b.idx(n2), b.idx(k2)]);
                let dep = ArrayRef::new(
                    from_e,
                    vec![
                        Index::affine(AffineExpr::var(n2)),
                        Index::affine(AffineExpr::var(k2)),
                    ],
                );
                let v = b.load_ref(ArrayRef::new(value_h, vec![Index::indirect(dep)]));
                let prod = b.mul(c, v);
                let a0 = b.scalar(acc);
                let e = b.sub(a0, prod);
                b.assign_scalar(acc, e);
            });
            let fin = b.scalar(acc);
            b.assign_array(value_e, &[b.idx(n2)], fin);
        });
        b.barrier();
    });
    let program = b.finish();

    // Graph: each node depends on `degree` nodes of the other side,
    // mostly within its own block partition, `remote_frac` crossing.
    let mut rng = StdRng::seed_from_u64(seed);
    let mk_edges = |rng: &mut StdRng| -> Vec<i64> {
        let mut edges = Vec::with_capacity(nodes * degree);
        // Partition granularity mirrors the 16-way block distribution.
        let parts = 16usize;
        let part = (nodes / parts).max(1);
        for nd in 0..nodes {
            let my_part = nd / part;
            for _ in 0..degree {
                let dest_part = if rng.gen_bool(remote_frac) {
                    rng.gen_range(0..parts.min(nodes))
                } else {
                    my_part
                };
                let lo = (dest_part * part).min(nodes - 1);
                let hi = ((dest_part + 1) * part).min(nodes);
                edges.push(rng.gen_range(lo..hi.max(lo + 1)) as i64);
            }
        }
        edges
    };
    let mk_coeffs = |rng: &mut StdRng| -> Vec<f64> {
        (0..nodes * degree)
            .map(|_| rng.gen_range(-0.01..0.01))
            .collect()
    };
    let from_h_data = mk_edges(&mut rng);
    let from_e_data = mk_edges(&mut rng);
    let coeff_h_data = mk_coeffs(&mut rng);
    let coeff_e_data = mk_coeffs(&mut rng);
    let init_vals: Vec<f64> = (0..nodes).map(|x| ((x % 100) as f64) / 100.0).collect();

    Workload {
        name: "em3d".into(),
        program,
        data: vec![
            (value_e, ArrayData::F64(init_vals.clone())),
            (value_h, ArrayData::F64(init_vals)),
            (from_h, ArrayData::I64(from_h_data)),
            (coeff_h, ArrayData::F64(coeff_h_data)),
            (from_e, ArrayData::I64(from_e_data)),
            (coeff_e, ArrayData::F64(coeff_e_data)),
        ],
        l2_bytes: 1024 * 1024,
        mp_procs: 16,
        outputs: vec![value_e, value_h],
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mempar_ir::{run_parallel_functional, run_single};

    fn small() -> Em3dParams {
        Em3dParams {
            nodes: 256,
            degree: 4,
            remote_frac: 0.2,
            iters: 1,
            seed: 1,
        }
    }

    #[test]
    fn runs_and_touches_every_node() {
        let w = em3d(small());
        let mut mem = w.memory(1);
        let s = run_single(&w.program, &mut mem);
        // 2 phases x 256 nodes x (1 + 4*(coeff+from+value)) loads.
        assert_eq!(s.loads, 2 * 256 * (1 + 4 * 3));
        assert_eq!(s.stores, 2 * 256);
    }

    #[test]
    fn parallel_run_matches_sequential() {
        let w = em3d(small());
        let mut m1 = w.memory(1);
        run_single(&w.program, &mut m1);
        let mut m4 = w.memory(4);
        run_parallel_functional(&w.program, &mut m4, 4);
        assert_eq!(w.read_outputs(&m1), w.read_outputs(&m4));
    }

    #[test]
    fn edges_in_range() {
        let w = em3d(small());
        let (_, ArrayData::I64(edges)) = &w.data[2] else {
            panic!()
        };
        assert!(edges.iter().all(|&e| (0..256).contains(&e)));
    }

    #[test]
    fn values_change_from_initial() {
        let w = em3d(small());
        let mut mem = w.memory(1);
        let before = mem.read_f64(mempar_ir::ArrayId::from_raw(1));
        run_single(&w.program, &mut mem);
        let after = mem.read_f64(mempar_ir::ArrayId::from_raw(1));
        assert_ne!(before, after);
        assert!(after.iter().all(|v| v.is_finite()));
    }
}
