//! MST — minimal spanning tree from the Olden benchmarks, dominated by
//! hash-table lookups that chase linked lists of varying length.
//!
//! Each outer iteration walks one bucket's chain (an address recurrence).
//! The chains have *variable* length, so unroll-and-jam fuses only up to
//! the minimum of the jammed copies' lengths and finishes each copy in a
//! remainder loop — exactly the paper's treatment ("only the minimum
//! length seen in the unrolled copies is fused"). The outer loop is
//! treated as explicitly parallel, as the paper assumes.

use mempar_ir::{ArrayData, ArrayRef, Dist, Index, ProgramBuilder};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::workload::Workload;

/// Parameters for [`mst`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MstParams {
    /// Graph vertices (Table 2: 1024). Each vertex does a round of hash
    /// lookups.
    pub vertices: usize,
    /// Hash-chain pool size (nodes across all buckets).
    pub pool: usize,
    /// Mean chain length.
    pub mean_chain: usize,
    /// RNG seed.
    pub seed: u64,
}

impl MstParams {
    /// The paper's input (1024 vertices) scaled by `scale`.
    pub fn scaled(scale: f64) -> Self {
        let vertices = ((1024.0 * scale) as usize).max(128);
        MstParams {
            vertices,
            // The hash table must dwarf the (scaled) 1 MB-class cache so
            // chases miss, as on the paper's input.
            pool: (vertices * 256).max(32_768),
            mean_chain: 8,
            seed: 0x357,
        }
    }
}

/// Builds the MST workload.
pub fn mst(params: MstParams) -> Workload {
    let MstParams {
        vertices,
        pool,
        mean_chain,
        seed,
    } = params;
    let mut b = ProgramBuilder::new("mst");
    let bucket_head = b.array_i64("bucket_head", &[vertices]);
    let chain_len = b.array_i64("chain_len", &[vertices]);
    let next = b.array_i64("next", &[pool]);
    let weight = b.array_f64("weight", &[pool]);
    let best = b.array_f64("best", &[vertices]);
    let len_s = b.scalar_i64("len", 0);
    let p_s = b.scalar_i64("p", 0);
    let min_s = b.scalar_f64("wmin", 0.0);
    let v = b.var("v");
    let k = b.var("k");

    b.for_dist(v, 0, vertices as i64, Dist::Block, |b| {
        let l0 = b.load(chain_len, &[b.idx(v)]);
        b.assign_scalar(len_s, l0);
        let h0 = b.load(bucket_head, &[b.idx(v)]);
        b.assign_scalar(p_s, h0);
        let big = b.constf(1.0e30);
        b.assign_scalar(min_s, big);
        b.for_scalar(k, 0, len_s, |b| {
            let w = b.load_ref(ArrayRef::new(weight, vec![Index::scalar(p_s)]));
            let cur = b.scalar(min_s);
            let m = b.min(cur, w);
            b.assign_scalar(min_s, m);
            let nx = b.load_ref(ArrayRef::new(next, vec![Index::scalar(p_s)]));
            b.assign_scalar(p_s, nx);
        });
        let fin = b.scalar(min_s);
        b.assign_array(best, &[b.idx(v)], fin);
    });
    let program = b.finish();

    // Build hash chains through a shuffled pool so chasing has no
    // spatial locality, with geometric-ish variable lengths.
    let mut rng = StdRng::seed_from_u64(seed);
    let mut order: Vec<usize> = (0..pool).collect();
    for idx in (1..pool).rev() {
        let other = rng.gen_range(0..=idx);
        order.swap(idx, other);
    }
    let mut next_data = vec![0i64; pool];
    let mut heads = vec![0i64; vertices];
    let mut lens = vec![0i64; vertices];
    let mut cursor = 0usize;
    for vtx in 0..vertices {
        let len = rng.gen_range(1..=(2 * mean_chain).max(2));
        let len = len.min(pool - 1);
        heads[vtx] = order[cursor % pool] as i64;
        lens[vtx] = len as i64;
        for s in 0..len {
            let cur = order[(cursor + s) % pool];
            let nxt = order[(cursor + s + 1) % pool];
            next_data[cur] = nxt as i64;
        }
        cursor += len + 1;
    }
    let weights: Vec<f64> = (0..pool).map(|_| rng.gen_range(0.0..100.0)).collect();

    Workload {
        name: "mst".into(),
        program,
        data: vec![
            (bucket_head, ArrayData::I64(heads)),
            (chain_len, ArrayData::I64(lens)),
            (next, ArrayData::I64(next_data)),
            (weight, ArrayData::F64(weights)),
            (best, ArrayData::Zero),
        ],
        l2_bytes: 1024 * 1024,
        mp_procs: 1, // the paper runs MST uniprocessor-only
        outputs: vec![best],
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mempar_ir::run_single;

    #[test]
    fn finds_minima_over_chains() {
        let w = mst(MstParams {
            vertices: 32,
            pool: 512,
            mean_chain: 4,
            seed: 5,
        });
        let mut mem = w.memory(1);
        run_single(&w.program, &mut mem);
        let best = mem.read_f64(w.outputs[0]);
        assert!(best.iter().all(|&x| (0.0..=100.0).contains(&x)));
    }

    #[test]
    fn chains_have_variable_length() {
        let w = mst(MstParams {
            vertices: 64,
            pool: 1024,
            mean_chain: 6,
            seed: 9,
        });
        let (_, ArrayData::I64(lens)) = &w.data[1] else {
            panic!()
        };
        let distinct: std::collections::HashSet<i64> = lens.iter().copied().collect();
        assert!(distinct.len() > 3, "lengths should vary: {distinct:?}");
        assert!(lens.iter().all(|&l| l >= 1));
    }

    #[test]
    fn inner_loop_has_scalar_bound() {
        let w = mst(MstParams {
            vertices: 8,
            pool: 128,
            mean_chain: 3,
            seed: 1,
        });
        let mempar_ir::Stmt::Loop(outer) = &w.program.body[0] else {
            panic!()
        };
        let inner = outer
            .body
            .iter()
            .find_map(|s| match s {
                mempar_ir::Stmt::Loop(l) => Some(l),
                _ => None,
            })
            .expect("chase loop");
        assert!(matches!(inner.hi, mempar_ir::Bound::Scalar(_)));
    }
}
