//! The evaluation workloads of Pai & Adve, *Code Transformations to
//! Improve Memory Parallelism* (MICRO-32, 1999) — Table 2.
//!
//! Every workload is expressed as a [`Program`](mempar_ir::Program) in the
//! `mempar-ir` loop-nest representation, together with generated input
//! data:
//!
//! | Workload | Source | Clustering structure |
//! |---|---|---|
//! | [`latbench`] | lmbench's `lat_mem_rd` + chain loop | address recurrence (pointer chase) |
//! | [`em3d`] | Split-C | cache-line recurrences + irregular gathers |
//! | [`erlebacher`] | ICASE | cache-line recurrences in 3-D sweeps |
//! | [`fft`] | SPLASH-2 | strided transposes, butterfly nests |
//! | [`lu`] | SPLASH-2 (flags for diag) | trailing-update recurrences |
//! | [`mp3d`] | SPLASH | no recurrences, window-constrained body |
//! | [`mst`] | Olden | variable-length chain chases |
//! | [`ocean`] | SPLASH-2 | stencils with natural base clustering |
//! | [`spmv`] | the paper's §3.1 sparse-matrix example | cache-line recurrence feeding an irregular gather |
//!
//! The base programs are *untransformed*; the clustered variants are
//! produced mechanically by `mempar_transform::cluster_program`, exactly
//! as the paper's framework prescribes.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod catalog;
mod em3d;
mod erlebacher;
mod fft;
mod latbench;
mod lu;
mod mp3d;
mod mst;
mod ocean;
mod spmv;
mod workload;

pub use catalog::App;
pub use em3d::{em3d, Em3dParams};
pub use erlebacher::{erlebacher, ErlebacherParams};
pub use fft::{fft, FftParams};
pub use latbench::{latbench, total_derefs, LatbenchParams};
pub use lu::{lu, LuParams};
pub use mp3d::{mp3d, Mp3dParams};
pub use mst::{mst, MstParams};
pub use ocean::{ocean, OceanParams};
pub use spmv::{spmv, SpmvParams};
pub use workload::{scaled_dim, Workload};
