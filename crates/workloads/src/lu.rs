//! LU — blocked dense LU factorization (SPLASH-2), modified as in the
//! paper to use flags instead of barriers for the diagonal-block
//! dependence.
//!
//! Right-looking blocked factorization without pivoting: per block step,
//! (1) one processor factors the diagonal block and sets a flag; (2) the
//! U panel (columns right of the diagonal) and L panel (rows below) are
//! solved in parallel; (3) the trailing submatrix receives the rank-B
//! update — the dominant, perfectly parallel kernel whose innermost loop
//! carries the cache-line recurrence that unroll-and-jam (over the `kk`
//! reduction loop) resolves. Scalar replacement of the `a[r,kk]`
//! multipliers provides the CPU-side benefit the paper reports.

use mempar_ir::{AffineExpr, ArrayData, Dist, ProgramBuilder};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::workload::Workload;

/// Parameters for [`lu`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LuParams {
    /// Matrix side (Table 2: 256, block 16).
    pub n: usize,
    /// Block size.
    pub block: usize,
    /// RNG seed for the matrix contents.
    pub seed: u64,
}

impl LuParams {
    /// The paper's simulated input scaled by `scale` (in area).
    pub fn scaled(scale: f64) -> Self {
        let n = crate::workload::scaled_dim(256, scale.sqrt(), 32, true);
        LuParams {
            n,
            block: 16.min(n / 2),
            seed: 0x1a,
        }
    }
}

/// Builds the LU workload.
///
/// # Panics
/// Panics when `n` is not a multiple of `block`.
pub fn lu(params: LuParams) -> Workload {
    let LuParams { n, block, seed } = params;
    assert!(
        n % block == 0 && block >= 2,
        "n must be a multiple of block"
    );
    let nb = n / block;
    let bi = block as i64;
    let ni = n as i64;

    let mut b = ProgramBuilder::new("lu");
    let a = b.array_f64("a", &[n, n]);
    b.flags(nb);
    let d = b.var("d");
    // Fresh variables per phase keep subscripts single-variable.
    for k in 0..nb {
        let k0 = (k as i64) * bi; // block start
        let k1 = k0 + bi; // block end
        let kk = b.var(format!("kk{k}"));
        let ii = b.var(format!("ii{k}"));
        let jj = b.var(format!("jj{k}"));

        // ---- diagonal factorization (one processor) ----
        b.for_dist(d, 0, 1, Dist::Block, |b| {
            b.for_affine(kk, AffineExpr::konst(k0), AffineExpr::konst(k1), |b| {
                b.for_affine(
                    ii,
                    AffineExpr::var(kk).offset(1),
                    AffineExpr::konst(k1),
                    |b| {
                        let elem = b.load(a, &[b.idx(ii), b.idx(kk)]);
                        let piv = b.load(a, &[b.idx(kk), b.idx(kk)]);
                        let l_val = b.div(elem, piv);
                        b.assign_array(a, &[b.idx(ii), b.idx(kk)], l_val);
                        b.for_affine(
                            jj,
                            AffineExpr::var(kk).offset(1),
                            AffineExpr::konst(k1),
                            |b| {
                                let cur = b.load(a, &[b.idx(ii), b.idx(jj)]);
                                let lik = b.load(a, &[b.idx(ii), b.idx(kk)]);
                                let ukj = b.load(a, &[b.idx(kk), b.idx(jj)]);
                                let prod = b.mul(lik, ukj);
                                let e = b.sub(cur, prod);
                                b.assign_array(a, &[b.idx(ii), b.idx(jj)], e);
                            },
                        );
                    },
                );
            });
            b.flag_set(AffineExpr::konst(k as i64));
        });
        b.flag_wait(AffineExpr::konst(k as i64));

        if k + 1 == nb {
            break;
        }
        // ---- U panel: forward-substitute each column right of the diag ----
        let c = b.var(format!("c{k}"));
        let kk2 = b.var(format!("kk2_{k}"));
        let ii2 = b.var(format!("ii2_{k}"));
        b.for_loop(c, k1, ni, 1, Some(Dist::Block), |b| {
            b.for_affine(kk2, AffineExpr::konst(k0), AffineExpr::konst(k1 - 1), |b| {
                b.for_affine(
                    ii2,
                    AffineExpr::var(kk2).offset(1),
                    AffineExpr::konst(k1),
                    |b| {
                        let cur = b.load(a, &[b.idx(ii2), b.idx(c)]);
                        let lik = b.load(a, &[b.idx(ii2), b.idx(kk2)]);
                        let top = b.load(a, &[b.idx(kk2), b.idx(c)]);
                        let prod = b.mul(lik, top);
                        let e = b.sub(cur, prod);
                        b.assign_array(a, &[b.idx(ii2), b.idx(c)], e);
                    },
                );
            });
        });
        // ---- L panel: scale + substitute each row below the diag ----
        let r2 = b.var(format!("r2_{k}"));
        let kk3 = b.var(format!("kk3_{k}"));
        let c2 = b.var(format!("c2_{k}"));
        b.for_loop(r2, k1, ni, 1, Some(Dist::Block), |b| {
            b.for_affine(kk3, AffineExpr::konst(k0), AffineExpr::konst(k1), |b| {
                let elem = b.load(a, &[b.idx(r2), b.idx(kk3)]);
                let piv = b.load(a, &[b.idx(kk3), b.idx(kk3)]);
                let l_val = b.div(elem, piv);
                b.assign_array(a, &[b.idx(r2), b.idx(kk3)], l_val);
                b.for_affine(
                    c2,
                    AffineExpr::var(kk3).offset(1),
                    AffineExpr::konst(k1),
                    |b| {
                        let cur = b.load(a, &[b.idx(r2), b.idx(c2)]);
                        let lrk = b.load(a, &[b.idx(r2), b.idx(kk3)]);
                        let ukc = b.load(a, &[b.idx(kk3), b.idx(c2)]);
                        let prod = b.mul(lrk, ukc);
                        let e = b.sub(cur, prod);
                        b.assign_array(a, &[b.idx(r2), b.idx(c2)], e);
                    },
                );
            });
        });
        b.barrier();
        // ---- trailing submatrix rank-B update (the dominant kernel) ----
        let r3 = b.var(format!("r3_{k}"));
        let kk4 = b.var(format!("kk4_{k}"));
        let c3 = b.var(format!("c3_{k}"));
        b.for_loop(r3, k1, ni, 1, Some(Dist::Block), |b| {
            b.for_affine(kk4, AffineExpr::konst(k0), AffineExpr::konst(k1), |b| {
                b.for_affine(c3, AffineExpr::konst(k1), AffineExpr::konst(ni), |b| {
                    let cur = b.load(a, &[b.idx(r3), b.idx(c3)]);
                    let lrk = b.load(a, &[b.idx(r3), b.idx(kk4)]);
                    let ukc = b.load(a, &[b.idx(kk4), b.idx(c3)]);
                    let prod = b.mul(lrk, ukc);
                    let e = b.sub(cur, prod);
                    b.assign_array(a, &[b.idx(r3), b.idx(c3)], e);
                });
            });
        });
        b.barrier();
    }
    let program = b.finish();

    // Diagonally dominant matrix: no pivoting needed, values stay tame.
    let mut rng = StdRng::seed_from_u64(seed);
    let mut data = vec![0.0f64; n * n];
    for r in 0..n {
        for cc in 0..n {
            data[r * n + cc] = if r == cc {
                n as f64
            } else {
                rng.gen_range(-0.5..0.5)
            };
        }
    }
    Workload {
        name: "lu".into(),
        program,
        data: vec![(a, ArrayData::F64(data))],
        l2_bytes: 64 * 1024,
        mp_procs: 8,
        outputs: vec![a],
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mempar_ir::{run_parallel_functional, run_single};

    /// Checks L*U == original for the factored matrix.
    fn verify_lu(original: &[f64], factored: &[f64], n: usize) -> f64 {
        let mut max_err = 0.0f64;
        for r in 0..n {
            for c in 0..n {
                let mut sum = 0.0;
                for k in 0..=r.min(c) {
                    let l = if k == r { 1.0 } else { factored[r * n + k] };
                    let u = factored[k * n + c];
                    sum += if k == r { u } else { l * u };
                }
                max_err = max_err.max((sum - original[r * n + c]).abs());
            }
        }
        max_err
    }

    #[test]
    fn factorization_is_correct() {
        let params = LuParams {
            n: 32,
            block: 8,
            seed: 1,
        };
        let w = lu(params);
        let mut mem = w.memory(1);
        let original = mem.read_f64(w.outputs[0]);
        run_single(&w.program, &mut mem);
        let factored = mem.read_f64(w.outputs[0]);
        let err = verify_lu(&original, &factored, 32);
        assert!(err < 1e-9, "LU residual {err}");
    }

    #[test]
    fn parallel_matches_sequential() {
        let params = LuParams {
            n: 32,
            block: 8,
            seed: 2,
        };
        let w = lu(params);
        let mut m1 = w.memory(1);
        run_single(&w.program, &mut m1);
        let mut m4 = w.memory(4);
        run_parallel_functional(&w.program, &mut m4, 4);
        assert_eq!(w.read_outputs(&m1), w.read_outputs(&m4));
    }

    #[test]
    fn uses_flags() {
        let w = lu(LuParams {
            n: 32,
            block: 8,
            seed: 3,
        });
        assert_eq!(w.program.num_flags, 4);
    }

    #[test]
    #[should_panic(expected = "multiple of block")]
    fn rejects_bad_block() {
        lu(LuParams {
            n: 30,
            block: 8,
            seed: 0,
        });
    }
}
