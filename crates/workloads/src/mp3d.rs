//! Mp3d — rarefied-fluid-flow particle simulation (SPLASH), dominated by
//! the `move` loop over particles.
//!
//! Per the paper's methodology: particle records are padded to a cache
//! line (8 doubles), eliminating false sharing, and particles are sorted
//! by position so the indirect cell references have locality. The move
//! loop has **no recurrences** but a large body, so clustering comes from
//! inner-loop unrolling plus scheduling (Section 3.3), not unroll-and-jam.

use mempar_ir::{AffineExpr, ArrayData, ArrayRef, Dist, Index, ProgramBuilder};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::workload::Workload;

/// Parameters for [`mp3d`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Mp3dParams {
    /// Particles (Table 2: 100 K simulated).
    pub particles: usize,
    /// Space cells along the flow axis.
    pub cells: usize,
    /// Move steps.
    pub steps: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Mp3dParams {
    /// The paper's simulated input scaled by `scale`.
    pub fn scaled(scale: f64) -> Self {
        Mp3dParams {
            particles: ((100_000.0 * scale) as usize).max(1024),
            cells: 4096,
            steps: 2,
            seed: 0x3d,
        }
    }
}

/// Record layout: one 64-byte line per particle.
const FIELDS: usize = 8;
const FX: i64 = 0; // position
const FY: i64 = 1;
const FZ: i64 = 2;
const FVX: i64 = 3; // velocity
const FVY: i64 = 4;
const FVZ: i64 = 5;

/// Builds the Mp3d workload.
pub fn mp3d(params: Mp3dParams) -> Workload {
    let Mp3dParams {
        particles,
        cells,
        steps,
        seed,
    } = params;
    let mut b = ProgramBuilder::new("mp3d");
    let part = b.array_f64("particles", &[particles, FIELDS]);
    let cell_of = b.array_i64("cell_of", &[particles]);
    let cell_cnt = b.array_f64("cell_count", &[cells]);
    let t = b.var("t");
    let p = b.var("p");

    let fld = |b: &ProgramBuilder, v, f: i64| [b.idx(v), b.idx_e(AffineExpr::konst(f))];

    b.for_const(t, 0, steps as i64, |b| {
        b.for_dist(p, 0, particles as i64, Dist::Block, |b| {
            // A large straight-line body: load the record, integrate
            // position with some collision-style arithmetic, store back,
            // and bump the (indirect) cell counter.
            let x = b.load(part, &fld(b, p, FX));
            let y = b.load(part, &fld(b, p, FY));
            let z = b.load(part, &fld(b, p, FZ));
            let vx = b.load(part, &fld(b, p, FVX));
            let vy = b.load(part, &fld(b, p, FVY));
            let vz = b.load(part, &fld(b, p, FVZ));
            let dt = b.constf(0.005);
            let g = b.constf(-0.0098);
            // x' = x + vx*dt, etc.; vz' = vz + g*dt; plus drag terms.
            let step_x = b.mul(vx.clone(), dt.clone());
            let nx = b.add(x, step_x);
            let step_y = b.mul(vy.clone(), dt.clone());
            let ny = b.add(y, step_y);
            let step_z = b.mul(vz.clone(), dt.clone());
            let nz = b.add(z, step_z);
            let dv = b.mul(g, dt.clone());
            let nvz = b.add(vz, dv);
            let drag = b.constf(0.999);
            let nvx = b.mul(vx, drag.clone());
            let nvy = b.mul(vy, drag);
            b.assign_array(part, &fld(b, p, FX), nx);
            b.assign_array(part, &fld(b, p, FY), ny);
            b.assign_array(part, &fld(b, p, FZ), nz);
            b.assign_array(part, &fld(b, p, FVX), nvx);
            b.assign_array(part, &fld(b, p, FVY), nvy);
            b.assign_array(part, &fld(b, p, FVZ), nvz);
            // cells[cell_of[p]] += 1 (space-cell bookkeeping).
            let cref = ArrayRef::new(
                cell_cnt,
                vec![Index::indirect(ArrayRef::new(
                    cell_of,
                    vec![Index::affine(AffineExpr::var(p))],
                ))],
            );
            let cur = b.load_ref(cref.clone());
            let one = b.constf(1.0);
            let inc = b.add(cur, one);
            b.assign_ref(cref, inc);
        });
        b.barrier();
    });
    let program = b.finish();

    let mut rng = StdRng::seed_from_u64(seed);
    let mut pdata = vec![0.0f64; particles * FIELDS];
    for i in 0..particles {
        // Sorted by position along the flow axis (the paper's locality
        // optimization): x grows with the particle index.
        pdata[i * FIELDS] = i as f64 / particles as f64;
        pdata[i * FIELDS + 1] = rng.gen_range(0.0..1.0);
        pdata[i * FIELDS + 2] = rng.gen_range(0.0..1.0);
        for f in 3..6 {
            pdata[i * FIELDS + f] = rng.gen_range(-1.0..1.0);
        }
    }
    // Sorted particles land in slowly-varying cells.
    let cell_data: Vec<i64> = (0..particles)
        .map(|i| ((i * cells) / particles) as i64)
        .collect();

    Workload {
        name: "mp3d".into(),
        program,
        data: vec![
            (part, ArrayData::F64(pdata)),
            (cell_of, ArrayData::I64(cell_data)),
            (cell_cnt, ArrayData::Zero),
        ],
        l2_bytes: 64 * 1024,
        mp_procs: 8,
        outputs: vec![part, cell_cnt],
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mempar_ir::run_single;

    #[test]
    fn particles_move_and_cells_count() {
        let w = mp3d(Mp3dParams {
            particles: 128,
            cells: 64,
            steps: 1,
            seed: 2,
        });
        let mut mem = w.memory(1);
        run_single(&w.program, &mut mem);
        let counts = mem.read_f64(w.outputs[1]);
        let total: f64 = counts.iter().sum();
        assert_eq!(total, 128.0, "every particle bumps one cell");
    }

    #[test]
    fn record_is_one_line() {
        assert_eq!(FIELDS * 8, 64, "padded records fill a 64-byte line");
    }

    #[test]
    fn move_loop_is_marked_parallel() {
        let w = mp3d(Mp3dParams {
            particles: 64,
            cells: 16,
            steps: 1,
            seed: 1,
        });
        let mempar_ir::Stmt::Loop(t) = &w.program.body[0] else {
            panic!()
        };
        let mempar_ir::Stmt::Loop(pl) = &t.body[0] else {
            panic!()
        };
        assert!(pl.dist.is_some());
        // Large straight-line body (the window-constraint case).
        assert!(pl.body.len() >= 7);
    }
}
