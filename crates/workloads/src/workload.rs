//! The common workload wrapper: a program plus its input data.

use mempar_ir::{ArrayData, ArrayId, HomePolicy, Program, SimMem};

/// A benchmark program bundled with its input data and evaluation
/// parameters (Table 2 of the paper).
#[derive(Debug, Clone)]
pub struct Workload {
    /// Workload name.
    pub name: String,
    /// The base (untransformed) program.
    pub program: Program,
    /// Initial array contents.
    pub data: Vec<(ArrayId, ArrayData)>,
    /// L2 size the paper pairs with this application (64 KB for
    /// Erlebacher/FFT/LU/Mp3d, 1 MB for Em3d/MST/Ocean — scaled inputs
    /// use scaled caches per the Woo et al. methodology).
    pub l2_bytes: usize,
    /// Multiprocessor size used in the paper's simulated runs
    /// (1 = uniprocessor-only workload).
    pub mp_procs: usize,
    /// Arrays whose final contents constitute the workload's output
    /// (compared by the semantic-equivalence tests).
    pub outputs: Vec<ArrayId>,
}

impl Workload {
    /// Builds the simulated memory for an `nprocs` run, with the default
    /// (block-per-array) NUMA layout.
    pub fn memory(&self, nprocs: usize) -> SimMem {
        self.memory_with_policy(nprocs, HomePolicy::BlockPerArray)
    }

    /// Builds the simulated memory with an explicit NUMA policy.
    pub fn memory_with_policy(&self, nprocs: usize, policy: HomePolicy) -> SimMem {
        let mut mem = SimMem::with_policy(&self.program, nprocs, policy);
        for (a, d) in &self.data {
            mem.set_array(*a, d.clone());
        }
        mem
    }

    /// Reads the output arrays' contents (for equivalence checks).
    pub fn read_outputs(&self, mem: &SimMem) -> Vec<Vec<u64>> {
        self.outputs
            .iter()
            .map(|&a| {
                mem.read_f64(a)
                    .into_iter()
                    .map(f64::to_bits)
                    .collect::<Vec<u64>>()
            })
            .collect()
    }
}

/// Scales a dimension by `scale`, snapping to at least `min` and, when
/// `pow2`, to the nearest power of two.
pub fn scaled_dim(base: usize, scale: f64, min: usize, pow2: bool) -> usize {
    let raw = ((base as f64) * scale).round().max(min as f64) as usize;
    if pow2 {
        let mut p = min.max(1).next_power_of_two();
        while p * 2 <= raw {
            p *= 2;
        }
        p.max(min)
    } else {
        raw.max(min)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scaled_dim_snaps() {
        assert_eq!(scaled_dim(256, 1.0, 16, true), 256);
        assert_eq!(scaled_dim(256, 0.3, 16, true), 64);
        assert_eq!(scaled_dim(256, 0.001, 16, true), 16);
        assert_eq!(scaled_dim(100, 0.5, 10, false), 50);
        assert_eq!(scaled_dim(100, 0.01, 10, false), 10);
    }
}
