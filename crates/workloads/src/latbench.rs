//! Latbench — the latency-detection microbenchmark of Section 4.2.
//!
//! Based on lmbench's `lat_mem_rd` pointer chase, wrapped in an outer
//! loop over independent chains with no locality within or across chains.
//! The chase is a pure address recurrence (`α = 1`); unroll-and-jam on
//! the chain loop overlaps up to `lp` chases.

use mempar_ir::{ArrayData, ArrayRef, Dist, Index, ProgramBuilder};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::workload::Workload;

/// Parameters for [`latbench`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LatbenchParams {
    /// Number of independent pointer chains.
    pub chains: usize,
    /// Dereferences per chain.
    pub chain_len: usize,
    /// Elements in the chase pool (working set = 8 bytes each; the
    /// paper's simulated run uses a 6.4 MB pool so every chase misses).
    pub pool: usize,
    /// RNG seed (chains are random cycles through the pool).
    pub seed: u64,
}

impl LatbenchParams {
    /// The paper's simulated configuration scaled by `scale`
    /// (6.4 MB pool, long chains).
    pub fn scaled(scale: f64) -> Self {
        let pool = ((800_000.0 * scale) as usize).max(4096);
        LatbenchParams {
            chains: 64,
            chain_len: ((1000.0 * scale.sqrt()) as usize).clamp(64, 1000),
            pool,
            seed: 0x1a7_bec4,
        }
    }
}

/// Builds the Latbench workload.
///
/// Pseudocode (Section 4.2), with the added outer loop in bold in the
/// paper:
///
/// ```text
/// for (j = 0; j < chains; j++) {
///     p = heads[j];
///     for (i = 0; i < I; i++) p = next[p];   // serialized misses
///     USE(p)
/// }
/// ```
pub fn latbench(params: LatbenchParams) -> Workload {
    let LatbenchParams {
        chains,
        chain_len,
        pool,
        seed,
    } = params;
    assert!(pool >= 64, "pool too small to defeat the cache");
    let mut b = ProgramBuilder::new("latbench");
    let next = b.array_i64("next", &[pool]);
    let heads = b.array_i64("heads", &[chains]);
    let sink = b.array_i64("sink", &[chains]);
    let p_s = b.scalar_i64("p", 0);
    let j = b.var("j");
    let i = b.var("i");
    b.for_dist(j, 0, chains as i64, Dist::Block, |b| {
        let h = b.load(heads, &[b.idx(j)]);
        b.assign_scalar(p_s, h);
        b.for_const(i, 0, chain_len as i64, |b| {
            let v = b.load_ref(ArrayRef::new(next, vec![Index::scalar(p_s)]));
            b.assign_scalar(p_s, v);
        });
        // USE(p): keep the chased pointer live.
        let fin = b.scalar(p_s);
        b.assign_array(sink, &[b.idx(j)], fin);
    });
    let program = b.finish();

    // One random cycle through the whole pool (Sattolo's algorithm) so
    // successive dereferences have no spatial locality; chain heads start
    // at random, well-separated points of the cycle.
    let mut rng = StdRng::seed_from_u64(seed);
    let mut perm: Vec<i64> = (0..pool as i64).collect();
    for idx in (1..pool).rev() {
        let other = rng.gen_range(0..idx);
        perm.swap(idx, other);
    }
    // next[perm[k]] = perm[(k+1) % pool]
    let mut next_data = vec![0i64; pool];
    for k in 0..pool {
        next_data[perm[k] as usize] = perm[(k + 1) % pool];
    }
    let head_data: Vec<i64> = (0..chains)
        .map(|c| perm[(c * (pool / chains)) % pool])
        .collect();

    Workload {
        name: "latbench".into(),
        program,
        data: vec![
            (next, ArrayData::I64(next_data)),
            (heads, ArrayData::I64(head_data)),
            (sink, ArrayData::Zero),
        ],
        l2_bytes: 64 * 1024,
        mp_procs: 1,
        outputs: vec![sink],
    }
}

/// Statistics helper: the total number of chase dereferences.
pub fn total_derefs(params: &LatbenchParams) -> u64 {
    (params.chains * params.chain_len) as u64
}

#[cfg(test)]
mod tests {
    use super::*;
    use mempar_ir::run_single;

    #[test]
    fn chains_walk_distinct_pool_elements() {
        let params = LatbenchParams {
            chains: 4,
            chain_len: 32,
            pool: 4096,
            seed: 7,
        };
        let w = latbench(params);
        let mut mem = w.memory(1);
        let s = run_single(&w.program, &mut mem);
        // chase loads + head loads (+ trace overhead ops)
        assert_eq!(s.loads, (4 * 32) + 4);
        let sink = mem.read_i64(mempar_ir::ArrayId::from_raw(2));
        // All chains end at distinct points (one big cycle, separated heads).
        let mut ends = sink.clone();
        ends.sort_unstable();
        ends.dedup();
        assert_eq!(ends.len(), 4);
    }

    #[test]
    fn next_is_a_permutation() {
        let params = LatbenchParams {
            chains: 2,
            chain_len: 4,
            pool: 512,
            seed: 3,
        };
        let w = latbench(params);
        let (_, ArrayData::I64(next)) = &w.data[0] else {
            panic!()
        };
        let mut sorted = next.clone();
        sorted.sort_unstable();
        let expected: Vec<i64> = (0..512).collect();
        assert_eq!(
            sorted, expected,
            "next must be a permutation (single cycle)"
        );
    }

    #[test]
    fn scaled_params_reasonable() {
        let p = LatbenchParams::scaled(0.1);
        assert!(p.pool >= 4096);
        assert!(p.chain_len >= 64);
        assert_eq!(total_derefs(&p), (p.chains * p.chain_len) as u64);
    }

    #[test]
    fn chase_loop_is_structured_for_uaj() {
        // The program shape: dist outer loop, scalar-bound... const inner.
        let w = latbench(LatbenchParams {
            chains: 4,
            chain_len: 8,
            pool: 256,
            seed: 1,
        });
        let mempar_ir::Stmt::Loop(outer) = &w.program.body[0] else {
            panic!()
        };
        assert!(outer.dist.is_some(), "chain loop is parallel");
        assert!(outer
            .body
            .iter()
            .any(|s| matches!(s, mempar_ir::Stmt::Loop(_))));
    }
}
