//! Ocean — eddy-current simulation kernels (SPLASH-2), represented by
//! the dominant 5-point stencil relaxation and laplacian phases on
//! (n+2)² grids.
//!
//! The paper finds Ocean the *least* improved application: the stencil
//! reads `a[j-1,i]`, `a[j+1,i]` already touch multiple cache lines per
//! iteration, so the base code has some natural miss clustering, and
//! further unroll-and-jam mostly adds conflict misses.

use mempar_ir::{AffineExpr, ArrayData, Dist, ProgramBuilder};

use crate::workload::Workload;

/// Parameters for [`ocean`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OceanParams {
    /// Grid side including boundary (Table 2: 258).
    pub n: usize,
    /// Relaxation sweeps.
    pub sweeps: usize,
}

impl OceanParams {
    /// The paper's simulated input scaled by `scale` (in area).
    pub fn scaled(scale: f64) -> Self {
        OceanParams {
            n: crate::workload::scaled_dim(258, scale.sqrt(), 34, false),
            sweeps: 2,
        }
    }
}

/// Builds the Ocean workload.
pub fn ocean(params: OceanParams) -> Workload {
    let n = params.n as i64;
    let mut b = ProgramBuilder::new("ocean");
    let q = b.array_f64("q", &[params.n, params.n]);
    let w_arr = b.array_f64("w", &[params.n, params.n]);
    let psi = b.array_f64("psi", &[params.n, params.n]);
    let wv_s = b.scalar_f64("wv", 0.0);
    let t = b.var("t");
    let j = b.var("j");
    let i = b.var("i");
    let j2 = b.var("j2");
    let i2 = b.var("i2");

    b.for_const(t, 0, params.sweeps as i64, |b| {
        // Jacobi relaxation step: w = relax(q).
        b.for_dist(j, 1, n - 1, Dist::Block, |b| {
            b.for_const(i, 1, n - 1, |b| {
                let up = b.load(q, &[b.idx_e(AffineExpr::var(j).offset(-1)), b.idx(i)]);
                let down = b.load(q, &[b.idx_e(AffineExpr::var(j).offset(1)), b.idx(i)]);
                let left = b.load(q, &[b.idx(j), b.idx_e(AffineExpr::var(i).offset(-1))]);
                let right = b.load(q, &[b.idx(j), b.idx_e(AffineExpr::var(i).offset(1))]);
                let s1 = b.add(up, down);
                let s2 = b.add(left, right);
                let s = b.add(s1, s2);
                let c = b.constf(0.25);
                let e = b.mul(s, c);
                b.assign_array(w_arr, &[b.idx(j), b.idx(i)], e);
            });
        });
        b.barrier();
        // Laplacian accumulation into the stream function.
        b.for_dist(j2, 1, n - 1, Dist::Block, |b| {
            b.for_const(i2, 1, n - 1, |b| {
                let wv = b.load(w_arr, &[b.idx(j2), b.idx(i2)]);
                b.assign_scalar(wv_s, wv);
                let qv = b.load(q, &[b.idx(j2), b.idx(i2)]);
                let pv = b.load(psi, &[b.idx(j2), b.idx(i2)]);
                let w0 = b.scalar(wv_s);
                let diff = b.sub(w0, qv);
                let c = b.constf(0.9);
                let scaled = b.mul(diff, c);
                let e = b.add(pv, scaled);
                b.assign_array(psi, &[b.idx(j2), b.idx(i2)], e);
                let w1 = b.scalar(wv_s);
                b.assign_array(q, &[b.idx(j2), b.idx(i2)], w1);
            });
        });
        b.barrier();
    });
    let program = b.finish();

    // Nonlinear contents: a linear ramp would make the Jacobi average
    // equal the center everywhere, hiding bugs behind zero updates.
    let grid: Vec<f64> = (0..params.n * params.n)
        .map(|x| (((x * x * 7 + x * 31) % 101) as f64) * 0.01)
        .collect();
    Workload {
        name: "ocean".into(),
        program,
        data: vec![
            (q, ArrayData::F64(grid)),
            (w_arr, ArrayData::Zero),
            (psi, ArrayData::Zero),
        ],
        l2_bytes: 1024 * 1024,
        mp_procs: 8,
        outputs: vec![psi, q],
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mempar_ir::{run_parallel_functional, run_single};

    #[test]
    fn stencil_updates_interior() {
        let w = ocean(OceanParams { n: 10, sweeps: 1 });
        let mut mem = w.memory(1);
        run_single(&w.program, &mut mem);
        let psi = mem.read_f64(w.outputs[0]);
        // Interior written, boundary untouched.
        assert_eq!(psi[0], 0.0);
        assert!(psi[11] != 0.0);
    }

    #[test]
    fn parallel_matches_sequential() {
        let w = ocean(OceanParams { n: 12, sweeps: 2 });
        let mut m1 = w.memory(1);
        run_single(&w.program, &mut m1);
        let mut m4 = w.memory(4);
        run_parallel_functional(&w.program, &mut m4, 4);
        assert_eq!(w.read_outputs(&m1), w.read_outputs(&m4));
    }

    #[test]
    fn load_count_matches_stencil() {
        let w = ocean(OceanParams { n: 6, sweeps: 1 });
        let mut mem = w.memory(1);
        let s = run_single(&w.program, &mut mem);
        // 16 interior points x (4 stencil + 3 laplacian) loads.
        assert_eq!(s.loads, 16 * 7);
    }
}
