//! Erlebacher — 3-D tridiagonal solver kernels (ADI integration), after
//! the ICASE program by Thomas Eidson, shared-memory port as in the paper.
//!
//! The program computes partial derivatives with compact 3-D sweeps: an
//! x-direction RHS computation, then forward-elimination and
//! back-substitution sweeps along z. The z sweeps carry their true
//! recurrence on the *outer* k loop while the innermost i loop is
//! self-spatial — the classic unroll-and-jam target (over j).

use mempar_ir::{AffineExpr, ArrayData, Dist, ProgramBuilder};

use crate::workload::Workload;

/// Parameters for [`erlebacher`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ErlebacherParams {
    /// Cube side (Table 2: 64³ simulated).
    pub n: usize,
}

impl ErlebacherParams {
    /// The paper's simulated input scaled by `scale` (in volume).
    pub fn scaled(scale: f64) -> Self {
        ErlebacherParams {
            n: crate::workload::scaled_dim(64, scale.cbrt(), 16, false),
        }
    }
}

/// Builds the Erlebacher workload.
pub fn erlebacher(params: ErlebacherParams) -> Workload {
    let n = params.n;
    assert!(n >= 4);
    let ni = n as i64;
    let mut b = ProgramBuilder::new("erlebacher");
    let f = b.array_f64("f", &[n, n, n]);
    let rhs = b.array_f64("rhs", &[n, n, n]);
    let d_arr = b.array_f64("d", &[n]); // per-plane divisors
    let k = b.var("k");
    let j = b.var("j");
    let i = b.var("i");
    let k2 = b.var("k2");
    let j2 = b.var("j2");
    let i2 = b.var("i2");
    let k3 = b.var("k3");
    let j3 = b.var("j3");
    let i3 = b.var("i3");

    // Phase 1: x-direction RHS (central differences along i).
    b.for_const(k, 0, ni, |b| {
        b.for_dist(j, 0, ni, Dist::Block, |b| {
            b.for_const(i, 1, ni - 1, |b| {
                let hi = b.load(
                    f,
                    &[b.idx(k), b.idx(j), b.idx_e(AffineExpr::var(i).offset(1))],
                );
                let lo = b.load(
                    f,
                    &[b.idx(k), b.idx(j), b.idx_e(AffineExpr::var(i).offset(-1))],
                );
                let diff = b.sub(hi, lo);
                let c = b.constf(0.5);
                let e = b.mul(diff, c);
                b.assign_array(rhs, &[b.idx(k), b.idx(j), b.idx(i)], e);
            });
        });
    });
    b.barrier();
    // Phase 2: forward elimination along z.
    b.for_const(k2, 1, ni, |b| {
        b.for_dist(j2, 0, ni, Dist::Block, |b| {
            b.for_const(i2, 0, ni, |b| {
                let cur = b.load(rhs, &[b.idx(k2), b.idx(j2), b.idx(i2)]);
                let below = b.load(
                    rhs,
                    &[
                        b.idx_e(AffineExpr::var(k2).offset(-1)),
                        b.idx(j2),
                        b.idx(i2),
                    ],
                );
                let c = b.constf(0.4);
                let scaled = b.mul(below, c);
                let e = b.sub(cur, scaled);
                b.assign_array(rhs, &[b.idx(k2), b.idx(j2), b.idx(i2)], e);
            });
        });
    });
    b.barrier();
    // Phase 3: back substitution along z (backward sweep).
    b.for_step(k3, 0, ni - 1, -1, |b| {
        b.for_dist(j3, 0, ni, Dist::Block, |b| {
            b.for_const(i3, 0, ni, |b| {
                let cur = b.load(rhs, &[b.idx(k3), b.idx(j3), b.idx(i3)]);
                let above = b.load(
                    rhs,
                    &[b.idx_e(AffineExpr::var(k3).offset(1)), b.idx(j3), b.idx(i3)],
                );
                let dk = b.load(d_arr, &[b.idx(k3)]);
                let scaled = b.mul(above, dk);
                let num = b.sub(cur, scaled);
                let c = b.constf(0.8);
                let e = b.mul(num, c);
                b.assign_array(rhs, &[b.idx(k3), b.idx(j3), b.idx(i3)], e);
            });
        });
    });
    b.barrier();
    let program = b.finish();

    let cube: Vec<f64> = (0..n * n * n).map(|x| ((x % 37) as f64) * 0.1).collect();
    let divisors: Vec<f64> = (0..n).map(|x| 0.3 + ((x % 5) as f64) * 0.05).collect();
    Workload {
        name: "erlebacher".into(),
        program,
        data: vec![
            (f, ArrayData::F64(cube)),
            (rhs, ArrayData::Zero),
            (d_arr, ArrayData::F64(divisors)),
        ],
        l2_bytes: 64 * 1024,
        mp_procs: 16,
        outputs: vec![rhs],
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mempar_ir::{run_parallel_functional, run_single};

    #[test]
    fn runs_small() {
        let w = erlebacher(ErlebacherParams { n: 8 });
        let mut mem = w.memory(1);
        let s = run_single(&w.program, &mut mem);
        assert!(s.loads > 0 && s.stores > 0);
        let out = mem.read_f64(w.outputs[0]);
        assert!(out.iter().all(|v| v.is_finite()));
        assert!(out.iter().any(|&v| v != 0.0));
    }

    #[test]
    fn parallel_matches_sequential() {
        let w = erlebacher(ErlebacherParams { n: 8 });
        let mut m1 = w.memory(1);
        run_single(&w.program, &mut m1);
        let mut m2 = w.memory(2);
        run_parallel_functional(&w.program, &mut m2, 2);
        assert_eq!(w.read_outputs(&m1), w.read_outputs(&m2));
    }

    #[test]
    fn scaling_changes_size() {
        assert!(ErlebacherParams::scaled(1.0).n > ErlebacherParams::scaled(0.05).n);
    }
}
