//! SpMV — the paper's Section 3.1 sparse-matrix example, promoted to a
//! small workload:
//!
//! ```text
//! for (j++)
//!   for (i++) {
//!     ind = a[j,i];
//!     sum[j] = sum[j] + b[ind];
//!   }
//! ```
//!
//! The column-index stream `a[j,i]` carries a cache-line recurrence and
//! feeds an address dependence into the irregular gather `b[ind]` — the
//! exact dependence graph drawn in the paper. Unroll-and-jam over rows
//! overlaps several rows' gathers.

use mempar_ir::{AffineExpr, ArrayData, ArrayRef, Dist, Index, ProgramBuilder};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::workload::Workload;

/// Parameters for [`spmv`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpmvParams {
    /// Matrix rows.
    pub rows: usize,
    /// Nonzeros per row (fixed, ELL-style storage as in the paper's
    /// 2-D `a[j,i]` index array).
    pub nnz_per_row: usize,
    /// Dense-vector length.
    pub cols: usize,
    /// RNG seed.
    pub seed: u64,
}

impl SpmvParams {
    /// A bandwidth-realistic default scaled by `scale`.
    pub fn scaled(scale: f64) -> Self {
        SpmvParams {
            rows: ((4096.0 * scale) as usize).max(256),
            nnz_per_row: 16,
            cols: ((262_144.0 * scale) as usize).max(16_384),
            seed: 0x59f,
        }
    }
}

/// Builds the SpMV workload: `sum[j] = Σ_i val[j,i] * b[colidx[j,i]]`.
pub fn spmv(params: SpmvParams) -> Workload {
    let SpmvParams {
        rows,
        nnz_per_row,
        cols,
        seed,
    } = params;
    let mut b = ProgramBuilder::new("spmv");
    let colidx = b.array_i64("colidx", &[rows, nnz_per_row]);
    let val = b.array_f64("val", &[rows, nnz_per_row]);
    let dense = b.array_f64("b", &[cols]);
    let sum = b.array_f64("sum", &[rows]);
    let acc = b.scalar_f64("acc", 0.0);
    let j = b.var("j");
    let i = b.var("i");
    b.for_dist(j, 0, rows as i64, Dist::Block, |b| {
        let zero = b.constf(0.0);
        b.assign_scalar(acc, zero);
        b.for_const(i, 0, nnz_per_row as i64, |b| {
            let v = b.load(val, &[b.idx(j), b.idx(i)]);
            let idx_ref = ArrayRef::new(
                colidx,
                vec![
                    Index::affine(AffineExpr::var(j)),
                    Index::affine(AffineExpr::var(i)),
                ],
            );
            let gathered = b.load_ref(ArrayRef::new(dense, vec![Index::indirect(idx_ref)]));
            let prod = b.mul(v, gathered);
            let a0 = b.scalar(acc);
            let e = b.add(a0, prod);
            b.assign_scalar(acc, e);
        });
        let fin = b.scalar(acc);
        b.assign_array(sum, &[b.idx(j)], fin);
    });
    let program = b.finish();

    let mut rng = StdRng::seed_from_u64(seed);
    let idx_data: Vec<i64> = (0..rows * nnz_per_row)
        .map(|_| rng.gen_range(0..cols as i64))
        .collect();
    let val_data: Vec<f64> = (0..rows * nnz_per_row)
        .map(|_| rng.gen_range(-1.0..1.0))
        .collect();
    let dense_data: Vec<f64> = (0..cols).map(|x| ((x % 97) as f64) * 0.01).collect();

    Workload {
        name: "spmv".into(),
        program,
        data: vec![
            (colidx, ArrayData::I64(idx_data)),
            (val, ArrayData::F64(val_data)),
            (dense, ArrayData::F64(dense_data)),
            (sum, ArrayData::Zero),
        ],
        l2_bytes: 64 * 1024,
        mp_procs: 8,
        outputs: vec![sum],
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mempar_ir::{run_single, ArrayData as AD};

    #[test]
    fn computes_the_product() {
        let params = SpmvParams {
            rows: 8,
            nnz_per_row: 4,
            cols: 64,
            seed: 1,
        };
        let w = spmv(params);
        let mut mem = w.memory(1);
        // Reference computation in Rust.
        let (_, AD::I64(idx)) = &w.data[0] else {
            panic!()
        };
        let (_, AD::F64(vals)) = &w.data[1] else {
            panic!()
        };
        let (_, AD::F64(dense)) = &w.data[2] else {
            panic!()
        };
        let mut want = [0.0f64; 8];
        for r in 0..8 {
            for k in 0..4 {
                want[r] += vals[r * 4 + k] * dense[idx[r * 4 + k] as usize];
            }
        }
        run_single(&w.program, &mut mem);
        let got = mem.read_f64(w.outputs[0]);
        for r in 0..8 {
            assert!(
                (got[r] - want[r]).abs() < 1e-12,
                "row {r}: {} vs {}",
                got[r],
                want[r]
            );
        }
    }

    #[test]
    fn has_the_papers_dependence_structure() {
        use mempar_analysis::{analyze_inner_loop, MachineSummary, MissProfile};
        let w = spmv(SpmvParams {
            rows: 64,
            nnz_per_row: 8,
            cols: 4096,
            seed: 2,
        });
        let mempar_ir::Stmt::Loop(outer) = &w.program.body[0] else {
            panic!()
        };
        let inner = outer
            .body
            .iter()
            .find_map(|s| match s {
                mempar_ir::Stmt::Loop(l) => Some(l),
                _ => None,
            })
            .expect("inner loop");
        let an = analyze_inner_loop(
            &w.program,
            &inner.body,
            inner.var,
            &MachineSummary::base(),
            &MissProfile::pessimistic(),
        );
        // Cache-line recurrence from the index/value streams, no address
        // recurrence (the gather hangs off it without closing a cycle).
        assert!(an.recurrences.alpha > 0.0);
        assert!(!an.recurrences.has_address_recurrence);
        // The gather is an irregular leading reference.
        assert!(an.refs.leading().any(|r| r.irregular));
    }

    /// The gathers of one row are mutually independent, so a 64-entry
    /// window already clusters them: the framework's `f` exceeds `lp`
    /// and the driver correctly *declines* to transform (Section 3.2.2's
    /// "miss patterns" discussion — aggressive `P_m` assumptions grant
    /// irregular references their full window parallelism). The timed
    /// run confirms the base code keeps several read misses in flight.
    #[test]
    fn driver_declines_already_parallel_gathers() {
        let w = spmv(SpmvParams {
            rows: 512,
            nnz_per_row: 16,
            cols: 1 << 16,
            seed: 3,
        });
        let cfg = mempar_sim::MachineConfig::base_simulated(1, w.l2_bytes);
        let mut clustered = w.program.clone();
        let report = mempar_transform::cluster_program(
            &mut clustered,
            &mempar_analysis::MachineSummary::base(),
            &mempar_analysis::MissProfile::pessimistic(),
        );
        assert!(
            report
                .decisions
                .iter()
                .all(|d| d.uaj_degree == 1 && d.inner_unroll == 1),
            "f >= lp: nothing to do\n{}",
            report.summary()
        );
        let mut base_mem = w.memory(1);
        let base = mempar_sim::run_program(&w.program, &mut base_mem, &cfg);
        assert!(
            base.occupancy.read_at_least(2) > 0.3,
            "base gathers already overlap: {:.3}",
            base.occupancy.read_at_least(2)
        );
    }
}
