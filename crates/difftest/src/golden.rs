//! Golden-trace regression gates.
//!
//! A golden snapshot captures, for one program + input, everything a
//! semantic change to the interpreter or simulator could perturb:
//!
//! * the order-sensitive [`TraceDigest`] of the uniprocessor dynamic-op
//!   stream (op counts by class plus an FNV hash over every op's kind,
//!   address, operands and destination);
//! * the final memory-image fingerprint after a sequential run;
//! * the final memory-image fingerprint after a parallel functional run
//!   (when the program is meaningful under SPMD execution);
//! * integer [`mempar_sim::SimResult`] summary counters (cycles,
//!   retired instructions, hierarchy miss counts) for a small simulated
//!   configuration.
//!
//! Snapshots are rendered to a canonical `key: value` text form and
//! compared byte-for-byte against files committed under
//! `tests/corpus/golden/`. Any drift fails the gate with a line diff;
//! intentional changes are re-blessed by rerunning with `MEMPAR_BLESS=1`.

use std::fmt::Write as _;
use std::path::Path;

use mempar_ir::{run_parallel_functional, Interp, Program, SimMem, TraceDigest};
use mempar_sim::{run_program, run_program_with, MachineConfig, Protocol, SimOptions};

/// Environment variable that switches [`check_golden`] from compare
/// mode to (re)record mode.
pub const BLESS_ENV: &str = "MEMPAR_BLESS";

/// Renders the canonical snapshot text for `prog` with initial memory
/// produced by `fresh_mem` (called once per section so every section
/// starts from identical input data).
///
/// `par_nprocs` enables the parallel-functional section; pass `None`
/// for programs whose redundant SPMD execution is not deterministic.
/// `sim_l2_bytes` enables the simulator-summary section.
pub fn snapshot(
    name: &str,
    prog: &Program,
    fresh_mem: impl Fn(usize) -> SimMem,
    par_nprocs: Option<usize>,
    sim_l2_bytes: Option<usize>,
) -> String {
    let mut s = String::new();
    let _ = writeln!(s, "name: {name}");

    // Uniprocessor dynamic-op stream digest + sequential memory image.
    let mut mem = fresh_mem(1);
    let mut digest = TraceDigest::new();
    let mut interp = Interp::new(prog, 0, 1);
    while let Some(op) = interp.next_op(&mut mem) {
        digest.absorb(&op);
    }
    let _ = writeln!(s, "trace.ops: {}", digest.ops);
    let _ = writeln!(s, "trace.loads: {}", digest.loads);
    let _ = writeln!(s, "trace.stores: {}", digest.stores);
    let _ = writeln!(s, "trace.fp: {}", digest.fp);
    let _ = writeln!(s, "trace.int: {}", digest.int);
    let _ = writeln!(s, "trace.branches: {}", digest.branches);
    let _ = writeln!(s, "trace.sync: {}", digest.sync);
    let _ = writeln!(s, "trace.prefetches: {}", digest.prefetches);
    let _ = writeln!(s, "trace.hash: {:#018x}", digest.hash());
    let _ = writeln!(s, "seq.mem_fingerprint: {:#018x}", mem.fingerprint());

    if let Some(nprocs) = par_nprocs {
        let mut pmem = fresh_mem(nprocs);
        run_parallel_functional(prog, &mut pmem, nprocs);
        let _ = writeln!(s, "par.nprocs: {nprocs}");
        let _ = writeln!(s, "par.mem_fingerprint: {:#018x}", pmem.fingerprint());
    }

    if let Some(l2_bytes) = sim_l2_bytes {
        let cfg = MachineConfig::base_simulated(1, l2_bytes);
        let mut smem = fresh_mem(1);
        let r = run_program(prog, &mut smem, &cfg);
        let _ = writeln!(s, "sim.config: {}", r.config);
        let _ = writeln!(s, "sim.cycles: {}", r.cycles);
        let _ = writeln!(s, "sim.retired: {}", r.retired);
        let _ = writeln!(s, "sim.loads: {}", r.counters.loads);
        let _ = writeln!(s, "sim.stores: {}", r.counters.stores);
        let _ = writeln!(s, "sim.l2_misses: {}", r.counters.l2_misses);
        let _ = writeln!(s, "sim.l2_read_misses: {}", r.counters.l2_read_misses);
        let _ = writeln!(s, "sim.prefetches: {}", r.counters.prefetches);
        let _ = writeln!(s, "sim.mem_fingerprint: {:#018x}", smem.fingerprint());
    }
    s
}

/// Renders the canonical per-protocol cycle snapshot for `prog`.
///
/// Unlike [`snapshot`], which pins the protocol-independent semantics,
/// this section pins the *timing* of one coherence machine: the cycle
/// count plus every coherence-traffic counter (cache-to-cache supplies,
/// invalidations, updates, upgrades, writebacks). The functional lines
/// (retired, loads, stores, memory fingerprint) are included too — they
/// must be byte-identical across all four protocol snapshots of the
/// same program, which makes cross-protocol drift visible in a plain
/// `diff` of the committed files.
pub fn protocol_snapshot(
    name: &str,
    prog: &Program,
    fresh_mem: impl Fn(usize) -> SimMem,
    nprocs: usize,
    l2_bytes: usize,
    protocol: Protocol,
) -> String {
    let cfg = MachineConfig::base_simulated(nprocs, l2_bytes);
    let mut mem = fresh_mem(nprocs);
    let r = run_program_with(
        prog,
        &mut mem,
        &cfg,
        SimOptions {
            protocol,
            ..SimOptions::default()
        },
    );
    let mut s = String::new();
    let _ = writeln!(s, "name: {name}");
    let _ = writeln!(s, "protocol: {protocol}");
    let _ = writeln!(s, "sim.config: {}", r.config);
    let _ = writeln!(s, "sim.cycles: {}", r.cycles);
    let _ = writeln!(s, "sim.retired: {}", r.retired);
    let _ = writeln!(s, "sim.loads: {}", r.counters.loads);
    let _ = writeln!(s, "sim.stores: {}", r.counters.stores);
    let _ = writeln!(s, "sim.l2_misses: {}", r.counters.l2_misses);
    let _ = writeln!(s, "sim.l2_read_misses: {}", r.counters.l2_read_misses);
    let _ = writeln!(s, "sim.cache_to_cache: {}", r.counters.cache_to_cache);
    let _ = writeln!(s, "sim.invalidations: {}", r.counters.invalidations);
    let _ = writeln!(s, "sim.updates: {}", r.counters.updates);
    let _ = writeln!(s, "sim.upgrades: {}", r.counters.upgrades);
    let _ = writeln!(s, "sim.writebacks: {}", r.counters.writebacks);
    let _ = writeln!(s, "sim.mem_fingerprint: {:#018x}", mem.fingerprint());
    s
}

/// Compares `actual` against the committed snapshot at `path`.
///
/// With [`BLESS_ENV`] set, rewrites the file instead and succeeds. A
/// missing file or any byte difference is an error whose message shows
/// the first diverging lines and the re-bless command.
pub fn check_golden(path: &Path, actual: &str) -> Result<(), String> {
    if std::env::var_os(BLESS_ENV).is_some() {
        if let Some(dir) = path.parent() {
            std::fs::create_dir_all(dir)
                .map_err(|e| format!("cannot create {}: {e}", dir.display()))?;
        }
        std::fs::write(path, actual)
            .map_err(|e| format!("cannot write {}: {e}", path.display()))?;
        return Ok(());
    }
    let expected = std::fs::read_to_string(path).map_err(|_| {
        format!(
            "missing golden snapshot {}\n(record it with {BLESS_ENV}=1 cargo test)",
            path.display()
        )
    })?;
    if expected == actual {
        return Ok(());
    }
    let mut msg = format!(
        "golden snapshot drift in {}\n(intentional? re-bless with {BLESS_ENV}=1 cargo test)\n",
        path.display()
    );
    for (i, (e, a)) in expected.lines().zip(actual.lines()).enumerate() {
        if e != a {
            let _ = writeln!(msg, "  line {}: expected `{e}`, got `{a}`", i + 1);
        }
    }
    let (ne, na) = (expected.lines().count(), actual.lines().count());
    if ne != na {
        let _ = writeln!(msg, "  line count: expected {ne}, got {na}");
    }
    Err(msg)
}

/// The pinned generator seeds snapshotted under `tests/corpus/golden/`.
/// Chosen once, arbitrarily; stability of the *list* is what matters.
pub const PINNED_GEN_SEEDS: [u64; 10] = [101, 103, 107, 109, 113, 127, 131, 137, 139, 149];

/// Builds the snapshot text for one pinned generator seed.
pub fn snapshot_gen_seed(seed: u64) -> String {
    let built = crate::spec::materialize(&crate::gen::gen_spec(seed));
    let par = if built.mode.parallel_checked() {
        Some(built.nprocs)
    } else {
        None
    };
    snapshot(
        &format!("gen-{seed}"),
        &built.prog,
        |n| built.memory(n),
        par,
        Some(64 * 1024),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    fn tiny_snapshot() -> String {
        snapshot_gen_seed(PINNED_GEN_SEEDS[0])
    }

    #[test]
    fn snapshot_is_deterministic() {
        assert_eq!(tiny_snapshot(), tiny_snapshot());
    }

    #[test]
    fn snapshot_has_all_sections() {
        let s = tiny_snapshot();
        assert!(s.contains("trace.hash: 0x"));
        assert!(s.contains("seq.mem_fingerprint: 0x"));
        assert!(s.contains("sim.cycles: "));
    }

    #[test]
    fn check_golden_reports_drift_with_line_diff() {
        let dir = std::env::temp_dir().join("mempar-golden-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path: PathBuf = dir.join("drift.golden");
        std::fs::write(&path, "a: 1\nb: 2\n").unwrap();
        let err = check_golden(&path, "a: 1\nb: 3\n").unwrap_err();
        assert!(err.contains("line 2"), "{err}");
        assert!(err.contains(BLESS_ENV), "{err}");
        assert!(check_golden(&path, "a: 1\nb: 2\n").is_ok());
        let missing = dir.join("no-such.golden");
        let _ = std::fs::remove_file(&missing);
        assert!(check_golden(&missing, "x\n")
            .unwrap_err()
            .contains("missing"));
    }
}
