//! The shrinkable program specification behind the adversarial
//! generator.
//!
//! A [`ProgSpec`] is a loop-nest *skeleton*: loops with
//! constant/affine/scalar bounds, guarded branches, stores with affine +
//! indirect + pointer-carried indices, scalar reductions and pointer
//! chases. It deliberately carries **no array extents** — those are
//! computed at materialization time by a conservative interval analysis
//! of every index in the spec, so *any* spec (including every mutation
//! the shrinker produces) materializes to an in-bounds program.
//! References to out-of-scope loop variables (created when the shrinker
//! unwraps a loop) simply drop out of the affine part; the spec space is
//! closed under mutation.
//!
//! Materialization is a pure function of the spec: the same spec always
//! yields the same program and the same deterministic initial data, so a
//! pretty-printed spec is a complete reproducer.

use mempar_ir::{
    AffineExpr, ArrayData, ArrayId, ArrayRef, BinOp, Bound, CmpOp, Cond, Dist, DynIndex, Expr,
    Index, Loop, Program, ProgramBuilder, ScalarId, SimMem, Stmt, UnOp, VarId,
};

/// Values stored in indirection arrays (and chased pointers) live in
/// `[0, IND_RANGE)`; data-array extents absorb `scale * (IND_RANGE - 1)`.
pub const IND_RANGE: i64 = 6;

/// What the differential harness may soundly check for a spec.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Mode {
    /// Anything goes (self-updating stencils, aliasing views, chases
    /// through mutated state): checked against the sequential
    /// interpreter oracle only.
    Seq,
    /// Writes go only to write-only output arrays and array reads come
    /// only from read-only inputs, so a redundant SPMD run is
    /// deterministic: additionally checked under
    /// [`mempar_ir::run_parallel_functional`].
    ParClean,
    /// Top-level loops are explicitly distributed with partitioned
    /// writes (`out[var, ...]`), phases separated by barriers — the
    /// Mp3d/MST class from the paper. Checked sequentially and in
    /// parallel, and exercises the "explicitly parallel is trusted"
    /// legality path.
    Dist,
}

impl Mode {
    /// Whether the parallel-functional oracle applies.
    pub fn parallel_checked(self) -> bool {
        !matches!(self, Mode::Seq)
    }
}

/// Which array pool a reference targets. Pool indices out of range clamp
/// to the last member (identically in the sizing and emission walks).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SArr {
    /// `d<k>`: f64 arrays, readable everywhere; writable only in
    /// [`Mode::Seq`].
    Data(usize),
    /// `o<k>`: f64 arrays, the only legal store targets in
    /// [`Mode::ParClean`] / [`Mode::Dist`].
    Out(usize),
}

/// Dynamic index components.
#[derive(Debug, Clone, PartialEq)]
pub enum SDyn {
    /// `scale * ind<k>[coeff*var + off]` — index-array indirection.
    Ind {
        /// Indirection array number.
        ind: usize,
        /// Loop var of the inner (affine) index, if any.
        inner_var: Option<u32>,
        /// Coefficient on `inner_var`.
        inner_coeff: i64,
        /// Constant offset of the inner index.
        inner_off: i64,
        /// Multiplier on the loaded value (kept positive and small).
        scale: i64,
    },
    /// `scale * p<k>` — pointer-carried index (chased scalar).
    Ptr {
        /// Pointer scalar number.
        ptr: usize,
        /// Multiplier on the pointer value.
        scale: i64,
    },
}

impl SDyn {
    fn scale(&self) -> i64 {
        match *self {
            SDyn::Ind { scale, .. } | SDyn::Ptr { scale, .. } => scale,
        }
    }
}

/// One dimension of an index: affine terms over loop variables plus an
/// optional dynamic (indirect / pointer-carried) part.
#[derive(Debug, Clone, PartialEq)]
pub struct SIndex {
    /// `(loop var, coefficient)` pairs; out-of-scope vars drop out.
    pub terms: Vec<(u32, i64)>,
    /// Constant offset (pre-shift; materialization re-bases to zero).
    pub off: i64,
    /// Optional dynamic component.
    pub dynamic: Option<SDyn>,
}

impl SIndex {
    /// A plain `var` index.
    pub fn var(v: u32) -> Self {
        SIndex {
            terms: vec![(v, 1)],
            off: 0,
            dynamic: None,
        }
    }

    /// A constant index.
    pub fn konst(c: i64) -> Self {
        SIndex {
            terms: Vec::new(),
            off: c,
            dynamic: None,
        }
    }
}

/// Binary ops available to generated expressions. Division and square
/// root are deliberately absent so generated values cannot become NaN
/// and reductions stay exact dyadic rationals.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SOp {
    /// `+`
    Add,
    /// `-`
    Sub,
    /// `*`
    Mul,
    /// `min`
    Min,
    /// `max`
    Max,
}

impl SOp {
    fn to_ir(self) -> BinOp {
        match self {
            SOp::Add => BinOp::Add,
            SOp::Sub => BinOp::Sub,
            SOp::Mul => BinOp::Mul,
            SOp::Min => BinOp::Min,
            SOp::Max => BinOp::Max,
        }
    }
}

/// Expression tree for right-hand sides.
#[derive(Debug, Clone, PartialEq)]
pub enum SExpr {
    /// Array load.
    Load {
        /// Source array.
        arr: SArr,
        /// One index per dimension of the source.
        idx: Vec<SIndex>,
    },
    /// Read of f64 scalar `f<k>`.
    ScalarF(usize),
    /// Read of pointer scalar `p<k>` (an i64; mixes int into FP math).
    Ptr(usize),
    /// Loop variable as a value (out-of-scope vars materialize as 0).
    Var(u32),
    /// FP constant.
    ConstF(f64),
    /// Binary node.
    Bin(SOp, Box<SExpr>, Box<SExpr>),
    /// Negation.
    Neg(Box<SExpr>),
}

/// Guard condition `coeff*var + off  OP  0` (affine, like the IR's).
#[derive(Debug, Clone, PartialEq)]
pub struct SCond {
    /// Guarded loop variable (out of scope ⇒ the term drops to 0).
    pub var: u32,
    /// Coefficient on `var`.
    pub coeff: i64,
    /// Constant offset.
    pub off: i64,
    /// Comparison against zero.
    pub op: CmpOp,
}

/// Loop bounds.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum SBound {
    /// Constant.
    Const(i64),
    /// `coeff*var + off` over an enclosing loop variable (triangular /
    /// trapezoidal nests). Out of scope ⇒ just `off`.
    Affine {
        /// Enclosing loop variable.
        var: u32,
        /// Coefficient.
        coeff: i64,
        /// Offset.
        off: i64,
    },
    /// Value of bound scalar `n<k>` (read at loop entry).
    ScalarB(usize),
}

/// A loop in the skeleton.
#[derive(Debug, Clone, PartialEq)]
pub struct SLoop {
    /// Spec-scoped variable number (unique per generated loop).
    pub var: u32,
    /// Lower bound.
    pub lo: SBound,
    /// Upper bound.
    pub hi: SBound,
    /// Step; nonzero (negative = backwards).
    pub step: i64,
    /// Processor distribution (only in [`Mode::Dist`] specs).
    pub dist: Option<Dist>,
    /// Loop body.
    pub body: Vec<SStmt>,
}

/// Statements in the skeleton.
#[derive(Debug, Clone, PartialEq)]
pub enum SStmt {
    /// A (possibly nested) loop.
    Loop(SLoop),
    /// `target[idx...] = rhs`
    Store {
        /// Target array.
        target: SArr,
        /// One index per dimension.
        idx: Vec<SIndex>,
        /// Value stored.
        rhs: SExpr,
    },
    /// `f<scalar> = rhs` — reduction accumulate or private temp def.
    SetF {
        /// f64 scalar number.
        scalar: usize,
        /// Value.
        rhs: SExpr,
    },
    /// `p<ptr> = ind<ind>[p<ptr>]` — pointer chase.
    Chase {
        /// Pointer scalar number.
        ptr: usize,
        /// Indirection array number.
        ind: usize,
    },
    /// Guarded branch.
    If {
        /// Condition.
        cond: SCond,
        /// Taken branch.
        then_s: Vec<SStmt>,
        /// Fallthrough branch.
        else_s: Vec<SStmt>,
    },
    /// Global barrier (between top-level phases in [`Mode::Dist`]).
    Barrier,
}

/// A complete generated program specification.
#[derive(Debug, Clone, PartialEq)]
pub struct ProgSpec {
    /// Generator seed (reproducer bookkeeping only — materialization is
    /// a pure function of the spec).
    pub seed: u64,
    /// Oracle mode.
    pub mode: Mode,
    /// Processor count for the parallel-functional oracle.
    pub nprocs: usize,
    /// Rank (1 or 2) of each data array `d<k>`.
    pub data_rank: Vec<usize>,
    /// Rank (1 or 2) of each output array `o<k>`.
    pub out_rank: Vec<usize>,
    /// Number of indirection arrays `ind<k>`.
    pub n_ind: usize,
    /// Number of f64 scalars `f<k>`.
    pub n_fscalars: usize,
    /// Number of pointer scalars `p<k>` (init 0).
    pub n_ptrs: usize,
    /// Values of loop-bound scalars `n<k>`.
    pub bound_scalars: Vec<i64>,
    /// Top-level statements.
    pub stmts: Vec<SStmt>,
}

/// A materialized spec: the program plus deterministic initial data.
#[derive(Debug, Clone)]
pub struct Built {
    /// The in-bounds-by-construction program.
    pub prog: Program,
    /// Oracle mode carried over from the spec.
    pub mode: Mode,
    /// Parallel-oracle processor count.
    pub nprocs: usize,
    /// Non-zero initial array contents (data + ind arrays).
    pub init: Vec<(ArrayId, ArrayData)>,
}

impl Built {
    /// Fresh memory with the canonical initial data installed.
    pub fn memory(&self, nprocs: usize) -> SimMem {
        let mut mem = SimMem::new(&self.prog, nprocs);
        for (id, data) in &self.init {
            mem.set_array(*id, data.clone());
        }
        mem
    }
}

/// Deterministic f64 init for element `k` of data array `a`: exact
/// dyadic multiples of 0.5 in `[-4.5, 4.5]`, so sums and small products
/// are exactly representable and reassociation-safe.
pub fn data_init(a: usize, k: usize) -> f64 {
    (((k * 37 + a * 101 + 3) % 19) as f64 - 9.0) * 0.5
}

/// Deterministic init for element `k` of indirection array `a`: always
/// in `[0, IND_RANGE)` so indirect indices and chases stay in bounds.
pub fn ind_init(a: usize, k: usize) -> i64 {
    ((k * 13 + a * 7 + 5) % IND_RANGE as usize) as i64
}

/// Deterministic init for f64 scalar `k` (exact dyadic).
pub fn fscalar_init(k: usize) -> f64 {
    ((k % 7) as f64 - 3.0) * 0.5
}

/// Inclusive interval.
type Iv = (i64, i64);

fn iv_add(a: Iv, b: Iv) -> Iv {
    (a.0 + b.0, a.1 + b.1)
}

fn iv_scale(a: Iv, c: i64) -> Iv {
    if c >= 0 {
        (a.0 * c, a.1 * c)
    } else {
        (a.1 * c, a.0 * c)
    }
}

/// Scope stack of `(spec var, value interval)` maintained identically by
/// the sizing and emission walks.
#[derive(Debug, Default)]
struct Scopes(Vec<(u32, Iv)>);

impl Scopes {
    fn lookup(&self, v: u32) -> Option<Iv> {
        self.0
            .iter()
            .rev()
            .find(|&&(w, _)| w == v)
            .map(|&(_, iv)| iv)
    }
}

fn clamp(k: usize, n: usize) -> usize {
    debug_assert!(n > 0);
    k.min(n - 1)
}

impl ProgSpec {
    fn n_data(&self) -> usize {
        self.data_rank.len().max(1)
    }

    fn n_out(&self) -> usize {
        self.out_rank.len().max(1)
    }

    fn n_ind_eff(&self) -> usize {
        self.n_ind.max(1)
    }

    fn n_f_eff(&self) -> usize {
        self.n_fscalars.max(1)
    }

    fn n_ptr_eff(&self) -> usize {
        self.n_ptrs.max(1)
    }

    fn n_bound_eff(&self) -> usize {
        self.bound_scalars.len().max(1)
    }

    fn bound_scalar_val(&self, k: usize) -> i64 {
        self.bound_scalars
            .get(clamp(k, self.n_bound_eff()))
            .copied()
            .unwrap_or(2)
    }
}

fn bound_iv(b: &SBound, scopes: &Scopes, spec: &ProgSpec) -> Iv {
    match *b {
        SBound::Const(c) => (c, c),
        SBound::Affine { var, coeff, off } => match scopes.lookup(var) {
            Some(iv) => iv_add(iv_scale(iv, coeff), (off, off)),
            None => (off, off),
        },
        SBound::ScalarB(k) => {
            let v = spec.bound_scalar_val(k);
            (v, v)
        }
    }
}

/// The value interval a loop variable ranges over: the interpreter keeps
/// a loop variable inside `[lo, hi - 1]` for either step sign, and empty
/// loops access nothing, so `[lo_min, max(hi_max - 1, lo_min)]` is a
/// sound superset.
fn loop_var_iv(l: &SLoop, scopes: &Scopes, spec: &ProgSpec) -> Iv {
    let lo = bound_iv(&l.lo, scopes, spec);
    let hi = bound_iv(&l.hi, scopes, spec);
    (lo.0, (hi.1 - 1).max(lo.0))
}

/// Conservative interval of one index dimension, pre-shift.
fn index_iv(ix: &SIndex, scopes: &Scopes) -> Iv {
    let mut iv = (ix.off, ix.off);
    for &(v, c) in &ix.terms {
        if let Some(r) = scopes.lookup(v) {
            iv = iv_add(iv, iv_scale(r, c));
        }
    }
    if let Some(d) = &ix.dynamic {
        // Dynamic values live in [0, IND_RANGE).
        iv = iv_add(iv, iv_scale((0, IND_RANGE - 1), d.scale()));
    }
    iv
}

/// Interval of the *inner* (affine) index of an indirection.
fn ind_inner_iv(d: &SDyn, scopes: &Scopes) -> Iv {
    match *d {
        SDyn::Ind {
            inner_var,
            inner_coeff,
            inner_off,
            ..
        } => {
            let base = (inner_off, inner_off);
            match inner_var.and_then(|v| scopes.lookup(v)) {
                Some(r) => iv_add(iv_scale(r, inner_coeff), base),
                None => base,
            }
        }
        SDyn::Ptr { .. } => (0, IND_RANGE - 1),
    }
}

/// Per-(array, dim) extent requirements harvested by the sizing walk.
struct Extents {
    data: Vec<Vec<usize>>,
    out: Vec<Vec<usize>>,
    ind: Vec<usize>,
}

impl Extents {
    fn new(spec: &ProgSpec) -> Self {
        Extents {
            data: (0..spec.n_data())
                .map(|k| vec![1; spec.data_rank.get(k).copied().unwrap_or(1)])
                .collect(),
            out: (0..spec.n_out())
                .map(|k| vec![1; spec.out_rank.get(k).copied().unwrap_or(1)])
                .collect(),
            // Chases need every stored value in [0, IND_RANGE) to be a
            // valid index.
            ind: vec![IND_RANGE as usize; spec.n_ind_eff()],
        }
    }

    fn need(&mut self, spec: &ProgSpec, arr: SArr, dim: usize, ext: usize) {
        let slot = match arr {
            SArr::Data(k) => self.data[clamp(k, spec.n_data())].get_mut(dim),
            SArr::Out(k) => self.out[clamp(k, spec.n_out())].get_mut(dim),
        };
        if let Some(s) = slot {
            *s = (*s).max(ext);
        }
    }

    fn need_ind(&mut self, spec: &ProgSpec, k: usize, ext: usize) {
        let slot = clamp(k, spec.n_ind_eff());
        self.ind[slot] = self.ind[slot].max(ext);
    }
}

/// Sizing walk: records the extent every reference needs.
fn size_ref(spec: &ProgSpec, arr: SArr, idx: &[SIndex], scopes: &Scopes, ext: &mut Extents) {
    for (d, ix) in idx.iter().enumerate() {
        let (mn, mx) = index_iv(ix, scopes);
        ext.need(spec, arr, d, (mx - mn + 1).max(1) as usize);
        if let Some(dy @ SDyn::Ind { ind, .. }) = &ix.dynamic {
            let (imn, imx) = ind_inner_iv(dy, scopes);
            ext.need_ind(spec, *ind, (imx - imn + 1).max(1) as usize);
        }
    }
}

fn size_expr(spec: &ProgSpec, e: &SExpr, scopes: &Scopes, ext: &mut Extents) {
    match e {
        SExpr::Load { arr, idx } => size_ref(spec, *arr, idx, scopes, ext),
        SExpr::Bin(_, a, b) => {
            size_expr(spec, a, scopes, ext);
            size_expr(spec, b, scopes, ext);
        }
        SExpr::Neg(a) => size_expr(spec, a, scopes, ext),
        _ => {}
    }
}

fn size_body(spec: &ProgSpec, body: &[SStmt], scopes: &mut Scopes, ext: &mut Extents) {
    for s in body {
        match s {
            SStmt::Loop(l) => {
                let iv = loop_var_iv(l, scopes, spec);
                scopes.0.push((l.var, iv));
                size_body(spec, &l.body, scopes, ext);
                scopes.0.pop();
            }
            SStmt::Store { target, idx, rhs } => {
                size_ref(spec, *target, idx, scopes, ext);
                size_expr(spec, rhs, scopes, ext);
            }
            SStmt::SetF { rhs, .. } => size_expr(spec, rhs, scopes, ext),
            SStmt::Chase { .. } | SStmt::Barrier => {}
            SStmt::If { then_s, else_s, .. } => {
                size_body(spec, then_s, scopes, ext);
                size_body(spec, else_s, scopes, ext);
            }
        }
    }
}

/// Ids allocated at declaration time.
struct Ids {
    data: Vec<ArrayId>,
    out: Vec<ArrayId>,
    ind: Vec<ArrayId>,
    fscalars: Vec<ScalarId>,
    ptrs: Vec<ScalarId>,
    bounds: Vec<ScalarId>,
    vars: std::collections::HashMap<u32, VarId>,
}

impl Ids {
    fn arr(&self, spec: &ProgSpec, arr: SArr) -> ArrayId {
        match arr {
            SArr::Data(k) => self.data[clamp(k, spec.n_data())],
            SArr::Out(k) => self.out[clamp(k, spec.n_out())],
        }
    }

    fn ptr(&self, spec: &ProgSpec, k: usize) -> ScalarId {
        self.ptrs[clamp(k, spec.n_ptr_eff())]
    }
}

fn emit_index(spec: &ProgSpec, ix: &SIndex, scopes: &Scopes, ids: &Ids) -> Index {
    let (mn, _) = index_iv(ix, scopes);
    // Shift by -mn so the materialized index range starts at zero.
    let mut e = AffineExpr::konst(ix.off - mn);
    for &(v, c) in &ix.terms {
        if scopes.lookup(v).is_some() {
            e = e.add(&AffineExpr::scaled_var(ids.vars[&v], c, 0));
        }
    }
    let dynamic = ix.dynamic.as_ref().map(|d| match *d {
        SDyn::Ind {
            ind,
            inner_var,
            inner_coeff,
            inner_off,
            scale,
        } => {
            let (imn, _) = ind_inner_iv(d, scopes);
            let mut inner = AffineExpr::konst(inner_off - imn);
            if let Some(v) = inner_var {
                if scopes.lookup(v).is_some() {
                    inner = inner.add(&AffineExpr::scaled_var(ids.vars[&v], inner_coeff, 0));
                }
            }
            let arr = ids.ind[clamp(ind, spec.n_ind_eff())];
            DynIndex::Indirect {
                inner: Box::new(ArrayRef::new(arr, vec![Index::affine(inner)])),
                scale,
            }
        }
        SDyn::Ptr { ptr, scale } => DynIndex::Scalar {
            scalar: ids.ptr(spec, ptr),
            scale,
        },
    });
    Index { affine: e, dynamic }
}

fn emit_expr(spec: &ProgSpec, e: &SExpr, scopes: &Scopes, ids: &Ids) -> Expr {
    match e {
        SExpr::Load { arr, idx } => {
            let indices: Vec<Index> = idx
                .iter()
                .map(|ix| emit_index(spec, ix, scopes, ids))
                .collect();
            Expr::Load(ArrayRef::new(ids.arr(spec, *arr), indices))
        }
        SExpr::ScalarF(k) => Expr::Scalar(ids.fscalars[clamp(*k, spec.n_f_eff())]),
        SExpr::Ptr(k) => Expr::Scalar(ids.ptr(spec, *k)),
        SExpr::Var(v) => match scopes.lookup(*v) {
            Some(_) => Expr::LoopVar(ids.vars[v]),
            None => Expr::ConstI(0),
        },
        SExpr::ConstF(x) => Expr::ConstF(*x),
        SExpr::Bin(op, x, y) => Expr::bin(
            op.to_ir(),
            emit_expr(spec, x, scopes, ids),
            emit_expr(spec, y, scopes, ids),
        ),
        SExpr::Neg(x) => Expr::Unary(UnOp::Neg, Box::new(emit_expr(spec, x, scopes, ids))),
    }
}

fn emit_bound(spec: &ProgSpec, b: &SBound, scopes: &Scopes, ids: &Ids) -> Bound {
    match *b {
        SBound::Const(c) => Bound::Const(c),
        SBound::Affine { var, coeff, off } => match scopes.lookup(var) {
            Some(_) => Bound::Affine(AffineExpr::scaled_var(ids.vars[&var], coeff, off)),
            None => Bound::Const(off),
        },
        SBound::ScalarB(k) => Bound::Scalar(ids.bounds[clamp(k, spec.n_bound_eff())]),
    }
}

fn emit_body(spec: &ProgSpec, body: &[SStmt], scopes: &mut Scopes, ids: &Ids) -> Vec<Stmt> {
    let mut out = Vec::with_capacity(body.len());
    for s in body {
        match s {
            SStmt::Loop(l) => {
                let iv = loop_var_iv(l, scopes, spec);
                let lo = emit_bound(spec, &l.lo, scopes, ids);
                let hi = emit_bound(spec, &l.hi, scopes, ids);
                scopes.0.push((l.var, iv));
                let inner = emit_body(spec, &l.body, scopes, ids);
                scopes.0.pop();
                out.push(Stmt::Loop(Loop {
                    var: ids.vars[&l.var],
                    lo,
                    hi,
                    step: if l.step == 0 { 1 } else { l.step },
                    dist: l.dist,
                    body: inner,
                }));
            }
            SStmt::Store { target, idx, rhs } => {
                let indices: Vec<Index> = idx
                    .iter()
                    .map(|ix| emit_index(spec, ix, scopes, ids))
                    .collect();
                out.push(Stmt::AssignArray {
                    lhs: ArrayRef::new(ids.arr(spec, *target), indices),
                    rhs: emit_expr(spec, rhs, scopes, ids),
                });
            }
            SStmt::SetF { scalar, rhs } => out.push(Stmt::AssignScalar {
                lhs: ids.fscalars[clamp(*scalar, spec.n_f_eff())],
                rhs: emit_expr(spec, rhs, scopes, ids),
            }),
            SStmt::Chase { ptr, ind } => {
                let p = ids.ptr(spec, *ptr);
                let arr = ids.ind[clamp(*ind, spec.n_ind_eff())];
                out.push(Stmt::AssignScalar {
                    lhs: p,
                    rhs: Expr::Load(ArrayRef::new(arr, vec![Index::scalar(p)])),
                });
            }
            SStmt::If {
                cond,
                then_s,
                else_s,
            } => {
                let lhs = match scopes.lookup(cond.var) {
                    Some(_) => AffineExpr::scaled_var(ids.vars[&cond.var], cond.coeff, cond.off),
                    None => AffineExpr::konst(cond.off),
                };
                let then_branch = emit_body(spec, then_s, scopes, ids);
                let else_branch = emit_body(spec, else_s, scopes, ids);
                out.push(Stmt::If {
                    cond: Cond::new(lhs, cond.op),
                    then_branch,
                    else_branch,
                });
            }
            SStmt::Barrier => out.push(Stmt::Barrier),
        }
    }
    out
}

fn collect_vars(body: &[SStmt], acc: &mut Vec<u32>) {
    for s in body {
        match s {
            SStmt::Loop(l) => {
                if !acc.contains(&l.var) {
                    acc.push(l.var);
                }
                collect_vars(&l.body, acc);
            }
            SStmt::If { then_s, else_s, .. } => {
                collect_vars(then_s, acc);
                collect_vars(else_s, acc);
            }
            _ => {}
        }
    }
}

/// Materializes a spec into an in-bounds program with deterministic
/// initial data. Pure: same spec ⇒ same [`Built`].
pub fn materialize(spec: &ProgSpec) -> Built {
    // Pass 1: conservative extents for every reference.
    let mut ext = Extents::new(spec);
    size_body(spec, &spec.stmts, &mut Scopes::default(), &mut ext);

    // Pass 2: declarations.
    let mut b = ProgramBuilder::new(format!("gen_{:016x}", spec.seed));
    let mut ids = Ids {
        data: Vec::new(),
        out: Vec::new(),
        ind: Vec::new(),
        fscalars: Vec::new(),
        ptrs: Vec::new(),
        bounds: Vec::new(),
        vars: std::collections::HashMap::new(),
    };
    for (k, dims) in ext.data.iter().enumerate() {
        ids.data.push(b.array_f64(format!("d{k}"), dims));
    }
    for (k, dims) in ext.out.iter().enumerate() {
        ids.out.push(b.array_f64(format!("o{k}"), dims));
    }
    for (k, n) in ext.ind.iter().enumerate() {
        ids.ind.push(b.array_i64(format!("ind{k}"), &[*n]));
    }
    for k in 0..spec.n_f_eff() {
        ids.fscalars
            .push(b.scalar_f64(format!("f{k}"), fscalar_init(k)));
    }
    for k in 0..spec.n_ptr_eff() {
        ids.ptrs.push(b.scalar_i64(format!("p{k}"), 0));
    }
    for k in 0..spec.n_bound_eff() {
        ids.bounds
            .push(b.scalar_i64(format!("n{k}"), spec.bound_scalar_val(k)));
    }
    let mut vars = Vec::new();
    collect_vars(&spec.stmts, &mut vars);
    for v in vars {
        ids.vars.insert(v, b.var(format!("v{v}")));
    }

    // Pass 3: emission (same interval walk as sizing).
    let body = emit_body(spec, &spec.stmts, &mut Scopes::default(), &ids);
    let mut prog = b.finish();
    prog.body = body;

    // Deterministic initial contents.
    let mut init = Vec::new();
    for (k, dims) in ext.data.iter().enumerate() {
        let n: usize = dims.iter().product();
        init.push((
            ids.data[k],
            ArrayData::F64((0..n).map(|i| data_init(k, i)).collect()),
        ));
    }
    for (k, n) in ext.ind.iter().enumerate() {
        init.push((
            ids.ind[k],
            ArrayData::I64((0..*n).map(|i| ind_init(k, i)).collect()),
        ));
    }

    Built {
        prog,
        mode: spec.mode,
        nprocs: spec.nprocs.max(2),
        init,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mempar_ir::run_single;

    fn tiny_spec() -> ProgSpec {
        ProgSpec {
            seed: 1,
            mode: Mode::Seq,
            nprocs: 2,
            data_rank: vec![1],
            out_rank: vec![1],
            n_ind: 1,
            n_fscalars: 1,
            n_ptrs: 1,
            bound_scalars: vec![5],
            stmts: vec![SStmt::Loop(SLoop {
                var: 0,
                lo: SBound::Const(0),
                hi: SBound::ScalarB(0),
                step: 1,
                dist: None,
                body: vec![SStmt::Store {
                    target: SArr::Out(0),
                    idx: vec![SIndex {
                        terms: vec![(0, 2)],
                        off: -3,
                        dynamic: Some(SDyn::Ind {
                            ind: 0,
                            inner_var: Some(0),
                            inner_coeff: 1,
                            inner_off: 0,
                            scale: 2,
                        }),
                    }],
                    rhs: SExpr::Bin(
                        SOp::Add,
                        Box::new(SExpr::Load {
                            arr: SArr::Data(0),
                            idx: vec![SIndex::var(0)],
                        }),
                        Box::new(SExpr::Var(0)),
                    ),
                }],
            })],
        }
    }

    #[test]
    fn materialized_spec_validates_and_runs() {
        let built = materialize(&tiny_spec());
        assert!(
            built.prog.validate().is_empty(),
            "{:?}",
            built.prog.validate()
        );
        let mut mem = built.memory(1);
        let s = run_single(&built.prog, &mut mem);
        assert_eq!(s.stores, 5);
    }

    #[test]
    fn negative_offsets_are_rebased_in_bounds() {
        let mut spec = tiny_spec();
        // An aggressively negative offset with a backwards loop.
        if let SStmt::Loop(l) = &mut spec.stmts[0] {
            l.step = -1;
            if let SStmt::Store { idx, .. } = &mut l.body[0] {
                idx[0].off = -100;
            }
        }
        let built = materialize(&spec);
        assert!(built.prog.validate().is_empty());
        let mut mem = built.memory(1);
        run_single(&built.prog, &mut mem);
    }

    #[test]
    fn out_of_scope_vars_drop_out() {
        let mut spec = tiny_spec();
        // Reference loop var 7, which no loop defines.
        if let SStmt::Loop(l) = &mut spec.stmts[0] {
            if let SStmt::Store { idx, .. } = &mut l.body[0] {
                idx[0].terms.push((7, 4));
            }
        }
        let built = materialize(&spec);
        assert!(built.prog.validate().is_empty());
        let mut mem = built.memory(1);
        run_single(&built.prog, &mut mem);
    }

    #[test]
    fn materialize_is_pure() {
        let a = materialize(&tiny_spec());
        let b = materialize(&tiny_spec());
        assert_eq!(a.prog, b.prog);
        let (ma, mb) = (a.memory(1), b.memory(1));
        assert_eq!(ma.fingerprint(), mb.fingerprint());
    }
}
