//! The differential checking harness.
//!
//! For one generated spec the harness establishes a sequential
//! interpreter baseline, then demands a bit-identical final memory
//! image from:
//!
//! * the parallel functional oracle (when the spec's [`Mode`] makes the
//!   redundant/distributed execution deterministic),
//! * every transform pass applied individually at every loop path,
//! * random multi-pass compositions of legally-applied transforms, and
//! * the paper's clustering driver
//!   ([`mempar_transform::cluster_program`]) end to end.
//!
//! Legality rejections are additionally *probed*: a dependence-rejected
//! unroll-and-jam or interchange is force-applied with
//! [`Legality::Bypass`] and re-run. If the forced result still validates
//! and matches the baseline, the rejection was merely conservative
//! (allowed); the probe exists to catch the opposite rot — an
//! [`TransformError::IllegalDependence`] that the dependence test would
//! silently stop returning while the transform is actually unsafe.

use std::cell::Cell;
use std::panic::AssertUnwindSafe;
use std::sync::Once;

use crate::spec::{Built, ProgSpec};
use mempar::{machine_summary, profile_miss_rates, MachineConfig, MissProfile};
use mempar_ir::{run_parallel_functional, run_single, Program, SimMem, Stmt};
use mempar_transform::{
    cluster_program, fuse_next, inner_unroll, insert_prefetches, interchange_with, scalar_replace,
    strip_mine, unroll_and_jam_with, Legality, NestPath, TransformError,
};
use rand::{rngs::SmallRng, Rng, SeedableRng};

/// A transform pass the harness can apply at a loop path.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PassKind {
    /// Unroll-and-jam by the given degree.
    UnrollJam(u32),
    /// Loop interchange of a perfect 2-nest.
    Interchange,
    /// Strip-mining with the given strip length.
    StripMine(u32),
    /// In-place inner unrolling (always order-preserving).
    InnerUnroll(u32),
    /// Fusion with the next sibling loop.
    FuseNext,
    /// Scalar replacement of invariant references.
    ScalarReplace,
    /// Software prefetch insertion (functional no-op).
    Prefetch,
}

impl PassKind {
    /// The full pass roster the harness exercises.
    pub fn all() -> &'static [PassKind] {
        &[
            PassKind::UnrollJam(2),
            PassKind::UnrollJam(3),
            PassKind::Interchange,
            PassKind::StripMine(4),
            PassKind::InnerUnroll(2),
            PassKind::FuseNext,
            PassKind::ScalarReplace,
            PassKind::Prefetch,
        ]
    }

    /// Whether the pass has a [`Legality::Bypass`] variant to probe
    /// dependence rejections with.
    pub fn has_bypass(self) -> bool {
        matches!(self, PassKind::UnrollJam(_) | PassKind::Interchange)
    }

    /// Short stable name (used in failure signatures, so path- and
    /// degree-free).
    pub fn name(self) -> &'static str {
        match self {
            PassKind::UnrollJam(_) => "uaj",
            PassKind::Interchange => "interchange",
            PassKind::StripMine(_) => "strip",
            PassKind::InnerUnroll(_) => "unroll",
            PassKind::FuseNext => "fuse",
            PassKind::ScalarReplace => "scalrep",
            PassKind::Prefetch => "prefetch",
        }
    }
}

impl std::fmt::Display for PassKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PassKind::UnrollJam(d) => write!(f, "uaj(d={d})"),
            PassKind::Interchange => write!(f, "interchange"),
            PassKind::StripMine(s) => write!(f, "strip(s={s})"),
            PassKind::InnerUnroll(d) => write!(f, "unroll(d={d})"),
            PassKind::FuseNext => write!(f, "fuse"),
            PassKind::ScalarReplace => write!(f, "scalrep"),
            PassKind::Prefetch => write!(f, "prefetch"),
        }
    }
}

/// How a differential check failed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DivKind {
    /// Sequential memory image differs from the baseline.
    MemDiff,
    /// Parallel-functional memory image differs from the baseline.
    ParMemDiff,
    /// A transform produced a program the validator rejects.
    InvalidProgram,
    /// Interpreter or transform panicked.
    Panicked,
}

/// One observed divergence, with enough context to reproduce and
/// shrink it.
#[derive(Debug, Clone)]
pub struct Divergence {
    /// Generator seed of the offending spec.
    pub seed: u64,
    /// Human-readable chain of applied passes (with paths).
    pub pass_chain: String,
    /// Failure class.
    pub kind: DivKind,
    /// Diagnostic detail (fingerprints, validator errors, panic text).
    pub detail: String,
}

impl Divergence {
    /// Path- and degree-free signature used by the shrinker to decide
    /// whether a mutated spec still exhibits *the same* failure.
    pub fn signature(&self) -> String {
        let names: Vec<&str> = self
            .pass_chain
            .split('+')
            .map(|p| p.split('(').next().unwrap_or(p).trim())
            .map(|p| p.split('@').next().unwrap_or(p).trim())
            .collect();
        format!("{:?}|{}", self.kind, names.join("+"))
    }
}

/// Aggregate result of checking one spec.
#[derive(Debug, Clone, Default)]
pub struct CheckReport {
    /// All divergences found (empty = spec passed).
    pub divergences: Vec<Divergence>,
    /// Single-pass applications that succeeded and matched.
    pub singles_ok: usize,
    /// Single-pass applications rejected by legality/structure.
    pub singles_rejected: usize,
    /// Dependence rejections where the forced (bypassed) application
    /// demonstrably broke the program — the rejection earned its keep.
    pub rejections_justified: usize,
    /// Dependence rejections where the forced application happened to
    /// still match (conservative, but sound).
    pub rejections_conservative: usize,
    /// Random compositions fully applied and matched.
    pub compositions_ok: usize,
}

impl CheckReport {
    /// True when no divergence was observed.
    pub fn passed(&self) -> bool {
        self.divergences.is_empty()
    }
}

/// Outcome of [`check_spec`] (alias for readability at call sites).
pub type CheckOutcome = CheckReport;

static HOOK: Once = Once::new();
thread_local! {
    static QUIET: Cell<bool> = const { Cell::new(false) };
}

/// Runs `f`, converting panics to `Err` without letting the default
/// panic hook spam stderr (forced-bypass probes panic by design).
fn catch_quiet<R>(f: impl FnOnce() -> R) -> Result<R, String> {
    HOOK.call_once(|| {
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            if !QUIET.with(|q| q.get()) {
                prev(info);
            }
        }));
    });
    QUIET.with(|q| q.set(true));
    let r = std::panic::catch_unwind(AssertUnwindSafe(f));
    QUIET.with(|q| q.set(false));
    r.map_err(|e| {
        e.downcast_ref::<&str>()
            .map(|s| s.to_string())
            .or_else(|| e.downcast_ref::<String>().cloned())
            .unwrap_or_else(|| "panic".to_string())
    })
}

/// Fresh memory for (a transform of) `built`'s program. Transforms never
/// touch array declarations, so the layout — and therefore the
/// fingerprint space — is shared with the baseline.
fn memory_for(prog: &Program, built: &Built, nprocs: usize) -> SimMem {
    let mut mem = SimMem::new(prog, nprocs);
    for (id, data) in &built.init {
        mem.set_array(*id, data.clone());
    }
    mem
}

fn seq_fingerprint(prog: &Program, built: &Built) -> Result<u64, String> {
    catch_quiet(|| {
        let mut mem = memory_for(prog, built, 1);
        run_single(prog, &mut mem);
        mem.fingerprint()
    })
}

fn par_fingerprint(prog: &Program, built: &Built, nprocs: usize) -> Result<u64, String> {
    catch_quiet(|| {
        let mut mem = memory_for(prog, built, 1);
        run_parallel_functional(prog, &mut mem, nprocs);
        mem.fingerprint()
    })
}

/// All paths to loops reachable through loop nesting (the path space the
/// transform entry points accept).
pub fn loop_paths(prog: &Program) -> Vec<NestPath> {
    fn walk(body: &[Stmt], cur: &mut Vec<usize>, out: &mut Vec<NestPath>) {
        for (i, s) in body.iter().enumerate() {
            if let Stmt::Loop(l) = s {
                cur.push(i);
                out.push(NestPath(cur.clone()));
                walk(&l.body, cur, &mut *out);
                cur.pop();
            }
        }
    }
    let mut out = Vec::new();
    walk(&prog.body, &mut Vec::new(), &mut out);
    out
}

/// Applies one pass at `path`.
pub fn apply_pass(
    prog: &mut Program,
    path: &NestPath,
    pass: PassKind,
    legality: Legality,
    profile: &MissProfile,
) -> Result<(), TransformError> {
    match pass {
        PassKind::UnrollJam(d) => unroll_and_jam_with(prog, path, d, legality).map(|_| ()),
        PassKind::Interchange => interchange_with(prog, path, legality),
        PassKind::StripMine(s) => strip_mine(prog, path, s).map(|_| ()),
        PassKind::InnerUnroll(d) => inner_unroll(prog, path, d).map(|_| ()),
        PassKind::FuseNext => fuse_next(prog, path),
        PassKind::ScalarReplace => scalar_replace(prog, path).map(|_| ()),
        PassKind::Prefetch => insert_prefetches(prog, path, 16, 64, profile).map(|_| ()),
    }
}

/// Checks a transformed program against the baseline fingerprint.
/// Returns `None` when everything matches.
fn diff_transformed(
    spec: &ProgSpec,
    built: &Built,
    prog: &Program,
    chain: &str,
    base_fp: u64,
) -> Option<Divergence> {
    let errs = prog.validate();
    if !errs.is_empty() {
        return Some(Divergence {
            seed: spec.seed,
            pass_chain: chain.to_string(),
            kind: DivKind::InvalidProgram,
            detail: format!("{errs:?}"),
        });
    }
    match seq_fingerprint(prog, built) {
        Ok(fp) if fp == base_fp => {}
        Ok(fp) => {
            return Some(Divergence {
                seed: spec.seed,
                pass_chain: chain.to_string(),
                kind: DivKind::MemDiff,
                detail: format!("seq fingerprint {fp:#018x} != baseline {base_fp:#018x}"),
            })
        }
        Err(msg) => {
            return Some(Divergence {
                seed: spec.seed,
                pass_chain: chain.to_string(),
                kind: DivKind::Panicked,
                detail: msg,
            })
        }
    }
    if built.mode.parallel_checked() {
        match par_fingerprint(prog, built, built.nprocs) {
            Ok(fp) if fp == base_fp => {}
            Ok(fp) => {
                return Some(Divergence {
                    seed: spec.seed,
                    pass_chain: chain.to_string(),
                    kind: DivKind::ParMemDiff,
                    detail: format!("par fingerprint {fp:#018x} != baseline {base_fp:#018x}"),
                })
            }
            Err(msg) => {
                return Some(Divergence {
                    seed: spec.seed,
                    pass_chain: chain.to_string(),
                    kind: DivKind::Panicked,
                    detail: msg,
                })
            }
        }
    }
    None
}

/// Runs the full differential check for one spec: baseline, parallel
/// oracle, every single pass at every path (with rejection probing),
/// random compositions, and the clustering driver.
pub fn check_spec(spec: &ProgSpec) -> CheckReport {
    let mut report = CheckReport::default();
    let built = crate::spec::materialize(spec);

    // Generated programs must always validate; anything else is a
    // generator/materializer bug and gets reported like a divergence so
    // it shrinks the same way.
    let errs = built.prog.validate();
    if !errs.is_empty() {
        report.divergences.push(Divergence {
            seed: spec.seed,
            pass_chain: "generate".into(),
            kind: DivKind::InvalidProgram,
            detail: format!("{errs:?}"),
        });
        return report;
    }

    // Baseline.
    let base_fp = match seq_fingerprint(&built.prog, &built) {
        Ok(fp) => fp,
        Err(msg) => {
            report.divergences.push(Divergence {
                seed: spec.seed,
                pass_chain: "baseline".into(),
                kind: DivKind::Panicked,
                detail: msg,
            });
            return report;
        }
    };

    // Parallel oracle on the untransformed program.
    if built.mode.parallel_checked() {
        match par_fingerprint(&built.prog, &built, built.nprocs) {
            Ok(fp) if fp == base_fp => {}
            Ok(fp) => report.divergences.push(Divergence {
                seed: spec.seed,
                pass_chain: "parallel-oracle".into(),
                kind: DivKind::ParMemDiff,
                detail: format!("par fingerprint {fp:#018x} != baseline {base_fp:#018x}"),
            }),
            Err(msg) => report.divergences.push(Divergence {
                seed: spec.seed,
                pass_chain: "parallel-oracle".into(),
                kind: DivKind::Panicked,
                detail: msg,
            }),
        }
    }

    // A miss profile for the prefetch pass (functional input only).
    let cfg = MachineConfig::base_simulated(1, 256 * 1024);
    let profile = {
        let mut mem = built.memory(1);
        profile_miss_rates(&built.prog, &mut mem, &cfg.l2)
    };

    // Every pass, alone, at every loop path.
    for path in loop_paths(&built.prog) {
        for &pass in PassKind::all() {
            let mut prog = built.prog.clone();
            let applied =
                catch_quiet(|| apply_pass(&mut prog, &path, pass, Legality::Enforce, &profile));
            let chain = format!("{pass}@{:?}", path.0);
            match applied {
                Ok(Ok(())) => match diff_transformed(spec, &built, &prog, &chain, base_fp) {
                    Some(d) => report.divergences.push(d),
                    None => report.singles_ok += 1,
                },
                Ok(Err(TransformError::IllegalDependence)) if pass.has_bypass() => {
                    report.singles_rejected += 1;
                    probe_rejection(spec, &built, &path, pass, &profile, base_fp, &mut report);
                }
                Ok(Err(_)) => report.singles_rejected += 1,
                Err(msg) => report.divergences.push(Divergence {
                    seed: spec.seed,
                    pass_chain: chain,
                    kind: DivKind::Panicked,
                    detail: format!("pass panicked under Enforce: {msg}"),
                }),
            }
        }
    }

    // Random compositions of legally-applied passes.
    let mut rng = SmallRng::seed_from_u64(spec.seed ^ 0x9e37_79b9_7f4a_7c15);
    for _ in 0..4 {
        compose_once(spec, &built, &profile, base_fp, &mut rng, &mut report);
    }

    // The clustering driver end to end ("driver-ordered" composition).
    let mut prog = built.prog.clone();
    let summary = machine_summary(&cfg);
    match catch_quiet(|| {
        cluster_program(&mut prog, &summary, &profile);
    }) {
        Ok(()) => match diff_transformed(spec, &built, &prog, "driver", base_fp) {
            Some(d) => report.divergences.push(d),
            None => report.compositions_ok += 1,
        },
        Err(msg) => report.divergences.push(Divergence {
            seed: spec.seed,
            pass_chain: "driver".into(),
            kind: DivKind::Panicked,
            detail: msg,
        }),
    }

    report
}

/// Forces a dependence-rejected pass with [`Legality::Bypass`] and
/// classifies the rejection. A rejection is *justified* when the forced
/// program breaks (invalid, diverging, or panicking); otherwise it was
/// conservative. Either way the legality analysis is sound — the probe's
/// value is the aggregate statistic and the guarantee that `Bypass`
/// really does reach the unsafe behavior the test gates.
fn probe_rejection(
    spec: &ProgSpec,
    built: &Built,
    path: &NestPath,
    pass: PassKind,
    profile: &MissProfile,
    base_fp: u64,
    report: &mut CheckReport,
) {
    let mut prog = built.prog.clone();
    let forced = catch_quiet(|| apply_pass(&mut prog, path, pass, Legality::Bypass, profile));
    match forced {
        // Structurally impossible even when forced — counts as
        // justified (the transform cannot be expressed at all).
        Ok(Err(_)) | Err(_) => report.rejections_justified += 1,
        Ok(Ok(())) => {
            let chain = format!("forced-{pass}@{:?}", path.0);
            match diff_transformed(spec, built, &prog, &chain, base_fp) {
                Some(_) => report.rejections_justified += 1,
                None => report.rejections_conservative += 1,
            }
        }
    }
}

fn compose_once(
    spec: &ProgSpec,
    built: &Built,
    profile: &MissProfile,
    base_fp: u64,
    rng: &mut SmallRng,
    report: &mut CheckReport,
) {
    let mut prog = built.prog.clone();
    let mut chain: Vec<String> = Vec::new();
    let len = rng.gen_range(1..=3usize);
    for _ in 0..len {
        let paths = loop_paths(&prog);
        if paths.is_empty() {
            break;
        }
        // A few attempts to find an applicable (pass, path) persuasion.
        let mut applied = false;
        for _ in 0..8 {
            let path = paths[rng.gen_range(0..paths.len())].clone();
            let all = PassKind::all();
            let pass = all[rng.gen_range(0..all.len())];
            let mut cand = prog.clone();
            let r = catch_quiet(|| apply_pass(&mut cand, &path, pass, Legality::Enforce, profile));
            match r {
                Ok(Ok(())) => {
                    prog = cand;
                    chain.push(format!("{pass}@{:?}", path.0));
                    applied = true;
                    break;
                }
                Ok(Err(_)) => {}
                Err(msg) => {
                    report.divergences.push(Divergence {
                        seed: spec.seed,
                        pass_chain: format!("{}+{pass}@{:?}", chain.join("+"), path.0),
                        kind: DivKind::Panicked,
                        detail: format!("pass panicked under Enforce: {msg}"),
                    });
                    return;
                }
            }
        }
        if !applied {
            break;
        }
        // Check after every link so the failing prefix is minimal.
        let descr = chain.join("+");
        if let Some(d) = diff_transformed(spec, built, &prog, &descr, base_fp) {
            report.divergences.push(d);
            return;
        }
    }
    if !chain.is_empty() {
        report.compositions_ok += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::gen_spec;

    #[test]
    fn pass_roster_covers_bypassable_passes() {
        assert!(PassKind::all().iter().any(|p| p.has_bypass()));
        assert!(PassKind::all().iter().any(|p| !p.has_bypass()));
    }

    #[test]
    fn check_spec_applies_and_rejects_on_a_seed_sweep() {
        let mut singles = 0;
        let mut rejected = 0;
        let mut probed = 0;
        for seed in 0..40 {
            let spec = gen_spec(seed);
            let r = check_spec(&spec);
            assert!(
                r.passed(),
                "seed {seed}: {:#?}",
                r.divergences
                    .iter()
                    .map(|d| (&d.pass_chain, d.kind, &d.detail))
                    .collect::<Vec<_>>()
            );
            singles += r.singles_ok;
            rejected += r.singles_rejected;
            probed += r.rejections_justified + r.rejections_conservative;
        }
        assert!(singles > 40, "too few successful applications: {singles}");
        assert!(rejected > 40, "too few rejections: {rejected}");
        assert!(probed > 5, "dependence rejections never probed: {probed}");
    }

    #[test]
    fn signature_is_path_free() {
        let d = Divergence {
            seed: 7,
            pass_chain: "uaj(d=2)@[0, 1]+strip(s=4)@[0]".into(),
            kind: DivKind::MemDiff,
            detail: String::new(),
        };
        assert_eq!(d.signature(), "MemDiff|uaj+strip");
    }
}
