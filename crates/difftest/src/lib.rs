//! Differential-testing subsystem for the mempar reproduction.
//!
//! Three layers, all driven from the same adversarial program
//! generator:
//!
//! 1. **Generation** ([`spec`], [`gen`]) — random loop-nest skeletons
//!    ([`spec::ProgSpec`]) materialized into in-bounds-by-construction
//!    IR programs with deterministic initial data.
//! 2. **Differential checking** ([`harness`]) — every transform pass,
//!    alone and in random legal compositions, must preserve the
//!    bit-exact memory image against the sequential interpreter oracle
//!    (and the parallel functional oracle where the program's mode
//!    permits); legality rejections are probed with
//!    [`mempar_transform::Legality::Bypass`] to prove they are not
//!    silent false-accepts.
//! 3. **Shrinking & reproduction** ([`shrink`]) — failing specs are
//!    minimized at the spec level and pretty-printed into
//!    `tests/corpus/` reproducers.
//!
//! The golden-trace layer ([`golden`]) snapshots
//! [`mempar_ir::TraceDigest`] summaries for a pinned corpus so that any
//! semantic drift in the interpreter or simulator fails a committed
//! snapshot.

#![warn(missing_docs)]

pub mod gen;
pub mod golden;
pub mod harness;
pub mod shrink;
pub mod spec;

pub use gen::{gen_spec, gen_spec_with, GenConfig};
pub use golden::{check_golden, snapshot, snapshot_gen_seed, BLESS_ENV, PINNED_GEN_SEEDS};
pub use harness::{check_spec, CheckOutcome, CheckReport, DivKind, Divergence, PassKind};
pub use shrink::{render_reproducer, shrink, shrink_with};
pub use spec::{materialize, Built, Mode, ProgSpec};
