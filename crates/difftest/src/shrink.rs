//! Spec-level shrinking of failing programs.
//!
//! Shrinking operates on [`ProgSpec`], never on materialized IR: every
//! mutation below yields another well-formed spec, and materialization
//! re-derives array extents, so shrunk candidates remain in-bounds by
//! construction (no shrink step can create a memory fault that wasn't
//! the bug itself). The algorithm is deterministic greedy descent: try
//! all structural mutations, keep the first strictly-smaller candidate
//! that still exhibits the same failure signature, repeat to fixpoint.

use crate::harness::check_spec;
use crate::spec::{ProgSpec, SBound, SExpr, SIndex, SStmt};

/// Upper bound on shrink iterations (each strictly reduces the size
/// metric, so this is a safety net rather than a tuning knob).
const MAX_ROUNDS: usize = 400;

/// Size metric: statements, expression nodes, index terms, and bound
/// complexity. Strictly decreases along an accepted shrink step.
pub fn spec_size(spec: &ProgSpec) -> usize {
    fn bound(b: &SBound) -> usize {
        match b {
            SBound::Const(_) => 1,
            SBound::Affine { .. } | SBound::ScalarB(_) => 2,
        }
    }
    fn index(ix: &SIndex) -> usize {
        1 + ix.terms.len() + if ix.dynamic.is_some() { 2 } else { 0 }
    }
    fn expr(e: &SExpr) -> usize {
        match e {
            SExpr::Load { idx, .. } => 1 + idx.iter().map(index).sum::<usize>(),
            SExpr::Bin(_, a, b) => 1 + expr(a) + expr(b),
            SExpr::Neg(a) => 1 + expr(a),
            _ => 1,
        }
    }
    fn body(stmts: &[SStmt]) -> usize {
        stmts
            .iter()
            .map(|s| match s {
                SStmt::Loop(l) => {
                    2 + bound(&l.lo) + bound(&l.hi) + usize::from(l.step != 1) + body(&l.body)
                }
                SStmt::Store { idx, rhs, .. } => {
                    1 + idx.iter().map(index).sum::<usize>() + expr(rhs)
                }
                SStmt::SetF { rhs, .. } => 1 + expr(rhs),
                SStmt::Chase { .. } => 2,
                SStmt::If { then_s, else_s, .. } => 2 + body(then_s) + body(else_s),
                SStmt::Barrier => 1,
            })
            .sum()
    }
    body(&spec.stmts)
}

/// One round of candidate mutations, roughly largest-reduction first.
fn candidates(spec: &ProgSpec) -> Vec<ProgSpec> {
    let mut out = Vec::new();
    let n = count_stmts(&spec.stmts);

    // 1. Delete any single statement (top level or nested).
    for i in 0..n {
        let mut c = spec.clone();
        edit_stmt(&mut c.stmts, i, &mut |_| Edit::Delete);
        out.push(c);
    }
    // 2. Unwrap: replace a loop by its body, an If by one branch.
    for i in 0..n {
        let mut c = spec.clone();
        let mut changed = false;
        edit_stmt(&mut c.stmts, i, &mut |slot| match slot {
            SStmt::Loop(l) => {
                changed = true;
                Edit::Splice(l.body.clone())
            }
            SStmt::If { then_s, .. } => {
                changed = true;
                Edit::Splice(then_s.clone())
            }
            other => Edit::Keep(other.clone()),
        });
        if changed {
            out.push(c);
        }
    }
    // 3. Simplify in place: bounds to small constants, unit steps,
    //    drop dynamic index parts, clear affine terms, simplify rhs.
    for i in 0..n {
        for variant in 0..6 {
            let mut c = spec.clone();
            let mut changed = false;
            edit_stmt(&mut c.stmts, i, &mut |slot| {
                let mut s = slot.clone();
                changed = simplify(&mut s, variant);
                Edit::Keep(s)
            });
            if changed {
                out.push(c);
            }
        }
    }
    out
}

enum Edit {
    Keep(SStmt),
    Delete,
    Splice(Vec<SStmt>),
}

fn count_stmts(body: &[SStmt]) -> usize {
    body.iter()
        .map(|s| {
            1 + match s {
                SStmt::Loop(l) => count_stmts(&l.body),
                SStmt::If { then_s, else_s, .. } => count_stmts(then_s) + count_stmts(else_s),
                _ => 0,
            }
        })
        .sum()
}

/// Visits statement number `target` (preorder) and applies `f` to it.
fn edit_stmt(body: &mut Vec<SStmt>, target: usize, f: &mut impl FnMut(&SStmt) -> Edit) {
    fn walk(
        body: &mut Vec<SStmt>,
        counter: &mut usize,
        target: usize,
        f: &mut impl FnMut(&SStmt) -> Edit,
    ) -> bool {
        let mut i = 0;
        while i < body.len() {
            if *counter == target {
                match f(&body[i]) {
                    Edit::Keep(s) => body[i] = s,
                    Edit::Delete => {
                        body.remove(i);
                    }
                    Edit::Splice(inner) => {
                        body.splice(i..=i, inner);
                    }
                }
                return true;
            }
            *counter += 1;
            let done = match &mut body[i] {
                SStmt::Loop(l) => walk(&mut l.body, counter, target, f),
                SStmt::If { then_s, else_s, .. } => {
                    walk(then_s, counter, target, f) || walk(else_s, counter, target, f)
                }
                _ => false,
            };
            if done {
                return true;
            }
            i += 1;
        }
        false
    }
    walk(body, &mut 0, target, f);
}

/// In-place simplification variants; returns whether anything changed.
fn simplify(s: &mut SStmt, variant: usize) -> bool {
    match (variant, &mut *s) {
        (0, SStmt::Loop(l)) => {
            let mut ch = false;
            if !matches!(l.lo, SBound::Const(0)) {
                l.lo = SBound::Const(0);
                ch = true;
            }
            match l.hi {
                SBound::Const(c) if c <= 3 => {}
                _ => {
                    l.hi = SBound::Const(3);
                    ch = true;
                }
            }
            ch
        }
        (1, SStmt::Loop(l)) if l.step != 1 => {
            l.step = 1;
            true
        }
        (2, SStmt::Store { idx, .. }) => {
            let mut ch = false;
            for ix in idx.iter_mut() {
                if ix.dynamic.is_some() {
                    ix.dynamic = None;
                    ch = true;
                }
            }
            ch
        }
        (3, SStmt::Store { idx, .. }) => {
            let mut ch = false;
            for ix in idx.iter_mut() {
                if ix.terms.len() > 1 {
                    ix.terms.truncate(1);
                    ch = true;
                }
                if ix.off != 0 {
                    ix.off = 0;
                    ch = true;
                }
            }
            ch
        }
        (4, SStmt::Store { rhs, .. }) | (4, SStmt::SetF { rhs, .. }) => simplify_expr(rhs),
        (5, SStmt::If { else_s, .. }) if !else_s.is_empty() => {
            else_s.clear();
            true
        }
        _ => false,
    }
}

/// Replaces the outermost compound expression node by a child (or a
/// load by a constant); returns whether anything changed.
fn simplify_expr(e: &mut SExpr) -> bool {
    match e {
        SExpr::Bin(_, a, _) => {
            *e = (**a).clone();
            true
        }
        SExpr::Neg(a) => {
            *e = (**a).clone();
            true
        }
        SExpr::Load { .. } | SExpr::Ptr(_) | SExpr::Var(_) | SExpr::ScalarF(_) => {
            *e = SExpr::ConstF(1.0);
            true
        }
        SExpr::ConstF(x) if *x != 1.0 => {
            *e = SExpr::ConstF(1.0);
            true
        }
        _ => false,
    }
}

/// Greedy deterministic shrink against an arbitrary failure predicate.
/// The result still satisfies `still_fails` and no single mutation of it
/// does (1-minimality with respect to the mutation set).
pub fn shrink_with(spec: &ProgSpec, still_fails: impl Fn(&ProgSpec) -> bool) -> ProgSpec {
    let mut cur = spec.clone();
    let mut size = spec_size(&cur);
    for _ in 0..MAX_ROUNDS {
        let mut advanced = false;
        for cand in candidates(&cur) {
            let csize = spec_size(&cand);
            if csize < size && still_fails(&cand) {
                cur = cand;
                size = csize;
                advanced = true;
                break;
            }
        }
        if !advanced {
            break;
        }
    }
    cur
}

/// Shrinks a spec that produced a divergence with the given
/// [`crate::harness::Divergence::signature`], re-running the full
/// differential check on every candidate.
pub fn shrink(spec: &ProgSpec, signature: &str) -> ProgSpec {
    shrink_with(spec, |cand| {
        check_spec(cand)
            .divergences
            .iter()
            .any(|d| d.signature() == signature)
    })
}

/// Renders a committed reproducer file: header with the machine-readable
/// generator seed and failure metadata, then the pretty-printed
/// minimized program for human eyes. `tests/corpus_replay.rs` parses
/// only the `seed:` line — once the underlying bug is fixed, the seed
/// must check out clean forever.
pub fn render_reproducer(spec: &ProgSpec, signature: &str, detail: &str) -> String {
    let built = crate::spec::materialize(spec);
    let mut s = String::new();
    s.push_str("# mempar-difftest reproducer (auto-shrunk)\n");
    s.push_str(&format!("# seed: {}\n", spec.seed));
    s.push_str(&format!("# mode: {:?}\n", spec.mode));
    s.push_str(&format!("# signature: {signature}\n"));
    for line in detail.lines() {
        s.push_str(&format!("# detail: {line}\n"));
    }
    s.push_str("#\n# Minimized program at time of capture:\n#\n");
    for line in built.prog.to_string().lines() {
        s.push_str(&format!("#   {line}\n"));
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::gen_spec;
    use crate::spec::materialize;

    /// A synthetic "failure": the materialized program still contains an
    /// indirect (dynamic) store index. The shrinker must keep one while
    /// stripping everything else.
    fn has_dynamic_store(spec: &ProgSpec) -> bool {
        fn walk(body: &[SStmt]) -> bool {
            body.iter().any(|s| match s {
                SStmt::Store { idx, .. } => idx.iter().any(|ix| ix.dynamic.is_some()),
                SStmt::Loop(l) => walk(&l.body),
                SStmt::If { then_s, else_s, .. } => walk(then_s) || walk(else_s),
                _ => false,
            })
        }
        walk(&spec.stmts)
    }

    #[test]
    fn shrinks_to_small_witness_and_stays_well_formed() {
        let mut shrunk_any = false;
        for seed in 0..50 {
            let spec = gen_spec(seed);
            if !has_dynamic_store(&spec) {
                continue;
            }
            let small = shrink_with(&spec, has_dynamic_store);
            assert!(has_dynamic_store(&small), "seed {seed}: witness lost");
            assert!(
                spec_size(&small) <= spec_size(&spec),
                "seed {seed}: shrink grew the spec"
            );
            // Closure under mutation: the shrunk spec must still
            // materialize into a valid, runnable program.
            let built = materialize(&small);
            assert!(built.prog.validate().is_empty());
            let mut mem = built.memory(1);
            mempar_ir::run_single(&built.prog, &mut mem);
            if spec_size(&small) < spec_size(&spec) {
                shrunk_any = true;
            }
        }
        assert!(shrunk_any, "shrinker never reduced anything");
    }

    #[test]
    fn shrink_is_deterministic() {
        let spec = gen_spec(3);
        let a = shrink_with(&spec, |_| true);
        let b = shrink_with(&spec, |_| true);
        assert_eq!(a, b);
    }

    #[test]
    fn always_failing_predicate_shrinks_to_near_nothing() {
        let spec = gen_spec(11);
        let small = shrink_with(&spec, |_| true);
        assert!(spec_size(&small) <= 2, "left over: {small:?}");
    }

    #[test]
    fn reproducer_renders_seed_and_program() {
        let spec = gen_spec(5);
        let r = render_reproducer(&spec, "MemDiff|uaj", "fingerprint mismatch");
        assert!(r.contains("# seed: 5"));
        assert!(r.contains("# signature: MemDiff|uaj"));
        assert!(r.lines().count() > 8);
    }
}
