//! Adversarial program generation.
//!
//! Generated programs go deliberately beyond the rectangular `NestSpec`
//! nests the workloads use: triangular and trapezoidal bounds, negative
//! and non-unit steps, indirect (index-array) and pointer-carried
//! accesses, guarded branches, scalar reductions, pointer chases,
//! multi-statement bodies, aliasing views of one array, and (in
//! [`Mode::Dist`]) explicitly distributed loops with barriers.
//!
//! The generator only constrains what soundness of the *oracles*
//! demands (see [`Mode`]); everything the transform legality analysis
//! must reject is left in deliberately, so the differential harness
//! exercises both the accept and the reject path.

use crate::spec::{Mode, ProgSpec, SArr, SBound, SCond, SDyn, SExpr, SIndex, SLoop, SOp, SStmt};
use mempar_ir::{CmpOp, Dist};
use rand::{rngs::SmallRng, Rng, SeedableRng};

/// Tuning knobs for [`gen_spec_with`].
#[derive(Debug, Clone)]
pub struct GenConfig {
    /// Maximum loop-nest depth (the paper's interesting cases are 1–4).
    pub max_depth: usize,
    /// Maximum statements at top level.
    pub max_top_stmts: usize,
    /// Maximum statements per loop body.
    pub max_body_stmts: usize,
    /// Force a specific oracle mode (`None` = pick randomly).
    pub mode: Option<Mode>,
}

impl Default for GenConfig {
    fn default() -> Self {
        GenConfig {
            max_depth: 4,
            max_top_stmts: 3,
            max_body_stmts: 3,
            mode: None,
        }
    }
}

/// Generates an adversarial [`ProgSpec`] from `seed` with default knobs.
pub fn gen_spec(seed: u64) -> ProgSpec {
    gen_spec_with(seed, &GenConfig::default())
}

struct Gen<'c> {
    rng: SmallRng,
    cfg: &'c GenConfig,
    mode: Mode,
    next_var: u32,
    n_data: usize,
    n_out: usize,
    n_ind: usize,
    n_f: usize,
    n_ptr: usize,
    n_bound: usize,
    data_rank: Vec<usize>,
    out_rank: Vec<usize>,
    /// Innermost-last stack of in-scope loop vars.
    scope: Vec<u32>,
    /// The distribution variable when inside a distributed loop.
    dist_var: Option<u32>,
}

/// Generates an adversarial [`ProgSpec`] from `seed`.
pub fn gen_spec_with(seed: u64, cfg: &GenConfig) -> ProgSpec {
    let mut rng = SmallRng::seed_from_u64(seed);
    let mode = cfg.mode.unwrap_or_else(|| match rng.gen_range(0..10u32) {
        0..=4 => Mode::Seq,
        5..=7 => Mode::ParClean,
        _ => Mode::Dist,
    });
    let data_rank: Vec<usize> = (0..rng.gen_range(1..=3usize))
        .map(|_| rng.gen_range(1..=2usize))
        .collect();
    let out_rank: Vec<usize> = (0..rng.gen_range(1..=2usize))
        .map(|_| rng.gen_range(1..=2usize))
        .collect();
    let mut g = Gen {
        mode,
        next_var: 0,
        n_data: data_rank.len(),
        n_out: out_rank.len(),
        n_ind: rng.gen_range(1..=2usize),
        n_f: rng.gen_range(1..=2usize),
        n_ptr: rng.gen_range(1..=2usize),
        n_bound: rng.gen_range(1..=2usize),
        data_rank,
        out_rank,
        scope: Vec::new(),
        dist_var: None,
        rng,
        cfg,
    };
    let bound_scalars: Vec<i64> = (0..g.n_bound).map(|_| g.rng.gen_range(2..=7i64)).collect();

    let n_top = g.rng.gen_range(1..=g.cfg.max_top_stmts.max(1));
    let mut stmts = Vec::new();
    for i in 0..n_top {
        if i > 0 && g.mode == Mode::Dist {
            // Phases of a distributed program are barrier-separated.
            stmts.push(SStmt::Barrier);
        }
        stmts.push(g.top_stmt());
    }

    ProgSpec {
        seed,
        mode,
        nprocs: g.rng.gen_range(2..=4usize),
        data_rank: g.data_rank.clone(),
        out_rank: g.out_rank.clone(),
        n_ind: g.n_ind,
        n_fscalars: g.n_f,
        n_ptrs: g.n_ptr,
        bound_scalars,
        stmts,
    }
}

impl Gen<'_> {
    fn fresh_var(&mut self) -> u32 {
        let v = self.next_var;
        self.next_var += 1;
        v
    }

    /// A top-level statement: usually a loop nest, occasionally a bare
    /// scalar statement.
    fn top_stmt(&mut self) -> SStmt {
        let depth = self.rng.gen_range(1..=self.cfg.max_depth.max(1));
        // Perfect nests keep the interchange path exercised; ragged
        // nests exercise its rejections.
        let perfect = self.rng.gen_bool(0.4);
        self.gen_loop(depth, perfect, true)
    }

    /// A loop of the given remaining depth budget.
    fn gen_loop(&mut self, depth: usize, perfect: bool, top: bool) -> SStmt {
        let var = self.fresh_var();
        let dist = if top && self.mode == Mode::Dist {
            Some(if self.rng.gen_bool(0.7) {
                Dist::Block
            } else {
                Dist::Cyclic
            })
        } else {
            None
        };
        let (lo, hi, step) = if dist.is_some() {
            // Distributed loops: forward, unit step, decent trip count.
            (
                SBound::Const(0),
                SBound::Const(self.rng.gen_range(4..=8i64)),
                1,
            )
        } else {
            self.gen_bounds()
        };
        let outer_dist = self.dist_var;
        if dist.is_some() {
            self.dist_var = Some(var);
        }
        self.scope.push(var);

        let mut body = Vec::new();
        if depth > 1 && (perfect || self.rng.gen_bool(0.6)) {
            // Nest deeper; a perfect nest has the inner loop alone.
            body.push(self.gen_loop(depth - 1, perfect, false));
            if !perfect && self.rng.gen_bool(0.4) {
                body.push(self.leaf_stmt());
            }
        } else {
            let n = self.rng.gen_range(1..=self.cfg.max_body_stmts.max(1));
            for _ in 0..n {
                body.push(self.body_stmt());
            }
        }

        self.scope.pop();
        if dist.is_some() {
            self.dist_var = outer_dist;
        }
        SStmt::Loop(SLoop {
            var,
            lo,
            hi,
            step,
            dist,
            body,
        })
    }

    /// Bounds for a sequential loop: constant, triangular/trapezoidal
    /// (affine in an outer var), or scalar-carried; steps of 1, 2, -1.
    fn gen_bounds(&mut self) -> (SBound, SBound, i64) {
        let lo = if !self.scope.is_empty() && self.rng.gen_bool(0.2) {
            let var = self.outer_var();
            SBound::Affine {
                var,
                coeff: 1,
                off: self.rng.gen_range(0..=1i64),
            }
        } else {
            SBound::Const(self.rng.gen_range(0..=2i64))
        };
        let hi = match self.rng.gen_range(0..10u32) {
            0..=5 => SBound::Const(self.rng.gen_range(3..=8i64)),
            6..=7 if !self.scope.is_empty() => {
                let var = self.outer_var();
                SBound::Affine {
                    var,
                    coeff: 1,
                    off: self.rng.gen_range(1..=3i64),
                }
            }
            6..=7 => SBound::Const(self.rng.gen_range(3..=8i64)),
            _ => SBound::ScalarB(self.rng.gen_range(0..self.n_bound)),
        };
        let step = match self.rng.gen_range(0..10u32) {
            0..=6 => 1,
            7..=8 => 2,
            _ => -1,
        };
        (lo, hi, step)
    }

    fn outer_var(&mut self) -> u32 {
        let i = self.rng.gen_range(0..self.scope.len());
        self.scope[i]
    }

    /// A non-loop statement inside a loop body.
    fn body_stmt(&mut self) -> SStmt {
        if self.rng.gen_bool(0.25) {
            let guarded = self.leaf_stmt();
            let els = if self.rng.gen_bool(0.4) {
                vec![self.leaf_stmt()]
            } else {
                Vec::new()
            };
            return SStmt::If {
                cond: self.gen_cond(),
                then_s: vec![guarded],
                else_s: els,
            };
        }
        self.leaf_stmt()
    }

    /// A store / scalar statement (never a loop or branch).
    fn leaf_stmt(&mut self) -> SStmt {
        let in_dist_body = self.dist_var.is_some();
        let roll = self.rng.gen_range(0..10u32);
        match roll {
            // Scalar statements are forbidden in distributed bodies:
            // sequential and per-processor executions would see
            // different accumulator state.
            0..=1 if !in_dist_body => {
                let scalar = self.rng.gen_range(0..self.n_f);
                let rhs = if self.rng.gen_bool(0.7) {
                    // A reduction accumulate (sum/min/max chain).
                    let op = match self.rng.gen_range(0..3u32) {
                        0 => SOp::Add,
                        1 => SOp::Min,
                        _ => SOp::Max,
                    };
                    SExpr::Bin(
                        op,
                        Box::new(SExpr::ScalarF(scalar)),
                        Box::new(self.gen_expr(2)),
                    )
                } else {
                    // A private temp definition.
                    self.gen_expr(2)
                };
                SStmt::SetF { scalar, rhs }
            }
            2 if !in_dist_body && self.mode != Mode::ParClean => SStmt::Chase {
                ptr: self.rng.gen_range(0..self.n_ptr),
                ind: self.rng.gen_range(0..self.n_ind),
            },
            // Barriers inside Seq-mode bodies exercise the transforms'
            // sync rejections (a single processor passes them freely).
            3 if self.mode == Mode::Seq && self.rng.gen_bool(0.3) => SStmt::Barrier,
            _ => self.gen_store(),
        }
    }

    fn gen_store(&mut self) -> SStmt {
        let (target, rank) = self.store_target();
        let mut idx = Vec::with_capacity(rank);
        for d in 0..rank {
            if d == 0 {
                if let Some(dv) = self.dist_var {
                    // Distributed stores are partitioned on dim 0.
                    idx.push(SIndex::var(dv));
                    continue;
                }
            }
            idx.push(self.gen_index());
        }
        SStmt::Store {
            target,
            idx,
            rhs: self.gen_expr(3),
        }
    }

    fn store_target(&mut self) -> (SArr, usize) {
        // Seq mode may also overwrite its own inputs (self-updates and
        // aliasing views); the parallel modes write outputs only.
        if self.mode == Mode::Seq && self.rng.gen_bool(0.5) {
            let k = self.rng.gen_range(0..self.n_data);
            (SArr::Data(k), self.data_rank[k])
        } else {
            let k = self.rng.gen_range(0..self.n_out);
            (SArr::Out(k), self.out_rank[k])
        }
    }

    fn load_source(&mut self) -> (SArr, usize) {
        // Out arrays are write-only in the parallel modes; Seq mode may
        // read back what it wrote.
        if self.mode == Mode::Seq && self.rng.gen_bool(0.25) {
            let k = self.rng.gen_range(0..self.n_out);
            (SArr::Out(k), self.out_rank[k])
        } else {
            let k = self.rng.gen_range(0..self.n_data);
            (SArr::Data(k), self.data_rank[k])
        }
    }

    fn gen_index(&mut self) -> SIndex {
        let mut terms = Vec::new();
        if !self.scope.is_empty() {
            let n = self.rng.gen_range(0..=2usize.min(self.scope.len()));
            for _ in 0..n {
                let v = self.outer_var();
                let coeff = *[-2i64, -1, 1, 1, 2]
                    .get(self.rng.gen_range(0..5usize))
                    .unwrap();
                terms.push((v, coeff));
            }
        }
        let off = self.rng.gen_range(-4i64..=4);
        let dynamic = if self.rng.gen_bool(0.25) {
            Some(if self.rng.gen_bool(0.7) || self.n_ptr == 0 {
                SDyn::Ind {
                    ind: self.rng.gen_range(0..self.n_ind),
                    inner_var: if !self.scope.is_empty() && self.rng.gen_bool(0.7) {
                        Some(self.outer_var())
                    } else {
                        None
                    },
                    inner_coeff: self.rng.gen_range(1..=2i64),
                    inner_off: self.rng.gen_range(0..=3i64),
                    scale: self.rng.gen_range(1..=2i64),
                }
            } else {
                SDyn::Ptr {
                    ptr: self.rng.gen_range(0..self.n_ptr),
                    scale: self.rng.gen_range(1..=2i64),
                }
            })
        } else {
            None
        };
        SIndex {
            terms,
            off,
            dynamic,
        }
    }

    fn gen_cond(&mut self) -> SCond {
        let var = if self.scope.is_empty() {
            0
        } else {
            self.outer_var()
        };
        let op = *[
            CmpOp::Lt,
            CmpOp::Le,
            CmpOp::Gt,
            CmpOp::Ge,
            CmpOp::Eq,
            CmpOp::Ne,
        ]
        .get(self.rng.gen_range(0..6usize))
        .unwrap();
        SCond {
            var,
            coeff: self.rng.gen_range(1..=2i64),
            off: self.rng.gen_range(-4i64..=2),
            op,
        }
    }

    fn gen_expr(&mut self, depth: usize) -> SExpr {
        if depth == 0 || self.rng.gen_bool(0.35) {
            return self.gen_leaf_expr();
        }
        match self.rng.gen_range(0..8u32) {
            0..=5 => {
                let op = match self.rng.gen_range(0..9u32) {
                    0..=2 => SOp::Add,
                    3..=4 => SOp::Sub,
                    5..=6 => SOp::Mul,
                    7 => SOp::Min,
                    _ => SOp::Max,
                };
                SExpr::Bin(
                    op,
                    Box::new(self.gen_expr(depth - 1)),
                    Box::new(self.gen_expr(depth - 1)),
                )
            }
            6 => SExpr::Neg(Box::new(self.gen_expr(depth - 1))),
            _ => self.gen_leaf_expr(),
        }
    }

    fn gen_leaf_expr(&mut self) -> SExpr {
        match self.rng.gen_range(0..10u32) {
            0..=4 => {
                let (arr, rank) = self.load_source();
                let idx = (0..rank).map(|_| self.gen_index()).collect();
                SExpr::Load { arr, idx }
            }
            5 => SExpr::ScalarF(self.rng.gen_range(0..self.n_f)),
            6 => SExpr::Ptr(self.rng.gen_range(0..self.n_ptr)),
            7 if !self.scope.is_empty() => SExpr::Var(self.outer_var()),
            // Exact dyadic constants keep all arithmetic
            // reassociation-safe.
            _ => SExpr::ConstF(self.rng.gen_range(-8i64..=8) as f64 * 0.5),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::{materialize, IND_RANGE};
    use mempar_ir::{run_parallel_functional, run_single};

    #[test]
    fn generated_specs_validate_and_run_in_bounds() {
        for seed in 0..200 {
            let spec = gen_spec(seed);
            let built = materialize(&spec);
            let errs = built.prog.validate();
            assert!(errs.is_empty(), "seed {seed}: {errs:?}");
            // The interpreter panics on any out-of-bounds access, so a
            // clean run is the in-bounds proof.
            let mut mem = built.memory(1);
            run_single(&built.prog, &mut mem);
        }
    }

    #[test]
    fn parallel_modes_match_sequential_baseline() {
        let mut checked = 0;
        for seed in 0..300 {
            let spec = gen_spec(seed);
            if !spec.mode.parallel_checked() {
                continue;
            }
            let built = materialize(&spec);
            let mut seq = built.memory(1);
            run_single(&built.prog, &mut seq);
            let mut par = built.memory(1);
            run_parallel_functional(&built.prog, &mut par, built.nprocs);
            assert_eq!(
                seq.fingerprint(),
                par.fingerprint(),
                "seed {seed} ({:?}) diverged under the parallel oracle",
                spec.mode
            );
            checked += 1;
        }
        assert!(
            checked >= 50,
            "mode mix too skewed: only {checked} parallel specs"
        );
    }

    #[test]
    fn generator_reaches_adversarial_features() {
        let (mut ind, mut tri, mut neg, mut chase, mut guard, mut dist, mut red) =
            (0u32, 0u32, 0u32, 0u32, 0u32, 0u32, 0u32);
        for seed in 0..300 {
            let spec = gen_spec(seed);
            visit(&spec.stmts, &mut |s: &SStmt| match s {
                SStmt::Loop(l) => {
                    if matches!(l.lo, SBound::Affine { .. })
                        || matches!(l.hi, SBound::Affine { .. })
                    {
                        tri += 1;
                    }
                    if l.step < 0 {
                        neg += 1;
                    }
                    if l.dist.is_some() {
                        dist += 1;
                    }
                }
                SStmt::Store { idx, .. } if idx.iter().any(|i| i.dynamic.is_some()) => {
                    ind += 1;
                }
                SStmt::Chase { .. } => chase += 1,
                SStmt::If { .. } => guard += 1,
                SStmt::SetF {
                    rhs: SExpr::Bin(_, a, _),
                    ..
                } if matches!(**a, SExpr::ScalarF(_)) => {
                    red += 1;
                }
                _ => {}
            });
        }
        assert!(
            ind > 20 && tri > 20 && neg > 20 && chase > 5 && guard > 20 && dist > 10 && red > 10,
            "feature mix too thin: ind={ind} tri={tri} neg={neg} chase={chase} guard={guard} dist={dist} red={red}"
        );
    }

    fn visit(body: &[SStmt], f: &mut impl FnMut(&SStmt)) {
        for s in body {
            f(s);
            match s {
                SStmt::Loop(l) => visit(&l.body, f),
                SStmt::If { then_s, else_s, .. } => {
                    visit(then_s, f);
                    visit(else_s, f);
                }
                _ => {}
            }
        }
    }

    #[test]
    fn ind_range_matches_init() {
        for a in 0..4 {
            for k in 0..64 {
                let v = crate::spec::ind_init(a, k);
                assert!((0..IND_RANGE).contains(&v));
            }
        }
    }
}
