//! Memory-parallelism analysis for the `mempar` reproduction of Pai &
//! Adve, *Code Transformations to Improve Memory Parallelism* (MICRO-32,
//! 1999) — the paper's Section 3 framework.
//!
//! Given an innermost loop of a [`Program`](mempar_ir::Program), this
//! crate determines:
//!
//! 1. **Locality** ([`collect_refs`]): which static references are
//!    *leading references* (can miss in the external cache), their
//!    self-spatial locality and `L_m` (iterations per cache line), and
//!    group structure.
//! 2. **Dependences** ([`DepGraph`]): cache-line dependences (misses that
//!    coalesce) and address dependences (indirection, pointer chasing).
//! 3. **Recurrences** ([`summarize_recurrences`]): cycles that serialize
//!    misses, each bounding parallelism to `α = R/π` per iteration.
//! 4. **`f`** ([`estimate_f`], Equations 1–4): the expected number of
//!    overlappable misses per instruction window, combining dynamic
//!    inner-loop unrolling `C_m = ceil(W/(i·L_m))` with miss
//!    probabilities `P_m` for irregular references.
//!
//! The companion crate `mempar-transform` consumes [`NestAnalysis`] to
//! decide and apply unroll-and-jam, inner unrolling and scheduling.
//!
//! # Example
//!
//! ```
//! use mempar_ir::ProgramBuilder;
//! use mempar_analysis::{analyze_inner_loop, MachineSummary, MissProfile};
//!
//! // The paper's motivating row-wise traversal (Figure 2(a)).
//! let mut b = ProgramBuilder::new("fig2a");
//! let a = b.array_f64("a", &[64, 64]);
//! let s = b.scalar_f64("sum", 0.0);
//! let (j, i) = (b.var("j"), b.var("i"));
//! b.for_const(j, 0, 64, |b| {
//!     b.for_const(i, 0, 64, |b| {
//!         let v = b.load(a, &[b.idx(j), b.idx(i)]);
//!         let acc = b.scalar(s);
//!         let sum = b.add(acc, v);
//!         b.assign_scalar(s, sum);
//!     });
//! });
//! let prog = b.finish();
//! let mempar_ir::Stmt::Loop(outer) = &prog.body[0] else { unreachable!() };
//! let mempar_ir::Stmt::Loop(inner) = &outer.body[0] else { unreachable!() };
//!
//! let m = MachineSummary::base();
//! let an = analyze_inner_loop(&prog, &inner.body, inner.var, &m,
//!                             &MissProfile::pessimistic());
//! assert_eq!(an.recurrences.alpha, 1.0);      // cache-line recurrence
//! assert!(an.needs_unroll_and_jam(&m));       // f < alpha * lp
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod depgraph;
mod framework;
mod refs;

pub use depgraph::{
    summarize_recurrences, DepEdge, DepGraph, DepKind, Recurrence, RecurrenceSummary,
};
pub use framework::{analyze_inner_loop, estimate_f, MachineSummary, NestAnalysis};
pub use refs::{
    collect_refs, flat_offset, flat_stride, ArrayLocality, Locality, MissProfile, RefCollection,
    RefInfo, ScalarDef,
};
