//! The memory-parallelism dependence graph and its recurrences
//! (Section 3.1–3.2 of the paper).
//!
//! Nodes are static references; edges are *cache-line dependences* (a miss
//! on A brings in B's data) and *address dependences* (A's value forms B's
//! address). Cycles (recurrences) bound read-miss parallelism: a
//! recurrence with `R` leading references spanning `π` iterations allows
//! at most `α = R/π` overlapped misses per iteration.

use crate::refs::RefCollection;

/// Edge kinds in the memory-parallelism graph.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DepKind {
    /// A miss on the source brings in the target's data.
    CacheLine,
    /// The source's loaded value forms the target's address.
    Address,
}

/// A dependence edge with its inner-loop distance.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DepEdge {
    /// Source reference id.
    pub from: usize,
    /// Target reference id.
    pub to: usize,
    /// Minimum inner-loop iterations separating the dependent operations.
    pub distance: u32,
    /// Why the target serializes behind the source.
    pub kind: DepKind,
}

/// A recurrence (cycle) in the graph.
#[derive(Debug, Clone, PartialEq)]
pub struct Recurrence {
    /// Reference ids on the cycle.
    pub nodes: Vec<usize>,
    /// Sum of edge distances around the cycle (`π`).
    pub distance: u32,
    /// Leading references on the cycle (`R`).
    pub leading: usize,
    /// True when any edge is an address dependence.
    pub is_address: bool,
}

impl Recurrence {
    /// The recurrence's parallelism bound `α = R / π` (misses that must
    /// serialize per iteration).
    pub fn alpha(&self) -> f64 {
        if self.distance == 0 {
            // Loop-independent cycle cannot exist in well-formed code;
            // treat as fully serializing.
            self.leading as f64
        } else {
            self.leading as f64 / self.distance as f64
        }
    }
}

/// The dependence graph over a [`RefCollection`].
#[derive(Debug, Clone, Default)]
pub struct DepGraph {
    /// Number of nodes (= refs).
    pub nodes: usize,
    /// All edges.
    pub edges: Vec<DepEdge>,
}

impl DepGraph {
    /// Builds the graph from collected references.
    pub fn build(coll: &RefCollection) -> Self {
        let mut edges = Vec::new();
        // Cache-line dependences.
        for r in &coll.refs {
            if !r.leading {
                continue;
            }
            if r.self_spatial {
                // A self-spatial leading reference depends on itself with
                // distance 1 (the next iteration shares its line).
                edges.push(DepEdge {
                    from: r.id,
                    to: r.id,
                    distance: 1,
                    kind: DepKind::CacheLine,
                });
            }
            // Leading -> non-leading group members (their data arrives with
            // the leader's miss). Distance 0 is conservative and simple —
            // these edges never close a cycle on their own.
            for other in &coll.refs {
                if other.id != r.id && other.group == r.group && !other.leading {
                    edges.push(DepEdge {
                        from: r.id,
                        to: other.id,
                        distance: 0,
                        kind: DepKind::CacheLine,
                    });
                }
            }
        }
        // Address dependences through indirect indices.
        for r in &coll.refs {
            for &src in &r.addr_refs {
                edges.push(DepEdge {
                    from: src,
                    to: r.id,
                    distance: 0,
                    kind: DepKind::Address,
                });
            }
            // Address dependences through scalars: def reaches uses in the
            // same iteration (later statements) at distance 0, or the next
            // iteration (same/earlier statements) at distance 1.
            for &scalar in &r.addr_scalars {
                for def in &coll.scalar_defs {
                    if def.scalar != scalar {
                        continue;
                    }
                    let distance = if r.stmt_idx > def.stmt_idx { 0 } else { 1 };
                    for &src in &def.src_refs {
                        edges.push(DepEdge {
                            from: src,
                            to: r.id,
                            distance,
                            kind: DepKind::Address,
                        });
                    }
                }
            }
        }
        DepGraph {
            nodes: coll.refs.len(),
            edges,
        }
    }

    fn succ(&self, n: usize) -> impl Iterator<Item = &DepEdge> {
        self.edges.iter().filter(move |e| e.from == n)
    }

    /// Enumerates simple cycles (recurrences). Graphs here are tiny
    /// (references of one loop body), so a DFS per start node suffices;
    /// each cycle is reported once (from its smallest node id).
    pub fn recurrences(&self, coll: &RefCollection) -> Vec<Recurrence> {
        let mut cycles = Vec::new();
        for start in 0..self.nodes {
            let mut path = vec![start];
            let mut dist = 0u32;
            self.dfs_cycles(start, start, &mut path, &mut dist, coll, &mut cycles);
        }
        cycles
    }

    fn dfs_cycles(
        &self,
        start: usize,
        at: usize,
        path: &mut Vec<usize>,
        dist: &mut u32,
        coll: &RefCollection,
        out: &mut Vec<Recurrence>,
    ) {
        if out.len() >= 64 || path.len() > 16 {
            return; // safety bound; real bodies are far smaller
        }
        let succs: Vec<DepEdge> = self.succ(at).copied().collect();
        for e in succs {
            if e.to == start {
                let distance = *dist + e.distance;
                let leading = path.iter().filter(|&&n| coll.refs[n].leading).count();
                let is_address = path
                    .windows(2)
                    .map(|w| (w[0], w[1]))
                    .chain(std::iter::once((at, start)))
                    .any(|(a, b)| {
                        self.edges
                            .iter()
                            .any(|x| x.from == a && x.to == b && x.kind == DepKind::Address)
                    });
                out.push(Recurrence {
                    nodes: path.clone(),
                    distance,
                    leading,
                    is_address,
                });
            } else if e.to > start && !path.contains(&e.to) {
                path.push(e.to);
                *dist += e.distance;
                self.dfs_cycles(start, e.to, path, dist, coll, out);
                *dist -= e.distance;
                path.pop();
            }
        }
    }
}

/// Summary of the recurrences that matter for read-miss parallelism.
#[derive(Debug, Clone, PartialEq)]
pub struct RecurrenceSummary {
    /// All recurrences containing at least one leading reference.
    pub recurrences: Vec<Recurrence>,
    /// Max `α` over miss recurrences (0 when there are none).
    pub alpha: f64,
    /// True when any miss recurrence involves an address dependence
    /// (pointer chasing / indirection), which dynamic unrolling cannot
    /// break (Section 3.2.2).
    pub has_address_recurrence: bool,
}

/// Computes the recurrence summary for a collection.
pub fn summarize_recurrences(coll: &RefCollection) -> RecurrenceSummary {
    let g = DepGraph::build(coll);
    let recurrences: Vec<Recurrence> = g
        .recurrences(coll)
        .into_iter()
        .filter(|r| r.leading > 0)
        .collect();
    let alpha = recurrences
        .iter()
        .map(Recurrence::alpha)
        .fold(0.0, f64::max);
    let has_address_recurrence = recurrences.iter().any(|r| r.is_address);
    RecurrenceSummary {
        recurrences,
        alpha,
        has_address_recurrence,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::refs::{collect_refs, MissProfile};
    use mempar_ir::{AffineExpr, ArrayRef, Index, ProgramBuilder, Stmt, VarId};

    fn inner_body(p: &mempar_ir::Program) -> (&Vec<Stmt>, VarId) {
        fn descend(body: &[Stmt]) -> Option<(&Vec<Stmt>, VarId)> {
            for s in body {
                if let Stmt::Loop(l) = s {
                    if let Some(found) = descend(&l.body) {
                        return Some(found);
                    }
                    return Some((&l.body, l.var));
                }
            }
            None
        }
        descend(&p.body).expect("program has a loop")
    }

    #[test]
    fn row_traversal_has_unit_cache_line_recurrence() {
        let mut b = ProgramBuilder::new("row");
        let a = b.array_f64("a", &[64, 64]);
        let s = b.scalar_f64("s", 0.0);
        let j = b.var("j");
        let i = b.var("i");
        b.for_const(j, 0, 64, |b| {
            b.for_const(i, 0, 64, |b| {
                let v = b.load(a, &[b.idx(j), b.idx(i)]);
                let acc = b.scalar(s);
                let e = b.add(acc, v);
                b.assign_scalar(s, e);
            });
        });
        let p = b.finish();
        let (body, iv) = inner_body(&p);
        let coll = collect_refs(&p, body, iv, 64, &MissProfile::pessimistic());
        let sum = summarize_recurrences(&coll);
        assert_eq!(sum.recurrences.len(), 1);
        assert!(!sum.has_address_recurrence);
        // R = 1 leading ref, pi = 1: alpha = 1 (the motivating example,
        // Section 3.2.2's "alpha = 1" matrix traversal).
        assert!((sum.alpha - 1.0).abs() < 1e-12);
    }

    #[test]
    fn column_traversal_has_no_recurrence() {
        let mut b = ProgramBuilder::new("col");
        let a = b.array_f64("a", &[64, 64]);
        let s = b.scalar_f64("s", 0.0);
        let j = b.var("j");
        let i = b.var("i");
        b.for_const(j, 0, 64, |b| {
            b.for_const(i, 0, 64, |b| {
                let v = b.load(a, &[b.idx(i), b.idx(j)]);
                let acc = b.scalar(s);
                let e = b.add(acc, v);
                b.assign_scalar(s, e);
            });
        });
        let p = b.finish();
        let (body, iv) = inner_body(&p);
        let coll = collect_refs(&p, body, iv, 64, &MissProfile::pessimistic());
        let sum = summarize_recurrences(&coll);
        assert!(sum.recurrences.is_empty());
        assert_eq!(sum.alpha, 0.0);
    }

    #[test]
    fn pointer_chase_is_address_recurrence() {
        // p = next[p] — the lat_mem_rd pattern.
        let mut b = ProgramBuilder::new("chase");
        let next = b.array_i64("next", &[64]);
        let ps = b.scalar_i64("p", 0);
        let i = b.var("i");
        b.for_const(i, 0, 64, |b| {
            let v = b.load_ref(ArrayRef::new(next, vec![Index::scalar(ps)]));
            b.assign_scalar(ps, v);
        });
        let p = b.finish();
        let (body, iv) = inner_body(&p);
        let coll = collect_refs(&p, body, iv, 64, &MissProfile::pessimistic());
        let sum = summarize_recurrences(&coll);
        assert_eq!(sum.recurrences.len(), 1);
        assert!(sum.has_address_recurrence);
        assert!((sum.alpha - 1.0).abs() < 1e-12);
        assert_eq!(sum.recurrences[0].distance, 1);
    }

    #[test]
    fn sparse_indirection_is_not_a_recurrence() {
        // sum[j] += b[ind]; ind = a[j,i] — address dep but acyclic
        // (the paper's sparse-matrix example: a has a cache-line
        // self-recurrence; b[ind] hangs off it without closing a cycle).
        let mut b = ProgramBuilder::new("sparse");
        let a = b.array_i64("a", &[64, 64]);
        let data = b.array_f64("data", &[4096]);
        let s = b.scalar_f64("s", 0.0);
        let j = b.var("j");
        let i = b.var("i");
        b.for_const(j, 0, 64, |b| {
            b.for_const(i, 0, 64, |b| {
                let inner = ArrayRef::new(
                    a,
                    vec![
                        Index::affine(AffineExpr::var(j)),
                        Index::affine(AffineExpr::var(i)),
                    ],
                );
                let v = b.load_ref(ArrayRef::new(data, vec![Index::indirect(inner)]));
                let acc = b.scalar(s);
                let e = b.add(acc, v);
                b.assign_scalar(s, e);
            });
        });
        let p = b.finish();
        let (body, iv) = inner_body(&p);
        let coll = collect_refs(&p, body, iv, 64, &MissProfile::pessimistic());
        let g = DepGraph::build(&coll);
        assert!(
            g.edges.iter().any(|e| e.kind == DepKind::Address),
            "indirection produces an address edge"
        );
        let sum = summarize_recurrences(&coll);
        // Only the cache-line self-recurrence on a[j,i].
        assert_eq!(sum.recurrences.len(), 1);
        assert!(!sum.has_address_recurrence);
    }

    #[test]
    fn alpha_counts_leading_over_distance() {
        let r = Recurrence {
            nodes: vec![0, 1],
            distance: 2,
            leading: 1,
            is_address: false,
        };
        assert!((r.alpha() - 0.5).abs() < 1e-12);
        let r2 = Recurrence {
            nodes: vec![0],
            distance: 0,
            leading: 2,
            is_address: true,
        };
        assert_eq!(r2.alpha(), 2.0);
    }
}
