//! The analysis side of the transformation framework (Section 3.2.2):
//! mapping memory parallelism onto the floating-point-pipelining model and
//! estimating `f`, the per-iteration count of overlappable misses.

use mempar_ir::{Program, Stmt, VarId};

use crate::depgraph::{summarize_recurrences, RecurrenceSummary};
use crate::refs::{collect_refs, MissProfile, RefCollection};

/// The machine parameters the framework needs (a distillation of the full
/// simulator configuration).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MachineSummary {
    /// Instruction-window size `W`.
    pub window: usize,
    /// Processors the code will run on (1 = uniprocessor). Parallel-loop
    /// transformations use this to avoid cross-processor postludes.
    pub procs: usize,
    /// Simultaneous outstanding misses `lp` (MSHRs).
    pub mshrs: usize,
    /// External cache line size in bytes.
    pub line_bytes: usize,
    /// Maximum unroll(-and-jam) degree `U` the driver will consider,
    /// bounding code expansion and register pressure.
    pub max_unroll: u32,
}

impl MachineSummary {
    /// The paper's base simulated machine: 64-entry window, 10 MSHRs,
    /// 64-byte lines.
    pub fn base() -> Self {
        MachineSummary {
            window: 64,
            procs: 1,
            mshrs: 10,
            line_bytes: 64,
            max_unroll: 16,
        }
    }

    /// An Exemplar-like machine: 56-entry window, 10 outstanding misses,
    /// 32-byte lines.
    pub fn exemplar() -> Self {
        MachineSummary {
            window: 56,
            procs: 1,
            mshrs: 10,
            line_bytes: 32,
            max_unroll: 16,
        }
    }
}

/// Complete analysis of one innermost loop.
#[derive(Debug, Clone)]
pub struct NestAnalysis {
    /// Collected, locality-classified references.
    pub refs: RefCollection,
    /// Recurrence structure.
    pub recurrences: RecurrenceSummary,
    /// Static instruction estimate per iteration (`i`).
    pub body_ops: usize,
    /// Expected overlappable misses per dynamically-unrolled window (`f`,
    /// Equations 2–4).
    pub f: f64,
    /// Expected misses contributed per single iteration (used for
    /// window-constraint resolution).
    pub misses_per_iter: f64,
}

impl NestAnalysis {
    /// The memory-parallelism utilization bound `f / (α · lp)` (≤ 1 means
    /// the recurrence caps MSHR usage below capacity). `None` when the
    /// loop has no miss recurrence.
    pub fn utilization_bound(&self, m: &MachineSummary) -> Option<f64> {
        if self.recurrences.alpha == 0.0 {
            return None;
        }
        Some(self.f / (self.recurrences.alpha * m.mshrs as f64))
    }

    /// The target `f` that saturates the overlap resources given the
    /// recurrence bound: `α · lp` (or plain `lp` without recurrences).
    pub fn target_f(&self, m: &MachineSummary) -> f64 {
        if self.recurrences.alpha > 0.0 {
            self.recurrences.alpha * m.mshrs as f64
        } else {
            m.mshrs as f64
        }
    }

    /// True when unroll-and-jam is the indicated transformation: a miss
    /// recurrence caps `f` below the resources.
    pub fn needs_unroll_and_jam(&self, m: &MachineSummary) -> bool {
        self.recurrences.alpha > 0.0 && self.f + 1e-9 < self.target_f(m)
    }

    /// True when the loop is window-constrained: a window's worth of
    /// iterations exposes fewer independent misses than the machine can
    /// overlap because the loop body is large (the Mp3d case,
    /// Section 3.3). Window constraints "can arise for loops with or
    /// without recurrences"; the body-size condition (a window holds only
    /// a few iterations) distinguishes them from recurrence limits, which
    /// unroll-and-jam — not inner unrolling — resolves.
    pub fn window_constrained(&self, m: &MachineSummary) -> bool {
        self.f + 1e-9 < m.mshrs as f64 && self.body_ops * 4 >= m.window
    }

    /// The inner-loop unrolling degree that exposes a full complement of
    /// independent misses to the scheduler (Section 3.3), capped at `U`.
    pub fn inner_unroll_degree(&self, m: &MachineSummary) -> u32 {
        if !self.window_constrained(m) || self.misses_per_iter <= 0.1 {
            return 1;
        }
        let need = (m.mshrs as f64 / self.misses_per_iter).ceil() as u32;
        need.clamp(1, m.max_unroll)
    }
}

/// Analyzes the innermost loop whose body is `body` and whose loop
/// variable is `iv`.
pub fn analyze_inner_loop(
    prog: &Program,
    body: &[Stmt],
    iv: VarId,
    m: &MachineSummary,
    profile: &MissProfile,
) -> NestAnalysis {
    let refs = collect_refs(prog, body, iv, m.line_bytes, profile);
    let recurrences = summarize_recurrences(&refs);
    let body_ops = refs.body_ops_estimate(body);
    let f = estimate_f(&refs, &recurrences, body_ops, m);
    let misses_per_iter = refs
        .leading()
        .map(|r| {
            if r.irregular {
                r.p_miss
            } else {
                // Analytic mode has p_miss = 1 (every line touch
                // misses); measured mode scales by the profiled
                // per-line miss probability.
                r.p_miss / r.l_m as f64
            }
        })
        .sum();
    NestAnalysis {
        refs,
        recurrences,
        body_ops,
        f,
        misses_per_iter,
    }
}

/// Equations 1–4: `f = f_reg + f_irreg` with
/// `C_m = ceil(W / (i · L_m))` when no address recurrence binds the loop,
/// else `C_m = 1`.
pub fn estimate_f(
    refs: &RefCollection,
    rec: &RecurrenceSummary,
    body_ops: usize,
    m: &MachineSummary,
) -> f64 {
    let w = m.window as f64;
    let i = body_ops.max(1) as f64;
    let mut f_reg = 0.0;
    let mut f_irr = 0.0;
    for r in refs.leading() {
        let c_m = if rec.has_address_recurrence || r.self_temporal {
            // Address recurrences defeat dynamic unrolling; self-temporal
            // references touch one line regardless of the window.
            1.0
        } else {
            (w / (i * r.l_m as f64)).ceil().max(1.0)
        };
        if r.irregular {
            f_irr += r.p_miss * c_m;
        } else {
            // p_miss is 1 under the analytic model; the measured model
            // discounts line touches the reuse profile saw hitting.
            f_reg += r.p_miss * c_m;
        }
    }
    f_reg + f_irr.ceil()
}

#[cfg(test)]
mod tests {
    use super::*;
    use mempar_ir::{ArrayRef, Index, ProgramBuilder};

    fn inner_of(p: &Program) -> (&Vec<Stmt>, VarId) {
        fn descend(body: &[Stmt]) -> Option<(&Vec<Stmt>, VarId)> {
            for s in body {
                if let Stmt::Loop(l) = s {
                    return descend(&l.body).or(Some((&l.body, l.var)));
                }
            }
            None
        }
        descend(&p.body).expect("loop")
    }

    /// The Section 3.2.2 worked example: row-wise 2-D traversal.
    /// `alpha = 1`, `f = 1` initially; unroll-and-jam by `lp` gives
    /// `f = lp`.
    #[test]
    fn motivating_example_needs_uaj() {
        let mut b = ProgramBuilder::new("row");
        let a = b.array_f64("a", &[128, 128]);
        let s = b.scalar_f64("s", 0.0);
        let j = b.var("j");
        let i = b.var("i");
        b.for_const(j, 0, 128, |b| {
            b.for_const(i, 0, 128, |b| {
                let v = b.load(a, &[b.idx(j), b.idx(i)]);
                let acc = b.scalar(s);
                let e = b.add(acc, v);
                b.assign_scalar(s, e);
            });
        });
        let p = b.finish();
        let (body, iv) = inner_of(&p);
        let m = MachineSummary::base();
        let an = analyze_inner_loop(&p, body, iv, &m, &MissProfile::pessimistic());
        // One leading ref, L_m = 8, i ≈ 3: C = ceil(64 / 24) = 3... the
        // paper's discussion expects dWi/Le most likely 1 for moderate
        // bodies; with our tiny body it's ceil(64/(3*8)) = 3.
        assert!((an.recurrences.alpha - 1.0).abs() < 1e-12);
        assert!(an.f >= 1.0);
        assert!(an.needs_unroll_and_jam(&m), "f={} < alpha*lp=10", an.f);
        assert_eq!(an.target_f(&m), 10.0);
        assert!(an.utilization_bound(&m).expect("has recurrence") < 1.0);
    }

    #[test]
    fn pointer_chase_caps_c_m_at_one() {
        let mut b = ProgramBuilder::new("chase");
        let next = b.array_i64("next", &[4096]);
        let ps = b.scalar_i64("p", 0);
        let i = b.var("i");
        b.for_const(i, 0, 64, |b| {
            let v = b.load_ref(ArrayRef::new(next, vec![Index::scalar(ps)]));
            b.assign_scalar(ps, v);
        });
        let p = b.finish();
        let (body, iv) = inner_of(&p);
        let m = MachineSummary::base();
        let an = analyze_inner_loop(&p, body, iv, &m, &MissProfile::pessimistic());
        assert!(an.recurrences.has_address_recurrence);
        // C_m = 1 despite the tiny body: dynamic unrolling cannot break an
        // address recurrence. f = ceil(1.0 * 1) = 1.
        assert_eq!(an.f, 1.0);
        assert!(an.needs_unroll_and_jam(&m));
    }

    #[test]
    fn column_traversal_already_parallel() {
        let mut b = ProgramBuilder::new("col");
        let a = b.array_f64("a", &[128, 128]);
        let s = b.scalar_f64("s", 0.0);
        let j = b.var("j");
        let i = b.var("i");
        b.for_const(j, 0, 128, |b| {
            b.for_const(i, 0, 128, |b| {
                let v = b.load(a, &[b.idx(i), b.idx(j)]);
                let acc = b.scalar(s);
                let e = b.add(acc, v);
                b.assign_scalar(s, e);
            });
        });
        let p = b.finish();
        let (body, iv) = inner_of(&p);
        let m = MachineSummary::base();
        let an = analyze_inner_loop(&p, body, iv, &m, &MissProfile::pessimistic());
        // No recurrence; every window iteration misses: f = C = ceil(W/i)
        // >> lp, so neither transformation is indicated.
        assert_eq!(an.recurrences.alpha, 0.0);
        assert!(!an.needs_unroll_and_jam(&m));
        assert!(!an.window_constrained(&m), "f={}", an.f);
        assert_eq!(an.inner_unroll_degree(&m), 1);
    }

    #[test]
    fn big_body_is_window_constrained() {
        // The Mp3d shape (Section 3.3): line-padded records (one 64-byte
        // record per iteration, so no cache-line recurrence) and a large
        // loop body — few misses fit in a window.
        let mut b = ProgramBuilder::new("big");
        let a = b.array_f64("a", &[1 << 11, 8]); // 8 f64 = one line per record
        let s = b.scalar_f64("s", 0.0);
        let i = b.var("i");
        b.for_const(i, 0, 1 << 11, |b| {
            // ~30 FP ops of "work" per iteration plus one record load.
            let zero = b.idx_e(mempar_ir::AffineExpr::konst(0));
            let mut acc = b.scalar(s);
            let v = b.load(a, &[b.idx(i), zero]);
            acc = b.add(acc, v);
            for _ in 0..30 {
                let c = b.constf(1.000001);
                acc = b.mul(acc, c);
            }
            b.assign_scalar(s, acc);
        });
        let p = b.finish();
        let (body, iv) = inner_of(&p);
        let m = MachineSummary::base();
        let an = analyze_inner_loop(&p, body, iv, &m, &MissProfile::pessimistic());
        // Record stride = line size: not self-spatial, no recurrence.
        // i ≈ 33, W=64: the window holds ~2 iterations, f = 2 < 10.
        assert_eq!(an.recurrences.alpha, 0.0);
        assert!(an.window_constrained(&m), "f={}", an.f);
        // misses_per_iter = 1: unroll to expose lp misses to the scheduler.
        assert_eq!(an.inner_unroll_degree(&m), 10);
    }

    #[test]
    fn f_counts_writes_too() {
        // Stores are counted in f (MSHRs are shared) — Section 3.2.2.
        let mut b = ProgramBuilder::new("w");
        let a = b.array_f64("a", &[4096]);
        let c = b.array_f64("c", &[4096]);
        let i = b.var("i");
        b.for_const(i, 0, 4096, |b| {
            let v = b.load(a, &[b.idx(i)]);
            b.assign_array(c, &[b.idx(i)], v);
        });
        let p = b.finish();
        let (body, iv) = inner_of(&p);
        let m = MachineSummary::base();
        let an = analyze_inner_loop(&p, body, iv, &m, &MissProfile::pessimistic());
        let leading: Vec<_> = an.refs.leading().collect();
        assert_eq!(leading.len(), 2, "load stream and store stream");
        assert!(leading.iter().any(|r| r.is_write));
    }
}
