//! Reference collection and locality analysis for an innermost loop.
//!
//! Implements the paper's prerequisite analyses (Section 3.1): which
//! static references are *leading references* (can miss in the external
//! cache) and which exhibit *inner-loop self-spatial locality* (and over
//! how many iterations, `L_m`).

use std::str::FromStr;

use mempar_ir::{ArrayId, ArrayRef, DynIndex, Program, ScalarId, Stmt, VarId};

/// Which locality model feeds the `f`/α computation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Locality {
    /// The paper's analytic model: every leading regular line touch
    /// misses (`p = 1`), irregular references use the cache-probe
    /// profile's `P_m`.
    #[default]
    Analytic,
    /// Measured locality: per-array miss probabilities come from the
    /// sampled reuse-distance profile of the dynamic-op stream
    /// ([`MissProfile::set_measured`]), for regular and irregular
    /// references alike.
    Measured,
}

impl FromStr for Locality {
    type Err = String;
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "analytic" => Ok(Locality::Analytic),
            "measured" => Ok(Locality::Measured),
            other => Err(format!(
                "unknown locality mode '{other}' (expected analytic|measured)"
            )),
        }
    }
}

impl std::fmt::Display for Locality {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            Locality::Analytic => "analytic",
            Locality::Measured => "measured",
        })
    }
}

/// Measured locality of one array, distilled from a sampled
/// reuse-distance histogram of the dynamic-op stream.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ArrayLocality {
    /// Probability that an individual access to the array misses the
    /// external cache (reuse distance beyond its capacity, or a cold
    /// first touch).
    pub access_miss_prob: f64,
    /// Measured accesses per miss (the dynamic analogue of `L_m`;
    /// >= 1, meaningful only when `access_miss_prob > 0`).
    pub l_m: f64,
}

/// Miss-rate profile for irregular references (the `P_m` of Equation 4),
/// measured by cache simulation or profiling in the paper; here provided
/// per-array by the profiler in `mempar` or defaulted. In measured
/// locality mode it additionally carries per-array [`ArrayLocality`]
/// records from the reuse-distance profiler, which override the
/// analytic every-line-misses assumption for *regular* references too.
#[derive(Debug, Clone, Default)]
pub struct MissProfile {
    per_array: Vec<(ArrayId, f64)>,
    measured: Vec<(ArrayId, ArrayLocality)>,
    /// Miss probability assumed for unprofiled irregular references.
    pub default_p: f64,
}

impl MissProfile {
    /// A profile that assumes every irregular leading instance misses
    /// (the most aggressive assumption).
    pub fn pessimistic() -> Self {
        MissProfile {
            per_array: Vec::new(),
            measured: Vec::new(),
            default_p: 1.0,
        }
    }

    /// Records the measured miss rate of references to `a`.
    pub fn set(&mut self, a: ArrayId, p: f64) {
        assert!((0.0..=1.0).contains(&p), "miss rate must be a probability");
        self.per_array.retain(|&(x, _)| x != a);
        self.per_array.push((a, p));
    }

    /// Miss probability for references to `a`.
    pub fn p_for(&self, a: ArrayId) -> f64 {
        self.per_array
            .iter()
            .find(|&&(x, _)| x == a)
            .map(|&(_, p)| p)
            .unwrap_or(self.default_p)
    }

    /// Records the measured reuse-distance locality of `a`. Presence of
    /// any measured record is what switches [`collect_refs`] from the
    /// analytic to the measured model for regular references.
    pub fn set_measured(&mut self, a: ArrayId, loc: ArrayLocality) {
        assert!(
            (0.0..=1.0).contains(&loc.access_miss_prob),
            "miss rate must be a probability"
        );
        self.measured.retain(|&(x, _)| x != a);
        self.measured.push((a, loc));
    }

    /// The measured locality of `a`, when one was recorded.
    pub fn measured_for(&self, a: ArrayId) -> Option<ArrayLocality> {
        self.measured
            .iter()
            .find(|&&(x, _)| x == a)
            .map(|&(_, loc)| loc)
    }

    /// True when any measured locality records are present.
    pub fn has_measured(&self) -> bool {
        !self.measured.is_empty()
    }
}

/// One static reference in the innermost loop body, with its locality
/// classification.
#[derive(Debug, Clone)]
pub struct RefInfo {
    /// Index in the collection (node id in the dependence graph).
    pub id: usize,
    /// Referenced array.
    pub array: ArrayId,
    /// True for stores.
    pub is_write: bool,
    /// Position of the owning statement in the innermost body.
    pub stmt_idx: usize,
    /// The reference itself.
    pub r: ArrayRef,
    /// True when any index dimension is non-affine.
    pub irregular: bool,
    /// Elements advanced per innermost iteration (regular refs).
    pub flat_stride: i64,
    /// Inner-loop self-spatial locality.
    pub self_spatial: bool,
    /// Same address every inner iteration.
    pub self_temporal: bool,
    /// Iterations that share one cache line (`L_m`; 1 when unknown).
    pub l_m: u32,
    /// Group id (same-array references with constant address offsets).
    pub group: usize,
    /// True for the group's leading reference.
    pub leading: bool,
    /// Miss probability of leading instances (`P_m`).
    pub p_miss: f64,
    /// Scalars whose values feed this reference's address.
    pub addr_scalars: Vec<ScalarId>,
    /// Ids of references loaded to form this reference's address
    /// (indirect indexing), filled during collection.
    pub addr_refs: Vec<usize>,
}

/// A scalar assignment observed in the body: `scalar = f(loads...)`.
#[derive(Debug, Clone)]
pub struct ScalarDef {
    /// The assigned scalar.
    pub scalar: ScalarId,
    /// Statement position.
    pub stmt_idx: usize,
    /// Ids of references loaded in the right-hand side.
    pub src_refs: Vec<usize>,
}

/// All references of an innermost loop body plus scalar dataflow.
#[derive(Debug, Clone, Default)]
pub struct RefCollection {
    /// The references, id-indexed.
    pub refs: Vec<RefInfo>,
    /// Scalar assignments in body order.
    pub scalar_defs: Vec<ScalarDef>,
}

/// Flat element stride of `var` through `r` (sum over dimensions of the
/// coefficient times the dimension's row-major stride). `None` when any
/// dimension is irregular.
pub fn flat_stride(prog: &Program, r: &ArrayRef, var: VarId) -> Option<i64> {
    let decl = prog.array(r.array);
    let strides = decl.strides();
    let mut total = 0i64;
    for (d, ix) in r.indices.iter().enumerate() {
        if ix.dynamic.is_some() {
            return None;
        }
        total += ix.affine.coeff(var) * strides[d] as i64;
    }
    Some(total)
}

/// Flat constant element offset of an affine reference (used to compare
/// group members). `None` for irregular references.
pub fn flat_offset(prog: &Program, r: &ArrayRef) -> Option<i64> {
    if !r.is_affine() {
        return None;
    }
    let strides = prog.array(r.array).strides();
    Some(
        r.indices
            .iter()
            .zip(&strides)
            .map(|(ix, &s)| ix.affine.constant_term() * s as i64)
            .sum(),
    )
}

/// True when two affine refs differ only in their constant terms.
fn same_shape(a: &ArrayRef, b: &ArrayRef) -> bool {
    if a.array != b.array || a.indices.len() != b.indices.len() {
        return false;
    }
    a.indices.iter().zip(&b.indices).all(|(x, y)| {
        x.dynamic.is_none() && y.dynamic.is_none() && x.affine.sub(&y.affine).is_const()
    })
}

/// Collects the references of `body` (the innermost loop's statements,
/// ignoring nested control flow) and classifies their locality with
/// respect to innermost variable `iv`.
///
/// `line_bytes` is the external cache's line size; `profile` supplies
/// `P_m` for irregular references.
pub fn collect_refs(
    prog: &Program,
    body: &[Stmt],
    iv: VarId,
    line_bytes: usize,
    profile: &MissProfile,
) -> RefCollection {
    let mut out = RefCollection::default();
    let elems_per_line = (line_bytes / 8).max(1) as i64;

    for (stmt_idx, stmt) in body.iter().enumerate() {
        let mut rhs_ref_ids: Vec<usize> = Vec::new();
        let mut add_ref = |coll: &mut RefCollection, r: &ArrayRef, is_write: bool| -> usize {
            let id = coll.refs.len();
            let stride = flat_stride(prog, r, iv);
            let irregular = stride.is_none();
            let flat = stride.unwrap_or(0);
            let bytes_per_iter = flat.unsigned_abs().saturating_mul(8);
            let self_temporal = !irregular && flat == 0;
            let self_spatial = !irregular && flat != 0 && (bytes_per_iter as usize) < line_bytes;
            let l_m = if self_spatial {
                (elems_per_line / flat.abs()).max(1) as u32
            } else {
                1
            };
            let mut addr_scalars = Vec::new();
            let mut addr_refs = Vec::new();
            for ix in &r.indices {
                match &ix.dynamic {
                    Some(DynIndex::Scalar { scalar, .. }) => addr_scalars.push(*scalar),
                    Some(DynIndex::Indirect { .. }) => {
                        // The inner ref was visited (and added) just before
                        // this one; link to the most recent ref on the same
                        // statement that matches the inner structure.
                        // Collection order guarantees inner-before-outer.
                        if let Some(&last) = rhs_ref_ids.last() {
                            addr_refs.push(last);
                        }
                    }
                    None => {}
                }
            }
            coll.refs.push(RefInfo {
                id,
                array: r.array,
                is_write,
                stmt_idx,
                r: r.clone(),
                irregular,
                flat_stride: flat,
                self_spatial,
                self_temporal,
                l_m,
                group: id, // refined below
                leading: false,
                p_miss: if irregular {
                    profile.p_for(r.array)
                } else {
                    // Analytic model: every leading line touch misses
                    // (p = 1). Measured mode: the per-line miss
                    // probability is the measured per-access miss rate
                    // times the touches per line (`L_m`), capped at 1.
                    profile
                        .measured_for(r.array)
                        .map(|loc| (loc.access_miss_prob * f64::from(l_m)).clamp(0.0, 1.0))
                        .unwrap_or(1.0)
                },
                addr_scalars,
                addr_refs,
            });
            rhs_ref_ids.push(id);
            id
        };

        match stmt {
            Stmt::AssignArray { lhs, rhs } => {
                rhs.visit_refs(&mut |r| {
                    add_ref(&mut out, r, false);
                });
                lhs.visit_inner_refs(&mut |r| {
                    add_ref(&mut out, r, false);
                });
                add_ref(&mut out, lhs, true);
            }
            Stmt::AssignScalar { lhs, rhs } => {
                let mut srcs = Vec::new();
                rhs.visit_refs(&mut |r| {
                    srcs.push(add_ref(&mut out, r, false));
                });
                out.scalar_defs.push(ScalarDef {
                    scalar: *lhs,
                    stmt_idx,
                    src_refs: srcs,
                });
            }
            // Nested loops/guards are not part of *this* innermost body.
            _ => {}
        }
    }

    assign_groups(prog, &mut out, elems_per_line);
    out
}

/// Groups same-shape references whose constant offsets fall within one
/// cache line of a group leader, and marks leading references.
///
/// Grouping is greedy from the first-touched end of the traversal
/// (largest offset for positive strides): a reference joins the current
/// group while it stays within a line's span of the leader, otherwise it
/// opens a new group with itself as leader. This avoids transitively
/// chaining long spans (e.g. unrolled offsets 0,2,4,...,30 form four
/// line-sized groups, not one).
fn assign_groups(prog: &Program, coll: &mut RefCollection, elems_per_line: i64) {
    let n = coll.refs.len();
    let mut assigned = vec![false; n];
    for i in 0..n {
        if assigned[i] {
            continue;
        }
        if coll.refs[i].irregular {
            coll.refs[i].group = i;
            coll.refs[i].leading = true;
            assigned[i] = true;
            continue;
        }
        // Collect the same-shape cluster containing ref i.
        let mut cluster: Vec<(usize, i64)> = Vec::new();
        for (j, &done) in assigned.iter().enumerate() {
            if !done && !coll.refs[j].irregular && same_shape(&coll.refs[i].r, &coll.refs[j].r) {
                if let Some(off) = flat_offset(prog, &coll.refs[j].r) {
                    cluster.push((j, off));
                }
            }
        }
        // First-touched order: descending offsets for forward traversal,
        // ascending for backward.
        let forward = coll.refs[i].flat_stride >= 0;
        cluster.sort_by_key(|&(_, off)| if forward { -off } else { off });
        let mut leader: Option<(usize, i64)> = None;
        for (j, off) in cluster {
            let new_group = match leader {
                None => true,
                Some((_, loff)) => (loff - off).abs() >= elems_per_line,
            };
            if new_group {
                leader = Some((j, off));
                coll.refs[j].leading = true;
            }
            let (lid, _) = leader.expect("leader set above");
            coll.refs[j].group = lid;
            assigned[j] = true;
        }
    }
}

impl RefCollection {
    /// The leading references (the framework's `R`/`f` candidates).
    pub fn leading(&self) -> impl Iterator<Item = &RefInfo> {
        self.refs.iter().filter(|r| r.leading)
    }

    /// Static FP-pipeline-style instruction estimate per innermost
    /// iteration (`i` in the paper's `ceil(W/i)` dynamic unrolling).
    pub fn body_ops_estimate(&self, body: &[Stmt]) -> usize {
        let mut ops = 2; // loop counter + branch
        for stmt in body {
            match stmt {
                Stmt::AssignArray { rhs, .. } => {
                    ops += 1 + rhs.fp_op_count(); // the store
                }
                Stmt::AssignScalar { rhs, .. } => {
                    ops += rhs.fp_op_count();
                }
                Stmt::If { .. } => ops += 2,
                _ => ops += 1,
            }
        }
        // Each collected reference costs a load (stores counted above).
        ops + self.refs.iter().filter(|r| !r.is_write).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mempar_ir::{AffineExpr, Index, ProgramBuilder};

    /// The paper's first example:
    /// `b[j,2i] = b[j,2i] + a[j,i] + a[j,i-1]`.
    fn paper_example() -> (Program, VarId, Vec<Stmt>) {
        let mut b = ProgramBuilder::new("ex");
        let a = b.array_f64("a", &[64, 64]);
        let bb = b.array_f64("b", &[64, 128]);
        let j = b.var("j");
        let i = b.var("i");
        b.for_const(j, 0, 64, |b| {
            b.for_const(i, 1, 64, |b| {
                let b_ref = [b.idx(j), b.idx_e(AffineExpr::scaled_var(i, 2, 0))];
                let old = b.load(bb, &b_ref);
                let a1 = b.load(a, &[b.idx(j), b.idx(i)]);
                let a0 = b.load(a, &[b.idx(j), b.idx_e(AffineExpr::var(i).offset(-1))]);
                let s1 = b.add(old, a1);
                let s2 = b.add(s1, a0);
                b.assign_array(bb, &b_ref, s2);
            });
        });
        let p = b.finish();
        let mempar_ir::Stmt::Loop(outer) = &p.body[0] else {
            panic!()
        };
        let mempar_ir::Stmt::Loop(inner) = &outer.body[0] else {
            panic!()
        };
        let body = inner.body.clone();
        (p, i, body)
    }

    #[test]
    fn classifies_paper_example() {
        let (p, iv, body) = paper_example();
        let coll = collect_refs(&p, &body, iv, 64, &MissProfile::pessimistic());
        // 4 refs: load b, load a[j,i], load a[j,i-1], store b.
        assert_eq!(coll.refs.len(), 4);
        // a[j,i] and a[j,i-1] are one group; a[j,i] leads.
        let a_loads: Vec<&RefInfo> = coll
            .refs
            .iter()
            .filter(|r| p.array(r.array).name == "a")
            .collect();
        assert_eq!(a_loads.len(), 2);
        assert_eq!(a_loads[0].group, a_loads[1].group);
        let leader = a_loads.iter().find(|r| r.leading).expect("one leader");
        assert_eq!(
            leader.r.indices[1].affine.constant_term(),
            0,
            "a[j,i] leads"
        );
        // Stride-1 f64 on 64-byte lines: L_m = 8.
        assert_eq!(leader.l_m, 8);
        assert!(leader.self_spatial);
        // b[j,2i]: stride 2, still self-spatial, L_m = 4; load+store one group.
        let b_refs: Vec<&RefInfo> = coll
            .refs
            .iter()
            .filter(|r| p.array(r.array).name == "b")
            .collect();
        assert_eq!(b_refs[0].group, b_refs[1].group);
        let b_leader = b_refs.iter().find(|r| r.leading).expect("leader");
        assert_eq!(b_leader.l_m, 4);
        // Three leading refs total (a-group, b-group... b load and store
        // share a group so exactly one leader there).
        assert_eq!(coll.leading().count(), 2);
    }

    #[test]
    fn column_traversal_is_not_spatial() {
        // a[i,j] indexed by inner i over rows: stride = row length.
        let mut b = ProgramBuilder::new("col");
        let a = b.array_f64("a", &[64, 64]);
        let s = b.scalar_f64("s", 0.0);
        let j = b.var("j");
        let i = b.var("i");
        b.for_const(j, 0, 64, |b| {
            b.for_const(i, 0, 64, |b| {
                let v = b.load(a, &[b.idx(i), b.idx(j)]);
                let acc = b.scalar(s);
                let e = b.add(acc, v);
                b.assign_scalar(s, e);
            });
        });
        let p = b.finish();
        let mempar_ir::Stmt::Loop(outer) = &p.body[0] else {
            panic!()
        };
        let mempar_ir::Stmt::Loop(inner) = &outer.body[0] else {
            panic!()
        };
        let coll = collect_refs(&p, &inner.body, i, 64, &MissProfile::pessimistic());
        let r = &coll.refs[0];
        assert!(!r.self_spatial);
        assert_eq!(r.flat_stride, 64);
        assert_eq!(r.l_m, 1);
        assert!(r.leading);
    }

    #[test]
    fn indirect_ref_is_irregular_with_address_link() {
        // sum += data[ind[i]]
        let mut b = ProgramBuilder::new("gather");
        let ind = b.array_i64("ind", &[64]);
        let data = b.array_f64("data", &[1024]);
        let s = b.scalar_f64("s", 0.0);
        let i = b.var("i");
        b.for_const(i, 0, 64, |b| {
            let inner = ArrayRef::new(ind, vec![Index::affine(AffineExpr::var(i))]);
            let v = b.load_ref(ArrayRef::new(data, vec![Index::indirect(inner)]));
            let acc = b.scalar(s);
            let e = b.add(acc, v);
            b.assign_scalar(s, e);
        });
        let p = b.finish();
        let mempar_ir::Stmt::Loop(l) = &p.body[0] else {
            panic!()
        };
        let mut prof = MissProfile::pessimistic();
        prof.set(data, 0.5);
        let coll = collect_refs(&p, &l.body, i, 64, &prof);
        assert_eq!(coll.refs.len(), 2);
        let ind_ref = &coll.refs[0];
        let data_ref = &coll.refs[1];
        assert!(!ind_ref.irregular);
        assert!(ind_ref.self_spatial);
        assert!(data_ref.irregular);
        assert!(data_ref.leading);
        assert_eq!(data_ref.p_miss, 0.5);
        assert_eq!(data_ref.addr_refs, vec![0], "address flows from ind[i]");
    }

    #[test]
    fn pointer_chase_records_scalar_dataflow() {
        // p = next[p]
        let mut b = ProgramBuilder::new("chase");
        let next = b.array_i64("next", &[64]);
        let ps = b.scalar_i64("p", 0);
        let i = b.var("i");
        b.for_const(i, 0, 64, |b| {
            let v = b.load_ref(ArrayRef::new(next, vec![Index::scalar(ps)]));
            b.assign_scalar(ps, v);
        });
        let p = b.finish();
        let mempar_ir::Stmt::Loop(l) = &p.body[0] else {
            panic!()
        };
        let coll = collect_refs(&p, &l.body, i, 64, &MissProfile::pessimistic());
        assert_eq!(coll.refs.len(), 1);
        assert!(coll.refs[0].irregular);
        assert_eq!(coll.refs[0].addr_scalars, vec![ps]);
        assert_eq!(coll.scalar_defs.len(), 1);
        assert_eq!(coll.scalar_defs[0].scalar, ps);
        assert_eq!(coll.scalar_defs[0].src_refs, vec![0]);
    }

    #[test]
    fn ops_estimate_reasonable() {
        let (p, iv, body) = paper_example();
        let coll = collect_refs(&p, &body, iv, 64, &MissProfile::pessimistic());
        let i = coll.body_ops_estimate(&body);
        // 3 loads + 1 store + 2 fp + 2 overhead = 8.
        assert_eq!(i, 8);
    }

    #[test]
    fn long_offset_chains_split_into_line_groups() {
        // Unrolled offsets 0,2,4,...,30 at stride 2 (a 16-copy jam of a
        // stride-2 stream): one group per 8-element line span, not one
        // transitively-chained blob.
        let mut b = ProgramBuilder::new("chain");
        let a = b.array_f64("a", &[4096]);
        let s = b.scalar_f64("s", 0.0);
        let i = b.var("i");
        b.for_const(i, 0, 128, |b| {
            let mut acc = b.scalar(s);
            for u in 0..16 {
                let v = b.load(a, &[b.idx_e(AffineExpr::scaled_var(i, 32, 2 * u))]);
                acc = b.add(acc, v);
            }
            b.assign_scalar(s, acc);
        });
        let p = b.finish();
        let mempar_ir::Stmt::Loop(l) = &p.body[0] else {
            panic!()
        };
        let coll = collect_refs(&p, &l.body, i, 64, &MissProfile::pessimistic());
        // Offsets span 0..=30 elements = 4 cache lines -> 4 leaders.
        assert_eq!(coll.leading().count(), 4, "one leader per line span");
    }

    #[test]
    fn backward_stride_leader_is_smallest_offset() {
        let mut b = ProgramBuilder::new("back");
        let a = b.array_f64("a", &[256]);
        let s = b.scalar_f64("s", 0.0);
        let i = b.var("i");
        b.for_step(i, 1, 255, -1, |b| {
            let v0 = b.load(a, &[b.idx(i)]);
            let v1 = b.load(a, &[b.idx_e(AffineExpr::var(i).offset(-1))]);
            let acc = b.scalar(s);
            let e1 = b.add(v0, v1);
            let e = b.add(acc, e1);
            b.assign_scalar(s, e);
        });
        let p = b.finish();
        let mempar_ir::Stmt::Loop(l) = &p.body[0] else {
            panic!()
        };
        let coll = collect_refs(&p, &l.body, i, 64, &MissProfile::pessimistic());
        let leader = coll.leading().next().expect("one group");
        assert_eq!(coll.leading().count(), 1);
        // Leader selection uses the reference's coefficient sign (the
        // collection API does not see the loop's step direction), so the
        // larger offset leads. Group membership, alpha and f are
        // unaffected; only the first-touch label shifts within the group.
        assert_eq!(leader.r.indices[0].affine.constant_term(), 0);
    }

    #[test]
    fn profile_lookup() {
        let mut prof = MissProfile {
            default_p: 0.3,
            ..MissProfile::default()
        };
        let a = ArrayId::from_raw(0);
        assert_eq!(prof.p_for(a), 0.3);
        prof.set(a, 0.9);
        assert_eq!(prof.p_for(a), 0.9);
        prof.set(a, 0.7);
        assert_eq!(prof.p_for(a), 0.7);
    }

    #[test]
    fn measured_locality_overrides_regular_p_miss() {
        let (p, iv, body) = paper_example();
        let mut prof = MissProfile::pessimistic();
        // Declaration order in `paper_example`: "a" first.
        let a = ArrayId::from_raw(0);
        assert_eq!(p.array(a).name, "a");
        // A hot array: 1 miss per 80 accesses. With L_m = 8 the per-line
        // miss probability becomes 8/80 = 0.1 instead of the analytic 1.
        prof.set_measured(
            a,
            ArrayLocality {
                access_miss_prob: 1.0 / 80.0,
                l_m: 80.0,
            },
        );
        assert!(prof.has_measured());
        let coll = collect_refs(&p, &body, iv, 64, &prof);
        let leader = coll
            .leading()
            .find(|r| r.array == a)
            .expect("a has a leader");
        assert!((leader.p_miss - 0.1).abs() < 1e-12, "p = {}", leader.p_miss);
        // Unmeasured arrays keep the analytic assumption.
        let other = coll.leading().find(|r| r.array != a).expect("b leader");
        assert_eq!(other.p_miss, 1.0);
        // A cold streaming measurement (1 miss per L_m accesses) clamps
        // back to the analytic value.
        prof.set_measured(
            a,
            ArrayLocality {
                access_miss_prob: 1.0 / 8.0,
                l_m: 8.0,
            },
        );
        let coll = collect_refs(&p, &body, iv, 64, &prof);
        let leader = coll.leading().find(|r| r.array == a).expect("leader");
        assert_eq!(leader.p_miss, 1.0);
    }

    #[test]
    fn locality_mode_parses() {
        assert_eq!("analytic".parse(), Ok(Locality::Analytic));
        assert_eq!("measured".parse(), Ok(Locality::Measured));
        assert!("auto".parse::<Locality>().is_err());
        assert_eq!(Locality::Measured.to_string(), "measured");
        assert_eq!(Locality::default(), Locality::Analytic);
    }
}
