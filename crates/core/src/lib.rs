//! `mempar` — a from-scratch Rust reproduction of Vijay S. Pai and Sarita
//! Adve, *Code Transformations to Improve Memory Parallelism* (MICRO-32,
//! 1999; extended in JILP 2, 2000).
//!
//! ILP processors can hide read-miss latency only by overlapping several
//! read misses within one instruction window ("read miss clustering").
//! This crate ties together the full reproduction stack:
//!
//! * [`mempar_ir`] — a loop-nest IR with an execution-driven interpreter;
//! * [`mempar_analysis`] — the paper's dependence/recurrence framework
//!   (`α = R/π`) and overlapped-miss estimate (`f`, Equations 1–4);
//! * [`mempar_transform`] — unroll-and-jam, interchange, strip-mining,
//!   inner unrolling, scalar replacement, miss-packing scheduling and the
//!   degree-search driver;
//! * [`mempar_sim`] — an RSIM-like out-of-order uni/multiprocessor with
//!   MSHR-limited caches, buses, interleaved memory banks, a mesh and
//!   directory coherence;
//! * [`mempar_workloads`] — Latbench plus the seven applications of
//!   Table 2.
//!
//! The crate's own API is the experiment layer used by the benchmark
//! harness: [`cluster_workload`] (profile + transform), [`run_pair`]
//! (base vs clustered on a configured machine) and
//! [`profile_miss_rates`] (the `P_m` measurement).
//!
//! # Quickstart
//!
//! ```no_run
//! use mempar::{run_pair, MachineConfig};
//! use mempar_workloads::{latbench, LatbenchParams};
//!
//! let w = latbench(LatbenchParams::scaled(0.05));
//! let cfg = MachineConfig::base_simulated(1, w.l2_bytes);
//! let pair = run_pair(&w, &cfg);
//! println!(
//!     "{}: {} -> {} cycles ({:+.1}%)",
//!     pair.name,
//!     pair.base.cycles,
//!     pair.clustered.cycles,
//!     -pair.percent_reduction()
//! );
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod experiment;
mod observe;
mod profile;

pub use experiment::{
    calibrate_locality, cluster_workload, cluster_workload_locality, locality_profile,
    machine_summary, run_pair, run_pair_locality, run_pair_with, LocalityArtifacts, RunPair,
};
pub use observe::{
    observe_pair, observe_pair_locality, observe_pair_with, observe_program, observe_program_with,
    ObservedPair, ObservedRun, DEFAULT_TRACE_CAPACITY,
};
pub use profile::{measure_locality, profile_miss_rates, reuse_levels, sim_reuse_profiler};

// The pieces users compose with, re-exported at the facade.
pub use mempar_analysis::{
    analyze_inner_loop, ArrayLocality, Locality, MachineSummary, MissProfile, NestAnalysis,
};
pub use mempar_obs::{
    chrome_trace_json, locality_delta, validate_json, ChromeRun, DeltaReport, RefProfile,
    ReuseConfig, ReuseReport,
};
pub use mempar_sim::{
    run_program, run_program_observed_reuse, run_program_with, Engine, MachineConfig, Protocol,
    ReuseProfiler, SimOptions, SimResult, Stepper,
};
pub use mempar_stats::{
    format_breakdown_table, format_occupancy_curves, format_rows, Breakdown, Row,
};
pub use mempar_transform::{cluster_program, ClusterReport};
pub use mempar_workloads::{App, Workload};
