//! Observed experiment runs: the same base-vs-clustered comparison as
//! [`run_pair`](crate::run_pair), but with the observability layer on —
//! structured trace events, a metrics snapshot, and the miss-clustering
//! profile joining each run's trace against the analysis framework's
//! leading references.

use mempar_analysis::{Locality, MissProfile};
use mempar_ir::{HomePolicy, Program};
use mempar_obs::{profile_misses, RefProfile, ReuseConfig};
use mempar_sim::{
    run_program_observed, run_program_observed_reuse, MachineConfig, SimObservation, SimOptions,
    SimResult, Topology, Tracer,
};
use mempar_transform::{cluster_program, ClusterReport};
use mempar_workloads::Workload;

use crate::experiment::{machine_summary, LocalityArtifacts};
use crate::profile::{profile_miss_rates, sim_reuse_profiler};

/// Default trace ring capacity for observed runs: large enough to hold
/// every event of the harness's scaled-down workloads; bigger runs keep
/// the most recent million events (the exporter reports the drop count).
pub const DEFAULT_TRACE_CAPACITY: usize = 1 << 20;

/// One observed run of one program variant.
#[derive(Debug)]
pub struct ObservedRun {
    /// `<workload>/<variant>` (e.g. `latbench/clustered`).
    pub name: String,
    /// The timing result — bit-identical to an untraced run's.
    pub result: SimResult,
    /// Trace events, metrics snapshot and export parameters.
    pub obs: SimObservation,
    /// Per-leading-reference clustering profile.
    pub profile: RefProfile,
}

/// Base and clustered observed runs of one workload.
#[derive(Debug)]
pub struct ObservedPair {
    /// The untransformed program's run.
    pub base: ObservedRun,
    /// The clustered program's run.
    pub clustered: ObservedRun,
    /// What the transformation driver did.
    pub report: ClusterReport,
}

/// Runs `w` untransformed and clustered on `cfg` with tracing enabled,
/// returning both observed runs. Mirrors [`run_pair`](crate::run_pair)'s
/// setup (same miss profile, machine summary and home policy) so the
/// profiler's predictions match the transformation driver's decisions.
pub fn observe_pair(w: &Workload, cfg: &MachineConfig, trace_capacity: usize) -> ObservedPair {
    observe_pair_with(w, cfg, trace_capacity, SimOptions::default())
}

/// [`observe_pair`] with explicit driver options (engine selection,
/// cycle skipping — see [`SimOptions`]).
pub fn observe_pair_with(
    w: &Workload,
    cfg: &MachineConfig,
    trace_capacity: usize,
    opts: SimOptions,
) -> ObservedPair {
    let policy = match cfg.topology {
        Topology::Numa => HomePolicy::BlockPerArray,
        Topology::SmpBus => HomePolicy::Centralized,
    };
    let mut profile_mem = w.memory(1);
    let miss_profile = profile_miss_rates(&w.program, &mut profile_mem, &cfg.l2);
    let msum = machine_summary(cfg);
    let mut clustered_prog = w.program.clone();
    let report = cluster_program(&mut clustered_prog, &msum, &miss_profile);

    let observe = |prog: &Program, variant: &str| -> ObservedRun {
        let mut mem = w.memory_with_policy(cfg.nprocs, policy);
        let (result, obs) = run_program_observed(
            prog,
            &mut mem,
            cfg,
            opts,
            Tracer::with_capacity(trace_capacity),
        );
        let profile = profile_misses(prog, &mem, &msum, &miss_profile, &obs.trace, obs.line_shift);
        ObservedRun {
            name: format!("{}/{variant}", w.name),
            result,
            obs,
            profile,
        }
    };
    ObservedPair {
        base: observe(&w.program, "base"),
        clustered: observe(&clustered_prog, "clustered"),
        report,
    }
}

/// [`observe_pair_with`] under an explicit locality mode. Analytic mode
/// is exactly the plain observed path. Measured mode clusters with the
/// sampled reuse profile, taps both timed runs' op streams with an
/// in-simulation [`mempar_obs::ReuseProfiler`] (surfacing `sim.reuse.*`
/// metrics and the Perfetto counter track), and returns the
/// predicted-vs-measured calibration artifacts.
pub fn observe_pair_locality(
    w: &Workload,
    cfg: &MachineConfig,
    trace_capacity: usize,
    opts: SimOptions,
    locality: Locality,
) -> (ObservedPair, Option<LocalityArtifacts>) {
    if locality == Locality::Analytic {
        return (observe_pair_with(w, cfg, trace_capacity, opts), None);
    }
    let policy = match cfg.topology {
        Topology::Numa => HomePolicy::BlockPerArray,
        Topology::SmpBus => HomePolicy::Centralized,
    };
    let (measured, artifacts) = crate::experiment::calibrate_locality(w, cfg);
    let msum = machine_summary(cfg);
    let mut clustered_prog = w.program.clone();
    let cluster_report = cluster_program(&mut clustered_prog, &msum, &measured);

    let observe = |prog: &Program, variant: &str| -> ObservedRun {
        let mut mem = w.memory_with_policy(cfg.nprocs, policy);
        let (result, obs, _) = run_program_observed_reuse(
            prog,
            &mut mem,
            cfg,
            opts,
            Tracer::with_capacity(trace_capacity),
            sim_reuse_profiler(prog, cfg, ReuseConfig::default()),
        );
        let profile = profile_misses(prog, &mem, &msum, &measured, &obs.trace, obs.line_shift);
        ObservedRun {
            name: format!("{}/{variant}", w.name),
            result,
            obs,
            profile,
        }
    };
    let pair = ObservedPair {
        base: observe(&w.program, "base"),
        clustered: observe(&clustered_prog, "clustered"),
        report: cluster_report,
    };
    (pair, Some(artifacts))
}

/// Observes a single already-built program (no transformation step):
/// the building block behind `--profile-refs` on catalog binaries.
pub fn observe_program(
    name: &str,
    prog: &Program,
    w: &Workload,
    cfg: &MachineConfig,
    miss_profile: &MissProfile,
    trace_capacity: usize,
) -> ObservedRun {
    observe_program_with(
        name,
        prog,
        w,
        cfg,
        miss_profile,
        trace_capacity,
        SimOptions::default(),
    )
}

/// [`observe_program`] with explicit driver options (engine selection,
/// cycle skipping — see [`SimOptions`]).
#[allow(clippy::too_many_arguments)]
pub fn observe_program_with(
    name: &str,
    prog: &Program,
    w: &Workload,
    cfg: &MachineConfig,
    miss_profile: &MissProfile,
    trace_capacity: usize,
    opts: SimOptions,
) -> ObservedRun {
    let policy = match cfg.topology {
        Topology::Numa => HomePolicy::BlockPerArray,
        Topology::SmpBus => HomePolicy::Centralized,
    };
    let msum = machine_summary(cfg);
    let mut mem = w.memory_with_policy(cfg.nprocs, policy);
    let (result, obs) = run_program_observed(
        prog,
        &mut mem,
        cfg,
        opts,
        Tracer::with_capacity(trace_capacity),
    );
    let profile = profile_misses(prog, &mem, &msum, miss_profile, &obs.trace, obs.line_shift);
    ObservedRun {
        name: name.to_string(),
        result,
        obs,
        profile,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mempar_workloads::{latbench, LatbenchParams};

    #[test]
    fn observed_pair_traces_and_profiles() {
        let w = latbench(LatbenchParams {
            chains: 16,
            chain_len: 64,
            pool: 1 << 15,
            seed: 3,
        });
        let cfg = MachineConfig::base_simulated(1, w.l2_bytes);
        let pair = observe_pair(&w, &cfg, 1 << 16);
        assert!(!pair.base.obs.trace.is_empty(), "base run must trace");
        assert!(pair.base.profile.total_misses() > 0);
        assert!(pair.clustered.profile.total_misses() > 0);
        // The headline: clustering raises the achieved mean overlap.
        let b = pair.base.profile.overall_mean_overlap();
        let c = pair.clustered.profile.overall_mean_overlap();
        assert!(c > b, "clustered overlap {c:.2} must beat base {b:.2}");
        // And the observed results match the untraced experiment path.
        let untraced = crate::run_pair(&w, &cfg);
        assert_eq!(pair.base.result.cycles, untraced.base.cycles);
        assert_eq!(pair.clustered.result.cycles, untraced.clustered.cycles);
    }
}
