//! Miss-rate profiling for irregular references (`P_m`, Section 3.2.2).
//!
//! The paper measures `P_m` "through cache simulation or profiling".
//! This module runs the program functionally, feeds its data references
//! through a cache with the target geometry, and reports per-array miss
//! rates, which [`MissProfile`] then supplies to the analysis.

use mempar_analysis::{ArrayLocality, MissProfile};
use mempar_ir::{ArrayId, Interp, OpKind, Program, SimMem};
use mempar_obs::{ReuseConfig, ReuseLevel, ReuseProfiler, ReuseReport};
use mempar_sim::{CacheParams, LineState, MachineConfig, TagArray};

/// Runs `prog` functionally on one processor and measures per-array miss
/// rates in a cache of the given geometry. The memory image is consumed
/// (callers profile on a scratch copy).
pub fn profile_miss_rates(prog: &Program, mem: &mut SimMem, cache: &CacheParams) -> MissProfile {
    let mut tags = TagArray::new(cache);
    let shift = cache.line_bytes.trailing_zeros();
    let narrays = prog.arrays.len();
    let mut accesses = vec![0u64; narrays];
    let mut misses = vec![0u64; narrays];
    let mut interp = Interp::new(prog, 0, 1);
    while let Some(op) = interp.next_op(mem) {
        let (addr, is_write) = match op.kind {
            OpKind::Load { addr } => (addr, false),
            OpKind::Store { addr } => (addr, true),
            _ => continue,
        };
        let line = addr >> shift;
        let hit = tags.probe(line) != LineState::Invalid;
        if !hit {
            tags.fill(
                line,
                if is_write {
                    LineState::Modified
                } else {
                    LineState::Shared
                },
            );
        }
        if let Some(a) = mem.array_of_addr(addr) {
            accesses[a.index()] += 1;
            if !hit {
                misses[a.index()] += 1;
            }
        }
    }
    let mut profile = MissProfile::pessimistic();
    for i in 0..narrays {
        if accesses[i] > 0 {
            profile.set(
                ArrayId::from_raw(i as u32),
                misses[i] as f64 / accesses[i] as f64,
            );
        }
    }
    profile
}

/// The cache levels the reuse profiler derives miss probabilities for:
/// fully-associative LRU models of the configured L1 (when present) and
/// L2 capacities, innermost first. Distances are counted in L2 lines, so
/// each level's capacity is expressed in L2-line units.
pub fn reuse_levels(cfg: &MachineConfig) -> Vec<ReuseLevel> {
    let mut levels = Vec::new();
    if let Some(l1) = &cfg.l1 {
        levels.push(ReuseLevel {
            name: "l1".into(),
            lines: (l1.size_bytes / cfg.l2.line_bytes.max(1)) as u64,
        });
    }
    levels.push(ReuseLevel {
        name: "l2".into(),
        lines: (cfg.l2.size_bytes / cfg.l2.line_bytes.max(1)) as u64,
    });
    levels
}

/// A [`ReuseProfiler`] sized for `prog` on `cfg`: distances counted in
/// L2 lines, one stream per processor, levels from [`reuse_levels`].
pub fn sim_reuse_profiler(
    prog: &Program,
    cfg: &MachineConfig,
    reuse_cfg: ReuseConfig,
) -> ReuseProfiler {
    ReuseProfiler::new(
        reuse_cfg,
        cfg.l2.line_bytes.trailing_zeros(),
        reuse_levels(cfg),
        prog.arrays.len(),
        cfg.nprocs,
    )
}

/// The measured-locality pre-pass behind `--locality measured`: runs
/// `prog` functionally on one processor, feeds its data references
/// through the sampled reuse-distance profiler, and distills the result
/// into a [`MissProfile`] carrying per-array measured miss probabilities
/// (`set` for irregular `P_m`, `set_measured` for the regular-reference
/// per-line model) plus the full [`ReuseReport`]. The memory image is
/// consumed (callers profile on a scratch copy).
pub fn measure_locality(
    prog: &Program,
    mem: &mut SimMem,
    cfg: &MachineConfig,
    reuse_cfg: ReuseConfig,
) -> (MissProfile, ReuseReport) {
    let mut profiler = sim_reuse_profiler(prog, cfg, reuse_cfg);
    let mut interp = Interp::new(prog, 0, 1);
    let mut t = 0u64;
    while let Some(op) = interp.next_op(mem) {
        if let Some(addr) = op.kind.addr() {
            profiler.observe(0, t, addr, mem.array_of_addr(addr).map(|a| a.index()));
            t += 1;
        }
    }
    let names: Vec<String> = prog.arrays.iter().map(|a| a.name.clone()).collect();
    let report = profiler.report(&names);
    let mut profile = MissProfile::pessimistic();
    for (i, name) in names.iter().enumerate() {
        let Some(a) = report.arrays.iter().find(|a| &a.name == name) else {
            continue;
        };
        let p_ext = a.miss_prob.last().copied().unwrap_or(1.0);
        let id = ArrayId::from_raw(i as u32);
        profile.set(id, p_ext);
        profile.set_measured(
            id,
            ArrayLocality {
                access_miss_prob: p_ext,
                l_m: a.l_m,
            },
        );
    }
    (profile, report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mempar_ir::{ArrayData, ArrayRef, Index, ProgramBuilder};

    fn cache_64k() -> CacheParams {
        CacheParams {
            size_bytes: 64 * 1024,
            assoc: 4,
            line_bytes: 64,
            hit_latency: 10,
            ports: 1,
            mshrs: 10,
        }
    }

    #[test]
    fn streaming_misses_once_per_line() {
        let n = 4096;
        let mut b = ProgramBuilder::new("stream");
        let a = b.array_f64("a", &[n]);
        let s = b.scalar_f64("s", 0.0);
        let i = b.var("i");
        b.for_const(i, 0, n as i64, |b| {
            let v = b.load(a, &[b.idx(i)]);
            let acc = b.scalar(s);
            let e = b.add(acc, v);
            b.assign_scalar(s, e);
        });
        let p = b.finish();
        let mut mem = SimMem::new(&p, 1);
        mem.set_array(a, ArrayData::f64_fill(n, 1.0));
        let prof = profile_miss_rates(&p, &mut mem, &cache_64k());
        // One miss per 8 elements: P = 1/8.
        assert!((prof.p_for(a) - 0.125).abs() < 0.01, "{}", prof.p_for(a));
    }

    #[test]
    fn random_gather_misses_often() {
        // Gather over a 4 MB table: mostly misses.
        let table = 1 << 19;
        let mut b = ProgramBuilder::new("gather");
        let ind = b.array_i64("ind", &[4096]);
        let data = b.array_f64("data", &[table]);
        let s = b.scalar_f64("s", 0.0);
        let i = b.var("i");
        b.for_const(i, 0, 4096, |b| {
            let iv = ArrayRef::new(ind, vec![Index::affine(mempar_ir::AffineExpr::var(i))]);
            let v = b.load_ref(ArrayRef::new(data, vec![Index::indirect(iv)]));
            let acc = b.scalar(s);
            let e = b.add(acc, v);
            b.assign_scalar(s, e);
        });
        let p = b.finish();
        let mut mem = SimMem::new(&p, 1);
        // Scattered indices (stride 8191 mod table).
        mem.set_array(
            ind,
            ArrayData::I64((0..4096i64).map(|x| (x * 8191) % (table as i64)).collect()),
        );
        let prof = profile_miss_rates(&p, &mut mem, &cache_64k());
        assert!(
            prof.p_for(data) > 0.9,
            "scattered gather should miss: {}",
            prof.p_for(data)
        );
        // The index stream itself is spatial.
        assert!(prof.p_for(ind) < 0.2);
    }

    #[test]
    fn measured_locality_sees_streaming_spatial_reuse() {
        let n = 8192;
        let mut b = ProgramBuilder::new("stream");
        let a = b.array_f64("a", &[n]);
        let s = b.scalar_f64("s", 0.0);
        let i = b.var("i");
        b.for_const(i, 0, n as i64, |b| {
            let v = b.load(a, &[b.idx(i)]);
            let acc = b.scalar(s);
            let e = b.add(acc, v);
            b.assign_scalar(s, e);
        });
        let p = b.finish();
        let mut mem = SimMem::new(&p, 1);
        mem.set_array(a, ArrayData::f64_fill(n, 1.0));
        let cfg = MachineConfig::base_simulated(1, 64 * 1024);
        let (profile, report) = measure_locality(&p, &mut mem, &cfg, ReuseConfig::default());
        assert!(profile.has_measured(), "measured records must be present");
        // One cold miss per 8-element line: per-access miss prob 1/8.
        let p_a = report.miss_prob_of("a").expect("array a observed");
        assert!((p_a - 0.125).abs() < 0.03, "streaming miss prob: {p_a}");
        let loc = profile.measured_for(a).expect("a is measured");
        assert!((loc.l_m - 8.0).abs() < 1.5, "measured L_m: {}", loc.l_m);
    }

    #[test]
    fn tiny_working_set_hits() {
        let mut b = ProgramBuilder::new("hot");
        let a = b.array_f64("a", &[8]);
        let s = b.scalar_f64("s", 0.0);
        let t = b.var("t");
        let i = b.var("i");
        b.for_const(t, 0, 64, |b| {
            b.for_const(i, 0, 8, |b| {
                let v = b.load(a, &[b.idx(i)]);
                let acc = b.scalar(s);
                let e = b.add(acc, v);
                b.assign_scalar(s, e);
            });
        });
        let p = b.finish();
        let mut mem = SimMem::new(&p, 1);
        let prof = profile_miss_rates(&p, &mut mem, &cache_64k());
        assert!(prof.p_for(a) < 0.01, "hot array nearly always hits");
    }
}
