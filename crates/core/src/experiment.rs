//! The experiment runner: base vs clustered on a configured machine —
//! the loop behind every table and figure regeneration.

use mempar_analysis::{Locality, MachineSummary, MissProfile};
use mempar_ir::{HomePolicy, Program};
use mempar_obs::{locality_delta, DeltaReport, ReuseConfig, ReuseReport};
use mempar_sim::{run_program_with, MachineConfig, SimOptions, SimResult, Topology};
use mempar_transform::{cluster_program, ClusterReport};
use mempar_workloads::Workload;

use crate::profile::{measure_locality, profile_miss_rates};

/// Distills the full machine configuration into the parameters the
/// analysis framework uses (Section 3.2.2's `W`, `lp`, line size).
pub fn machine_summary(cfg: &MachineConfig) -> MachineSummary {
    MachineSummary {
        window: cfg.proc.window,
        procs: cfg.nprocs,
        mshrs: cfg.l2.mshrs,
        line_bytes: cfg.l2.line_bytes,
        max_unroll: 16,
    }
}

/// Produces the clustered variant of a workload's program by profiling
/// miss rates and running the transformation driver — the mechanical
/// equivalent of the paper's hand-applied transformations.
pub fn cluster_workload(w: &Workload, cfg: &MachineConfig) -> (Program, ClusterReport) {
    let (clustered, report, _, _) = cluster_workload_locality(w, cfg, Locality::Analytic);
    (clustered, report)
}

/// Builds the miss profile the transformation driver consumes, under the
/// given locality mode: `analytic` measures irregular `P_m` by exact
/// cache simulation and leaves regular references to the paper's static
/// model; `measured` instead derives every array's miss probability from
/// the sampled reuse-distance profiler (returning its report).
pub fn locality_profile(
    w: &Workload,
    cfg: &MachineConfig,
    locality: Locality,
) -> (MissProfile, Option<ReuseReport>) {
    let mut profile_mem = w.memory(1);
    match locality {
        Locality::Analytic => (
            profile_miss_rates(&w.program, &mut profile_mem, &cfg.l2),
            None,
        ),
        Locality::Measured => {
            let (profile, report) =
                measure_locality(&w.program, &mut profile_mem, cfg, ReuseConfig::default());
            (profile, Some(report))
        }
    }
}

/// [`cluster_workload`] under an explicit locality mode, also handing
/// back the profile used and (in measured mode) the reuse report.
pub fn cluster_workload_locality(
    w: &Workload,
    cfg: &MachineConfig,
    locality: Locality,
) -> (Program, ClusterReport, MissProfile, Option<ReuseReport>) {
    let (profile, reuse) = locality_profile(w, cfg, locality);
    let mut clustered = w.program.clone();
    let report = cluster_program(&mut clustered, &machine_summary(cfg), &profile);
    (clustered, report, profile, reuse)
}

/// Results of one base-vs-clustered comparison.
#[derive(Debug)]
pub struct RunPair {
    /// Workload name.
    pub name: String,
    /// Machine configuration name.
    pub config: String,
    /// The untransformed run.
    pub base: SimResult,
    /// The clustered run.
    pub clustered: SimResult,
    /// What the transformation driver did.
    pub report: ClusterReport,
    /// Whether base and clustered runs produced identical outputs.
    pub outputs_match: bool,
    /// The miss profile used for `P_m`.
    pub profile: MissProfile,
}

impl RunPair {
    /// Percent execution-time reduction (Table 3's metric).
    pub fn percent_reduction(&self) -> f64 {
        let b = self.base.mean_breakdown();
        self.clustered.mean_breakdown().percent_reduction_from(&b)
    }
}

/// Runs `w` untransformed and clustered on `cfg` and compares.
///
/// The NUMA home policy follows the topology: block placement for
/// CC-NUMA (the SPLASH convention), centralized for bus-based SMPs.
pub fn run_pair(w: &Workload, cfg: &MachineConfig) -> RunPair {
    run_pair_with(w, cfg, SimOptions::default())
}

/// The measured-locality artifacts a `--locality measured` run carries
/// alongside the timing pair: the reuse report the transform profile was
/// built from, and the predicted-vs-measured calibration table over the
/// base program's innermost nests.
#[derive(Debug)]
pub struct LocalityArtifacts {
    /// Sampled reuse-distance measurements, per array.
    pub report: ReuseReport,
    /// Predicted-vs-measured `L_m`/`P_m`/`f` deltas.
    pub delta: DeltaReport,
}

/// The measured-locality pre-pass alone: runs both the analytic `P_m`
/// profiling and the sampled reuse profiler on scratch memory images,
/// returning the measured [`MissProfile`] (what the transform driver
/// consumes in measured mode) plus the calibration artifacts. No timed
/// simulation happens here.
pub fn calibrate_locality(w: &Workload, cfg: &MachineConfig) -> (MissProfile, LocalityArtifacts) {
    let mut analytic_mem = w.memory(1);
    let analytic = profile_miss_rates(&w.program, &mut analytic_mem, &cfg.l2);
    let mut reuse_mem = w.memory(1);
    let (measured, report) =
        measure_locality(&w.program, &mut reuse_mem, cfg, ReuseConfig::default());
    let delta = locality_delta(
        &w.program,
        &machine_summary(cfg),
        &analytic,
        &measured,
        &report,
    );
    (measured, LocalityArtifacts { report, delta })
}

/// [`run_pair_with`] under an explicit locality mode. Analytic mode is
/// byte-for-byte the plain path (no profiler anywhere near the run);
/// measured mode feeds the sampled reuse profile into the transformation
/// driver and returns the calibration artifacts.
pub fn run_pair_locality(
    w: &Workload,
    cfg: &MachineConfig,
    opts: SimOptions,
    locality: Locality,
) -> (RunPair, Option<LocalityArtifacts>) {
    if locality == Locality::Analytic {
        return (run_pair_with(w, cfg, opts), None);
    }
    let policy = match cfg.topology {
        Topology::Numa => HomePolicy::BlockPerArray,
        Topology::SmpBus => HomePolicy::Centralized,
    };
    let (measured, artifacts) = calibrate_locality(w, cfg);
    let mut clustered_prog = w.program.clone();
    let cluster_report = cluster_program(&mut clustered_prog, &machine_summary(cfg), &measured);

    let mut base_mem = w.memory_with_policy(cfg.nprocs, policy);
    let mut clust_mem = w.memory_with_policy(cfg.nprocs, policy);
    let (base, clustered) = rayon::join(
        || run_program_with(&w.program, &mut base_mem, cfg, opts),
        || run_program_with(&clustered_prog, &mut clust_mem, cfg, opts),
    );

    let outputs_match = w.read_outputs(&base_mem) == w.read_outputs(&clust_mem);
    let pair = RunPair {
        name: w.name.clone(),
        config: cfg.name.clone(),
        base,
        clustered,
        report: cluster_report,
        outputs_match,
        profile: measured,
    };
    (pair, Some(artifacts))
}

/// [`run_pair`] with explicit driver options (engine selection, cycle
/// skipping — see [`SimOptions`]).
pub fn run_pair_with(w: &Workload, cfg: &MachineConfig, opts: SimOptions) -> RunPair {
    let policy = match cfg.topology {
        Topology::Numa => HomePolicy::BlockPerArray,
        Topology::SmpBus => HomePolicy::Centralized,
    };
    let mut profile_mem = w.memory(1);
    let profile = profile_miss_rates(&w.program, &mut profile_mem, &cfg.l2);
    let mut clustered_prog = w.program.clone();
    let report = cluster_program(&mut clustered_prog, &machine_summary(cfg), &profile);

    // The two timed runs are independent — run them concurrently. Each
    // simulation is fully deterministic, so the join changes wall-clock
    // time only, never results.
    let mut base_mem = w.memory_with_policy(cfg.nprocs, policy);
    let mut clust_mem = w.memory_with_policy(cfg.nprocs, policy);
    let (base, clustered) = rayon::join(
        || run_program_with(&w.program, &mut base_mem, cfg, opts),
        || run_program_with(&clustered_prog, &mut clust_mem, cfg, opts),
    );

    let outputs_match = w.read_outputs(&base_mem) == w.read_outputs(&clust_mem);
    RunPair {
        name: w.name.clone(),
        config: cfg.name.clone(),
        base,
        clustered,
        report,
        outputs_match,
        profile,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mempar_workloads::{latbench, LatbenchParams};

    #[test]
    fn latbench_pair_speeds_up_and_matches() {
        let w = latbench(LatbenchParams {
            chains: 16,
            chain_len: 64,
            pool: 1 << 15,
            seed: 3,
        });
        let cfg = MachineConfig::base_simulated(1, w.l2_bytes);
        let pair = run_pair(&w, &cfg);
        assert!(pair.outputs_match, "clustering must preserve results");
        assert!(
            pair.report.decisions.iter().any(|d| d.uaj_degree > 1),
            "{}",
            pair.report.summary()
        );
        assert!(
            pair.percent_reduction() > 30.0,
            "chase overlap should be large: {:.1}% ({} -> {} cycles)",
            pair.percent_reduction(),
            pair.base.cycles,
            pair.clustered.cycles
        );
        // Read-miss stall per miss drops sharply (the Latbench headline).
        let base_stall = pair.base.avg_read_miss_stall_ns();
        let clust_stall = pair.clustered.avg_read_miss_stall_ns();
        assert!(
            clust_stall * 2.0 < base_stall,
            "stall/miss: {base_stall:.0} ns -> {clust_stall:.0} ns"
        );
    }

    #[test]
    fn measured_locality_pair_calibrates() {
        let w = latbench(LatbenchParams {
            chains: 16,
            chain_len: 64,
            pool: 1 << 15,
            seed: 3,
        });
        let cfg = MachineConfig::base_simulated(1, w.l2_bytes);
        let (pair, artifacts) =
            run_pair_locality(&w, &cfg, SimOptions::default(), Locality::Measured);
        let artifacts = artifacts.expect("measured mode returns artifacts");
        assert!(pair.outputs_match, "clustering must preserve results");
        assert!(pair.profile.has_measured());
        assert!(!artifacts.report.arrays.is_empty(), "arrays were observed");
        assert!(!artifacts.delta.rows.is_empty(), "delta table has rows");
        // Analytic mode stays the plain path: no artifacts, same cycles.
        let (plain, none) = run_pair_locality(&w, &cfg, SimOptions::default(), Locality::Analytic);
        assert!(none.is_none());
        assert_eq!(plain.base.cycles, run_pair(&w, &cfg).base.cycles);
    }

    #[test]
    fn machine_summary_distills() {
        let cfg = MachineConfig::base_simulated(4, 64 * 1024);
        let m = machine_summary(&cfg);
        assert_eq!(m.window, 64);
        assert_eq!(m.mshrs, 10);
        assert_eq!(m.line_bytes, 64);
    }
}
