//! Tuner smoke: a tiny Latbench tune must find a clustering that beats
//! the base program, never lose to the default driver, and keep its
//! oracle clean.

use mempar::MachineConfig;
use mempar_analysis::Locality;
use mempar_tune::{tune_workload, TuneOptions, Tuner};
use mempar_workloads::{latbench, LatbenchParams};

#[test]
fn latbench_tune_beats_base_and_floors_at_default() {
    let w = latbench(LatbenchParams {
        chains: 16,
        chain_len: 64,
        pool: 1 << 15,
        seed: 3,
    });
    let cfg = MachineConfig::base_simulated(1, w.l2_bytes);
    let tuner = Tuner::new(TuneOptions::default());
    let (tuned, report, _) = tune_workload(&w, &cfg, &tuner, Locality::Analytic);
    assert!(
        report.oracle_failures.is_empty(),
        "oracle failures: {:?}",
        report.oracle_failures
    );
    assert!(
        report.tuned_cycles <= report.default_cycles,
        "tuner must floor at the default driver: {}",
        report.summary()
    );
    assert!(
        report.tuned_cycles < report.base_cycles,
        "latbench chase must cluster: {}",
        report.summary()
    );
    // The returned program is the one that scored tuned_cycles.
    let mut mem = w.memory(cfg.nprocs);
    let res = mempar::run_program_with(&tuned, &mut mem, &cfg, tuner.opts.sim);
    assert_eq!(res.cycles, report.tuned_cycles);
    // And it preserves the workload's outputs.
    let mut base_mem = w.memory(cfg.nprocs);
    mempar::run_program_with(&w.program, &mut base_mem, &cfg, tuner.opts.sim);
    assert_eq!(w.read_outputs(&mem), w.read_outputs(&base_mem));
}
