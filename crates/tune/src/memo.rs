//! The score memo: simulated cycle counts keyed by *(program trace
//! digest, simulation options, machine fingerprint)*.
//!
//! Two candidate programs that emit identical dynamic-op streams cost
//! the same cycles under the same machine and options, so their scores
//! are shared — across candidates within one nest, across nests, and
//! across the difftest generator's stream when a [`ScoreMemo`] is
//! reused. The key deliberately includes every knob that can change the
//! simulated cycle count:
//!
//! * the order-sensitive [`TraceDigest`] stream hash of **all** procs
//!   (so distribution changes re-key even when proc 0's stream is
//!   unchanged);
//! * the stepper, execution engine, and coherence protocol from
//!   [`SimOptions`] — equal digests under *different* options must
//!   never share a score (the `shards` knob is excluded: sharding is
//!   bit-identical by the event stepper's determinism guarantee);
//! * a fingerprint of the [`MachineConfig`] (cache geometry, window,
//!   MSHRs, processor count, topology).
//!
//! Each entry remembers the options signature it was inserted under and
//! every lookup asserts it matches — a collision between different
//! `SimOptions` is a bug in key construction, not a cache hit.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use mempar_sim::{MachineConfig, SimOptions};

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

fn fnv(bytes: &[u8]) -> u64 {
    let mut h = FNV_OFFSET;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

/// Stable signature of the score-relevant [`SimOptions`] knobs.
pub fn opts_signature(opts: SimOptions) -> String {
    format!("{:?}/{:?}/{:?}", opts.stepper, opts.engine, opts.protocol).to_lowercase()
}

/// Stable fingerprint of the score-relevant [`MachineConfig`] knobs.
pub fn config_fingerprint(cfg: &MachineConfig) -> u64 {
    fnv(format!(
        "{}|{}|{:?}|{}|{}|{}|{}|{}|{}|{}",
        cfg.name,
        cfg.nprocs,
        cfg.topology,
        cfg.proc.window,
        cfg.proc.clock_mhz,
        cfg.l2.size_bytes,
        cfg.l2.assoc,
        cfg.l2.line_bytes,
        cfg.l2.mshrs,
        cfg.dir_cycles,
    )
    .as_bytes())
}

/// Full memo key.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct MemoKey {
    /// All-proc trace-stream hash of the candidate program.
    pub digest: u64,
    /// [`opts_signature`] of the scoring options.
    pub opts: String,
    /// [`config_fingerprint`] of the scoring machine.
    pub config: u64,
}

#[derive(Debug, Clone)]
struct MemoEntry {
    cycles: u64,
    /// Redundant copy of the options signature for the soundness
    /// assert: must always equal `key.opts` on hit.
    opts: String,
}

/// Thread-shared score cache with hit/miss counters.
///
/// The counters are *not* part of the deterministic tuner outcome —
/// with several tuner threads, two candidates with equal keys can race
/// past the lookup and both simulate (same value lands twice), so
/// hit/miss totals may vary with thread count even though every score
/// and every winner is identical.
#[derive(Debug, Default)]
pub struct ScoreMemo {
    map: Mutex<HashMap<MemoKey, MemoEntry>>,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl ScoreMemo {
    /// An empty memo.
    pub fn new() -> Self {
        Self::default()
    }

    /// Looks `key` up; on miss, runs `score` and stores its result.
    ///
    /// # Panics
    ///
    /// Panics when a hit's stored options signature disagrees with the
    /// key's — that would mean two different `SimOptions` shared a
    /// cached score.
    pub fn get_or_insert(&self, key: &MemoKey, score: impl FnOnce() -> u64) -> (u64, bool) {
        if let Some(e) = self.map.lock().unwrap().get(key) {
            assert_eq!(
                e.opts, key.opts,
                "memo soundness: digest {:#x} hit under options '{}' was cached under '{}'",
                key.digest, key.opts, e.opts
            );
            self.hits.fetch_add(1, Ordering::Relaxed);
            return (e.cycles, true);
        }
        // Score outside the lock: simulations are long and candidates
        // deterministic, so a racing duplicate just recomputes the same
        // value.
        let cycles = score();
        self.misses.fetch_add(1, Ordering::Relaxed);
        self.map.lock().unwrap().insert(
            key.clone(),
            MemoEntry {
                cycles,
                opts: key.opts.clone(),
            },
        );
        (cycles, false)
    }

    /// Cache hits so far.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Cache misses (scoring runs) so far.
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// Number of distinct cached scores.
    pub fn len(&self) -> usize {
        self.map.lock().unwrap().len()
    }

    /// True when nothing has been cached yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mempar_sim::{Protocol, Stepper};

    fn key(digest: u64, opts: SimOptions) -> MemoKey {
        MemoKey {
            digest,
            opts: opts_signature(opts),
            config: 7,
        }
    }

    #[test]
    fn equal_digests_different_options_never_share() {
        let memo = ScoreMemo::new();
        let event = SimOptions::default();
        let strict = SimOptions {
            stepper: Stepper::Strict,
            ..SimOptions::default()
        };
        let mesi = SimOptions {
            protocol: Protocol::Mesi,
            ..SimOptions::default()
        };
        let (a, hit_a) = memo.get_or_insert(&key(42, event), || 100);
        let (b, hit_b) = memo.get_or_insert(&key(42, strict), || 200);
        let (c, hit_c) = memo.get_or_insert(&key(42, mesi), || 300);
        assert_eq!((a, b, c), (100, 200, 300));
        assert!(!hit_a && !hit_b && !hit_c, "distinct options always miss");
        // Same digest + same options is the only sharing path.
        let (a2, hit) = memo.get_or_insert(&key(42, event), || unreachable!());
        assert_eq!(a2, 100);
        assert!(hit);
        assert_eq!(memo.len(), 3);
    }

    #[test]
    fn options_signature_separates_every_knob() {
        let base = SimOptions::default();
        for opts in [
            SimOptions {
                stepper: Stepper::Skip,
                ..base
            },
            SimOptions {
                engine: mempar_ir::Engine::Interp,
                ..base
            },
            SimOptions {
                protocol: Protocol::Moesi,
                ..base
            },
        ] {
            assert_ne!(opts_signature(base), opts_signature(opts));
        }
    }

    #[test]
    fn shards_do_not_rekey() {
        let base = SimOptions::default();
        let sharded = SimOptions { shards: 4, ..base };
        assert_eq!(opts_signature(base), opts_signature(sharded));
    }
}
