//! `mempar-tune` — the composition autotuner (ROADMAP item 1).
//!
//! The paper's Table 2/3 transformations were chosen by hand; the
//! clustering driver (`mempar_transform::cluster_program`) mechanizes
//! one recipe — unroll-and-jam at an analytically chosen degree, plus
//! scalar replacement and scheduling. This crate searches the wider
//! composition space *empirically*, with the simulator as the cost
//! model:
//!
//! 1. **Constraint propagation** ([`build_space`]): per innermost nest,
//!    the five decision variables (interchange, strip-interchange,
//!    unroll-and-jam degree, inner-unroll degree, scheduling) get their
//!    domains pruned by cheap unary legality probes, then the reduced
//!    product is enumerated under pairwise exclusions — typically tens
//!    of compositions instead of the full cross product.
//! 2. **Prediction pruning**: survivors are ranked by the analysis
//!    framework's `min(f, α·lp)` (Equations 1–4) under the same
//!    [`MissProfile`](mempar_analysis::MissProfile) the driver uses
//!    (analytic or measured), and only the top few reach the simulator.
//! 3. **Simulation scoring** ([`Tuner::tune_program`]): each candidate
//!    is oracle-checked against the interpreter (identical sequential
//!    and parallel-functional memory images) and then timed; scores are
//!    memoized by *(trace digest, SimOptions, machine fingerprint)*
//!    ([`ScoreMemo`]) and candidates fan out across threads with
//!    deterministic winner selection.
//!
//! The paper-default driver's output is always scored too and used as a
//! floor, so `tuned ≤ min(base, default)` cycles by construction — the
//! `tuned_vs_default` headline is honest.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod export;
mod memo;
mod space;
mod tuner;

pub use export::{export_metrics, tune_trace_json};
pub use memo::{config_fingerprint, opts_signature, MemoKey, ScoreMemo};
pub use space::{
    apply_composition, build_space, deepest_inner, Composition, NestSpace, SpaceOptions, SpaceStats,
};
pub use tuner::{
    CandidateTrace, MemFactory, NestOutcome, SearchStats, TuneOptions, TuneReport, Tuner,
};

use mempar::locality_profile;
use mempar_analysis::{Locality, MissProfile};
use mempar_ir::{HomePolicy, Program};
use mempar_sim::{MachineConfig, Topology};
use mempar_workloads::Workload;

/// Tunes a catalog workload on `cfg`: builds the miss profile under the
/// given locality mode (analytic static model or sampled reuse
/// measurement), then runs [`Tuner::tune_program`] with the topology's
/// home policy. Returns the tuned program, the report, and the profile
/// the predictions used.
pub fn tune_workload(
    w: &Workload,
    cfg: &MachineConfig,
    tuner: &Tuner,
    locality: Locality,
) -> (Program, TuneReport, MissProfile) {
    let (profile, _) = locality_profile(w, cfg, locality);
    let policy = match cfg.topology {
        Topology::Numa => HomePolicy::BlockPerArray,
        Topology::SmpBus => HomePolicy::Centralized,
    };
    let mem_at = |n: usize| w.memory_with_policy(n, policy);
    let (tuned, report) = tuner.tune_program(&w.name, &w.program, cfg, &profile, &mem_at);
    (tuned, report, profile)
}
