//! The search driver: per-nest coordinate descent over the propagated
//! composition space, scored by the event-stepper simulator, with the
//! paper-default clustering driver as a floor.

use std::time::Instant;

use mempar::machine_summary;
use mempar_analysis::{analyze_inner_loop, MissProfile};
use mempar_ir::{
    run_parallel_functional_with, run_single_with, BytecodeProgram, Engine, Interp, Program,
    SimMem, TraceDigest, Vm,
};
use mempar_sim::{run_program_with, MachineConfig, SimOptions};
use mempar_transform::{cluster_program, innermost_loops, loop_at, NestPath};

use crate::memo::{config_fingerprint, opts_signature, MemoKey, ScoreMemo};
use crate::space::{apply_composition, build_space, Composition, SpaceOptions};

/// Tuner configuration.
#[derive(Debug, Clone)]
pub struct TuneOptions {
    /// Options every scoring simulation runs under.
    pub sim: SimOptions,
    /// Worker threads candidates fan out across (0 = auto). Thread
    /// count never changes the winner (the determinism tests assert
    /// this).
    pub threads: usize,
    /// Knob menus for the per-nest space.
    pub space: SpaceOptions,
    /// Simulator budget per nest: survivors of prediction pruning.
    pub max_scored_per_nest: usize,
}

impl Default for TuneOptions {
    fn default() -> Self {
        TuneOptions {
            sim: SimOptions::default(),
            threads: 0,
            space: SpaceOptions::default(),
            max_scored_per_nest: 8,
        }
    }
}

/// Search totals for the report and the `tune.*` metrics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SearchStats {
    /// Innermost nests considered.
    pub nests: u64,
    /// Product of unpropagated domains, summed over nests.
    pub space_full: u64,
    /// Compositions surviving propagation + exclusions.
    pub enumerated: u64,
    /// Candidates dropped by composed-legality failure in `apply`.
    pub pruned_illegal: u64,
    /// Candidates dropped by the f/α prediction ranking.
    pub pruned_predicted: u64,
    /// Candidates handed to the simulator (deterministic).
    pub scored: u64,
    /// Memo hits during this tune (may vary with thread count).
    pub memo_hits: u64,
    /// Memo misses (actual simulations) during this tune.
    pub memo_misses: u64,
}

/// What the search decided for one nest.
#[derive(Debug, Clone)]
pub struct NestOutcome {
    /// Nest label (`path/var`).
    pub nest: String,
    /// Winning composition label, or `keep` when nothing beat the
    /// incumbent.
    pub chosen: String,
    /// Incumbent cycles entering this nest.
    pub before_cycles: u64,
    /// Cycles after this nest's decision.
    pub after_cycles: u64,
    /// Candidates scored for this nest.
    pub scored: usize,
}

/// One scored candidate, for the Perfetto slice export.
#[derive(Debug, Clone)]
pub struct CandidateTrace {
    /// Nest label.
    pub nest: String,
    /// Composition label.
    pub label: String,
    /// All-proc trace digest (the memo key).
    pub digest: u64,
    /// Simulated cycles.
    pub cycles: u64,
    /// Predicted `min(f, target)` that ranked it.
    pub predicted: f64,
    /// Whether the score came from the memo.
    pub memo_hit: bool,
    /// Wall-clock start relative to the tune, microseconds (trace
    /// only — never part of the deterministic outcome).
    pub start_us: u64,
    /// Wall-clock scoring duration, microseconds.
    pub dur_us: u64,
}

/// Everything one [`Tuner::tune_program`] run learned.
#[derive(Debug, Clone)]
pub struct TuneReport {
    /// Program/workload name.
    pub name: String,
    /// Machine configuration name.
    pub config: String,
    /// Options signature the scores were produced under.
    pub opts: String,
    /// Cycles of the untransformed program.
    pub base_cycles: u64,
    /// Cycles of the paper-default clustering driver's output.
    pub default_cycles: u64,
    /// Cycles of the returned (best) program.
    pub tuned_cycles: u64,
    /// Which source won: `search`, `default-driver`, or `base`.
    pub winner: String,
    /// Per-nest decisions, in search order.
    pub nests: Vec<NestOutcome>,
    /// Search totals.
    pub stats: SearchStats,
    /// Per-candidate scoring slices.
    pub candidates: Vec<CandidateTrace>,
    /// Oracle mismatches (candidate changed program semantics); each
    /// entry names the nest and composition. Always empty unless a
    /// legality bug slipped through — the difftest sweep gates on this.
    pub oracle_failures: Vec<String>,
}

impl TuneReport {
    /// `default_cycles / tuned_cycles` — the honest headline: >1 means
    /// the search beat the paper-default driver, 1.0 means it matched
    /// (the tuner never returns a program slower than the driver's).
    pub fn tuned_vs_default(&self) -> f64 {
        self.default_cycles as f64 / self.tuned_cycles as f64
    }

    /// `base_cycles / tuned_cycles` (>1 = faster than untransformed).
    pub fn tuned_vs_base(&self) -> f64 {
        self.base_cycles as f64 / self.tuned_cycles as f64
    }

    /// The deterministic core of the report: identical across tuner
    /// thread counts and between cold and memo-warm runs. Excludes
    /// memo hit/miss totals and wall-clock timings, which legitimately
    /// vary.
    pub fn outcome_signature(&self) -> String {
        let mut s = format!(
            "{} cfg={} opts={} base={} default={} tuned={} winner={}\n",
            self.name,
            self.config,
            self.opts,
            self.base_cycles,
            self.default_cycles,
            self.tuned_cycles,
            self.winner
        );
        for n in &self.nests {
            s.push_str(&format!(
                "nest {} chosen={} {}->{} scored={}\n",
                n.nest, n.chosen, n.before_cycles, n.after_cycles, n.scored
            ));
        }
        s.push_str(&format!(
            "nests={} full={} enum={} illegal={} pred={} scored={}\n",
            self.stats.nests,
            self.stats.space_full,
            self.stats.enumerated,
            self.stats.pruned_illegal,
            self.stats.pruned_predicted,
            self.stats.scored
        ));
        for f in &self.oracle_failures {
            s.push_str(&format!("oracle-failure {f}\n"));
        }
        s
    }

    /// Human-readable delta table (the `tune` binary's payload).
    pub fn summary(&self) -> String {
        let mut s = format!(
            "{:<14} base {:>12} | default {:>12} ({:+.1}%) | tuned {:>12} ({:+.1}%) | tuned/default x{:.3} [{}]\n",
            self.name,
            self.base_cycles,
            self.default_cycles,
            percent(self.base_cycles, self.default_cycles),
            self.tuned_cycles,
            percent(self.base_cycles, self.tuned_cycles),
            self.tuned_vs_default(),
            self.winner
        );
        for n in &self.nests {
            s.push_str(&format!(
                "  {:<20} {:<18} {:>12} -> {:>12} ({} scored)\n",
                n.nest, n.chosen, n.before_cycles, n.after_cycles, n.scored
            ));
        }
        s
    }
}

fn percent(base: u64, new: u64) -> f64 {
    if base == 0 {
        return 0.0;
    }
    (new as f64 - base as f64) / base as f64 * 100.0
}

/// A factory for fresh simulation memories at a given processor count.
/// Candidates share no mutable state — every functional check and
/// every scoring run gets its own image.
pub type MemFactory<'a> = &'a (dyn Fn(usize) -> SimMem + Sync);

/// The composition autotuner. Holds the score memo, so reusing one
/// tuner across programs (the difftest stream, the bench matrix)
/// shares scores between repeated subproblems.
#[derive(Debug, Default)]
pub struct Tuner {
    /// Search configuration.
    pub opts: TuneOptions,
    /// Shared score cache.
    pub memo: ScoreMemo,
}

struct Candidate {
    index: usize,
    comp: Composition,
    prog: Program,
    predicted: f64,
}

struct Scored {
    index: usize,
    label: String,
    digest: u64,
    cycles: u64,
    predicted: f64,
    memo_hit: bool,
    oracle_ok: bool,
    start_us: u64,
    dur_us: u64,
}

impl Tuner {
    /// A tuner with the given options and an empty memo.
    pub fn new(opts: TuneOptions) -> Self {
        Tuner {
            opts,
            memo: ScoreMemo::new(),
        }
    }

    /// Drains every processor's dynamic-op stream into one digest on a
    /// fresh memory image — the memo key's program identity.
    fn digest(&self, prog: &Program, nprocs: usize, mem_at: MemFactory) -> u64 {
        let mut mem = mem_at(nprocs);
        let mut d = TraceDigest::new();
        match self.opts.sim.engine {
            Engine::Bytecode => {
                let code = BytecodeProgram::compile(prog);
                for pid in 0..nprocs {
                    let mut vm = Vm::new(&code, pid, nprocs);
                    while let Some(op) = vm.next_op(&mut mem) {
                        d.absorb(&op);
                    }
                }
            }
            Engine::Interp => {
                for pid in 0..nprocs {
                    let mut it = Interp::new(prog, pid, nprocs);
                    while let Some(op) = it.next_op(&mut mem) {
                        d.absorb(&op);
                    }
                }
            }
        }
        d.hash()
    }

    /// Functional-equivalence oracle: the candidate must leave the same
    /// memory image as the baseline, sequentially and (for
    /// multiprocessor configs) under the parallel functional
    /// interleaving.
    fn oracle_fingerprints(&self, prog: &Program, nprocs: usize, mem_at: MemFactory) -> (u64, u64) {
        let mut seq_mem = mem_at(1);
        run_single_with(prog, &mut seq_mem, self.opts.sim.engine);
        let seq = seq_mem.fingerprint();
        let par = if nprocs > 1 {
            let mut par_mem = mem_at(nprocs);
            run_parallel_functional_with(prog, &mut par_mem, nprocs, self.opts.sim.engine);
            par_mem.fingerprint()
        } else {
            seq
        };
        (seq, par)
    }

    /// Scores `prog` in simulated cycles, through the memo.
    fn score(&self, prog: &Program, cfg: &MachineConfig, mem_at: MemFactory) -> (u64, u64, bool) {
        let digest = self.digest(prog, cfg.nprocs, mem_at);
        let key = MemoKey {
            digest,
            opts: opts_signature(self.opts.sim),
            config: config_fingerprint(cfg),
        };
        let (cycles, hit) = self.memo.get_or_insert(&key, || {
            let mut mem = mem_at(cfg.nprocs);
            run_program_with(prog, &mut mem, cfg, self.opts.sim).cycles
        });
        (cycles, digest, hit)
    }

    /// Tunes `prog` on `cfg`: returns the fastest semantics-preserving
    /// variant found (never slower than the untransformed program or
    /// the paper-default driver's output) and the search report.
    ///
    /// `mem_at` must build a *fresh* initialized memory for any
    /// processor count — candidates are scored and oracle-checked on
    /// independent images.
    pub fn tune_program(
        &self,
        name: &str,
        prog: &Program,
        cfg: &MachineConfig,
        profile: &MissProfile,
        mem_at: MemFactory,
    ) -> (Program, TuneReport) {
        let epoch = Instant::now();
        let m = machine_summary(cfg);
        let nprocs = cfg.nprocs;
        let pool = rayon::ThreadPoolBuilder::new()
            .num_threads(self.opts.threads)
            .build()
            .expect("thread pool construction cannot fail");

        let mut stats = SearchStats::default();
        let mut candidates_trace = Vec::new();
        let mut oracle_failures = Vec::new();

        let (ref_seq, ref_par) = self.oracle_fingerprints(prog, nprocs, mem_at);
        let (base_cycles, _, _) = self.score(prog, cfg, mem_at);

        // Incumbent: the best program so far, improved nest by nest.
        let mut best = prog.clone();
        let mut best_cycles = base_cycles;

        // Reverse program order, like the clustering driver: transforms
        // insert statements at or after their own position only, so
        // paths of not-yet-visited (earlier) nests stay valid. A parent
        // consumed by a structural transform retires its other inner
        // nests.
        let mut nest_paths = innermost_loops(prog);
        nest_paths.reverse();
        let mut consumed_parents: Vec<NestPath> = Vec::new();
        let mut outcomes = Vec::new();

        for path in &nest_paths {
            if let Some(parent) = path.parent() {
                if consumed_parents.contains(&parent) {
                    continue;
                }
            }
            stats.nests += 1;
            let nest_label = nest_label(&best, path);

            let space = build_space(&best, path, &self.opts.space);
            stats.space_full += space.stats.full;
            stats.enumerated += space.stats.enumerated;

            // Build + predict every enumerated composition (cheap: IR
            // clone + static analysis, no simulation).
            let mut cands: Vec<Candidate> = Vec::new();
            for (index, comp) in space.enumerate().into_iter().enumerate() {
                if comp.is_identity() {
                    continue; // the incumbent is the identity's score
                }
                let mut cand = best.clone();
                match apply_composition(&mut cand, path, &comp, m.line_bytes) {
                    Ok(inner) => {
                        let predicted = match loop_at(&cand, &inner) {
                            Some(l) => {
                                let an = analyze_inner_loop(&cand, &l.body, l.var, &m, profile);
                                an.f.min(an.target_f(&m))
                            }
                            None => 0.0,
                        };
                        cands.push(Candidate {
                            index,
                            comp,
                            prog: cand,
                            predicted,
                        });
                    }
                    Err(_) => stats.pruned_illegal += 1,
                }
            }

            // Prediction pruning: keep the top-K by predicted clustered
            // misses per window; stable sort keeps enumeration order on
            // ties, so the cut is deterministic.
            cands.sort_by(|a, b| {
                b.predicted
                    .partial_cmp(&a.predicted)
                    .unwrap_or(std::cmp::Ordering::Equal)
            });
            if cands.len() > self.opts.max_scored_per_nest {
                stats.pruned_predicted += (cands.len() - self.opts.max_scored_per_nest) as u64;
                cands.truncate(self.opts.max_scored_per_nest);
            }
            stats.scored += cands.len() as u64;

            // Fan the oracle + scoring out across the pool. Results
            // come back in candidate order regardless of thread count.
            let scored: Vec<Scored> = pool
                .run_indexed(cands.len(), |i| {
                    let c = &cands[i];
                    let t0 = epoch.elapsed().as_micros() as u64;
                    let (seq, par) = self.oracle_fingerprints(&c.prog, nprocs, mem_at);
                    let oracle_ok = seq == ref_seq && par == ref_par;
                    let (cycles, digest, memo_hit) = if oracle_ok {
                        self.score(&c.prog, cfg, mem_at)
                    } else {
                        (u64::MAX, 0, false)
                    };
                    Scored {
                        index: c.index,
                        label: c.comp.label(),
                        digest,
                        cycles,
                        predicted: c.predicted,
                        memo_hit,
                        oracle_ok,
                        start_us: t0,
                        dur_us: epoch.elapsed().as_micros() as u64 - t0,
                    }
                })
                .into_iter()
                .collect();

            for s in &scored {
                if !s.oracle_ok {
                    oracle_failures.push(format!("{nest_label} {}", s.label));
                    continue;
                }
                candidates_trace.push(CandidateTrace {
                    nest: nest_label.clone(),
                    label: s.label.clone(),
                    digest: s.digest,
                    cycles: s.cycles,
                    predicted: s.predicted,
                    memo_hit: s.memo_hit,
                    start_us: s.start_us,
                    dur_us: s.dur_us,
                });
            }

            // Winner: strictly better than the incumbent; ties broken
            // by enumeration index (deterministic).
            let winner = scored
                .iter()
                .filter(|s| s.oracle_ok)
                .min_by_key(|s| (s.cycles, s.index));
            let before = best_cycles;
            let mut chosen = "keep".to_string();
            if let Some(w) = winner {
                if w.cycles < best_cycles {
                    let c = cands
                        .iter()
                        .find(|c| c.index == w.index)
                        .expect("winner comes from cands");
                    let structural = c.comp.interchange || c.comp.strip > 0 || c.comp.uaj > 1;
                    if structural {
                        if let Some(parent) = path.parent() {
                            consumed_parents.push(parent);
                        }
                    }
                    best = c.prog.clone();
                    best_cycles = w.cycles;
                    chosen = c.comp.label();
                }
            }
            outcomes.push(NestOutcome {
                nest: nest_label,
                chosen,
                before_cycles: before,
                after_cycles: best_cycles,
                scored: scored.len(),
            });
        }

        // The paper-default driver is the floor: score its output and
        // keep whichever is faster. Honest accounting requires the
        // driver's output to pass the same oracle.
        let mut default_prog = prog.clone();
        cluster_program(&mut default_prog, &m, profile);
        let (def_seq, def_par) = self.oracle_fingerprints(&default_prog, nprocs, mem_at);
        let default_cycles = if def_seq == ref_seq && def_par == ref_par {
            let (c, _, _) = self.score(&default_prog, cfg, mem_at);
            c
        } else {
            // Should be impossible (it would be a driver legality bug);
            // record it and treat the driver as a no-op.
            oracle_failures.push("default-driver output diverged".to_string());
            base_cycles
        };

        let (tuned, tuned_cycles, winner) = if default_cycles < best_cycles {
            (default_prog, default_cycles, "default-driver")
        } else if best_cycles < base_cycles {
            (best, best_cycles, "search")
        } else {
            (prog.clone(), base_cycles, "base")
        };

        stats.memo_hits = self.memo.hits();
        stats.memo_misses = self.memo.misses();

        let report = TuneReport {
            name: name.to_string(),
            config: cfg.name.clone(),
            opts: opts_signature(self.opts.sim),
            base_cycles,
            default_cycles,
            tuned_cycles,
            winner: winner.to_string(),
            nests: outcomes,
            stats,
            candidates: candidates_trace,
            oracle_failures,
        };
        (tuned, report)
    }
}

fn nest_label(prog: &Program, path: &NestPath) -> String {
    let var = loop_at(prog, path)
        .map(|l| prog.var_name(l.var).to_string())
        .unwrap_or_else(|| "?".to_string());
    let idx: Vec<String> = path.0.iter().map(|i| i.to_string()).collect();
    format!("[{}]{}", idx.join("."), var)
}
