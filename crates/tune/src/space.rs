//! The per-nest composition space: which transform combinations are
//! worth scoring, phrased as constraint propagation over the legality
//! checks (node consistency first, pair exclusions at enumeration).
//!
//! Each innermost nest gets five decision variables:
//!
//! * `interchange` — swap the enclosing 2-nest (Section 3.4);
//! * `strip` — strip-mine the *outer* loop and interchange the
//!   strip-walking loop inward (the Figure 2(c) combination);
//! * `uaj` — unroll-and-jam degree on the parent (Section 3.2);
//! * `unroll` — inner unrolling degree (Section 3.3);
//! * `sched` — miss-packing schedule of the final inner body.
//!
//! Rather than enumerating the full cross product and letting most of
//! it die in `apply`, the domains are first pruned by cheap unary
//! legality probes on a scratch clone (a degree that cannot jam is
//! deleted from `uaj`'s domain, a nest with no parent loses
//! `interchange`, …), then the reduced product is enumerated under the
//! binary exclusions below. Composed legality is still re-checked by
//! [`apply_composition`] — propagation only shrinks the space, it never
//! admits an illegal program (candidates are additionally oracle-checked
//! against the interpreter before scoring).

use mempar_ir::Program;
use mempar_transform::{
    inner_unroll, interchange, interchange_postlude, loop_at, scalar_replace, schedule_for_misses,
    strip_mine, unroll_and_jam, NestPath, TransformError,
};

/// One point in a nest's composition space.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Composition {
    /// Interchange the enclosing 2-nest before anything else.
    pub interchange: bool,
    /// Strip-mine the parent by this width and interchange the strip
    /// loop inward (`0` = off). Mutually exclusive with `interchange`
    /// and `uaj`.
    pub strip: u32,
    /// Unroll-and-jam degree on the (possibly interchanged) parent
    /// (`1` = off).
    pub uaj: u32,
    /// Inner unrolling degree (`1` = off). Mutually exclusive with
    /// `uaj` — the paper applies inner unrolling where jamming is
    /// impossible or unnecessary.
    pub unroll: u32,
    /// Scalar-replace the final inner body (the driver's default
    /// cleanup after jamming).
    pub scalar_replace: bool,
    /// Miss-packing schedule of the final inner body.
    pub sched: bool,
}

impl Composition {
    /// The do-nothing composition.
    pub fn identity() -> Self {
        Composition {
            interchange: false,
            strip: 0,
            uaj: 1,
            unroll: 1,
            scalar_replace: false,
            sched: false,
        }
    }

    /// True when no transform is applied.
    pub fn is_identity(&self) -> bool {
        *self == Self::identity()
    }

    /// Compact stable label, e.g. `ix+uaj4+sr` or `id`.
    pub fn label(&self) -> String {
        if self.is_identity() {
            return "id".to_string();
        }
        let mut parts = Vec::new();
        if self.interchange {
            parts.push("ix".to_string());
        }
        if self.strip > 0 {
            parts.push(format!("strip{}", self.strip));
        }
        if self.uaj > 1 {
            parts.push(format!("uaj{}", self.uaj));
        }
        if self.unroll > 1 {
            parts.push(format!("unroll{}", self.unroll));
        }
        if self.scalar_replace {
            parts.push("sr".to_string());
        }
        if self.sched {
            parts.push("sched".to_string());
        }
        parts.join("+")
    }
}

/// Domain sizes before and after propagation, for the search report.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SpaceStats {
    /// Product of the full (unpropagated) domains.
    pub full: u64,
    /// Compositions enumerated after propagation + exclusions.
    pub enumerated: u64,
}

/// The propagated domains for one nest.
#[derive(Debug, Clone)]
pub struct NestSpace {
    /// Path to the innermost loop the space is anchored at.
    pub path: NestPath,
    /// `interchange` domain (`[false]` or `[false, true]`).
    pub interchange: Vec<bool>,
    /// `strip` domain (`0` plus surviving widths).
    pub strip: Vec<u32>,
    /// `uaj` domain (`1` plus surviving degrees).
    pub uaj: Vec<u32>,
    /// `unroll` domain (`1` plus surviving degrees).
    pub unroll: Vec<u32>,
    /// `sched` domain.
    pub sched: Vec<bool>,
    /// Domain statistics.
    pub stats: SpaceStats,
}

/// Knob menus the space is built from.
#[derive(Debug, Clone)]
pub struct SpaceOptions {
    /// Candidate unroll-and-jam degrees (besides 1).
    pub uaj_degrees: Vec<u32>,
    /// Candidate inner-unroll degrees (besides 1).
    pub unroll_degrees: Vec<u32>,
    /// Candidate strip widths (besides 0 = off).
    pub strips: Vec<u32>,
    /// Cache line size handed to the scheduler probe.
    pub line_bytes: usize,
}

impl Default for SpaceOptions {
    fn default() -> Self {
        SpaceOptions {
            uaj_degrees: vec![2, 4, 8, 16],
            unroll_degrees: vec![2, 4],
            strips: vec![4, 16],
            line_bytes: 64,
        }
    }
}

/// Builds and propagates the composition space for the innermost loop
/// at `path` in `prog`. Probes run on scratch clones; `prog` is never
/// mutated.
pub fn build_space(prog: &Program, path: &NestPath, opts: &SpaceOptions) -> NestSpace {
    let full = 2
        * (1 + opts.strips.len() as u64)
        * (1 + opts.uaj_degrees.len() as u64)
        * (1 + opts.unroll_degrees.len() as u64)
        * 2
        * 2;

    let parent = path.parent();

    // interchange: node-consistent iff the enclosing 2-nest swaps.
    let mut ix_dom = vec![false];
    if let Some(p) = &parent {
        let mut probe = prog.clone();
        if interchange(&mut probe, p).is_ok() {
            ix_dom.push(true);
        }
    }

    // strip: survives iff strip-mining the parent and interchanging the
    // strip-walking loop inward both succeed.
    let mut strip_dom = vec![0u32];
    if let Some(p) = &parent {
        for &s in &opts.strips {
            let mut probe = prog.clone();
            let ok = strip_mine(&mut probe, p, s)
                .and_then(|outer| interchange(&mut probe, &outer.child(0)))
                .is_ok();
            if ok {
                strip_dom.push(s);
            }
        }
    }

    // uaj: each degree probed individually (divisibility of distributed
    // trip counts and jam legality are both degree-dependent).
    let mut uaj_dom = vec![1u32];
    if let Some(p) = &parent {
        for &d in &opts.uaj_degrees {
            let mut probe = prog.clone();
            if unroll_and_jam(&mut probe, p, d).is_ok() {
                uaj_dom.push(d);
            }
        }
    }

    // unroll: structural legality (step-1, no sync) is degree-independent
    // — one probe decides the whole menu.
    let mut unroll_dom = vec![1u32];
    if let Some(&probe_d) = opts.unroll_degrees.first() {
        let mut probe = prog.clone();
        if inner_unroll(&mut probe, path, probe_d).is_ok() {
            unroll_dom.push(probe_d);
            unroll_dom.extend(opts.unroll_degrees.iter().skip(1).copied());
        }
    }

    // sched: only meaningful for straight-line bodies of 2+ statements
    // (schedule_for_misses returns Ok(false) otherwise — pointless to
    // enumerate).
    let mut sched_dom = vec![false];
    {
        let mut probe = prog.clone();
        if schedule_for_misses(&mut probe, path, opts.line_bytes) == Ok(true) {
            sched_dom.push(true);
        }
    }

    let mut space = NestSpace {
        path: path.clone(),
        interchange: ix_dom,
        strip: strip_dom,
        uaj: uaj_dom,
        unroll: unroll_dom,
        sched: sched_dom,
        stats: SpaceStats {
            full,
            enumerated: 0,
        },
    };
    space.stats.enumerated = space.enumerate().len() as u64;
    space
}

impl NestSpace {
    /// Enumerates the reduced product under the binary exclusions:
    /// `strip` excludes `interchange` and `uaj` (the strip combination
    /// already interchanges), and `uaj` excludes `unroll` (the paper
    /// applies one or the other). Deterministic order; the identity
    /// composition is always first.
    pub fn enumerate(&self) -> Vec<Composition> {
        let mut out = Vec::new();
        for &ix in &self.interchange {
            for &strip in &self.strip {
                if strip > 0 && ix {
                    continue;
                }
                for &uaj in &self.uaj {
                    if strip > 0 && uaj > 1 {
                        continue;
                    }
                    for &unroll in &self.unroll {
                        if uaj > 1 && unroll > 1 {
                            continue;
                        }
                        for sr in [false, true] {
                            for &sched in &self.sched {
                                out.push(Composition {
                                    interchange: ix,
                                    strip,
                                    uaj,
                                    unroll,
                                    scalar_replace: sr,
                                    sched,
                                });
                            }
                        }
                    }
                }
            }
        }
        out
    }
}

/// Applies `c` to the nest at `path`, returning the path of the final
/// innermost loop (where scalar replacement and scheduling landed).
/// Composed legality is re-checked by each constituent transform — a
/// combination whose pieces probed legal in isolation can still fail
/// here, and that is the correct outcome (the candidate is dropped).
pub fn apply_composition(
    prog: &mut Program,
    path: &NestPath,
    c: &Composition,
    line_bytes: usize,
) -> Result<NestPath, TransformError> {
    let mut inner = path.clone();

    if c.interchange {
        let parent = inner.parent().ok_or(TransformError::NotALoop)?;
        interchange(prog, &parent)?;
        // Loops swap in place; the innermost position is unchanged.
    }

    if c.strip > 1 {
        let parent = inner.parent().ok_or(TransformError::NotALoop)?;
        let outer = strip_mine(prog, &parent, c.strip)?;
        // The strip-walking copy of the parent sits directly under the
        // new strips loop; interchanging it inward leaves the original
        // innermost body under it.
        interchange(prog, &outer.child(0))?;
        inner = deepest_inner(prog, &outer).ok_or(TransformError::NotALoop)?;
    }

    if c.uaj > 1 {
        let parent = inner.parent().ok_or(TransformError::NotALoop)?;
        let r = unroll_and_jam(prog, &parent, c.uaj)?;
        if let Some(post) = &r.postlude {
            // Same cleanup as the driver: interchange the postlude when
            // possible so it clusters too (Section 2.2).
            interchange_postlude(prog, post);
        }
        inner = deepest_inner(prog, &r.main).ok_or(TransformError::NotALoop)?;
    }

    if c.unroll > 1 {
        let r = inner_unroll(prog, &inner, c.unroll)?;
        inner = r.main;
    }

    if c.scalar_replace {
        let (_, p) = scalar_replace(prog, &inner)?;
        inner = p;
    }

    if c.sched {
        schedule_for_misses(prog, &inner, line_bytes)?;
    }

    Ok(inner)
}

/// The innermost loop within the subtree rooted at `start` (largest
/// body wins, matching the driver's pick of the fused jam).
pub fn deepest_inner(prog: &Program, start: &NestPath) -> Option<NestPath> {
    let mut all = mempar_transform::innermost_loops(prog);
    all.retain(|p| p.0.starts_with(&start.0));
    if all.is_empty() {
        return loop_at(prog, start).map(|_| start.clone());
    }
    all.into_iter()
        .max_by_key(|p| loop_at(prog, p).map(|l| l.body.len()).unwrap_or(0))
}
