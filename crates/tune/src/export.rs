//! Search-trace export: `tune.*` counters into the obs metrics
//! registry, and per-candidate Chrome/Perfetto slices.

use mempar_obs::{escape_json, MetricsRegistry};

use crate::tuner::TuneReport;

/// Registers the report's search totals as `tune.*` metrics
/// (counters for the deterministic totals, gauges for the ratios).
/// Composes with the simulator's own registry content, so one snapshot
/// carries both.
pub fn export_metrics(report: &TuneReport, reg: &mut MetricsRegistry) {
    let s = &report.stats;
    reg.counter("tune.nests", s.nests);
    reg.counter("tune.space.full", s.space_full);
    reg.counter("tune.space.enumerated", s.enumerated);
    reg.counter("tune.pruned.illegal", s.pruned_illegal);
    reg.counter("tune.pruned.predicted", s.pruned_predicted);
    reg.counter("tune.scored", s.scored);
    reg.counter("tune.memo.hits", s.memo_hits);
    reg.counter("tune.memo.misses", s.memo_misses);
    reg.counter("tune.oracle.failures", report.oracle_failures.len() as u64);
    reg.counter("tune.cycles.base", report.base_cycles);
    reg.counter("tune.cycles.default", report.default_cycles);
    reg.counter("tune.cycles.tuned", report.tuned_cycles);
    reg.gauge("tune.speedup.vs_default", report.tuned_vs_default());
    reg.gauge("tune.speedup.vs_base", report.tuned_vs_base());
}

/// Renders the reports' candidate scoring slices as a Chrome trace
/// (`chrome://tracing` / Perfetto "X" complete events). One process
/// per report, one thread row per nest; each slice is one scored
/// candidate, with cycles/digest/memo provenance in `args`.
pub fn tune_trace_json(reports: &[&TuneReport]) -> String {
    let mut out = String::from("{\"traceEvents\":[");
    let mut first = true;
    for (pid, r) in reports.iter().enumerate() {
        if !first {
            out.push(',');
        }
        first = false;
        out.push_str(&format!(
            "{{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":{pid},\"tid\":0,\
             \"args\":{{\"name\":\"tune {}\"}}}}",
            escape_json(&r.name)
        ));
        // Stable thread ids per nest label, in first-seen order.
        let mut nests: Vec<&str> = Vec::new();
        for c in &r.candidates {
            if !nests.iter().any(|n| *n == c.nest) {
                nests.push(&c.nest);
            }
        }
        for (tid, nest) in nests.iter().enumerate() {
            out.push_str(&format!(
                ",{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":{pid},\"tid\":{tid},\
                 \"args\":{{\"name\":\"{}\"}}}}",
                escape_json(nest)
            ));
        }
        for c in &r.candidates {
            let tid = nests.iter().position(|n| *n == c.nest).unwrap_or(0);
            out.push_str(&format!(
                ",{{\"name\":\"{}\",\"cat\":\"tune\",\"ph\":\"X\",\"pid\":{pid},\
                 \"tid\":{tid},\"ts\":{},\"dur\":{},\"args\":{{\"cycles\":{},\
                 \"predicted_f\":{:.3},\"digest\":\"{:#018x}\",\"memo_hit\":{}}}}}",
                escape_json(&c.label),
                c.start_us,
                c.dur_us.max(1),
                c.cycles,
                c.predicted,
                c.digest,
                c.memo_hit
            ));
        }
    }
    out.push_str("]}");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tuner::{CandidateTrace, SearchStats, TuneReport};
    use mempar_obs::validate_json;

    fn report() -> TuneReport {
        TuneReport {
            name: "t".into(),
            config: "c".into(),
            opts: "event/bytecode/directory".into(),
            base_cycles: 100,
            default_cycles: 90,
            tuned_cycles: 80,
            winner: "search".into(),
            nests: vec![],
            stats: SearchStats {
                nests: 1,
                scored: 2,
                ..SearchStats::default()
            },
            candidates: vec![CandidateTrace {
                nest: "[0]j".into(),
                label: "uaj4+sr".into(),
                digest: 0xdead,
                cycles: 80,
                predicted: 4.0,
                memo_hit: false,
                start_us: 10,
                dur_us: 25,
            }],
            oracle_failures: vec![],
        }
    }

    #[test]
    fn metrics_land_under_tune_prefix() {
        let mut reg = MetricsRegistry::new();
        export_metrics(&report(), &mut reg);
        assert_eq!(reg.counter_value("tune.scored"), Some(2));
        assert_eq!(reg.counter_value("tune.cycles.tuned"), Some(80));
        assert!(validate_json(&reg.to_json()).is_ok());
    }

    #[test]
    fn trace_is_valid_chrome_json() {
        let r = report();
        let json = tune_trace_json(&[&r]);
        validate_json(&json).expect("well-formed trace");
        assert!(json.contains("\"ph\":\"X\""));
        assert!(json.contains("uaj4+sr"));
        assert!(json.contains("memo_hit"));
    }
}
