//! Synchronization state shared by the simulated processors: barriers and
//! release/acquire flags (the paper's LU uses flags instead of barriers
//! for pipelined producer/consumer synchronization).

use std::collections::HashMap;

/// Cycles between the last arrival at a barrier and its release.
const BARRIER_RELEASE_COST: u64 = 16;

#[derive(Debug, Clone, Copy, Default)]
struct BarrierState {
    arrived: u64,
    release_at: Option<u64>,
}

/// Barrier and flag state.
#[derive(Debug, Clone)]
pub struct SyncState {
    nprocs: usize,
    barriers: HashMap<u32, BarrierState>,
    flags: HashMap<u32, u64>,
    /// Bumped on every event that can wake another processor earlier than
    /// its locally computed next-event time: a barrier-release being
    /// scheduled, or a flag being set. The event-driven stepper watches
    /// this to know when sleeping cores need their wake times recomputed.
    version: u64,
    /// Append-only log of flags in set order. A flag set at cycle `t` is
    /// visible to higher-numbered processors retiring at `t` in the same
    /// phase, so the event stepper consults the log's tail to pull
    /// flag-waiters into the current round.
    flag_log: Vec<u32>,
}

impl SyncState {
    /// State for `nprocs` processors.
    pub fn new(nprocs: usize) -> Self {
        assert!((1..=64).contains(&nprocs), "1..=64 processors supported");
        SyncState {
            nprocs,
            barriers: HashMap::new(),
            flags: HashMap::new(),
            version: 0,
            flag_log: Vec::new(),
        }
    }

    /// Marks `proc` as arrived at barrier `id` (idempotent). When the last
    /// processor arrives the barrier is scheduled for release.
    pub fn arrive_barrier(&mut self, proc: usize, id: u32, now: u64) {
        let nprocs = self.nprocs;
        let b = self.barriers.entry(id).or_default();
        b.arrived |= 1 << proc;
        if b.release_at.is_none() && b.arrived.count_ones() as usize == nprocs {
            b.release_at = Some(now + BARRIER_RELEASE_COST);
            self.version += 1;
        }
    }

    /// Monotone counter of wake-capable sync events (barrier releases
    /// scheduled, flags set). See the field documentation.
    pub fn version(&self) -> u64 {
        self.version
    }

    /// The set-order flag log (append-only; grows by one per first set of
    /// a flag).
    pub fn flag_log(&self) -> &[u32] {
        &self.flag_log
    }

    /// True when barrier `id` has been released by cycle `now`.
    pub fn barrier_released(&self, id: u32, now: u64) -> bool {
        self.barriers
            .get(&id)
            .and_then(|b| b.release_at)
            .is_some_and(|t| t <= now)
    }

    /// The cycle barrier `id` releases (None until the last processor has
    /// arrived). Used by the cycle-skipping scheduler to find the next
    /// cycle at which a waiting core can make progress.
    pub fn barrier_release_time(&self, id: u32) -> Option<u64> {
        self.barriers.get(&id).and_then(|b| b.release_at)
    }

    /// The cycle `flag` was set (None while unset).
    pub fn flag_time(&self, flag: u32) -> Option<u64> {
        self.flags.get(&flag).copied()
    }

    /// Sets `flag` at cycle `now` (release side; earlier sets win).
    pub fn set_flag(&mut self, flag: u32, now: u64) {
        if let std::collections::hash_map::Entry::Vacant(e) = self.flags.entry(flag) {
            e.insert(now);
            self.version += 1;
            self.flag_log.push(flag);
        }
    }

    /// True when `flag` has been set by cycle `now`.
    pub fn flag_set(&self, flag: u32, now: u64) -> bool {
        self.flags.get(&flag).is_some_and(|&t| t <= now)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn barrier_waits_for_all() {
        let mut s = SyncState::new(3);
        s.arrive_barrier(0, 0, 10);
        s.arrive_barrier(1, 0, 20);
        assert!(!s.barrier_released(0, 1000));
        s.arrive_barrier(2, 0, 30);
        assert!(!s.barrier_released(0, 30));
        assert!(s.barrier_released(0, 30 + BARRIER_RELEASE_COST));
    }

    #[test]
    fn barrier_arrival_idempotent() {
        let mut s = SyncState::new(2);
        s.arrive_barrier(0, 5, 1);
        s.arrive_barrier(0, 5, 2);
        assert!(!s.barrier_released(5, 1000));
        s.arrive_barrier(1, 5, 3);
        assert!(s.barrier_released(5, 3 + BARRIER_RELEASE_COST));
    }

    #[test]
    fn distinct_barriers_independent() {
        let mut s = SyncState::new(1);
        s.arrive_barrier(0, 0, 5);
        assert!(s.barrier_released(0, 5 + BARRIER_RELEASE_COST));
        assert!(!s.barrier_released(1, 1_000_000));
    }

    #[test]
    fn flags_set_once() {
        let mut s = SyncState::new(2);
        assert!(!s.flag_set(7, 100));
        s.set_flag(7, 50);
        s.set_flag(7, 80); // later set does not move the time
        assert!(!s.flag_set(7, 49));
        assert!(s.flag_set(7, 50));
    }
}
