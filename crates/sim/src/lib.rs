//! Execution-driven simulator for the `mempar` reproduction of Pai & Adve,
//! *Code Transformations to Improve Memory Parallelism* (MICRO-32, 1999).
//!
//! This crate is the substrate the paper evaluates on (RSIM in the
//! original): an ILP multiprocessor with
//!
//! * out-of-order cores — instruction window with in-order retirement,
//!   multi-issue, non-blocking loads, write buffering under release
//!   consistency, bounded unresolved branches ([`Core`]);
//! * a two-level (or single-level) cache hierarchy with finite MSHRs and
//!   same-line coalescing — the resource that bounds read-miss
//!   clustering ([`MemSystem`]);
//! * split-transaction buses, permutation/skew-interleaved memory banks,
//!   a 2-D mesh and full-map directory coherence for CC-NUMA
//!   configurations, or a shared-bus SMP mode for the Exemplar-like
//!   machine.
//!
//! The entry point is [`run_program`], which executes a
//! [`Program`](mempar_ir::Program) on a configured machine and returns a
//! [`SimResult`] with the paper's measurements: execution-time breakdowns
//! (Figure 3), MSHR occupancy histograms (Figure 4), miss counters and
//! latency statistics (Section 5.1).
//!
//! # Example
//!
//! ```
//! use mempar_ir::{ProgramBuilder, SimMem, ArrayData};
//! use mempar_sim::{run_program, MachineConfig};
//!
//! let mut b = ProgramBuilder::new("sweep");
//! let a = b.array_f64("a", &[1024]);
//! let s = b.scalar_f64("sum", 0.0);
//! let i = b.var("i");
//! b.for_const(i, 0, 1024, |b| {
//!     let v = b.load(a, &[b.idx(i)]);
//!     let acc = b.scalar(s);
//!     let sum = b.add(acc, v);
//!     b.assign_scalar(s, sum);
//! });
//! let prog = b.finish();
//! let cfg = MachineConfig::base_simulated(1, 64 * 1024);
//! let mut mem = SimMem::new(&prog, 1);
//! mem.set_array(a, ArrayData::f64_fill(1024, 1.0));
//! let result = run_program(&prog, &mut mem, &cfg);
//! assert!(result.cycles > 0);
//! assert_eq!(result.counters.l2_read_misses, 128); // 1024 f64 / 8 per line
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod cache;
mod config;
mod core;
mod directory;
mod interconnect;
mod linetable;
mod memsys;
mod protocol;
mod resource;
mod sched;
mod sync;
mod system;

pub use crate::core::Core;
pub use cache::{LineState, MshrEntry, MshrFile, MshrOutcome, TagArray, Victim};
pub use config::{
    BusParams, CacheParams, FuParams, Interleave, MachineConfig, MemParams, NetParams, ProcParams,
    Topology,
};
pub use directory::{Directory, WriteGrant};
pub use interconnect::{bank_of, Bus, MemoryBanks, Mesh};
pub use memsys::{Access, MemSystem};
pub use protocol::{
    CohTxn, CoherenceProtocol, DataSource, Dragon, Mesi, Moesi, Protocol, ReadOutcome, WriteOutcome,
};
pub use resource::{Resource, ResourcePool};
pub use sync::SyncState;
pub use system::{
    run_program, run_program_observed, run_program_observed_reuse, run_program_with,
    SimObservation, SimOptions, SimResult, Stepper,
};

// Observability types a traced run hands back (re-exported so harnesses
// need not depend on `mempar-obs` directly for the common path).
pub use mempar_ir::Engine;
pub use mempar_obs::{
    MetricsRegistry, ReuseConfig, ReuseLevel, ReuseProfiler, ReuseReport, ReuseSample, TraceEvent,
    TraceEventKind, Tracer,
};
