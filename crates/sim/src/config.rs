//! Machine configuration (Table 1 of the paper, plus variants).

/// Parameters of one cache level.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CacheParams {
    /// Total size in bytes.
    pub size_bytes: usize,
    /// Associativity (1 = direct mapped).
    pub assoc: usize,
    /// Line size in bytes.
    pub line_bytes: usize,
    /// Hit latency in processor cycles.
    pub hit_latency: u32,
    /// Number of access ports (accepted accesses per cycle).
    pub ports: u32,
    /// Miss status holding registers (simultaneous outstanding misses).
    pub mshrs: usize,
}

impl CacheParams {
    /// Number of sets.
    pub fn sets(&self) -> usize {
        self.size_bytes / (self.line_bytes * self.assoc)
    }
}

/// Functional-unit counts and latencies.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FuParams {
    /// Integer ALUs.
    pub alus: u32,
    /// Floating-point units.
    pub fpus: u32,
    /// Address-generation units.
    pub addr_units: u32,
    /// Plain ALU / address-generation latency.
    pub int_latency: u32,
    /// Integer multiply/divide latency.
    pub int_mul_latency: u32,
    /// Common FP latency (add/mul).
    pub fp_latency: u32,
    /// FP divide latency.
    pub fp_div_latency: u32,
    /// FP square-root latency.
    pub fp_sqrt_latency: u32,
}

/// Processor core parameters.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProcParams {
    /// Clock in MHz (only used to convert cycles to nanoseconds).
    pub clock_mhz: u32,
    /// Fetch/decode/retire width.
    pub width: u32,
    /// Instruction window (reorder buffer) entries.
    pub window: usize,
    /// Memory queue entries (in-flight memory operations).
    pub mem_queue: usize,
    /// Maximum unresolved branches in the window.
    pub max_branches: usize,
    /// Functional units.
    pub fu: FuParams,
}

/// Memory-bank interleaving scheme.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Interleave {
    /// Sequential: bank = line mod banks.
    Sequential,
    /// Permutation-based (Sohi): XOR-fold of the line address, supporting
    /// a wide variety of strides (the simulated system of the paper).
    Permutation,
    /// Skewed (Harper & Jump): bank = (line + line/banks) mod banks
    /// (the Convex Exemplar's memory).
    Skewed,
}

/// DRAM / memory-bank parameters (per node).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MemParams {
    /// Banks per node.
    pub banks: usize,
    /// Bank occupancy per access in processor cycles.
    pub bank_cycles: u32,
    /// Interleaving scheme across banks.
    pub interleave: Interleave,
}

/// Split-transaction bus parameters.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BusParams {
    /// Processor cycles per bus cycle (e.g. 3 for a 167 MHz bus under a
    /// 500 MHz core).
    pub cycle_ratio: u32,
    /// Bus width in bytes (per bus cycle).
    pub width_bytes: u32,
    /// Bus cycles for the address/request phase.
    pub addr_cycles: u32,
}

impl BusParams {
    /// Processor cycles to transfer `bytes` of data.
    pub fn data_cycles(&self, bytes: u32) -> u32 {
        bytes.div_ceil(self.width_bytes) * self.cycle_ratio
    }

    /// Processor cycles for the request phase.
    pub fn request_cycles(&self) -> u32 {
        self.addr_cycles * self.cycle_ratio
    }
}

/// 2-D mesh network parameters (CC-NUMA configurations).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NetParams {
    /// Processor cycles per network cycle (e.g. 2 for 250 MHz vs 500 MHz).
    pub cycle_ratio: u32,
    /// Link width in bytes per network cycle.
    pub flit_bytes: u32,
    /// Network cycles of latency per hop.
    pub hop_cycles: u32,
    /// Network-interface latency (processor cycles) on entry and exit.
    pub ni_cycles: u32,
}

/// System topology.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Topology {
    /// CC-NUMA: one memory + directory per node, 2-D mesh between nodes.
    Numa,
    /// Bus-based SMP: one shared memory behind one shared bus
    /// (the Exemplar hypernode).
    SmpBus,
}

/// Full machine configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct MachineConfig {
    /// Human-readable name for reports.
    pub name: String,
    /// Number of processors.
    pub nprocs: usize,
    /// Core parameters.
    pub proc: ProcParams,
    /// First-level data cache; `None` models single-level hierarchies
    /// (the PA-8000's one-level data cache).
    pub l1: Option<CacheParams>,
    /// Lowest-level (external-miss) cache. MSHR occupancy statistics are
    /// collected here, as in Figure 4.
    pub l2: CacheParams,
    /// Memory banks per node.
    pub mem: MemParams,
    /// Bus between L2 and memory.
    pub bus: BusParams,
    /// Mesh network (ignored for [`Topology::SmpBus`]).
    pub net: NetParams,
    /// NUMA or SMP organization.
    pub topology: Topology,
    /// Extra directory-access latency at the home node (cycles).
    pub dir_cycles: u32,
}

impl MachineConfig {
    /// The base simulated configuration of Table 1 (500 MHz, 4-wide,
    /// 64-entry window, 10 MSHRs at both cache levels, 64-byte lines).
    ///
    /// `l2_bytes` is per-application in the paper (64 KB for Erlebacher,
    /// FFT, LU and Mp3d; 1 MB for Em3d, MST and Ocean).
    pub fn base_simulated(nprocs: usize, l2_bytes: usize) -> Self {
        MachineConfig {
            name: format!("base-sim-{nprocs}p"),
            nprocs,
            proc: ProcParams {
                clock_mhz: 500,
                width: 4,
                window: 64,
                mem_queue: 32,
                max_branches: 16,
                fu: FuParams {
                    alus: 2,
                    fpus: 2,
                    addr_units: 2,
                    int_latency: 1,
                    int_mul_latency: 7,
                    fp_latency: 3,
                    fp_div_latency: 16,
                    fp_sqrt_latency: 33,
                },
            },
            l1: Some(CacheParams {
                size_bytes: 16 * 1024,
                assoc: 1,
                line_bytes: 64,
                hit_latency: 1,
                ports: 2,
                mshrs: 10,
            }),
            l2: CacheParams {
                size_bytes: l2_bytes,
                assoc: 4,
                line_bytes: 64,
                hit_latency: 10,
                ports: 1,
                mshrs: 10,
            },
            mem: MemParams {
                banks: 4,
                bank_cycles: 30,
                interleave: Interleave::Permutation,
            },
            bus: BusParams {
                cycle_ratio: 3,  // 167 MHz under 500 MHz
                width_bytes: 32, // 256 bits
                addr_cycles: 1,
            },
            net: NetParams {
                cycle_ratio: 2, // 250 MHz under 500 MHz
                flit_bytes: 8,  // 64 bits
                hop_cycles: 2,
                ni_cycles: 8,
            },
            topology: Topology::Numa,
            dir_cycles: 24,
        }
    }

    /// The 1 GHz variant of Section 5.2: the processor clock doubles while
    /// every memory/interconnect parameter stays identical in *nanoseconds*
    /// (so their values in processor cycles double).
    pub fn fast_1ghz(nprocs: usize, l2_bytes: usize) -> Self {
        let mut c = Self::base_simulated(nprocs, l2_bytes);
        c.name = format!("1ghz-sim-{nprocs}p");
        c.proc.clock_mhz = 1000;
        // Caches are on-chip: same cycle latencies. External components
        // keep their real-time latencies, doubling in processor cycles.
        c.mem.bank_cycles *= 2;
        c.bus.cycle_ratio *= 2;
        c.net.cycle_ratio *= 2;
        c.net.ni_cycles *= 2;
        c.dir_cycles *= 2;
        c
    }

    /// An Exemplar-like SMP node: 180 MHz PA-8000-style cores (4-wide,
    /// 56-entry window), single-level 1 MB direct-mapped data cache with
    /// 32-byte lines and 10 outstanding misses, skewed-interleaved shared
    /// memory behind a shared bus.
    pub fn exemplar(nprocs: usize) -> Self {
        MachineConfig {
            name: format!("exemplar-{nprocs}p"),
            nprocs,
            proc: ProcParams {
                clock_mhz: 180,
                width: 4,
                window: 56,
                mem_queue: 28,
                max_branches: 16,
                fu: FuParams {
                    alus: 2,
                    fpus: 2,
                    addr_units: 2,
                    int_latency: 1,
                    int_mul_latency: 7,
                    fp_latency: 3,
                    fp_div_latency: 17,
                    fp_sqrt_latency: 17,
                },
            },
            l1: None,
            l2: CacheParams {
                size_bytes: 1024 * 1024,
                assoc: 1,
                line_bytes: 32,
                hit_latency: 2,
                ports: 2,
                mshrs: 10,
            },
            mem: MemParams {
                banks: 8,
                bank_cycles: 50,
                interleave: Interleave::Skewed,
            },
            bus: BusParams {
                cycle_ratio: 2,
                width_bytes: 32,
                addr_cycles: 1,
            },
            net: NetParams {
                cycle_ratio: 2,
                flit_bytes: 8,
                hop_cycles: 2,
                ni_cycles: 8,
            },
            topology: Topology::SmpBus,
            dir_cycles: 8,
        }
    }

    /// Cycles → nanoseconds under this configuration's clock.
    pub fn cycles_to_ns(&self, cycles: f64) -> f64 {
        cycles * 1000.0 / self.proc.clock_mhz as f64
    }

    /// Mesh side length (smallest square covering `nprocs`).
    pub fn mesh_side(&self) -> usize {
        let mut s = 1;
        while s * s < self.nprocs {
            s += 1;
        }
        s
    }

    /// The line size the memory hierarchy operates on.
    pub fn line_bytes(&self) -> usize {
        self.l2.line_bytes
    }

    /// Basic consistency checks.
    ///
    /// # Panics
    /// Panics when the configuration is internally inconsistent (e.g. L1
    /// line differs from L2 line — the model keeps one line size).
    pub fn validate(&self) {
        assert!(self.nprocs >= 1);
        if let Some(l1) = &self.l1 {
            assert_eq!(
                l1.line_bytes, self.l2.line_bytes,
                "one line size across the hierarchy"
            );
            assert!(l1.sets().is_power_of_two());
        }
        assert!(self.l2.sets().is_power_of_two());
        assert!(self.l2.line_bytes.is_power_of_two());
        assert!(self.mem.banks.is_power_of_two());
        assert!(self.proc.window >= self.proc.width as usize);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn base_matches_table1() {
        let c = MachineConfig::base_simulated(16, 64 * 1024);
        c.validate();
        assert_eq!(c.proc.clock_mhz, 500);
        assert_eq!(c.proc.width, 4);
        assert_eq!(c.proc.window, 64);
        assert_eq!(c.proc.mem_queue, 32);
        let l1 = c.l1.as_ref().expect("base config has an L1");
        assert_eq!(l1.size_bytes, 16 * 1024);
        assert_eq!(l1.assoc, 1);
        assert_eq!(l1.mshrs, 10);
        assert_eq!(c.l2.assoc, 4);
        assert_eq!(c.l2.mshrs, 10);
        assert_eq!(c.l2.line_bytes, 64);
        assert_eq!(c.mem.banks, 4);
        assert_eq!(c.mem.interleave, Interleave::Permutation);
        assert_eq!(c.topology, Topology::Numa);
    }

    #[test]
    fn one_ghz_doubles_external_latencies() {
        let base = MachineConfig::base_simulated(1, 64 * 1024);
        let fast = MachineConfig::fast_1ghz(1, 64 * 1024);
        assert_eq!(fast.proc.clock_mhz, 1000);
        assert_eq!(fast.mem.bank_cycles, 2 * base.mem.bank_cycles);
        assert_eq!(fast.bus.cycle_ratio, 2 * base.bus.cycle_ratio);
        // Same real time per bank access.
        let t_base = base.cycles_to_ns(base.mem.bank_cycles as f64);
        let t_fast = fast.cycles_to_ns(fast.mem.bank_cycles as f64);
        assert!((t_base - t_fast).abs() < 1e-9);
    }

    #[test]
    fn exemplar_shape() {
        let c = MachineConfig::exemplar(8);
        c.validate();
        assert!(c.l1.is_none());
        assert_eq!(c.l2.line_bytes, 32);
        assert_eq!(c.l2.size_bytes, 1024 * 1024);
        assert_eq!(c.proc.window, 56);
        assert_eq!(c.topology, Topology::SmpBus);
        assert_eq!(c.mem.interleave, Interleave::Skewed);
    }

    #[test]
    fn bus_cycle_math() {
        let b = BusParams {
            cycle_ratio: 3,
            width_bytes: 32,
            addr_cycles: 1,
        };
        assert_eq!(b.request_cycles(), 3);
        assert_eq!(b.data_cycles(64), 6);
        assert_eq!(b.data_cycles(8), 3);
    }

    #[test]
    fn mesh_side_covers_procs() {
        for n in 1..=16 {
            let c = MachineConfig::base_simulated(n, 64 * 1024);
            let s = c.mesh_side();
            assert!(s * s >= n);
            assert!((s - 1) * (s - 1) < n);
        }
    }

    #[test]
    fn cache_sets() {
        let c = CacheParams {
            size_bytes: 16 * 1024,
            assoc: 1,
            line_bytes: 64,
            hit_latency: 1,
            ports: 2,
            mshrs: 10,
        };
        assert_eq!(c.sets(), 256);
    }
}
