//! Snooping MOESI.
//!
//! MESI plus the `Owned` (dirty-shared) state: when a dirty holder
//! answers a read snoop it supplies the line but keeps it, transitioning
//! `M → O` instead of writing home back — memory stays stale until the
//! owned line is evicted. Unlike Illinois-MESI, clean copies do *not*
//! supply: a read that finds only clean sharers is serviced by memory
//! (and demotes any clean-`Exclusive` holder to `Shared`).

use super::{push_mask_procs, CohTxn, CoherenceProtocol, DataSource, HolderMap, Protocol};
use crate::cache::LineState;

/// MOESI state machine.
#[derive(Debug, Default)]
pub struct Moesi {
    lines: HolderMap,
}

impl CoherenceProtocol for Moesi {
    fn kind(&self) -> Protocol {
        Protocol::Moesi
    }

    fn read_miss(&mut self, line: u64, proc: usize, txn: &mut CohTxn) {
        let e = self.lines.entry(line);
        let others = e.others(proc);
        if others == 0 {
            e.owner = Some(proc as u8);
            e.owner_dirty = false;
            txn.source = DataSource::Memory;
            txn.install = LineState::Exclusive;
        } else if let Some(o) = e.owner.filter(|&o| o as usize != proc && e.owner_dirty) {
            // Dirty owner supplies and keeps the line (M -> O); memory
            // is not updated.
            txn.source = DataSource::CacheToCache { owner: o as usize };
            txn.install = LineState::Shared;
        } else {
            // Only clean copies exist: memory supplies; a clean-E holder
            // loses exclusivity.
            if let Some(o) = e.owner.take() {
                if o as usize != proc {
                    txn.demote.push(o as usize);
                }
            }
            e.owner_dirty = false;
            txn.source = DataSource::Memory;
            txn.install = LineState::Shared;
        }
        e.holders |= 1u64 << proc;
    }

    fn write_miss(&mut self, line: u64, proc: usize, txn: &mut CohTxn) {
        let e = self.lines.entry(line);
        let others = e.others(proc);
        txn.source = match e.owner {
            Some(o) if o as usize != proc && e.owner_dirty => {
                DataSource::CacheToCache { owner: o as usize }
            }
            _ => DataSource::Memory,
        };
        push_mask_procs(others, &mut txn.invalidees);
        txn.install = LineState::Modified;
        e.holders = 1u64 << proc;
        e.owner = Some(proc as u8);
        e.owner_dirty = true;
    }

    fn evict(&mut self, line: u64, proc: usize) {
        self.lines.evict(line, proc);
    }

    fn silent_upgrade(&mut self, line: u64, proc: usize) {
        let e = self.lines.entry(line);
        e.holders |= 1u64 << proc;
        e.owner = Some(proc as u8);
        e.owner_dirty = true;
    }

    fn write_hits(&self, state: LineState) -> bool {
        matches!(state, LineState::Modified | LineState::Exclusive)
    }

    fn upgradeable(&self, state: LineState) -> bool {
        matches!(state, LineState::Shared | LineState::Owned)
    }

    fn line_count(&self) -> usize {
        self.lines.line_count()
    }

    fn total_sharers(&self) -> usize {
        self.lines.total_sharers()
    }

    fn table_slots(&self) -> usize {
        self.lines.table_slots()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dirty_supplier_keeps_ownership() {
        let mut p = Moesi::default();
        p.write_req(5, 0); // 0 holds M
        let r = p.read_req(5, 1);
        assert_eq!(r.source, DataSource::CacheToCache { owner: 0 });
        assert!(!r.memory_update, "MOESI sharing leaves memory stale");
        // Owner 0 still supplies for the next reader too (now from O).
        let r2 = p.read_req(5, 2);
        assert_eq!(r2.source, DataSource::CacheToCache { owner: 0 });
        assert!(!r2.memory_update);
    }

    #[test]
    fn clean_read_comes_from_memory_and_demotes_exclusive() {
        let mut p = Moesi::default();
        p.read_req(5, 0); // 0 holds E (clean)
        let r = p.read_req(5, 1);
        assert_eq!(r.source, DataSource::Memory, "no clean C2C in MOESI");
        assert_eq!(r.demote, vec![0]);
        assert_eq!(r.install, LineState::Shared);
    }

    #[test]
    fn write_over_owned_line_invalidates_sharers() {
        let mut p = Moesi::default();
        p.write_req(5, 0);
        p.read_req(5, 1); // 0: O, 1: S
        let w = p.write_req(5, 1);
        assert_eq!(w.source, DataSource::CacheToCache { owner: 0 });
        assert_eq!(w.invalidees, vec![0]);
        assert_eq!(p.total_sharers(), 1);
    }

    #[test]
    fn evicting_owner_clears_dirty_ownership() {
        let mut p = Moesi::default();
        p.write_req(5, 0);
        p.read_req(5, 1); // 0 owns dirty
        p.evict(5, 0);
        // With the owner gone, memory serves the next reader. (The
        // timing model pays the writeback on the eviction itself via
        // Victim::dirty.)
        let r = p.read_req(5, 2);
        assert_eq!(r.source, DataSource::Memory);
    }
}
