//! Snooping Illinois-MESI.
//!
//! The Illinois variant supplies data cache-to-cache even when the copy
//! is clean: on a read miss any current holder answers the snoop (the
//! dirty owner if there is one, else the lowest-numbered sharer), so
//! memory is touched only for truly uncached lines. A dirty supply
//! writes the line back to home as part of the transaction, so after any
//! read the line is clean-shared and memory is current. A read that
//! finds no other holder installs `Exclusive`; a later write hit on that
//! copy upgrades silently (`E → M`, no bus transaction). Writes
//! invalidate every other copy.

use super::{push_mask_procs, CohTxn, CoherenceProtocol, DataSource, HolderMap, Protocol};
use crate::cache::LineState;

/// Illinois-MESI state machine.
#[derive(Debug, Default)]
pub struct Mesi {
    lines: HolderMap,
}

impl CoherenceProtocol for Mesi {
    fn kind(&self) -> Protocol {
        Protocol::Mesi
    }

    fn read_miss(&mut self, line: u64, proc: usize, txn: &mut CohTxn) {
        let e = self.lines.entry(line);
        let others = e.others(proc);
        if others == 0 {
            txn.source = DataSource::Memory;
            txn.install = LineState::Exclusive;
        } else {
            // Illinois: some cache always supplies — the owner if one
            // exists, else the lowest-numbered clean sharer. A dirty
            // supply also writes home back, leaving everyone clean.
            let (supplier, was_dirty) = match e.owner {
                Some(o) if o as usize != proc => (o as usize, e.owner_dirty),
                _ => (others.trailing_zeros() as usize, false),
            };
            txn.source = DataSource::CacheToCache { owner: supplier };
            txn.memory_update = was_dirty;
            txn.install = LineState::Shared;
        }
        // After the read everyone's copy is clean and shared (or the
        // requester is the sole, exclusive holder).
        e.holders |= 1u64 << proc;
        if others == 0 {
            e.owner = Some(proc as u8);
            e.owner_dirty = false;
        } else {
            e.owner = None;
            e.owner_dirty = false;
        }
    }

    fn write_miss(&mut self, line: u64, proc: usize, txn: &mut CohTxn) {
        let e = self.lines.entry(line);
        let others = e.others(proc);
        txn.source = match e.owner {
            Some(o) if o as usize != proc && e.owner_dirty => {
                DataSource::CacheToCache { owner: o as usize }
            }
            _ if others != 0 => DataSource::CacheToCache {
                owner: others.trailing_zeros() as usize,
            },
            _ => DataSource::Memory,
        };
        push_mask_procs(others, &mut txn.invalidees);
        txn.install = LineState::Modified;
        e.holders = 1u64 << proc;
        e.owner = Some(proc as u8);
        e.owner_dirty = true;
    }

    fn evict(&mut self, line: u64, proc: usize) {
        self.lines.evict(line, proc);
    }

    fn silent_upgrade(&mut self, line: u64, proc: usize) {
        let e = self.lines.entry(line);
        e.holders |= 1u64 << proc;
        e.owner = Some(proc as u8);
        e.owner_dirty = true;
    }

    fn write_hits(&self, state: LineState) -> bool {
        matches!(state, LineState::Modified | LineState::Exclusive)
    }

    fn upgradeable(&self, state: LineState) -> bool {
        state == LineState::Shared
    }

    fn line_count(&self) -> usize {
        self.lines.line_count()
    }

    fn total_sharers(&self) -> usize {
        self.lines.total_sharers()
    }

    fn table_slots(&self) -> usize {
        self.lines.table_slots()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_read_is_exclusive_from_memory() {
        let mut p = Mesi::default();
        let r = p.read_req(5, 0);
        assert_eq!(r.source, DataSource::Memory);
        assert_eq!(r.install, LineState::Exclusive);
        assert!(!r.memory_update);
    }

    #[test]
    fn second_read_supplied_clean_cache_to_cache() {
        let mut p = Mesi::default();
        p.read_req(5, 0);
        let r = p.read_req(5, 1);
        assert_eq!(r.source, DataSource::CacheToCache { owner: 0 });
        assert!(!r.memory_update, "clean supply must not touch memory");
        assert_eq!(r.install, LineState::Shared);
    }

    #[test]
    fn dirty_supply_updates_memory() {
        let mut p = Mesi::default();
        p.write_req(5, 0);
        let r = p.read_req(5, 1);
        assert_eq!(r.source, DataSource::CacheToCache { owner: 0 });
        assert!(r.memory_update, "dirty supply writes home back");
        // Now clean-shared: a third read is a clean supply.
        let r2 = p.read_req(5, 2);
        assert!(!r2.memory_update);
    }

    #[test]
    fn write_invalidates_all_other_holders() {
        let mut p = Mesi::default();
        p.read_req(5, 0);
        p.read_req(5, 1);
        p.read_req(5, 2);
        let w = p.write_req(5, 1);
        assert_eq!(w.invalidees, vec![0, 2]);
        assert!(w.updatees.is_empty());
        assert_eq!(w.install, LineState::Modified);
        assert_eq!(p.total_sharers(), 1);
    }

    #[test]
    fn silent_upgrade_marks_dirty() {
        let mut p = Mesi::default();
        p.read_req(5, 0); // E
        p.silent_upgrade(5, 0); // E -> M, no transaction
        let r = p.read_req(5, 1);
        assert!(r.memory_update, "silently-dirtied copy supplies dirty");
    }
}
