//! Pluggable cache-coherence protocols.
//!
//! The memory system ([`MemSystem`](crate::memsys::MemSystem)) owns the
//! *timing* of a miss — buses, directory/snoop latency, banks, mesh legs,
//! MSHRs — while a [`CoherenceProtocol`] is the *state machine* deciding
//! what each transaction does: where the data comes from, which remote
//! copies are invalidated or updated, and which [`LineState`] the
//! requester installs. Swapping the protocol never changes functional
//! results or the dynamic-op stream (functional execution happens at
//! fetch, against [`SimMem`](mempar_ir::SimMem)); it only moves cycles.
//! The cross-protocol conformance suite (`tests/protocol_cube.rs`)
//! asserts exactly that.
//!
//! Four protocols are provided:
//!
//! * **Directory** — the paper's CC-NUMA full-map directory (MSI states),
//!   the default and the machine every committed golden snapshot uses;
//! * **MESI** — Illinois-style snooping: clean cache-to-cache supply, an
//!   `Exclusive` state with silent `E → M` write hits, dirty supply
//!   writes memory back and downgrades the owner;
//! * **MOESI** — adds `Owned`: a dirty supplier keeps the line (`M → O`)
//!   and memory is *not* updated until the owned line is evicted; clean
//!   copies come from memory;
//! * **Dragon** — write-update: writes to shared lines broadcast the
//!   written word to every holder instead of invalidating, the writer
//!   holds the line `Sm` ([`LineState::Owned`]) and keeps supplying it.

mod dragon;
mod mesi;
mod moesi;

pub use dragon::Dragon;
pub use mesi::Mesi;
pub use moesi::Moesi;

use crate::cache::LineState;
use crate::directory::Directory;
use crate::linetable::LineTable;

/// Where a miss's data comes from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DataSource {
    /// Home memory (the line is uncached, or only clean copies exist and
    /// the protocol does not supply clean data cache-to-cache).
    Memory,
    /// Another processor's cache supplies the line.
    CacheToCache {
        /// The supplying processor.
        owner: usize,
    },
}

/// Which coherence protocol drives the memory system — selectable per
/// run via [`SimOptions::protocol`](crate::SimOptions::protocol) and the
/// harness binaries' `--protocol` flag.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Protocol {
    /// CC-NUMA full-map directory, MSI states (the paper's machine; the
    /// default).
    Directory,
    /// Snooping Illinois-MESI (clean cache-to-cache supply).
    Mesi,
    /// Snooping MOESI (dirty-shared `Owned` state, no writeback on
    /// sharing).
    Moesi,
    /// Snooping Dragon write-update (bus updates instead of
    /// invalidations).
    Dragon,
}

impl Protocol {
    /// Every protocol, in CLI order.
    pub fn all() -> [Protocol; 4] {
        [
            Protocol::Directory,
            Protocol::Mesi,
            Protocol::Moesi,
            Protocol::Dragon,
        ]
    }

    /// Builds a fresh state machine for this protocol.
    pub fn build(self) -> Box<dyn CoherenceProtocol> {
        match self {
            Protocol::Directory => Box::new(Directory::new()),
            Protocol::Mesi => Box::new(Mesi::default()),
            Protocol::Moesi => Box::new(Moesi::default()),
            Protocol::Dragon => Box::new(Dragon::default()),
        }
    }
}

impl std::fmt::Display for Protocol {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            Protocol::Directory => "directory",
            Protocol::Mesi => "mesi",
            Protocol::Moesi => "moesi",
            Protocol::Dragon => "dragon",
        })
    }
}

impl std::str::FromStr for Protocol {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.to_ascii_lowercase().as_str() {
            "directory" => Ok(Protocol::Directory),
            "mesi" => Ok(Protocol::Mesi),
            "moesi" => Ok(Protocol::Moesi),
            "dragon" => Ok(Protocol::Dragon),
            other => Err(format!(
                "unknown protocol '{other}' (expected directory, mesi, moesi, or dragon)"
            )),
        }
    }
}

/// A pooled coherence-transaction buffer.
///
/// The memory system owns one and threads it through every protocol
/// call ([`CoherenceProtocol::read_miss`] /
/// [`CoherenceProtocol::write_miss`]), so the per-request answer —
/// including the invalidee/updatee/demote lists — reuses the same three
/// `Vec` allocations for the whole run instead of allocating fresh
/// outcome structs per miss. [`CohTxn::reset`] clears the lists but
/// keeps their capacity; after warm-up the steady state allocates
/// nothing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CohTxn {
    /// Where the data comes from.
    pub source: DataSource,
    /// Whether home memory is updated as part of this transaction (see
    /// [`ReadOutcome::memory_update`]). Only meaningful for reads.
    pub memory_update: bool,
    /// The state the requester's L2 installs at fill time.
    pub install: LineState,
    /// Processors whose copies are invalidated, ascending. Order is
    /// timing-visible: the memory system reserves mesh links in list
    /// order.
    pub invalidees: Vec<usize>,
    /// Processors whose copies receive the written word instead
    /// (write-update protocols), ascending.
    pub updatees: Vec<usize>,
    /// Processors whose clean-`Exclusive` copies drop to `Shared`,
    /// ascending. Only meaningful for memory-sourced reads.
    pub demote: Vec<usize>,
}

impl Default for CohTxn {
    fn default() -> Self {
        CohTxn {
            source: DataSource::Memory,
            memory_update: false,
            install: LineState::Invalid,
            invalidees: Vec::new(),
            updatees: Vec::new(),
            demote: Vec::new(),
        }
    }
}

impl CohTxn {
    /// Clears the buffer for reuse, keeping list capacity. Callers must
    /// reset before every `read_miss`/`write_miss` — implementations
    /// only write the fields they use.
    pub fn reset(&mut self) {
        self.source = DataSource::Memory;
        self.memory_update = false;
        self.install = LineState::Invalid;
        self.invalidees.clear();
        self.updatees.clear();
        self.demote.clear();
    }
}

/// The protocol's response to a read miss.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReadOutcome {
    /// Where the data comes from.
    pub source: DataSource,
    /// Whether home memory is updated as part of this transaction (a
    /// dirty supplier writing back while downgrading). The memory system
    /// charges writeback bank bandwidth and downgrades the supplier to
    /// `Shared` when set; a cache-to-cache supply without it leaves the
    /// supplier `Owned`.
    pub memory_update: bool,
    /// The state the requester's L2 installs at fill time.
    pub install: LineState,
    /// Processors whose clean-`Exclusive` copies drop to `Shared`
    /// because the line becomes shared (only meaningful for
    /// memory-sourced reads; cache-to-cache suppliers are downgraded via
    /// `source`/`memory_update`).
    pub demote: Vec<usize>,
}

/// The protocol's response to a write miss or upgrade.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WriteOutcome {
    /// Where the data comes from (irrelevant on the upgrade timing path,
    /// where the requester already holds the line).
    pub source: DataSource,
    /// Processors whose copies are invalidated.
    pub invalidees: Vec<usize>,
    /// Processors whose copies receive the written word instead of an
    /// invalidation (write-update protocols); their lines stay valid but
    /// any exclusive/dirty holder drops to `Shared`.
    pub updatees: Vec<usize>,
    /// The state the requester's L2 installs at fill time.
    pub install: LineState,
}

/// A cache-coherence state machine.
///
/// Implementations are *oracles*: they track, per line, which processors
/// hold a copy and who is responsible for supplying it, mirroring what a
/// real directory or the union of snoop filters would know. The memory
/// system calls them at transaction-issue time and applies the returned
/// outcome to the tag arrays (timing model) itself.
pub trait CoherenceProtocol: Send + std::fmt::Debug {
    /// Which protocol this is.
    fn kind(&self) -> Protocol;

    /// Handles a read miss by `proc` on `line`, writing the outcome into
    /// the caller's pooled buffer. `txn` arrives [reset](CohTxn::reset);
    /// implementations fill only the fields they use. Any processor
    /// lists must be pushed in ascending order (their order is
    /// timing-visible — see [`CohTxn::invalidees`]).
    fn read_miss(&mut self, line: u64, proc: usize, txn: &mut CohTxn);

    /// Handles a write miss or upgrade by `proc` on `line`, writing the
    /// outcome into the caller's pooled buffer (same contract as
    /// [`CoherenceProtocol::read_miss`]).
    fn write_miss(&mut self, line: u64, proc: usize, txn: &mut CohTxn);

    /// Handles a read miss, returning a freshly allocated outcome — the
    /// convenience form of [`CoherenceProtocol::read_miss`] for tests
    /// and tools; the simulator's hot path uses the pooled form.
    fn read_req(&mut self, line: u64, proc: usize) -> ReadOutcome {
        let mut txn = CohTxn::default();
        self.read_miss(line, proc, &mut txn);
        ReadOutcome {
            source: txn.source,
            memory_update: txn.memory_update,
            install: txn.install,
            demote: txn.demote,
        }
    }

    /// Handles a write miss or upgrade, returning a freshly allocated
    /// outcome (convenience form of [`CoherenceProtocol::write_miss`]).
    fn write_req(&mut self, line: u64, proc: usize) -> WriteOutcome {
        let mut txn = CohTxn::default();
        self.write_miss(line, proc, &mut txn);
        WriteOutcome {
            source: txn.source,
            invalidees: txn.invalidees,
            updatees: txn.updatees,
            install: txn.install,
        }
    }

    /// Records that `proc` evicted its copy of `line`.
    fn evict(&mut self, line: u64, proc: usize);

    /// Notification that `proc` wrote a line it held clean-`Exclusive`:
    /// the silent `E → M` transition needs no bus transaction, but the
    /// oracle must learn the copy is now dirty.
    fn silent_upgrade(&mut self, line: u64, proc: usize);

    /// L2 states in which a write completes without any global
    /// transaction (`Modified` everywhere; also `Exclusive` for the
    /// silent-upgrade protocols).
    fn write_hits(&self, state: LineState) -> bool;

    /// L2 states from which a write needs only permission, not data —
    /// the no-data upgrade (or update) timing path.
    fn upgradeable(&self, state: LineState) -> bool;

    /// Number of lines with live protocol state.
    fn line_count(&self) -> usize;

    /// Total holder population across all tracked lines.
    fn total_sharers(&self) -> usize;

    /// Slot capacity of the backing line table (for occupancy gauges).
    fn table_slots(&self) -> usize;

    /// Registers end-of-run protocol population gauges, including the
    /// backing table's size and load factor (`sim.coh.table.*`).
    fn export_metrics(&self, reg: &mut mempar_obs::MetricsRegistry) {
        let (lines, slots) = (self.line_count(), self.table_slots());
        reg.gauge("sim.coh.lines", lines as f64);
        reg.gauge("sim.coh.sharers", self.total_sharers() as f64);
        reg.gauge("sim.coh.table.slots", slots as f64);
        reg.gauge("sim.coh.table.load", lines as f64 / slots.max(1) as f64);
    }
}

/// Per-line holder record shared by the snooping protocols.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub(crate) struct HolderEntry {
    /// Bitmask of processors holding a copy (owner included).
    pub holders: u64,
    /// Processor responsible for supplying the line, if any.
    pub owner: Option<u8>,
    /// Whether the owner's copy is dirty (memory is stale).
    pub owner_dirty: bool,
}

impl HolderEntry {
    /// Holders other than `proc`.
    pub fn others(&self, proc: usize) -> u64 {
        self.holders & !(1u64 << proc)
    }
}

/// Line-indexed holder map shared by the snooping protocols, backed by
/// the open-addressed [`LineTable`].
#[derive(Debug, Clone, Default)]
pub(crate) struct HolderMap {
    entries: LineTable<HolderEntry>,
}

impl HolderMap {
    pub fn entry(&mut self, line: u64) -> &mut HolderEntry {
        self.entries.entry(line)
    }

    /// Removes `proc` from `line`'s holders, clearing ownership and
    /// dropping the entry when the last copy goes.
    pub fn evict(&mut self, line: u64, proc: usize) {
        if let Some(e) = self.entries.get_mut(line) {
            e.holders &= !(1u64 << proc);
            if e.owner == Some(proc as u8) {
                e.owner = None;
                e.owner_dirty = false;
            }
            if e.holders == 0 {
                self.entries.remove(line);
            }
        }
    }

    pub fn line_count(&self) -> usize {
        self.entries.len()
    }

    pub fn table_slots(&self) -> usize {
        self.entries.capacity()
    }

    pub fn total_sharers(&self) -> usize {
        self.entries
            .values()
            .map(|e| e.holders.count_ones() as usize)
            .sum()
    }
}

/// Pushes the processors set in `mask` onto `out`, lowest first —
/// ascending order is load-bearing (see [`CohTxn::invalidees`]).
pub(crate) fn push_mask_procs(mask: u64, out: &mut Vec<usize>) {
    let mut m = mask;
    while m != 0 {
        out.push(m.trailing_zeros() as usize);
        m &= m - 1;
    }
}

/// The processors set in `mask`, lowest first (allocating form).
#[cfg(test)]
pub(crate) fn mask_to_procs(mask: u64) -> Vec<usize> {
    let mut v = Vec::with_capacity(mask.count_ones() as usize);
    push_mask_procs(mask, &mut v);
    v
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn protocol_round_trips_display_fromstr() {
        for p in Protocol::all() {
            assert_eq!(p.to_string().parse::<Protocol>(), Ok(p));
        }
        assert!("mosi".parse::<Protocol>().is_err());
        assert_eq!("MESI".parse::<Protocol>(), Ok(Protocol::Mesi));
    }

    #[test]
    fn build_matches_kind() {
        for p in Protocol::all() {
            assert_eq!(p.build().kind(), p);
        }
    }

    #[test]
    fn mask_to_procs_orders_low_first() {
        assert_eq!(mask_to_procs(0), Vec::<usize>::new());
        assert_eq!(mask_to_procs(0b1011), vec![0, 1, 3]);
    }

    #[test]
    fn holder_map_evicts_and_counts() {
        let mut m = HolderMap::default();
        let e = m.entry(7);
        e.holders = 0b11;
        e.owner = Some(1);
        e.owner_dirty = true;
        assert_eq!(m.line_count(), 1);
        assert_eq!(m.total_sharers(), 2);
        m.evict(7, 1);
        let e = m.entry(7);
        assert_eq!(e.holders, 0b01, "still held by 0");
        assert_eq!(e.owner, None);
        assert!(!e.owner_dirty);
        m.evict(7, 0);
        assert_eq!(m.line_count(), 0);
    }
}
