//! Snooping Dragon (write-update).
//!
//! Dragon never invalidates on a write: a write to a line with other
//! holders broadcasts the written word, and every holder's copy stays
//! valid and current. The writer ends up `Sm` — "shared-modified",
//! mapped onto [`LineState::Owned`] — and keeps supplying the line to
//! read snoops, with memory stale until the `Sm` copy is evicted. Other
//! holders sit in `Sc` ("shared-clean", mapped onto
//! [`LineState::Shared`]). A write to an unshared line installs
//! `Modified` (Dragon's `M`/`D` state), and `E → M` write hits are
//! silent as in MESI.

use super::{push_mask_procs, CohTxn, CoherenceProtocol, DataSource, HolderMap, Protocol};
use crate::cache::LineState;

/// Dragon write-update state machine.
#[derive(Debug, Default)]
pub struct Dragon {
    lines: HolderMap,
}

impl CoherenceProtocol for Dragon {
    fn kind(&self) -> Protocol {
        Protocol::Dragon
    }

    fn read_miss(&mut self, line: u64, proc: usize, txn: &mut CohTxn) {
        let e = self.lines.entry(line);
        let others = e.others(proc);
        if others == 0 {
            e.owner = Some(proc as u8);
            e.owner_dirty = false;
            txn.source = DataSource::Memory;
            txn.install = LineState::Exclusive;
        } else if let Some(o) = e.owner.filter(|&o| o as usize != proc && e.owner_dirty) {
            // The Sm/M holder supplies and keeps ownership; memory stays
            // stale (as in MOESI).
            txn.source = DataSource::CacheToCache { owner: o as usize };
            txn.install = LineState::Shared;
        } else {
            if let Some(o) = e.owner.take() {
                if o as usize != proc {
                    txn.demote.push(o as usize);
                }
            }
            e.owner_dirty = false;
            txn.source = DataSource::Memory;
            txn.install = LineState::Shared;
        }
        e.holders |= 1u64 << proc;
    }

    fn write_miss(&mut self, line: u64, proc: usize, txn: &mut CohTxn) {
        let e = self.lines.entry(line);
        let others = e.others(proc);
        txn.source = match e.owner {
            Some(o) if o as usize != proc && e.owner_dirty => {
                DataSource::CacheToCache { owner: o as usize }
            }
            _ => DataSource::Memory,
        };
        // The defining Dragon property: writes never invalidate.
        push_mask_procs(others, &mut txn.updatees);
        txn.install = if others != 0 {
            LineState::Owned // Sm: dirty but shared
        } else {
            LineState::Modified
        };
        e.holders |= 1u64 << proc;
        e.owner = Some(proc as u8);
        e.owner_dirty = true;
    }

    fn evict(&mut self, line: u64, proc: usize) {
        self.lines.evict(line, proc);
    }

    fn silent_upgrade(&mut self, line: u64, proc: usize) {
        let e = self.lines.entry(line);
        e.holders |= 1u64 << proc;
        e.owner = Some(proc as u8);
        e.owner_dirty = true;
    }

    fn write_hits(&self, state: LineState) -> bool {
        matches!(state, LineState::Modified | LineState::Exclusive)
    }

    fn upgradeable(&self, state: LineState) -> bool {
        // Writes to Sc *and* Sm take the no-data update path: the writer
        // already has the line, it only needs to broadcast the word.
        matches!(state, LineState::Shared | LineState::Owned)
    }

    fn line_count(&self) -> usize {
        self.lines.line_count()
    }

    fn total_sharers(&self) -> usize {
        self.lines.total_sharers()
    }

    fn table_slots(&self) -> usize {
        self.lines.table_slots()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn writes_never_invalidate() {
        let mut p = Dragon::default();
        p.read_req(5, 0);
        p.read_req(5, 1);
        p.read_req(5, 2);
        let w = p.write_req(5, 1);
        assert!(w.invalidees.is_empty(), "Dragon must never invalidate");
        assert_eq!(w.updatees, vec![0, 2]);
        assert_eq!(w.install, LineState::Owned);
        assert_eq!(p.total_sharers(), 3, "all copies stay valid");
    }

    #[test]
    fn unshared_write_installs_modified() {
        let mut p = Dragon::default();
        let w = p.write_req(5, 0);
        assert_eq!(w.install, LineState::Modified);
        assert!(w.updatees.is_empty());
    }

    #[test]
    fn sm_holder_supplies_reads_and_keeps_ownership() {
        let mut p = Dragon::default();
        p.read_req(5, 1);
        p.write_req(5, 0); // 0: Sm, 1: Sc
        let r = p.read_req(5, 2);
        assert_eq!(r.source, DataSource::CacheToCache { owner: 0 });
        assert!(!r.memory_update, "memory stays stale under Sm");
        let r2 = p.read_req(5, 3);
        assert_eq!(r2.source, DataSource::CacheToCache { owner: 0 });
    }

    #[test]
    fn update_transfers_ownership_to_latest_writer() {
        let mut p = Dragon::default();
        p.write_req(5, 0); // 0: M
        let w = p.write_req(5, 1); // update; 1 becomes Sm, 0 drops to Sc
        assert_eq!(w.updatees, vec![0]);
        assert_eq!(w.source, DataSource::CacheToCache { owner: 0 });
        let r = p.read_req(5, 2);
        assert_eq!(
            r.source,
            DataSource::CacheToCache { owner: 1 },
            "the latest writer is the supplier"
        );
    }
}
