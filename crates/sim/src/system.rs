//! The whole-system driver: cores + interpreters + memory system.

use mempar_ir::{BytecodeProgram, Engine, Executor, Interp, Program, SimMem, Vm};
use mempar_obs::{
    MetricsRegistry, ReuseProfiler, ReuseSample, TraceEvent, TraceEventKind, Tracer, SYSTEM_PROC,
};
use mempar_stats::{Breakdown, LatencyStat, MemCounters, MshrOccupancy, StallClass, Utilization};

use crate::config::MachineConfig;
use crate::core::Core;
use crate::memsys::MemSystem;
use crate::protocol::Protocol;
use crate::sync::SyncState;

/// Cycles without any retirement before the driver declares deadlock.
pub(crate) const DEADLOCK_WINDOW: u64 = 4_000_000;

/// How the driver advances the simulated clock. Every stepper produces
/// bit-identical results (the equality-cube tests assert this); they
/// differ only in how much host work each simulated cycle costs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Stepper {
    /// Step every core every cycle — the reference driver.
    Strict,
    /// Event-horizon cycle skipping: step every core every cycle, but
    /// when *no* core can retire, issue, or fetch before the next
    /// scheduled event, jump the clock straight to that event and
    /// account the skipped span in bulk.
    Skip,
    /// Discrete-event stepping: each core carries its own next-event
    /// time and is only stepped in rounds where it is scheduled, so
    /// event-dense multiprocessor runs stop paying per-cycle costs for
    /// stalled or sync-blocked processors. Generalizes [`Stepper::Skip`]
    /// (whose horizon is the minimum of the same per-core times) and is
    /// the only stepper that can shard cores across worker threads (see
    /// [`SimOptions::shards`]).
    Event,
}

impl std::fmt::Display for Stepper {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            Stepper::Strict => "strict",
            Stepper::Skip => "skip",
            Stepper::Event => "event",
        })
    }
}

impl std::str::FromStr for Stepper {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.to_ascii_lowercase().as_str() {
            "strict" => Ok(Stepper::Strict),
            "skip" => Ok(Stepper::Skip),
            "event" => Ok(Stepper::Event),
            other => Err(format!(
                "unknown stepper '{other}' (expected strict, skip, or event)"
            )),
        }
    }
}

/// Options controlling the simulation driver.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SimOptions {
    /// Clock-advance strategy (see [`Stepper`]). Results are identical
    /// across steppers (the determinism tests assert this); simulation
    /// speed improves by the per-core dead-cycle fraction.
    ///
    /// Defaults to [`Stepper::Event`]; building with the `strict-cycle`
    /// feature flips the default to [`Stepper::Strict`], giving a
    /// reference build that steps every core every cycle.
    pub stepper: Stepper,
    /// Worker threads the event stepper shards cores across (`0` or `1`
    /// = run single-threaded). Sharding is deterministic: cycles,
    /// traces, and metrics are bit-identical at every shard count,
    /// because shared-state phases run on one thread in fixed core order
    /// and the parallel window computes only per-core wake times.
    /// Ignored by the strict and skip steppers.
    pub shards: usize,
    /// Which functional engine feeds each core's fetch stage: the
    /// tree-walking interpreter or the bytecode register VM. Both yield
    /// bit-identical op streams (the difftest and golden-trace gates
    /// assert this); the VM is the faster default.
    pub engine: Engine,
    /// Which coherence protocol drives the memory system's global
    /// transactions (see [`Protocol`]). Functional results and dynamic-op
    /// streams are identical across protocols (the protocol cube asserts
    /// this); only cycle counts move. Defaults to the paper's full-map
    /// directory.
    pub protocol: Protocol,
}

impl Default for SimOptions {
    fn default() -> Self {
        SimOptions {
            stepper: if cfg!(feature = "strict-cycle") {
                Stepper::Strict
            } else {
                Stepper::Event
            },
            shards: 1,
            engine: Engine::default(),
            protocol: Protocol::Directory,
        }
    }
}

/// Results of one simulation run.
#[derive(Debug, Clone)]
pub struct SimResult {
    /// Configuration name the run used.
    pub config: String,
    /// Wall-clock cycles (last processor's halt).
    pub cycles: u64,
    /// Wall-clock nanoseconds under the configuration's clock.
    pub ns: f64,
    /// Per-processor execution-time breakdowns. Processors that finish
    /// early are padded with sync stall up to the wall clock, mirroring
    /// the spin-at-exit behavior of SPMD codes.
    pub breakdowns: Vec<Breakdown>,
    /// Total retired instructions.
    pub retired: u64,
    /// Aggregated memory counters.
    pub counters: MemCounters,
    /// Aggregated L2 read-miss latency (address generation → fill).
    pub read_latency: LatencyStat,
    /// Merged L2 MSHR occupancy histogram (Figure 4).
    pub occupancy: MshrOccupancy,
    /// Per-processor occupancy histograms.
    pub occupancy_per_proc: Vec<MshrOccupancy>,
    /// Bus utilization.
    pub bus_util: Utilization,
    /// Memory-bank utilization.
    pub bank_util: Utilization,
    /// MHz of the simulated clock.
    pub clock_mhz: u32,
}

impl SimResult {
    /// Mean per-processor breakdown (each padded to the wall clock), the
    /// quantity plotted in Figure 3.
    pub fn mean_breakdown(&self) -> Breakdown {
        let n = self.breakdowns.len().max(1) as f64;
        let mut sum = Breakdown::new();
        for b in &self.breakdowns {
            sum += *b;
        }
        sum.scaled(1.0 / n)
    }

    /// Average stall time charged per L2 read miss, in nanoseconds —
    /// Latbench's metric in Section 5.1.
    pub fn avg_read_miss_stall_ns(&self) -> f64 {
        let misses = self.counters.l2_read_misses.max(1) as f64;
        let stall_cycles: f64 = self.breakdowns.iter().map(|b| b.data).sum();
        stall_cycles / misses * 1000.0 / self.clock_mhz as f64
    }

    /// Average *total* L2 read-miss latency in nanoseconds (address
    /// generation to completion) — grows under contention even as stall
    /// time falls (Section 5.1's 171 ns → 316 ns observation).
    pub fn avg_read_miss_latency_ns(&self) -> f64 {
        self.read_latency.mean() * 1000.0 / self.clock_mhz as f64
    }
}

/// Runs `prog` on the machine described by `cfg`.
///
/// `mem` must have been created for the same processor count and have had
/// its arrays initialized; it is consumed functionally during the run
/// (final contents are the program's output — callers can verify them).
pub fn run_program(prog: &Program, mem: &mut SimMem, cfg: &MachineConfig) -> SimResult {
    run_program_with(prog, mem, cfg, SimOptions::default())
}

/// [`run_program`] with explicit driver options (see [`SimOptions`]).
pub fn run_program_with(
    prog: &Program,
    mem: &mut SimMem,
    cfg: &MachineConfig,
    opts: SimOptions,
) -> SimResult {
    run_inner(prog, mem, cfg, opts, Tracer::disabled(), None).0
}

/// Everything the observability layer captures from one traced run (see
/// [`run_program_observed`]).
#[derive(Debug)]
pub struct SimObservation {
    /// Trace events in time order (oldest first; ring-bounded).
    pub trace: Vec<TraceEvent>,
    /// Events discarded by the ring buffer (oldest-first overwrite).
    pub dropped: u64,
    /// End-of-run metrics from every simulated component.
    pub metrics: MetricsRegistry,
    /// `addr >> line_shift` = the line numbers trace events carry.
    pub line_shift: u32,
    /// Simulated clock, for trace-time → wall-time conversion.
    pub clock_mhz: u32,
    /// The run's wall clock in cycles (closes still-open trace spans).
    pub end_cycle: u64,
    /// Sampled reuse-distance events (empty unless the run used
    /// [`run_program_observed_reuse`]); exported as a Perfetto counter
    /// track.
    pub reuse_samples: Vec<ReuseSample>,
}

/// [`run_program_with`], additionally recording structured trace events
/// into `tracer` and collecting a metrics snapshot. The [`SimResult`] is
/// bit-identical to an untraced run's (the observability tests assert
/// this): tracing only copies values the simulator already computes.
pub fn run_program_observed(
    prog: &Program,
    mem: &mut SimMem,
    cfg: &MachineConfig,
    opts: SimOptions,
    tracer: Tracer,
) -> (SimResult, SimObservation) {
    let (result, obs, _) = observed_inner(prog, mem, cfg, opts, tracer, None);
    (result, obs)
}

/// [`run_program_observed`] with a [`ReuseProfiler`] tapping the dynamic
/// op stream at the fetch stage. The profiler is pure observation: the
/// [`SimResult`] stays bit-identical to an unprofiled run (asserted by
/// the locality tests). Returns the drained profiler so callers can build
/// a [`mempar_obs::ReuseReport`]; its `sim.reuse.*` metrics are already
/// merged into the observation's registry, and the bounded sample stream
/// lands in [`SimObservation::reuse_samples`] for the Perfetto counter
/// track.
pub fn run_program_observed_reuse(
    prog: &Program,
    mem: &mut SimMem,
    cfg: &MachineConfig,
    opts: SimOptions,
    tracer: Tracer,
    profiler: ReuseProfiler,
) -> (SimResult, SimObservation, ReuseProfiler) {
    let (result, obs, reuse) = observed_inner(prog, mem, cfg, opts, tracer, Some(profiler));
    (
        result,
        obs,
        reuse.expect("profiler threaded through the run"),
    )
}

fn observed_inner(
    prog: &Program,
    mem: &mut SimMem,
    cfg: &MachineConfig,
    opts: SimOptions,
    tracer: Tracer,
    profiler: Option<ReuseProfiler>,
) -> (SimResult, SimObservation, Option<ReuseProfiler>) {
    let (result, mut memsys, cores, reuse) = run_inner(prog, mem, cfg, opts, tracer, profiler);
    let mut metrics = MetricsRegistry::new();
    memsys.export_metrics(result.cycles.max(1), &mut metrics);
    for core in &cores {
        core.export_metrics(&mut metrics);
    }
    if let Some(rp) = &reuse {
        rp.export_metrics(&mut metrics);
    }
    let t = memsys.take_tracer();
    metrics.counter("sim.trace.events", t.len() as u64);
    metrics.counter("sim.trace.dropped", t.dropped());
    let (trace, dropped) = t.into_events();
    let obs = SimObservation {
        trace,
        dropped,
        metrics,
        line_shift: cfg.l2.line_bytes.trailing_zeros(),
        clock_mhz: cfg.proc.clock_mhz,
        end_cycle: result.cycles,
        reuse_samples: reuse
            .as_ref()
            .map(|r| r.samples().to_vec())
            .unwrap_or_default(),
    };
    (result, obs, reuse)
}

/// Mutable machine state threaded through a stepper driver: everything
/// the per-round phases touch, bundled so the strict/skip loop and the
/// event-driven scheduler (see [`crate::sched`]) share one setup and
/// teardown.
pub(crate) struct DriverState<'m, 'p> {
    pub(crate) memsys: MemSystem,
    pub(crate) cores: Vec<Core>,
    pub(crate) interps: Vec<Executor<'p>>,
    pub(crate) sync: SyncState,
    pub(crate) stall_state: Vec<Option<StallClass>>,
    pub(crate) tracing: bool,
    pub(crate) mem: &'m mut SimMem,
    /// Reuse-distance profiler tapping the fetch-order address stream
    /// (`None` in normal runs — the common path pays one branch).
    pub(crate) reuse: Option<ReuseProfiler>,
}

/// Emits stall begin/end transitions for `core` from the retire stage's
/// per-cycle attribution (`charge_idle` continues the same class across
/// skipped spans, so no event is needed there).
pub(crate) fn trace_stall_transition(
    memsys: &mut MemSystem,
    stall_state: &mut [Option<StallClass>],
    core: &Core,
    now: u64,
) {
    let p = core.id;
    let cur = core.last_stall();
    if cur != stall_state[p] {
        let t = memsys.tracer_mut();
        if let Some(prev) = stall_state[p] {
            t.record(now, p as u32, TraceEventKind::StallEnd { class: prev });
        }
        if let Some(new) = cur {
            t.record(now, p as u32, TraceEventKind::StallBegin { class: new });
        }
        stall_state[p] = cur;
    }
}

/// Fetch stage for one core. Re-checks the fetch room on every op:
/// fetching a barrier or flag-wait must stop the group immediately, or
/// later ops would be functionally evaluated before the synchronization
/// they depend on.
pub(crate) fn fetch_stage(
    core: &mut Core,
    interp: &mut Executor,
    mem: &mut SimMem,
    now: u64,
    reuse: &mut Option<ReuseProfiler>,
) {
    let mut fetched = 0;
    while fetched < core.fetch_room() {
        match interp.next_op(mem) {
            Some(op) => {
                // Reuse-distance tap: observe the dynamic address stream in
                // program (fetch) order, before `op` moves into the window.
                // Pure observation — it never touches timing state, so a
                // disabled profiler leaves the run bit-identical.
                if let Some(rp) = reuse.as_mut() {
                    if let Some(addr) = op.kind.addr() {
                        let array = mem.array_of_addr(addr).map(|a| a.index());
                        rp.observe(core.id, now, addr, array);
                    }
                }
                core.fetch(op, now);
                fetched += 1;
            }
            None => break,
        }
    }
}

/// Deadlock diagnostics shared by all steppers.
pub(crate) fn deadlock_panic<'a>(cores: impl Iterator<Item = &'a Core>, now: u64) -> ! {
    let diag: Vec<String> = cores
        .map(|c| {
            format!(
                "p{}: halted={} window={} head_age={} head: {}",
                c.id,
                c.halted,
                c.window_occupancy(),
                c.head_age(now),
                c.head_desc(now)
            )
        })
        .collect();
    panic!("simulation deadlock at cycle {now}: {}", diag.join("; "));
}

fn run_inner(
    prog: &Program,
    mem: &mut SimMem,
    cfg: &MachineConfig,
    opts: SimOptions,
    tracer: Tracer,
    reuse: Option<ReuseProfiler>,
) -> (SimResult, MemSystem, Vec<Core>, Option<ReuseProfiler>) {
    cfg.validate();
    assert_eq!(
        mem.nprocs(),
        cfg.nprocs,
        "SimMem laid out for a different processor count"
    );
    let nprocs = cfg.nprocs;
    let home = mem.home_map();
    let mut memsys = MemSystem::with_protocol(
        cfg,
        Box::new(move |line_addr| home.home_node(line_addr)),
        opts.protocol,
    );
    memsys.set_tracer(tracer);
    let tracing = memsys.trace_enabled();
    let stall_state: Vec<Option<StallClass>> = vec![None; nprocs];
    let l1_ports = cfg.l1.as_ref().map(|l| l.ports).unwrap_or(cfg.l2.ports);
    let cores: Vec<Core> = (0..nprocs)
        .map(|p| Core::new(p, &cfg.proc, l1_ports))
        .collect();
    // One functional executor per core; the bytecode program is compiled
    // once and shared by every core's VM.
    let bytecode = match opts.engine {
        Engine::Bytecode => Some(BytecodeProgram::compile(prog)),
        Engine::Interp => None,
    };
    let interps: Vec<Executor> = (0..nprocs)
        .map(|p| match &bytecode {
            Some(code) => Executor::Vm(Vm::new(code, p, nprocs)),
            None => Executor::Interp(Interp::new(prog, p, nprocs)),
        })
        .collect();
    let sync = SyncState::new(nprocs);

    let mut st = DriverState {
        memsys,
        cores,
        interps,
        sync,
        stall_state,
        tracing,
        mem,
        reuse,
    };
    match opts.stepper {
        Stepper::Strict => cycle_loop(&mut st, false),
        Stepper::Skip => cycle_loop(&mut st, true),
        Stepper::Event => crate::sched::event_loop(&mut st, opts.shards),
    }
    let DriverState {
        mut memsys,
        cores,
        reuse,
        ..
    } = st;

    let wall = cores.iter().map(|c| c.halt_cycle).max().unwrap_or(0);
    // The drivers executed (directly or via accounted skips) every cycle
    // through `wall`; book the occupancy tail at the final state.
    memsys.close_occupancy(wall + 1);
    let breakdowns: Vec<Breakdown> = cores
        .iter()
        .map(|c| {
            let mut b = c.breakdown;
            let pad = (wall - c.halt_cycle) as f64;
            b.sync += pad;
            b
        })
        .collect();
    let occupancy_per_proc: Vec<MshrOccupancy> =
        (0..nprocs).map(|p| memsys.occupancy(p).clone()).collect();
    let result = SimResult {
        config: cfg.name.clone(),
        cycles: wall,
        ns: cfg.cycles_to_ns(wall as f64),
        breakdowns,
        retired: cores.iter().map(|c| c.retired).sum(),
        counters: memsys.total_counters(),
        read_latency: memsys.total_read_latency(),
        occupancy: memsys.total_occupancy(),
        occupancy_per_proc,
        bus_util: memsys.bus_utilization(wall.max(1)),
        bank_util: memsys.bank_utilization(wall.max(1)),
        clock_mhz: cfg.proc.clock_mhz,
    };
    (result, memsys, cores, reuse)
}

/// The per-cycle driver behind [`Stepper::Strict`] and [`Stepper::Skip`]:
/// every core runs retire → issue → fetch every executed cycle; with
/// `cycle_skip` the clock jumps over spans where nothing can happen.
fn cycle_loop(st: &mut DriverState, cycle_skip: bool) {
    let mut now: u64 = 0;
    let mut last_retired: u64 = 0;
    let mut last_progress_cycle: u64 = 0;
    loop {
        st.memsys.tick(now);
        let mut all_halted = true;
        for core in st.cores.iter_mut() {
            if core.retire(&mut st.sync, now) {
                all_halted = false;
            }
        }
        if st.tracing {
            for core in st.cores.iter() {
                trace_stall_transition(&mut st.memsys, &mut st.stall_state, core, now);
            }
        }
        if all_halted {
            break;
        }
        for core in st.cores.iter_mut() {
            if !core.halted {
                core.issue(&mut st.memsys, now);
            }
        }
        for (core, interp) in st.cores.iter_mut().zip(st.interps.iter_mut()) {
            if core.halted {
                continue;
            }
            fetch_stage(core, interp, st.mem, now, &mut st.reuse);
        }
        // Deadlock diagnostics.
        let retired: u64 = st.cores.iter().map(|c| c.retired).sum();
        if retired != last_retired {
            last_retired = retired;
            last_progress_cycle = now;
        } else if now - last_progress_cycle > DEADLOCK_WINDOW {
            deadlock_panic(st.cores.iter(), now);
        }
        if cycle_skip {
            // Event horizon: the earliest cycle at which anything can
            // change — a memory fill, or any core retiring, issuing, or
            // fetching. Dead cycles in between are provably no-ops, so
            // account them in bulk and jump.
            // Fast path: if any core just retired or has fetch room, the
            // very next cycle is interesting — don't scan reorder buffers.
            // This keeps the skip machinery near-free on event-dense runs
            // (busy multiprocessor phases) where skips are rare.
            let mut next: Option<u64> = if st.cores.iter().any(|c| c.made_progress()) {
                Some(now + 1)
            } else {
                st.memsys.next_event_time()
            };
            if next != Some(now + 1) {
                for core in &st.cores {
                    if let Some(t) = core.next_event_time(&st.sync, now) {
                        next = Some(next.map_or(t, |n| n.min(t)));
                    }
                    if next == Some(now + 1) {
                        break;
                    }
                }
            }
            match next {
                Some(t) if t > now + 1 => {
                    let span = t - now - 1;
                    if st.tracing {
                        st.memsys.tracer_mut().record(
                            now,
                            SYSTEM_PROC,
                            TraceEventKind::HorizonJump { span },
                        );
                    }
                    for core in st.cores.iter_mut() {
                        core.charge_idle(span);
                    }
                    now = t;
                }
                Some(_) => now += 1,
                None => {
                    // No event anywhere: the run can never progress again.
                    // Jump to the diagnostic horizon so the deadlock check
                    // above fires with the same cycle number strict
                    // stepping would report.
                    now = last_progress_cycle + DEADLOCK_WINDOW + 1;
                }
            }
        } else {
            now += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mempar_ir::{AffineExpr, ArrayData, Dist, Index, ProgramBuilder};

    /// Sequential sweep over a large array: every line missed once.
    fn streaming_program(n: usize) -> (Program, mempar_ir::ArrayId) {
        let mut b = ProgramBuilder::new("stream");
        let a = b.array_f64("a", &[n]);
        let s = b.scalar_f64("sum", 0.0);
        let i = b.var("i");
        b.for_const(i, 0, n as i64, |b| {
            let v = b.load(a, &[b.idx(i)]);
            let acc = b.scalar(s);
            let e = b.add(acc, v);
            b.assign_scalar(s, e);
        });
        (b.finish(), a)
    }

    #[test]
    fn uniprocessor_run_completes_and_accounts() {
        let (p, a) = streaming_program(4096);
        let cfg = MachineConfig::base_simulated(1, 64 * 1024);
        let mut mem = SimMem::new(&p, 1);
        mem.set_array(a, ArrayData::f64_fill(4096, 1.0));
        let r = run_program(&p, &mut mem, &cfg);
        assert!(r.cycles > 4096, "must take real time");
        // 4096 doubles = 512 lines; cold cache: 512 L2 read misses.
        assert_eq!(r.counters.l2_read_misses, 512);
        // Breakdown components sum to wall time (1 processor).
        let b = r.mean_breakdown();
        assert!(
            (b.total() - r.cycles as f64).abs() < 2.0,
            "b={b:?} wall={}",
            r.cycles
        );
        assert!(b.data > 0.0, "streaming misses must show as data stall");
    }

    #[test]
    fn multiprocessor_partitions_work() {
        let n = 8192;
        let mut b = ProgramBuilder::new("par-stream");
        let a = b.array_f64("a", &[n]);
        let c = b.array_f64("c", &[n]);
        let i = b.var("i");
        b.for_dist(i, 0, n as i64, Dist::Block, |b| {
            let v = b.load(a, &[b.idx(i)]);
            let two = b.constf(2.0);
            let m = b.mul(v, two);
            b.assign_array(c, &[Index::affine(AffineExpr::var(i))], m);
        });
        b.barrier();
        let p = b.finish();

        let cfg1 = MachineConfig::base_simulated(1, 64 * 1024);
        let mut mem1 = SimMem::new(&p, 1);
        mem1.set_array(a, ArrayData::f64_fill(n, 1.5));
        let r1 = run_program(&p, &mut mem1, &cfg1);

        let cfg4 = MachineConfig::base_simulated(4, 64 * 1024);
        let mut mem4 = SimMem::new(&p, 4);
        mem4.set_array(a, ArrayData::f64_fill(n, 1.5));
        let r4 = run_program(&p, &mut mem4, &cfg4);

        // Results identical, speedup real.
        assert_eq!(mem1.read_f64(c), mem4.read_f64(c));
        assert!(
            (r4.cycles as f64) < 0.5 * r1.cycles as f64,
            "4 procs should be at least 2x faster: {} vs {}",
            r4.cycles,
            r1.cycles
        );
    }

    #[test]
    fn barrier_sync_time_counted() {
        // Imbalanced work then a barrier: fast procs accrue sync stall.
        let n = 4096;
        let mut b = ProgramBuilder::new("imbalanced");
        let a = b.array_f64("a", &[n]);
        let s = b.scalar_f64("sum", 0.0);
        let i = b.var("i");
        let j = b.var("j");
        // Cyclic distribution of a triangular loop: proc 0 gets iterations
        // 0..n/2 with tiny bodies... simpler: proc 0 does nothing extra.
        b.for_dist(j, 0, 2, Dist::Block, |b| {
            b.for_affine(
                i,
                AffineExpr::konst(0),
                AffineExpr::scaled_var(j, (n / 2) as i64, 0),
                |b| {
                    let v = b.load(a, &[b.idx(i)]);
                    let acc = b.scalar(s);
                    let e = b.add(acc, v);
                    b.assign_scalar(s, e);
                },
            );
        });
        b.barrier();
        let p = b.finish();
        let cfg = MachineConfig::base_simulated(2, 64 * 1024);
        let mut mem = SimMem::new(&p, 2);
        mem.set_array(a, ArrayData::f64_fill(n, 1.0));
        let r = run_program(&p, &mut mem, &cfg);
        // Processor 0 ran the empty half: nearly all its time is sync.
        assert!(
            r.breakdowns[0].sync > 0.5 * r.cycles as f64,
            "idle proc should be sync-bound: {:?}",
            r.breakdowns[0]
        );
    }

    #[test]
    fn flags_order_producer_consumer() {
        // Proc 0 writes then sets a flag; proc 1 waits then reads.
        let mut b = ProgramBuilder::new("flag-sync");
        let a = b.array_f64("a", &[8]);
        let out = b.array_f64("out", &[8]);
        let p_v = b.var("p");
        let i = b.var("i");
        b.flags(1);
        b.for_dist(p_v, 0, 2, Dist::Block, |b| {
            let cond0 = mempar_ir::Cond::lt(AffineExpr::var(p_v), AffineExpr::konst(1));
            b.if_then_else(
                cond0,
                |b| {
                    b.for_const(i, 0, 8, |b| {
                        let c = b.constf(7.0);
                        b.assign_array(a, &[Index::affine(AffineExpr::var(i))], c);
                    });
                    b.flag_set(AffineExpr::konst(0));
                },
                |b| {
                    b.flag_wait(AffineExpr::konst(0));
                    b.for_const(i, 0, 8, |b| {
                        let v = b.load(a, &[b.idx(i)]);
                        b.assign_array(out, &[Index::affine(AffineExpr::var(i))], v);
                    });
                },
            );
        });
        let p = b.finish();
        let cfg = MachineConfig::base_simulated(2, 64 * 1024);
        let mut mem = SimMem::new(&p, 2);
        let r = run_program(&p, &mut mem, &cfg);
        assert!(r.cycles > 0);
        assert!(
            r.breakdowns[1].sync > 0.0,
            "consumer waits on the flag: {:?}",
            r.breakdowns[1]
        );
        // Acquire semantics in the timed run: the consumer's reads (which
        // are functionally evaluated at fetch) must see the producer's
        // writes — the fetch stage may not run ahead of the flag wait.
        assert!(
            mem.read_f64(out).iter().all(|&v| v == 7.0),
            "consumer read stale values: {:?}",
            mem.read_f64(out)
        );
    }

    /// Same property across a barrier, with the producer's writes delayed
    /// behind cold misses: no processor's fetch may slip past a barrier.
    #[test]
    fn barrier_orders_values_in_timed_run() {
        let n = 512usize;
        let mut b = ProgramBuilder::new("barrier-values");
        let a = b.array_f64("a", &[n]);
        let out = b.array_f64("out", &[n]);
        let i = b.var("i");
        let i2 = b.var("i2");
        // Phase 1: everyone fills its block of `a` (cold misses).
        b.for_dist(i, 0, n as i64, Dist::Block, |b| {
            let c = b.constf(3.5);
            b.assign_array(a, &[Index::affine(AffineExpr::var(i))], c);
        });
        b.barrier();
        // Phase 2: everyone reads the *other end* of `a` (cyclic), so the
        // values cross processors.
        b.for_dist(i2, 0, n as i64, Dist::Cyclic, |b| {
            let v = b.load(a, &[b.idx(i2)]);
            b.assign_array(out, &[Index::affine(AffineExpr::var(i2))], v);
        });
        let p = b.finish();
        let cfg = MachineConfig::base_simulated(4, 64 * 1024);
        let mut mem = SimMem::new(&p, 4);
        run_program(&p, &mut mem, &cfg);
        assert!(
            mem.read_f64(out).iter().all(|&v| v == 3.5),
            "a fetch slipped past the barrier"
        );
    }

    #[test]
    fn exemplar_config_runs() {
        let (p, a) = streaming_program(2048);
        let cfg = MachineConfig::exemplar(1);
        let mut mem = SimMem::new(&p, 1);
        mem.set_array(a, ArrayData::f64_fill(2048, 1.0));
        let r = run_program(&p, &mut mem, &cfg);
        // 2048 doubles at 32B lines = 512 misses.
        assert_eq!(r.counters.l2_read_misses, 512);
        assert!(r.ns > 0.0);
    }

    #[test]
    fn occupancy_histogram_collected() {
        let (p, a) = streaming_program(4096);
        let cfg = MachineConfig::base_simulated(1, 64 * 1024);
        let mut mem = SimMem::new(&p, 1);
        mem.set_array(a, ArrayData::f64_fill(4096, 1.0));
        let r = run_program(&p, &mut mem, &cfg);
        assert!(r.occupancy.cycles() > 0);
        assert!(r.occupancy.read_at_least(1) > 0.0);
    }
}
