//! A sharded, open-addressed hash table keyed by cache-line number —
//! the storage behind every coherence state machine's per-line records.
//!
//! `std::collections::HashMap` served here through PR 8, but its SipHash
//! hashing and bucket indirection dominated the directory's cost on
//! miss-heavy multiprocessor runs. Line numbers are in-range simulated
//! addresses shifted right, so they can never reach `u64::MAX` — the
//! same argument that gives the tag arrays their `NO_LINE` sentinel —
//! which lets this table store bare `u64` keys with an empty sentinel,
//! one multiply for the hash (Fibonacci hashing spreads the strided line
//! streams the workloads generate), and linear probing over a flat
//! key/value pair of arrays.
//!
//! The table is split into a fixed power-of-two number of shards by high
//! hash bits. Shards bound the cost of a resize (each shard rehashes
//! independently, so a growth spike touches 1/8th of the table) and keep
//! probe regions compact while the working set cycles. Deletion uses
//! backward shifting, so there are no tombstones and lookups stay
//! O(probe chain) forever. In steady state — the working set resident —
//! no operation allocates.
//!
//! Iteration order over shards/slots is *not* insertion order; nothing
//! timing-visible may depend on it. The only iterating consumers are the
//! order-independent population sums ([`LineTable::len`] /
//! [`LineTable::values`]).

/// Empty-slot sentinel. Real line numbers are `addr >> line_shift` of
/// in-range simulated addresses and can never reach `u64::MAX`.
const EMPTY: u64 = u64::MAX;

/// Multiplier for Fibonacci hashing (2^64 / φ, odd).
const HASH_MUL: u64 = 0x9E37_79B9_7F4A_7C15;

/// Shard count = 2^SHARD_BITS.
const SHARD_BITS: u32 = 3;

/// Initial slot count per shard (power of two).
const INITIAL_SLOTS: usize = 64;

#[inline]
fn hash(line: u64) -> u64 {
    line.wrapping_mul(HASH_MUL)
}

/// One shard: parallel key/value arrays with linear probing.
#[derive(Debug, Clone)]
struct TableShard<V> {
    keys: Vec<u64>,
    vals: Vec<V>,
    len: usize,
}

impl<V: Copy + Default> TableShard<V> {
    fn new() -> Self {
        TableShard {
            keys: vec![EMPTY; INITIAL_SLOTS],
            vals: vec![V::default(); INITIAL_SLOTS],
            len: 0,
        }
    }

    /// Probe start for `line` (low hash bits; the shard selector uses
    /// the high bits, so the two are independent).
    #[inline]
    fn start(&self, line: u64) -> usize {
        hash(line) as usize & (self.keys.len() - 1)
    }

    #[inline]
    fn find(&self, line: u64) -> Option<usize> {
        let mask = self.keys.len() - 1;
        let mut i = self.start(line);
        loop {
            let k = self.keys[i];
            if k == line {
                return Some(i);
            }
            if k == EMPTY {
                return None;
            }
            i = (i + 1) & mask;
        }
    }

    fn insert_new(&mut self, line: u64, val: V) -> usize {
        // Grow at 3/4 load so probe chains stay short.
        if (self.len + 1) * 4 > self.keys.len() * 3 {
            self.grow();
        }
        let mask = self.keys.len() - 1;
        let mut i = self.start(line);
        while self.keys[i] != EMPTY {
            debug_assert_ne!(self.keys[i], line, "insert_new of present line");
            i = (i + 1) & mask;
        }
        self.keys[i] = line;
        self.vals[i] = val;
        self.len += 1;
        i
    }

    fn grow(&mut self) {
        let new_size = self.keys.len() * 2;
        let old_keys = std::mem::replace(&mut self.keys, vec![EMPTY; new_size]);
        let old_vals = std::mem::replace(&mut self.vals, vec![V::default(); new_size]);
        let mask = new_size - 1;
        for (k, v) in old_keys.into_iter().zip(old_vals) {
            if k != EMPTY {
                let mut i = hash(k) as usize & mask;
                while self.keys[i] != EMPTY {
                    i = (i + 1) & mask;
                }
                self.keys[i] = k;
                self.vals[i] = v;
            }
        }
    }

    /// Removes the entry at `i`, backward-shifting later chain members
    /// so no probe path breaks (no tombstones).
    fn remove_at(&mut self, mut i: usize) -> V {
        let mask = self.keys.len() - 1;
        let out = self.vals[i];
        let mut j = i;
        loop {
            j = (j + 1) & mask;
            let k = self.keys[j];
            if k == EMPTY {
                break;
            }
            // An entry may move back into the hole only if that does not
            // lift it above its ideal slot: its probe distance at `j`
            // must reach at least back to `i`.
            let ideal = hash(k) as usize & mask;
            if (j.wrapping_sub(ideal) & mask) >= (j.wrapping_sub(i) & mask) {
                self.keys[i] = k;
                self.vals[i] = self.vals[j];
                i = j;
            }
        }
        self.keys[i] = EMPTY;
        self.len -= 1;
        out
    }
}

/// Sharded open-addressed map from line number to a small Copy record.
#[derive(Debug, Clone)]
pub(crate) struct LineTable<V> {
    shards: Vec<TableShard<V>>,
}

impl<V: Copy + Default> Default for LineTable<V> {
    fn default() -> Self {
        LineTable {
            shards: (0..1usize << SHARD_BITS)
                .map(|_| TableShard::new())
                .collect(),
        }
    }
}

impl<V: Copy + Default> LineTable<V> {
    #[inline]
    fn shard_of(&self, line: u64) -> usize {
        (hash(line) >> (64 - SHARD_BITS)) as usize
    }

    /// The value for `line`, if present.
    #[inline]
    pub fn get(&self, line: u64) -> Option<&V> {
        let s = &self.shards[self.shard_of(line)];
        s.find(line).map(|i| &s.vals[i])
    }

    /// Mutable access to the value for `line`, if present.
    #[inline]
    pub fn get_mut(&mut self, line: u64) -> Option<&mut V> {
        let si = self.shard_of(line);
        let s = &mut self.shards[si];
        s.find(line).map(|i| &mut s.vals[i])
    }

    /// The value for `line`, inserting a default record if absent.
    #[inline]
    pub fn entry(&mut self, line: u64) -> &mut V {
        let si = self.shard_of(line);
        let s = &mut self.shards[si];
        let i = match s.find(line) {
            Some(i) => i,
            None => s.insert_new(line, V::default()),
        };
        &mut s.vals[i]
    }

    /// Removes `line`'s record, returning it if present.
    pub fn remove(&mut self, line: u64) -> Option<V> {
        let si = self.shard_of(line);
        let s = &mut self.shards[si];
        s.find(line).map(|i| s.remove_at(i))
    }

    /// Number of live records.
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.len).sum()
    }

    /// Total slot capacity across shards (for occupancy gauges).
    pub fn capacity(&self) -> usize {
        self.shards.iter().map(|s| s.keys.len()).sum()
    }

    /// Iterates live values (arbitrary order — use only for
    /// order-independent reductions).
    pub fn values(&self) -> impl Iterator<Item = &V> {
        self.shards.iter().flat_map(|s| {
            s.keys
                .iter()
                .zip(&s.vals)
                .filter(|(&k, _)| k != EMPTY)
                .map(|(_, v)| v)
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_lookup_remove_roundtrip() {
        let mut t = LineTable::<u64>::default();
        for line in 0..1000u64 {
            *t.entry(line * 7) = line;
        }
        assert_eq!(t.len(), 1000);
        for line in 0..1000u64 {
            assert_eq!(t.get(line * 7), Some(&line));
        }
        assert_eq!(t.get(3), None);
        for line in (0..1000u64).step_by(2) {
            assert_eq!(t.remove(line * 7), Some(line));
        }
        assert_eq!(t.len(), 500);
        for line in 0..1000u64 {
            let want = (line % 2 == 1).then_some(line);
            assert_eq!(t.get(line * 7).copied(), want);
            assert_eq!(t.get_mut(line * 7).copied(), want);
        }
    }

    #[test]
    fn churn_matches_hashmap_model() {
        use std::collections::HashMap;
        let mut t = LineTable::<u32>::default();
        let mut model: HashMap<u64, u32> = HashMap::new();
        let mut x = 0x9e3779b97f4a7c15u64;
        for step in 0..100_000u32 {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            // A small key space forces collision chains, reinsertion
            // after deletion, and growth across every shard.
            let line = x % 4096;
            match x % 3 {
                0 => {
                    *t.entry(line) = step;
                    model.insert(line, step);
                }
                1 => {
                    assert_eq!(t.remove(line), model.remove(&line));
                }
                _ => {
                    assert_eq!(t.get(line), model.get(&line));
                }
            }
        }
        assert_eq!(t.len(), model.len());
        let mut got: Vec<u32> = t.values().copied().collect();
        let mut want: Vec<u32> = model.values().copied().collect();
        got.sort_unstable();
        want.sort_unstable();
        assert_eq!(got, want);
    }

    #[test]
    fn stride_patterns_stay_spread() {
        // Power-of-two strides are the workloads' worst case; the
        // Fibonacci hash must keep probe chains from clustering enough
        // to matter (correctness here; cost is covered by benches).
        let mut t = LineTable::<u8>::default();
        for i in 0..10_000u64 {
            *t.entry(i * 1024) = 1;
        }
        assert_eq!(t.len(), 10_000);
        for i in 0..10_000u64 {
            assert_eq!(t.get(i * 1024), Some(&1));
        }
    }
}
