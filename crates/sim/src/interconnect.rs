//! Buses, interleaved memory banks and the 2-D mesh network.

use crate::config::{BusParams, Interleave, MemParams, NetParams};
use crate::resource::{Resource, ResourcePool};

/// Selects the memory bank for a line address.
///
/// The simulated system uses permutation-based interleaving (Sohi) to
/// spread strided streams over banks; the Exemplar uses a skewed scheme
/// (Harper & Jump).
pub fn bank_of(line: u64, banks: usize, scheme: Interleave) -> usize {
    debug_assert!(banks.is_power_of_two());
    let mask = (banks - 1) as u64;
    let b = match scheme {
        Interleave::Sequential => line & mask,
        Interleave::Permutation => {
            let s = banks.trailing_zeros();
            (line ^ (line >> s) ^ (line >> (2 * s)) ^ (line >> (3 * s))) & mask
        }
        Interleave::Skewed => (line + (line >> banks.trailing_zeros())) & mask,
    };
    b as usize
}

/// One node's memory banks.
#[derive(Debug, Clone)]
pub struct MemoryBanks {
    pool: ResourcePool,
    params: MemParams,
}

impl MemoryBanks {
    /// Builds the banks for one node.
    pub fn new(params: &MemParams) -> Self {
        MemoryBanks {
            pool: ResourcePool::new(params.banks),
            params: params.clone(),
        }
    }

    /// Reserves the bank that owns `line`; returns the access end time.
    pub fn access(&mut self, line: u64, at: u64) -> u64 {
        let bank = bank_of(line, self.params.banks, self.params.interleave);
        self.pool
            .reserve_unit(bank, at, self.params.bank_cycles as u64)
            + self.params.bank_cycles as u64
    }

    /// Aggregate utilization over `elapsed` cycles.
    pub fn utilization(&self, elapsed: u64) -> mempar_stats::Utilization {
        self.pool.utilization(elapsed)
    }

    /// Registers this node's bank utilization gauge under `name`.
    pub fn export_metrics(&self, name: &str, elapsed: u64, reg: &mut mempar_obs::MetricsRegistry) {
        reg.gauge(name, self.utilization(elapsed).fraction());
    }
}

/// A split-transaction bus with separate address and data channels:
/// the request (address) phase and the data (response) phase reserve
/// independent resources, so new requests slip in while earlier
/// transactions await their data — the defining property of a
/// split-transaction bus.
#[derive(Debug, Clone)]
pub struct Bus {
    addr_channel: Resource,
    data_channel: Resource,
    params: BusParams,
}

impl Bus {
    /// Builds a bus.
    pub fn new(params: &BusParams) -> Self {
        Bus {
            addr_channel: Resource::new(),
            data_channel: Resource::new(),
            params: params.clone(),
        }
    }

    /// Reserves the request phase starting no earlier than `at`;
    /// returns its end time.
    pub fn request(&mut self, at: u64) -> u64 {
        let dur = self.params.request_cycles() as u64;
        self.addr_channel.reserve(at, dur) + dur
    }

    /// Reserves a data transfer of `bytes`; returns its end time.
    pub fn data(&mut self, at: u64, bytes: u32) -> u64 {
        let dur = self.params.data_cycles(bytes) as u64;
        self.data_channel.reserve(at, dur) + dur
    }

    /// Utilization over `elapsed` cycles (data channel — the contended
    /// one; this is the ">85% bus utilization" measurement of §5.1).
    pub fn utilization(&self, elapsed: u64) -> mempar_stats::Utilization {
        self.data_channel.utilization(elapsed)
    }

    /// Registers this bus's data-channel utilization gauge under `name`.
    pub fn export_metrics(&self, name: &str, elapsed: u64, reg: &mut mempar_obs::MetricsRegistry) {
        reg.gauge(name, self.utilization(elapsed).fraction());
    }
}

/// A 2-D mesh with dimension-ordered (X then Y) routing and per-directed-
/// link occupancy.
///
/// Dimension-ordered routes are static, so the link sequence for every
/// (from, to) pair is computed once at construction and `send` just walks
/// a precomputed slice of link indices — no per-hop coordinate
/// arithmetic on the hot path. For the simulated machines this table is
/// tiny (a 4×4 mesh has 256 pairs of at most 6 hops).
#[derive(Debug, Clone)]
pub struct Mesh {
    side: usize,
    ni: u64,
    hop_lat: u64,
    cycle_ratio: u64,
    flit_bytes: u32,
    /// Directed links indexed by (from_node * 4 + direction).
    links: Vec<Resource>,
    /// `routes[route_off[from*n+to]..route_off[from*n+to+1]]` is the link
    /// index sequence from `from` to `to`, in traversal order.
    route_off: Vec<u32>,
    routes: Vec<u32>,
}

/// Directions for link indexing.
const EAST: usize = 0;
const WEST: usize = 1;
const NORTH: usize = 2;
const SOUTH: usize = 3;

impl Mesh {
    /// A `side x side` mesh.
    pub fn new(side: usize, params: &NetParams) -> Self {
        let n = side * side;
        let mut route_off = Vec::with_capacity(n * n + 1);
        let mut routes = Vec::new();
        route_off.push(0u32);
        for from in 0..n {
            for to in 0..n {
                let (mut x, mut y) = (from % side, from / side);
                let (x1, y1) = (to % side, to / side);
                while x != x1 {
                    let (dir, nx) = if x < x1 { (EAST, x + 1) } else { (WEST, x - 1) };
                    routes.push(((y * side + x) * 4 + dir) as u32);
                    x = nx;
                }
                while y != y1 {
                    let (dir, ny) = if y < y1 {
                        (SOUTH, y + 1)
                    } else {
                        (NORTH, y - 1)
                    };
                    routes.push(((y * side + x) * 4 + dir) as u32);
                    y = ny;
                }
                route_off.push(routes.len() as u32);
            }
        }
        Mesh {
            side,
            ni: params.ni_cycles as u64,
            hop_lat: (params.hop_cycles * params.cycle_ratio) as u64,
            cycle_ratio: params.cycle_ratio as u64,
            flit_bytes: params.flit_bytes,
            links: vec![Resource::new(); n * 4],
            route_off,
            routes,
        }
    }

    fn coords(&self, node: usize) -> (usize, usize) {
        (node % self.side, node / self.side)
    }

    /// Number of hops between two nodes (Manhattan distance).
    pub fn hops(&self, from: usize, to: usize) -> u64 {
        let (x0, y0) = self.coords(from);
        let (x1, y1) = self.coords(to);
        (x0.abs_diff(x1) + y0.abs_diff(y1)) as u64
    }

    /// Sends `bytes` from `from` to `to` starting at `at`; returns the
    /// arrival time (including NI latency on both ends).
    ///
    /// Each hop adds the per-hop latency; each traversed link is occupied
    /// for the message's serialization time, modeling wormhole-style
    /// bandwidth contention.
    pub fn send(&mut self, from: usize, to: usize, bytes: u32, at: u64) -> u64 {
        if from == to {
            return at + self.ni;
        }
        let flits = bytes.div_ceil(self.flit_bytes).max(1) as u64;
        let occupancy = flits * self.cycle_ratio;
        let pair = from * self.side * self.side + to;
        let mut t = at + self.ni;
        for i in self.route_off[pair] as usize..self.route_off[pair + 1] as usize {
            let link = self.routes[i] as usize;
            t = self.links[link].reserve(t, occupancy) + self.hop_lat;
        }
        // Tail serialization plus exit NI.
        t + occupancy + self.ni
    }

    /// Aggregate link utilization over `elapsed` cycles (summed over all
    /// directed links; the fraction is the mean per-link busy fraction).
    pub fn utilization(&self, elapsed: u64) -> mempar_stats::Utilization {
        let mut u = mempar_stats::Utilization::default();
        for l in &self.links {
            let x = l.utilization(elapsed);
            u.busy += x.busy;
            u.total += x.total;
        }
        u
    }

    /// Registers the mesh-link utilization gauge under `name`.
    pub fn export_metrics(&self, name: &str, elapsed: u64, reg: &mut mempar_obs::MetricsRegistry) {
        reg.gauge(name, self.utilization(elapsed).fraction());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn net() -> NetParams {
        NetParams {
            cycle_ratio: 2,
            flit_bytes: 8,
            hop_cycles: 2,
            ni_cycles: 8,
        }
    }

    #[test]
    fn bank_selection_covers_all_banks() {
        for scheme in [
            Interleave::Sequential,
            Interleave::Permutation,
            Interleave::Skewed,
        ] {
            let mut seen = [false; 4];
            for line in 0..64u64 {
                seen[bank_of(line, 4, scheme)] = true;
            }
            assert!(seen.iter().all(|&s| s), "{scheme:?} misses banks");
        }
    }

    #[test]
    fn permutation_spreads_power_of_two_strides() {
        // Stride of exactly `banks` lines hits one bank under sequential
        // interleaving but multiple banks under permutation.
        let banks = 4;
        let seq: std::collections::HashSet<_> = (0..16u64)
            .map(|i| bank_of(i * banks as u64, banks, Interleave::Sequential))
            .collect();
        let perm: std::collections::HashSet<_> = (0..16u64)
            .map(|i| bank_of(i * banks as u64, banks, Interleave::Permutation))
            .collect();
        assert_eq!(seq.len(), 1);
        assert!(perm.len() > 1);
    }

    #[test]
    fn banks_serialize_same_bank() {
        let mp = MemParams {
            banks: 4,
            bank_cycles: 10,
            interleave: Interleave::Sequential,
        };
        let mut b = MemoryBanks::new(&mp);
        let t1 = b.access(0, 0);
        let t2 = b.access(4, 0); // same bank (line 4 % 4 == 0)
        let t3 = b.access(1, 0); // different bank
        assert_eq!(t1, 10);
        assert_eq!(t2, 20);
        assert_eq!(t3, 10);
    }

    #[test]
    fn bus_phases_queue() {
        let bp = BusParams {
            cycle_ratio: 3,
            width_bytes: 32,
            addr_cycles: 1,
        };
        let mut bus = Bus::new(&bp);
        let r = bus.request(0);
        assert_eq!(r, 3);
        let r2 = bus.request(0); // queues on the address channel
        assert_eq!(r2, 6);
        let d = bus.data(0, 64); // independent data channel
        assert_eq!(d, 6);
        let d2 = bus.data(0, 64);
        assert_eq!(d2, 12);
    }

    #[test]
    fn mesh_hops_manhattan() {
        let m = Mesh::new(4, &net());
        assert_eq!(m.hops(0, 0), 0);
        assert_eq!(m.hops(0, 3), 3);
        assert_eq!(m.hops(0, 15), 6);
        assert_eq!(m.hops(5, 6), 1);
    }

    #[test]
    fn mesh_latency_grows_with_distance() {
        let mut m = Mesh::new(4, &net());
        let near = m.send(0, 1, 16, 0);
        let mut m2 = Mesh::new(4, &net());
        let far = m2.send(0, 15, 16, 0);
        assert!(far > near);
        // Local "send" is just NI latency.
        let mut m3 = Mesh::new(4, &net());
        assert_eq!(m3.send(2, 2, 16, 100), 108);
    }

    #[test]
    fn mesh_links_contend() {
        let mut m = Mesh::new(2, &net());
        let a = m.send(0, 1, 64, 0);
        let b = m.send(0, 1, 64, 0); // same link, queues
        assert!(b > a);
        let c = m.send(1, 0, 64, 0); // opposite direction: independent link
        assert_eq!(c, a);
    }
}
