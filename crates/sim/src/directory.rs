//! Full-map directory coherence state.
//!
//! One logical directory tracks, per cache line, which processors hold it
//! and whether one of them owns it exclusively. The timing of the
//! resulting message exchanges is modeled by the caller
//! ([`MemSystem`](crate::memsys::MemSystem)); this module is the protocol
//! state machine.

use crate::cache::LineState;
use crate::linetable::LineTable;
use crate::protocol::{push_mask_procs, CohTxn, CoherenceProtocol, DataSource, Protocol};

/// Directory record for one line.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
struct DirEntry {
    /// Bitmask of sharers.
    sharers: u64,
    /// Exclusive owner, if the line is modified in a cache.
    owner: Option<u8>,
}

/// The directory's response to a write request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WriteGrant {
    /// Where the data comes from (irrelevant for upgrades, where the
    /// requester already holds the line shared).
    pub source: DataSource,
    /// Processors whose copies must be invalidated.
    pub invalidees: Vec<usize>,
    /// True when the requester already held the line shared (upgrade).
    pub upgrade: bool,
}

/// Full-map directory.
#[derive(Debug, Clone, Default)]
pub struct Directory {
    entries: LineTable<DirEntry>,
}

impl Directory {
    /// An empty directory (all lines uncached).
    pub fn new() -> Self {
        Self::default()
    }

    /// Handles a read miss by `proc` on `line`; updates state and reports
    /// the data source. A modified owner is downgraded to sharer.
    pub fn read_req(&mut self, line: u64, proc: usize) -> DataSource {
        let e = self.entries.entry(line);
        let src = match e.owner {
            Some(o) if o as usize != proc => DataSource::CacheToCache { owner: o as usize },
            _ => DataSource::Memory,
        };
        if let Some(o) = e.owner.take() {
            e.sharers |= 1 << o;
        }
        e.sharers |= 1 << proc;
        src
    }

    /// Handles a write miss or upgrade by `proc` on `line`; updates state,
    /// reporting the data source and the sharers to invalidate.
    pub fn write_req(&mut self, line: u64, proc: usize) -> WriteGrant {
        let upgrade = self
            .entries
            .get(line)
            .is_some_and(|e| e.sharers & (1 << proc) != 0 && e.owner.is_none());
        let mut txn = CohTxn::default();
        CoherenceProtocol::write_miss(self, line, proc, &mut txn);
        WriteGrant {
            source: txn.source,
            invalidees: txn.invalidees,
            upgrade,
        }
    }

    /// Records that `proc` evicted its copy of `line`.
    pub fn evict(&mut self, line: u64, proc: usize) {
        if let Some(e) = self.entries.get_mut(line) {
            e.sharers &= !(1u64 << proc);
            if e.owner == Some(proc as u8) {
                e.owner = None;
            }
            if e.sharers == 0 && e.owner.is_none() {
                self.entries.remove(line);
            }
        }
    }

    /// Current owner of `line`, if modified in a cache.
    pub fn owner(&self, line: u64) -> Option<usize> {
        self.entries
            .get(line)
            .and_then(|e| e.owner.map(|o| o as usize))
    }

    /// Number of sharers of `line`.
    pub fn sharer_count(&self, line: u64) -> usize {
        self.entries
            .get(line)
            .map(|e| e.sharers.count_ones() as usize + usize::from(e.owner.is_some()))
            .unwrap_or(0)
    }

    /// Number of lines with live directory state.
    pub fn line_count(&self) -> usize {
        self.entries.len()
    }

    /// Total sharer-list population across all tracked lines (exclusive
    /// owners included).
    pub fn total_sharers(&self) -> usize {
        self.entries
            .values()
            .map(|e| e.sharers.count_ones() as usize + usize::from(e.owner.is_some()))
            .sum()
    }
}

/// The MSI directory viewed through the pluggable-protocol interface.
/// Semantics are exactly the inherent methods': every cache-to-cache
/// read supply also writes memory back (downgrading the owner to
/// sharer), fills install `Shared`/`Modified` only, and `Exclusive` is
/// never used, so a write to a present line always takes a transaction
/// unless the line is already `Modified`.
impl CoherenceProtocol for Directory {
    fn kind(&self) -> Protocol {
        Protocol::Directory
    }

    fn read_miss(&mut self, line: u64, proc: usize, txn: &mut CohTxn) {
        let source = Directory::read_req(self, line, proc);
        txn.source = source;
        // The paper's directory keeps memory current: a dirty owner
        // supplying a read writes home back in the same transaction.
        txn.memory_update = matches!(source, DataSource::CacheToCache { .. });
        txn.install = LineState::Shared;
    }

    fn write_miss(&mut self, line: u64, proc: usize, txn: &mut CohTxn) {
        let e = self.entries.entry(line);
        txn.source = match e.owner {
            Some(o) if o as usize != proc => DataSource::CacheToCache { owner: o as usize },
            _ => DataSource::Memory,
        };
        push_mask_procs(e.sharers & !(1u64 << proc), &mut txn.invalidees);
        if let Some(o) = e.owner {
            // Append the owner unless it is the requester or already in
            // the list via the sharer mask (it never is in MSI, where
            // owner and sharers are exclusive — this mirrors the
            // belt-and-braces `contains` check the list-building loop
            // used to do).
            if o as usize != proc && e.sharers & (1u64 << o) == 0 {
                txn.invalidees.push(o as usize);
            }
        }
        e.sharers = 0;
        e.owner = Some(proc as u8);
        txn.install = LineState::Modified;
    }

    fn evict(&mut self, line: u64, proc: usize) {
        Directory::evict(self, line, proc);
    }

    fn silent_upgrade(&mut self, _line: u64, _proc: usize) {
        // MSI has no Exclusive state; writes to Modified lines are
        // already owned and need no notification.
    }

    fn write_hits(&self, state: LineState) -> bool {
        state == LineState::Modified
    }

    fn upgradeable(&self, state: LineState) -> bool {
        state == LineState::Shared
    }

    fn line_count(&self) -> usize {
        Directory::line_count(self)
    }

    fn total_sharers(&self) -> usize {
        Directory::total_sharers(self)
    }

    fn table_slots(&self) -> usize {
        self.entries.capacity()
    }

    // `export_metrics` uses the trait default: canonical `sim.coh.lines`
    // / `sim.coh.sharers` gauges. The legacy `sim.dir.*` names are
    // aliased once, centrally, in `MemSystem::export_metrics`.
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cold_read_comes_from_memory() {
        let mut d = Directory::new();
        assert_eq!(d.read_req(10, 0), DataSource::Memory);
        assert_eq!(d.sharer_count(10), 1);
    }

    #[test]
    fn second_reader_shares() {
        let mut d = Directory::new();
        d.read_req(10, 0);
        assert_eq!(d.read_req(10, 1), DataSource::Memory);
        assert_eq!(d.sharer_count(10), 2);
    }

    #[test]
    fn read_of_modified_line_is_c2c_and_downgrades() {
        let mut d = Directory::new();
        d.write_req(10, 2);
        assert_eq!(d.owner(10), Some(2));
        assert_eq!(d.read_req(10, 0), DataSource::CacheToCache { owner: 2 });
        assert_eq!(d.owner(10), None);
        assert_eq!(d.sharer_count(10), 2);
    }

    #[test]
    fn write_invalidates_sharers() {
        let mut d = Directory::new();
        d.read_req(10, 0);
        d.read_req(10, 1);
        d.read_req(10, 2);
        let g = d.write_req(10, 0);
        assert!(g.upgrade);
        assert_eq!(g.source, DataSource::Memory);
        let mut inv = g.invalidees.clone();
        inv.sort_unstable();
        assert_eq!(inv, vec![1, 2]);
        assert_eq!(d.owner(10), Some(0));
        assert_eq!(d.sharer_count(10), 1);
    }

    #[test]
    fn write_of_remote_modified_is_c2c() {
        let mut d = Directory::new();
        d.write_req(10, 3);
        let g = d.write_req(10, 1);
        assert!(!g.upgrade);
        assert_eq!(g.source, DataSource::CacheToCache { owner: 3 });
        assert_eq!(g.invalidees, vec![3]);
        assert_eq!(d.owner(10), Some(1));
    }

    #[test]
    fn rewrite_by_owner_is_silent() {
        let mut d = Directory::new();
        d.write_req(10, 1);
        let g = d.write_req(10, 1);
        assert!(g.invalidees.is_empty());
        assert_eq!(g.source, DataSource::Memory);
    }

    #[test]
    fn eviction_clears_state() {
        let mut d = Directory::new();
        d.read_req(10, 0);
        d.evict(10, 0);
        assert_eq!(d.sharer_count(10), 0);
        d.write_req(11, 5);
        d.evict(11, 5);
        assert_eq!(d.owner(11), None);
    }
}
