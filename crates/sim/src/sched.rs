//! The discrete-event stepper behind [`Stepper::Event`]: instead of
//! stepping every core every cycle (strict), or every core on every
//! *globally* interesting cycle (skip), each core carries its own wake
//! time and is stepped only in rounds where it is scheduled. Event-dense
//! multiprocessor runs stop paying per-cycle costs for cores that are
//! stalled on a miss or parked at a barrier.
//!
//! Exactness rests on two invariants (see DESIGN.md §10):
//!
//! 1. *No component steps past its scheduled time.* A core's wake time
//!    comes from [`Core::next_event_time`], whose contract is that every
//!    condition able to change the core's behavior on an intermediate
//!    cycle maps to a candidate. Cycles a core sits out are therefore
//!    provably no-op retire/issue/fetch calls, and their stall
//!    attribution is settled in bulk by [`Core::charge_idle`] at the
//!    next step (the stall class cannot change while the head is stuck).
//!    The clock likewise never jumps past a memory-system fill, so
//!    occupancy samples and fill application stay cycle-exact.
//!
//! 2. *Sync operations pin the horizon.* A sleeping core (no wake
//!    candidate) is necessarily parked on an unreleased barrier or an
//!    unset flag — only another processor can wake it. Both paths bump
//!    [`SyncState::version`], which forces a wake recompute for every
//!    live core at the end of the round. Barrier releases are always
//!    scheduled in the future, so the recompute sees them in time; a
//!    flag *set in the current round* is visible same-cycle to
//!    higher-numbered processors in strict mode, so the retire phase
//!    additionally consults the round's fresh tail of
//!    [`SyncState::flag_log`] to pull those waiters into the current
//!    round.
//!
//! The optional sharded mode farms the wake recompute — the only
//! remaining O(window) scan — out to worker threads. Every phase that
//! mutates shared state (memory system, sync, tracer, fetch) runs on
//! the coordinating thread in fixed global core order; workers receive
//! a published `(now, sync snapshot)` pair and write only their own
//! shard's wake times. The recompute is a pure function of published
//! state, so cycles, traces, and metrics are bit-identical at every
//! shard count by construction.

use std::sync::{Arc, Condvar, Mutex};

use mempar_obs::{TraceEventKind, SYSTEM_PROC};

use crate::core::Core;
use crate::sync::SyncState;
use crate::system::{
    deadlock_panic, fetch_stage, trace_stall_transition, DriverState, DEADLOCK_WINDOW,
};

#[cfg(doc)]
use crate::system::Stepper;

/// "No wake scheduled": the core sleeps until shared sync state changes
/// (or forever, when the run is deadlocked).
const NO_WAKE: u64 = u64::MAX;

/// A contiguous block of cores plus the per-core scheduling state the
/// wake-recompute phase reads and writes. Workers only ever touch their
/// own shard, and only between the coordinator's publish (mutex release)
/// and the next round's re-lock.
struct Shard {
    /// Global index of `cores[0]`.
    base: usize,
    cores: Vec<Core>,
    /// Next cycle each core must be stepped (`NO_WAKE` = asleep).
    wake: Vec<u64>,
    /// First cycle not yet charged to each core's stall breakdown.
    charged_until: Vec<u64>,
    /// Cores whose wake time must be recomputed this round.
    need: Vec<bool>,
    /// Clock value published by the coordinator for this round.
    now: u64,
    /// Snapshot of the shared sync state, republished on version change.
    sync: Arc<SyncState>,
}

impl Shard {
    /// Recomputes the wake time of every marked core. Pure with respect
    /// to published state: reads `cores`/`sync`/`now`, writes
    /// `wake`/`need` — deterministic no matter which thread runs it.
    fn recompute(&mut self) {
        for (li, core) in self.cores.iter().enumerate() {
            if self.need[li] {
                self.need[li] = false;
                self.wake[li] = core
                    .next_event_time(&self.sync, self.now)
                    .unwrap_or(NO_WAKE);
            }
        }
    }
}

/// Strategy for running the end-of-round wake recompute over all shards.
trait WakePool {
    fn recompute(&self, shards: &[Mutex<Shard>]);
}

/// Single-threaded recompute (the `shards <= 1` path).
struct Inline;

impl WakePool for Inline {
    fn recompute(&self, shards: &[Mutex<Shard>]) {
        for m in shards {
            m.lock().unwrap().recompute();
        }
    }
}

/// Round-gate state shared between the coordinator and workers. Blocking
/// (condvar) rather than spinning: recompute rounds are short and there
/// is one per simulated event cycle, so busy-waiting workers would
/// starve the coordinator whenever the host has fewer free cores than
/// shards (they cost ~2 context switches per worker per round instead).
struct TeamState {
    gate: Mutex<RoundGate>,
    /// Workers wait here for a round bump (or stop).
    go: Condvar,
    /// The coordinator waits here for the round's done count.
    finished: Condvar,
}

struct RoundGate {
    /// Incremented by the coordinator to start a recompute round.
    round: u64,
    /// Count of workers finished with the current round.
    done: usize,
    /// Set to shut the team down.
    stop: bool,
}

/// Worker-thread recompute: shard 0 runs on the coordinator while the
/// workers cover shards `1..`.
struct Team<'a> {
    team: &'a TeamState,
    nworkers: usize,
}

impl WakePool for Team<'_> {
    fn recompute(&self, shards: &[Mutex<Shard>]) {
        {
            let mut g = self.team.gate.lock().unwrap();
            g.done = 0;
            g.round += 1;
            self.team.go.notify_all();
        }
        shards[0].lock().unwrap().recompute();
        let mut g = self.team.gate.lock().unwrap();
        while g.done < self.nworkers {
            g = self.team.finished.wait(g).unwrap();
        }
    }
}

/// Worker loop: wait for a round bump, recompute the owned shard, report
/// done. Shard data is synchronized by the shard mutex; the gate only
/// sequences rounds. The stop check precedes the shard lock so workers
/// never touch shard mutexes poisoned by a coordinator panic (deadlock
/// diagnostics unwind while holding every shard guard).
fn worker(si: usize, shards: &[Mutex<Shard>], team: &TeamState) {
    let mut seen = 0u64;
    loop {
        {
            let mut g = team.gate.lock().unwrap();
            while g.round == seen && !g.stop {
                g = team.go.wait(g).unwrap();
            }
            if g.stop {
                return;
            }
            seen = g.round;
        }
        shards[si].lock().unwrap().recompute();
        let mut g = team.gate.lock().unwrap();
        g.done += 1;
        team.finished.notify_all();
    }
}

/// Releases the worker team when the coordinator exits — including by
/// panic (deadlock diagnostics), so `thread::scope` can still join.
struct StopOnDrop<'a>(&'a TeamState);

impl Drop for StopOnDrop<'_> {
    fn drop(&mut self) {
        if let Ok(mut g) = self.0.gate.lock() {
            g.stop = true;
            self.0.go.notify_all();
        }
    }
}

/// Runs the machine in `st` to completion under the event stepper,
/// sharding the wake recompute across `shards` threads (`<= 1` =
/// single-threaded; clamped to the processor count).
pub(crate) fn event_loop(st: &mut DriverState, shards: usize) {
    let nprocs = st.cores.len();
    let nshards = shards.clamp(1, nprocs.max(1));
    let sync0 = Arc::new(st.sync.clone());
    let mut rest: Vec<Core> = std::mem::take(&mut st.cores);
    let mut shard_vec: Vec<Mutex<Shard>> = Vec::with_capacity(nshards);
    let (per, rem) = (nprocs / nshards, nprocs % nshards);
    let mut base = 0;
    for si in 0..nshards {
        let len = per + usize::from(si < rem);
        let cores: Vec<Core> = rest.drain(..len).collect();
        shard_vec.push(Mutex::new(Shard {
            base,
            cores,
            // Everything starts due at cycle 0, mirroring the strict
            // driver's first cycle.
            wake: vec![0; len],
            charged_until: vec![0; len],
            need: vec![false; len],
            now: 0,
            sync: Arc::clone(&sync0),
        }));
        base += len;
    }
    if nshards <= 1 {
        drive(st, &shard_vec, &Inline);
    } else {
        let team = TeamState {
            gate: Mutex::new(RoundGate {
                round: 0,
                done: 0,
                stop: false,
            }),
            go: Condvar::new(),
            finished: Condvar::new(),
        };
        std::thread::scope(|scope| {
            for si in 1..nshards {
                let (shards_ref, team_ref) = (&shard_vec, &team);
                scope.spawn(move || worker(si, shards_ref, team_ref));
            }
            let _stop = StopOnDrop(&team);
            let pool = Team {
                team: &team,
                nworkers: nshards - 1,
            };
            drive(st, &shard_vec, &pool);
        });
    }
    for m in shard_vec {
        st.cores.extend(m.into_inner().unwrap().cores);
    }
}

/// The event-driven round loop. Each round runs at one simulated cycle
/// `now` (the minimum over all wake times and the next memory-system
/// fill): tick memory, then retire/trace/issue/fetch exactly the cores
/// scheduled for this cycle, in global core order — the same order and
/// the same calls the strict driver makes on this cycle, minus calls
/// that are provable no-ops.
fn drive(st: &mut DriverState, shards: &[Mutex<Shard>], pool: &dyn WakePool) {
    let nprocs = st.interps.len();
    let mut stepped = vec![false; nprocs];
    let mut now: u64 = 0;
    let mut last_retired: u64 = 0;
    let mut last_progress_cycle: u64 = 0;
    loop {
        let mut guards: Vec<_> = shards.iter().map(|m| m.lock().unwrap()).collect();
        st.memsys.tick(now);
        let flag_mark = st.sync.flag_log().len();
        let version_mark = st.sync.version();
        let mut all_halted = true;
        for g in guards.iter_mut() {
            let Shard {
                base,
                cores,
                wake,
                charged_until,
                ..
            } = &mut **g;
            for (li, core) in cores.iter_mut().enumerate() {
                let gi = *base + li;
                stepped[gi] = false;
                if core.halted {
                    continue;
                }
                // Due this cycle by schedule, or pulled in by a flag set
                // earlier in this same round (same-cycle visibility to
                // higher-numbered processors, as under strict stepping).
                let due = wake[li] <= now
                    || core
                        .head_flag_wait()
                        .is_some_and(|f| st.sync.flag_log()[flag_mark..].contains(&f));
                if due {
                    core.charge_idle(now - charged_until[li]);
                    core.retire(&mut st.sync, now);
                    charged_until[li] = now + 1;
                    stepped[gi] = true;
                }
                if !core.halted {
                    all_halted = false;
                }
            }
        }
        if st.tracing {
            // Only stepped cores can change stall class (charge_idle
            // continues the class of the last step across skipped
            // rounds), so the strict driver's per-cycle transition scan
            // reduces to the stepped set.
            for g in guards.iter() {
                for (li, core) in g.cores.iter().enumerate() {
                    if stepped[g.base + li] {
                        trace_stall_transition(&mut st.memsys, &mut st.stall_state, core, now);
                    }
                }
            }
        }
        if all_halted {
            break;
        }
        for g in guards.iter_mut() {
            let Shard { base, cores, .. } = &mut **g;
            for (li, core) in cores.iter_mut().enumerate() {
                let gi = *base + li;
                if stepped[gi] && !core.halted {
                    core.issue(&mut st.memsys, now);
                    fetch_stage(core, &mut st.interps[gi], st.mem, now, &mut st.reuse);
                }
            }
        }
        // Deadlock diagnostics, matching the per-cycle driver.
        let retired: u64 = guards
            .iter()
            .flat_map(|g| g.cores.iter())
            .map(|c| c.retired)
            .sum();
        if retired != last_retired {
            last_retired = retired;
            last_progress_cycle = now;
        } else if now - last_progress_cycle > DEADLOCK_WINDOW {
            deadlock_panic(guards.iter().flat_map(|g| g.cores.iter()), now);
        }
        // Publish this round's clock (and, when a barrier release was
        // scheduled or a flag set, a fresh sync snapshot) and mark wake
        // recomputes: every stepped core, plus — on a sync version
        // change — every live core, since sync events are the only way
        // another processor's action can move a core's wake *earlier*.
        let version_changed = st.sync.version() != version_mark;
        let snapshot = version_changed.then(|| Arc::new(st.sync.clone()));
        for g in guards.iter_mut() {
            let Shard {
                base,
                cores,
                need,
                now: shard_now,
                sync,
                ..
            } = &mut **g;
            for (li, core) in cores.iter().enumerate() {
                if stepped[*base + li] || (version_changed && !core.halted) {
                    need[li] = true;
                }
            }
            *shard_now = now;
            if let Some(s) = &snapshot {
                *sync = Arc::clone(s);
            }
        }
        drop(guards);
        pool.recompute(shards);
        let mut next = st.memsys.next_event_time().unwrap_or(NO_WAKE);
        for m in shards {
            let g = m.lock().unwrap();
            for &w in &g.wake {
                next = next.min(w);
            }
        }
        if next == NO_WAKE {
            // No event anywhere: the run can never progress again. Jump
            // to the diagnostic horizon so the deadlock check above fires
            // with the same cycle number strict stepping reports.
            now = last_progress_cycle + DEADLOCK_WINDOW + 1;
            continue;
        }
        if next > now + 1 {
            // Whole-system gap: account it exactly as the skip driver
            // does, so occupancy sample counts stay cycle-exact. (Stall
            // attribution is per-core and settles lazily via
            // `charged_until` at each core's next step.)
            let span = next - now - 1;
            if st.tracing {
                st.memsys.tracer_mut().record(
                    now,
                    SYSTEM_PROC,
                    TraceEventKind::HorizonJump { span },
                );
            }
            st.memsys.idle_sample(span);
        }
        now = next;
    }
}
