//! The discrete-event stepper behind [`Stepper::Event`]: instead of
//! stepping every core every cycle (strict), or every core on every
//! *globally* interesting cycle (skip), each core carries its own wake
//! time and is stepped only in rounds where it is scheduled. Event-dense
//! multiprocessor runs stop paying per-cycle costs for cores that are
//! stalled on a miss or parked at a barrier.
//!
//! Exactness rests on two invariants (see DESIGN.md §10):
//!
//! 1. *No component steps past its scheduled time.* A core's wake time
//!    comes from [`Core::next_event_time`], whose contract is that every
//!    condition able to change the core's behavior on an intermediate
//!    cycle maps to a candidate. Cycles a core sits out are therefore
//!    provably no-op retire/issue/fetch calls, and their stall
//!    attribution is settled in bulk by [`Core::charge_idle`] at the
//!    next step (the stall class cannot change while the head is stuck).
//!    The clock likewise never jumps past a memory-system fill, so
//!    occupancy samples and fill application stay cycle-exact.
//!
//! 2. *Sync operations pin the horizon.* A sleeping core (no wake
//!    candidate) is necessarily parked on an unreleased barrier or an
//!    unset flag — only another processor can wake it. Both paths bump
//!    [`SyncState::version`], which forces a wake recompute at the end
//!    of the round for every live core the change can reach — cores
//!    whose window head is a sync wait, plus sleepers; every other
//!    core's wake candidates are core-local, so its held wake time
//!    stays exact. Barrier releases are always
//!    scheduled in the future, so the recompute sees them in time; a
//!    flag *set in the current round* is visible same-cycle to
//!    higher-numbered processors in strict mode, so the retire phase
//!    additionally consults the round's fresh tail of
//!    [`SyncState::flag_log`] to pull those waiters into the current
//!    round.
//!
//! The optional sharded mode farms the wake recompute — the only
//! remaining O(window) scan — out to worker threads. Every phase that
//! mutates shared state (memory system, sync, tracer, fetch) runs on
//! the coordinating thread in fixed global core order; workers receive
//! a published `(now, sync snapshot)` pair and write only their own
//! shard's wake times. The recompute is a pure function of published
//! state, so cycles, traces, and metrics are bit-identical at every
//! shard count by construction.

use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};

use mempar_obs::{TraceEventKind, SYSTEM_PROC};

use crate::core::Core;
use crate::sync::SyncState;
use crate::system::{
    deadlock_panic, fetch_stage, trace_stall_transition, DriverState, DEADLOCK_WINDOW,
};

#[cfg(doc)]
use crate::system::Stepper;

/// "No wake scheduled": the core sleeps until shared sync state changes
/// (or forever, when the run is deadlocked).
const NO_WAKE: u64 = u64::MAX;

/// A contiguous block of cores plus the per-core scheduling state the
/// wake-recompute phase reads and writes. Workers only ever touch their
/// own shard, and only between the coordinator's publish (mutex release)
/// and the next round's re-lock.
struct Shard {
    /// Global index of `cores[0]`.
    base: usize,
    cores: Vec<Core>,
    /// Next cycle each core must be stepped (`NO_WAKE` = asleep).
    wake: Vec<u64>,
    /// First cycle not yet charged to each core's stall breakdown.
    charged_until: Vec<u64>,
    /// Cores whose wake time must be recomputed this round.
    need: Vec<bool>,
    /// Number of `true` entries in `need` (lets a recompute with nothing
    /// to do — a fill-event-only round — be skipped entirely).
    pending: u32,
    /// Clock value published by the coordinator for this round.
    now: u64,
    /// Snapshot of the shared sync state, republished on version change.
    sync: Arc<SyncState>,
    /// Local indices of the cores whose wake time equals the shard's
    /// published minimum — rebuilt by every recompute, and still exact
    /// when the recompute is skipped (nothing marked means no wake time
    /// moved). When the round's clock lands on this shard's minimum,
    /// these are exactly the cores due by schedule, so the retire phase
    /// can walk this list instead of rescanning every core.
    due_local: Vec<u32>,
}

impl Shard {
    /// Recomputes the wake time of every marked core and publishes the
    /// shard's minimum wake into `min_out`. Pure with respect to
    /// published state: reads `cores`/`sync`/`now`, writes
    /// `wake`/`need`/`min_out` — deterministic no matter which thread
    /// runs it. When nothing is marked the previously published minimum
    /// is still exact, so the whole call is skipped.
    fn recompute(&mut self, min_out: &AtomicU64) {
        if self.pending == 0 {
            return;
        }
        self.pending = 0;
        let mut min = NO_WAKE;
        self.due_local.clear();
        for (li, core) in self.cores.iter().enumerate() {
            if self.need[li] {
                self.need[li] = false;
                self.wake[li] = core
                    .next_event_time(&self.sync, self.now)
                    .unwrap_or(NO_WAKE);
            }
            let w = self.wake[li];
            // Single pass: a new minimum restarts the due list; matches
            // extend it. Amortized O(cores) — each index is pushed at
            // most once per restart, and restarts strictly lower `min`.
            match w.cmp(&min) {
                std::cmp::Ordering::Less => {
                    min = w;
                    self.due_local.clear();
                    self.due_local.push(li as u32);
                }
                std::cmp::Ordering::Equal => self.due_local.push(li as u32),
                std::cmp::Ordering::Greater => {}
            }
        }
        if min == NO_WAKE {
            self.due_local.clear();
        }
        min_out.store(min, Ordering::Release);
    }
}

/// Strategy for running the end-of-round wake recompute over all shards.
/// `pending[si]` is the number of cores marked in shard `si` this round;
/// shards with zero pending are skipped (their published min is still
/// exact).
trait WakePool {
    fn recompute(&self, shards: &[Mutex<Shard>], mins: &[AtomicU64], pending: &[u32]);

    /// Runs the round's recompute on the calling thread while the
    /// driver still holds every shard guard, returning `true` when the
    /// round is fully handled. Pools that would hand work to other
    /// threads return `false`; the driver then drops the guards and
    /// calls [`WakePool::recompute`]. The recompute itself is the same
    /// pure function of published shard state either way, so which path
    /// runs it cannot change results — only who takes the locks.
    fn recompute_locked(
        &self,
        guards: &mut [MutexGuard<'_, Shard>],
        mins: &[AtomicU64],
        pending: &[u32],
    ) -> bool {
        let _ = (guards, mins, pending);
        false
    }
}

/// Recomputes every pending shard on the calling thread.
fn recompute_inline(shards: &[Mutex<Shard>], mins: &[AtomicU64], pending: &[u32]) {
    for ((m, min_out), &p) in shards.iter().zip(mins).zip(pending) {
        if p > 0 {
            m.lock().unwrap().recompute(min_out);
        }
    }
}

/// Single-threaded recompute (the `shards <= 1` path).
struct Inline;

impl WakePool for Inline {
    fn recompute(&self, shards: &[Mutex<Shard>], mins: &[AtomicU64], pending: &[u32]) {
        recompute_inline(shards, mins, pending);
    }

    fn recompute_locked(
        &self,
        guards: &mut [MutexGuard<'_, Shard>],
        mins: &[AtomicU64],
        pending: &[u32],
    ) -> bool {
        for ((g, min_out), &p) in guards.iter_mut().zip(mins).zip(pending) {
            if p > 0 {
                g.recompute(min_out);
            }
        }
        true
    }
}

/// Rounds this small are cheaper to run on the coordinator than to hand
/// to the worker team (the handoff costs two fence/wake pairs per
/// worker; a wake recompute is a few hundred nanoseconds).
const INLINE_BATCH: u32 = 4;

/// Per-round recompute batch threshold below which the coordinator runs
/// the round itself. On a host without real parallelism the handoff can
/// never pay for itself — every round costs two context switches on the
/// only CPU — so the team is bypassed entirely (`u32::MAX`); sharded
/// runs then degrade gracefully to inline recomputes instead of
/// thrashing the scheduler, and stay bit-identical either way (the
/// recompute is a pure function of published state, no matter which
/// thread runs it).
fn inline_threshold() -> u32 {
    match std::thread::available_parallelism() {
        Ok(p) if p.get() > 1 => INLINE_BATCH,
        _ => u32::MAX,
    }
}

/// Worker spin budget before yielding, and yield budget before parking
/// on the condvar. Most rounds arrive back-to-back, so a short spin
/// catches them without a syscall; parking bounds the cost when the
/// coordinator goes quiet (inline-batch stretches, end of run).
const SPIN_ROUNDS: u32 = 64;
const YIELD_ROUNDS: u32 = 64;

/// Round-gate state shared between the coordinator and workers: a
/// generation counter the workers watch (spin, then yield, then park)
/// and a done counter the coordinator watches. The mutex/condvar pair
/// exists only for parked workers — on the common back-to-back-round
/// path neither side takes a lock or makes a syscall, where the previous
/// condvar gate cost ~2 context switches per worker per round.
struct TeamState {
    /// Incremented by the coordinator to start a recompute round.
    round: AtomicU64,
    /// Count of workers finished with the current round.
    done: AtomicUsize,
    /// Set to shut the team down.
    stop: AtomicBool,
    /// Number of workers parked on `go` (incremented under the lock, so
    /// the coordinator's post-bump check cannot miss a sleeper).
    sleepers: Mutex<usize>,
    /// Parked workers wait here for a round bump (or stop).
    go: Condvar,
}

/// Worker-thread recompute: shard 0 runs on the coordinator while the
/// workers cover shards `1..`. Rounds with little to do skip the team
/// entirely and run inline.
struct Team<'a> {
    team: &'a TeamState,
    nworkers: usize,
    /// Batches at or below this size run inline on the coordinator (see
    /// [`inline_threshold`]).
    inline_threshold: u32,
}

impl WakePool for Team<'_> {
    fn recompute_locked(
        &self,
        guards: &mut [MutexGuard<'_, Shard>],
        mins: &[AtomicU64],
        pending: &[u32],
    ) -> bool {
        // Same batch-size cut as `recompute`: rounds the coordinator
        // would run itself anyway skip the unlock/relock round-trip. On
        // hosts without real parallelism (`inline_threshold` =
        // `u32::MAX`) this is every round.
        let total: u32 = pending.iter().sum();
        let worker_pending: u32 = pending[1..].iter().sum();
        if worker_pending != 0 && total > self.inline_threshold {
            return false;
        }
        for ((g, min_out), &p) in guards.iter_mut().zip(mins).zip(pending) {
            if p > 0 {
                g.recompute(min_out);
            }
        }
        true
    }

    fn recompute(&self, shards: &[Mutex<Shard>], mins: &[AtomicU64], pending: &[u32]) {
        let total: u32 = pending.iter().sum();
        let worker_pending: u32 = pending[1..].iter().sum();
        if worker_pending == 0 || total <= self.inline_threshold {
            recompute_inline(shards, mins, pending);
            return;
        }
        let t = self.team;
        t.done.store(0, Ordering::Relaxed);
        // Release on the bump publishes the done reset (and the shard
        // state written under the just-released shard locks) to workers
        // acquiring the new round number.
        t.round.fetch_add(1, Ordering::Release);
        {
            let sleepers = t.sleepers.lock().unwrap();
            if *sleepers > 0 {
                t.go.notify_all();
            }
        }
        shards[0].lock().unwrap().recompute(&mins[0]);
        let mut spins = 0u32;
        while t.done.load(Ordering::Acquire) < self.nworkers {
            spins += 1;
            if spins < 4096 {
                std::hint::spin_loop();
            } else {
                std::thread::yield_now();
            }
        }
    }
}

/// Worker loop: watch for a round bump (spin → yield → park), recompute
/// the owned shard, report done. Shard data is synchronized by the shard
/// mutex; the gate only sequences rounds. The stop check precedes the
/// shard lock so workers never touch shard mutexes poisoned by a
/// coordinator panic (deadlock diagnostics unwind while holding every
/// shard guard).
fn worker(si: usize, shards: &[Mutex<Shard>], mins: &[AtomicU64], team: &TeamState) {
    let mut seen = 0u64;
    loop {
        let mut spins = 0u32;
        loop {
            if team.stop.load(Ordering::Acquire) {
                return;
            }
            let r = team.round.load(Ordering::Acquire);
            if r != seen {
                seen = r;
                break;
            }
            spins += 1;
            if spins < SPIN_ROUNDS {
                std::hint::spin_loop();
            } else if spins < SPIN_ROUNDS + YIELD_ROUNDS {
                std::thread::yield_now();
            } else {
                let mut sleepers = team.sleepers.lock().unwrap();
                // Re-check under the lock: the coordinator's post-bump
                // sleeper check also takes it, so a bump between the
                // loads above and here cannot be lost.
                if !team.stop.load(Ordering::Acquire) && team.round.load(Ordering::Acquire) == seen
                {
                    *sleepers += 1;
                    sleepers = team.go.wait(sleepers).unwrap();
                    *sleepers -= 1;
                }
                drop(sleepers);
                spins = 0;
            }
        }
        shards[si].lock().unwrap().recompute(&mins[si]);
        team.done.fetch_add(1, Ordering::Release);
    }
}

/// Releases the worker team when the coordinator exits — including by
/// panic (deadlock diagnostics), so `thread::scope` can still join.
struct StopOnDrop<'a>(&'a TeamState);

impl Drop for StopOnDrop<'_> {
    fn drop(&mut self) {
        self.0.stop.store(true, Ordering::Release);
        if let Ok(_sleepers) = self.0.sleepers.lock() {
            self.0.go.notify_all();
        }
    }
}

/// Runs the machine in `st` to completion under the event stepper,
/// sharding the wake recompute across `shards` threads (`<= 1` =
/// single-threaded; clamped to the processor count).
pub(crate) fn event_loop(st: &mut DriverState, shards: usize) {
    let nprocs = st.cores.len();
    let nshards = shards.clamp(1, nprocs.max(1));
    let sync0 = Arc::new(st.sync.clone());
    let mut rest: Vec<Core> = std::mem::take(&mut st.cores);
    let mut shard_vec: Vec<Mutex<Shard>> = Vec::with_capacity(nshards);
    let (per, rem) = (nprocs / nshards, nprocs % nshards);
    let mut base = 0;
    for si in 0..nshards {
        let len = per + usize::from(si < rem);
        let cores: Vec<Core> = rest.drain(..len).collect();
        shard_vec.push(Mutex::new(Shard {
            base,
            cores,
            // Everything starts due at cycle 0, mirroring the strict
            // driver's first cycle.
            wake: vec![0; len],
            charged_until: vec![0; len],
            need: vec![false; len],
            pending: 0,
            now: 0,
            sync: Arc::clone(&sync0),
            // Everyone is due at cycle 0, matching the initial wakes.
            due_local: (0..len as u32).collect(),
        }));
        base += len;
    }
    // Published per-shard minimum wake times; initially every core is
    // due at cycle 0.
    let mins: Vec<AtomicU64> = (0..nshards).map(|_| AtomicU64::new(0)).collect();
    if nshards <= 1 {
        drive(st, &shard_vec, &mins, &Inline);
    } else {
        let team = TeamState {
            round: AtomicU64::new(0),
            done: AtomicUsize::new(0),
            stop: AtomicBool::new(false),
            sleepers: Mutex::new(0),
            go: Condvar::new(),
        };
        std::thread::scope(|scope| {
            for si in 1..nshards {
                let (shards_ref, mins_ref, team_ref) = (&shard_vec, &mins, &team);
                scope.spawn(move || worker(si, shards_ref, mins_ref, team_ref));
            }
            let _stop = StopOnDrop(&team);
            let pool = Team {
                team: &team,
                nworkers: nshards - 1,
                inline_threshold: inline_threshold(),
            };
            drive(st, &shard_vec, &mins, &pool);
        });
    }
    for m in shard_vec {
        st.cores.extend(m.into_inner().unwrap().cores);
    }
}

/// The event-driven round loop. Each round runs at one simulated cycle
/// `now` (the minimum over all wake times and the next memory-system
/// fill): tick memory, then retire/trace/issue/fetch exactly the cores
/// scheduled for this cycle, in global core order — the same order and
/// the same calls the strict driver makes on this cycle, minus calls
/// that are provable no-ops.
fn drive(st: &mut DriverState, shards: &[Mutex<Shard>], mins: &[AtomicU64], pool: &dyn WakePool) {
    let nprocs = st.interps.len();
    // `(shard, local, global)` index of every core stepped this round,
    // in global core order. Lets the issue/trace/publish phases walk
    // only the stepped set instead of rescanning every core; reused
    // across rounds so the steady-state loop never allocates.
    let mut due: Vec<(usize, usize, usize)> = Vec::with_capacity(nprocs);
    let mut pending_counts = vec![0u32; shards.len()];
    // Copy of each shard's published minimum wake, read back when the
    // round clock is chosen: a shard's precomputed due set applies only
    // to rounds landing exactly on its minimum.
    let mut shard_mins = vec![0u64; shards.len()];
    // Cores not yet halted; a core can only halt in its own retire call,
    // so the count stays exact without any rescan.
    let mut live: usize = shards
        .iter()
        .map(|m| m.lock().unwrap().cores.iter().filter(|c| !c.halted).count())
        .sum();
    // Reused across rounds (`clear` drops the locks but keeps the
    // capacity), so the steady-state loop never allocates.
    let mut guards: Vec<MutexGuard<'_, Shard>> = Vec::with_capacity(shards.len());
    let mut now: u64 = 0;
    let mut last_progress_cycle: u64 = 0;
    loop {
        // Guards persist across rounds whose recompute ran locked (the
        // common case: single-shard runs and hosts where the team is
        // bypassed); only a team handoff forces a drop and relock.
        if guards.is_empty() {
            guards.extend(shards.iter().map(|m| m.lock().unwrap()));
        }
        st.memsys.tick(now);
        let flag_mark = st.sync.flag_log().len();
        let version_mark = st.sync.version();
        due.clear();
        let mut retired_delta: u64 = 0;
        for (si, g) in guards.iter_mut().enumerate() {
            let Shard {
                base,
                cores,
                wake,
                charged_until,
                due_local,
                ..
            } = &mut **g;
            let base = *base;
            // Fast path: walk the shard's precomputed due set while no
            // flag has been set this round. The due set is exact for
            // rounds landing on the shard's minimum (every other round
            // schedules none of its cores), and any fresh flag drops to
            // the strict in-order scan below for the remaining cores, so
            // same-cycle flag visibility is preserved exactly: cores
            // before the switch point are lower-numbered than the
            // setter, which strict visibility never reaches anyway.
            let mut next_li = 0usize;
            if shard_mins[si] == now {
                let mut d = 0;
                while d < due_local.len() && st.sync.flag_log().len() == flag_mark {
                    let li = due_local[d] as usize;
                    d += 1;
                    next_li = li + 1;
                    let core = &mut cores[li];
                    if core.halted {
                        continue;
                    }
                    core.charge_idle(now - charged_until[li]);
                    let before = core.retired;
                    core.retire(&mut st.sync, now);
                    retired_delta += core.retired - before;
                    charged_until[li] = now + 1;
                    if core.halted {
                        live -= 1;
                    }
                    due.push((si, li, base + li));
                }
            }
            if st.sync.flag_log().len() > flag_mark {
                // A flag was set this round: finish the shard with the
                // full scan — due by schedule, or pulled in by the flag
                // (same-cycle visibility to higher-numbered processors,
                // as under strict stepping).
                for li in next_li..cores.len() {
                    let core = &mut cores[li];
                    if core.halted {
                        continue;
                    }
                    let is_due = wake[li] <= now
                        || core
                            .head_flag_wait()
                            .is_some_and(|f| st.sync.flag_log()[flag_mark..].contains(&f));
                    if is_due {
                        core.charge_idle(now - charged_until[li]);
                        let before = core.retired;
                        core.retire(&mut st.sync, now);
                        retired_delta += core.retired - before;
                        charged_until[li] = now + 1;
                        if core.halted {
                            live -= 1;
                        }
                        due.push((si, li, base + li));
                    }
                }
            }
        }
        if st.tracing {
            // Only stepped cores can change stall class (charge_idle
            // continues the class of the last step across skipped
            // rounds), so the strict driver's per-cycle transition scan
            // reduces to the stepped set.
            for &(si, li, _) in &due {
                let g = &guards[si];
                trace_stall_transition(&mut st.memsys, &mut st.stall_state, &g.cores[li], now);
            }
        }
        if live == 0 {
            break;
        }
        for &(si, li, gi) in &due {
            let core = &mut guards[si].cores[li];
            if !core.halted {
                core.issue(&mut st.memsys, now);
                fetch_stage(core, &mut st.interps[gi], st.mem, now, &mut st.reuse);
            }
        }
        // Deadlock diagnostics, matching the per-cycle driver. Retire
        // counts only move in the retire phase above, so summing the
        // per-step deltas is exact.
        if retired_delta > 0 {
            last_progress_cycle = now;
        } else if now - last_progress_cycle > DEADLOCK_WINDOW {
            deadlock_panic(guards.iter().flat_map(|g| g.cores.iter()), now);
        }
        // Publish this round's clock (and, when a barrier release was
        // scheduled or a flag set, a fresh sync snapshot) and mark wake
        // recomputes: every stepped core, plus — on a sync version
        // change — every live core the change can actually reach. Sync
        // events are the only way another processor's action can move a
        // core's wake *earlier*, and `Core::next_event_time` reads sync
        // state only through its head-of-window `Barrier`/`FlagWait`
        // candidates, so the reachable set is exactly the cores whose
        // head is a sync wait plus cores asleep with no candidate
        // (parked, by invariant 2, on sync). An unstepped core outside
        // that set would recompute the value it already holds: its
        // window is untouched since its last recompute, and every
        // candidate behind its current wake exceeds `now` (else it
        // would have been stepped), so the `now+1` clamps still bind
        // identically.
        let version_changed = st.sync.version() != version_mark;
        let snapshot = version_changed.then(|| Arc::new(st.sync.clone()));
        for &(si, li, _) in &due {
            let g = &mut *guards[si];
            if !g.need[li] {
                g.need[li] = true;
                g.pending += 1;
            }
        }
        if version_changed {
            // A sync event can move unstepped cores' wakes *earlier*;
            // mark the reachable set (sync-wait heads and sleepers).
            for g in guards.iter_mut() {
                let Shard {
                    cores,
                    wake,
                    need,
                    pending,
                    ..
                } = &mut **g;
                for (li, core) in cores.iter().enumerate() {
                    if !need[li] && !core.halted && (wake[li] == NO_WAKE || core.head_sync_wait()) {
                        need[li] = true;
                        *pending += 1;
                    }
                }
            }
        }
        for (si, g) in guards.iter_mut().enumerate() {
            pending_counts[si] = g.pending;
            g.now = now;
            if let Some(s) = &snapshot {
                g.sync = Arc::clone(s);
            }
        }
        if !pool.recompute_locked(&mut guards, mins, &pending_counts) {
            guards.clear();
            pool.recompute(shards, mins, &pending_counts);
        }
        // The recompute published each shard's min wake; combining them
        // with the next memory-system fill needs no shard locks.
        let mut next = st.memsys.next_event_time().unwrap_or(NO_WAKE);
        for (si, m) in mins.iter().enumerate() {
            let v = m.load(Ordering::Acquire);
            shard_mins[si] = v;
            next = next.min(v);
        }
        if next == NO_WAKE {
            // No event anywhere: the run can never progress again. Jump
            // to the diagnostic horizon so the deadlock check above fires
            // with the same cycle number strict stepping reports.
            now = last_progress_cycle + DEADLOCK_WINDOW + 1;
            continue;
        }
        if st.tracing && next > now + 1 {
            // Whole-system gap. (Occupancy accounting is lazy inside the
            // memory system; stall attribution is per-core and settles
            // via `charged_until` at each core's next step.)
            let span = next - now - 1;
            st.memsys
                .tracer_mut()
                .record(now, SYSTEM_PROC, TraceEventKind::HorizonJump { span });
        }
        now = next;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn empty_shard() -> Mutex<Shard> {
        Mutex::new(Shard {
            base: 0,
            cores: vec![],
            wake: vec![],
            charged_until: vec![],
            need: vec![],
            pending: 0,
            now: 0,
            sync: Arc::new(SyncState::new(1)),
            due_local: vec![],
        })
    }

    /// Drives the worker team's round gate directly: on a host without
    /// real parallelism the production path runs inline (see
    /// `inline_threshold`), so the spin/park/wake/stop machinery needs
    /// explicit coverage. Forcing the threshold to 0 makes every round a
    /// team round; enough rounds are driven (with pauses long enough for
    /// workers to park) to exercise both the spinning and the parked
    /// wakeup paths.
    #[test]
    fn team_rounds_complete_and_stop_releases_workers() {
        let shards: Vec<Mutex<Shard>> = (0..3).map(|_| empty_shard()).collect();
        let mins: Vec<AtomicU64> = (0..3).map(|_| AtomicU64::new(0)).collect();
        let team = TeamState {
            round: AtomicU64::new(0),
            done: AtomicUsize::new(0),
            stop: AtomicBool::new(false),
            sleepers: Mutex::new(0),
            go: Condvar::new(),
        };
        std::thread::scope(|scope| {
            for si in 1..3 {
                let (shards_ref, mins_ref, team_ref) = (&shards, &mins, &team);
                scope.spawn(move || worker(si, shards_ref, mins_ref, team_ref));
            }
            let _stop = StopOnDrop(&team);
            let pool = Team {
                team: &team,
                nworkers: 2,
                inline_threshold: 0,
            };
            for round in 0..200 {
                for m in &shards[1..] {
                    m.lock().unwrap().pending = 1;
                }
                pool.recompute(&shards, &mins, &[0, 1, 1]);
                // The barrier guarantees both workers ran their shard's
                // recompute (which cleared `pending`) before returning.
                for m in &shards[1..] {
                    assert_eq!(m.lock().unwrap().pending, 0, "round {round}");
                }
                if round % 50 == 0 {
                    // Outlast the spin/yield budget so workers park and
                    // the next round takes the notify path.
                    std::thread::sleep(std::time::Duration::from_millis(5));
                }
            }
            // `_stop` drops here: workers must observe `stop` and exit,
            // or `thread::scope` would hang the test.
        });
    }
}
