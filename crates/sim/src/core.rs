//! The out-of-order processor core.
//!
//! Models the ILP features the paper's argument rests on: a fixed-size
//! instruction window with in-order retirement (Section 2.1), multi-way
//! fetch/retire, out-of-order issue over a pool of pipelined functional
//! units, non-blocking loads through the memory queue, write buffering
//! under release consistency (stores retire once issued), and a bounded
//! number of unresolved branches.
//!
//! Execution-time accounting follows Section 5.2: each cycle contributes
//! `retired/width` busy time; the remainder is attributed to the first
//! instruction that could not retire.

use std::collections::{BinaryHeap, VecDeque};

use mempar_ir::{DynOp, FpUnit, OpKind, SrcList};
use mempar_stats::{Breakdown, StallClass};

use crate::config::ProcParams;
use crate::memsys::{Access, MemSystem};
use crate::sync::SyncState;

const READY_UNKNOWN: u64 = u64::MAX;

/// "End of waiter list" / "no waiters".
const NO_WAITER: u64 = u64::MAX;

#[derive(Debug, Clone)]
struct Entry {
    op: DynOp,
    /// Max ready time of sources resolved so far.
    ready_at: u64,
    /// Sources whose producers have not issued yet (completion unknown).
    /// Kept current eagerly: when a producer issues, its waiter walk
    /// removes the source and folds the completion time into `ready_at`.
    pending: SrcList,
    issued: bool,
    /// Completion time (u64::MAX until known).
    complete_at: u64,
    /// For branches: counted as resolved in the unresolved-branch limit.
    branch_resolved: bool,
    /// Cycle the op entered the window (for latency accounting).
    fetched_at: u64,
    /// Head of this entry's waiter list — consumers of its dst parked
    /// until it issues. A node packs `(waiter_seq << 2) | src_slot`;
    /// `NO_WAITER` ends the list.
    first_waiter: u64,
    /// Per-pending-source-slot link to the next waiter of the same
    /// producer (the waiter lists are threaded through the entries).
    next_waiter: [u64; mempar_ir::MAX_SRCS],
    /// Set when the memory system refused this op with a provable
    /// release bound ([`Access::Retry`]'s `until`): the earliest cycle a
    /// re-attempt could succeed. The wake scan sleeps until then instead
    /// of re-polling a full MSHR file every cycle; a stale bound (`<=
    /// now`) falls back to next-cycle retry.
    mshr_wait: u64,
}

/// Ready times for in-flight destination vregs, stored as an open-slot
/// tagged table instead of a `HashMap` (the lookup is the hottest line
/// in the issue scan).
///
/// The interpreter allocates dst vregs sequentially and the window
/// retires in order, so live dsts occupy a contiguous numeric span no
/// wider than the window: with capacity above that span, `vreg & mask`
/// is collision-free. A collision between two *live* vregs (possible
/// only for hand-built traces) triggers a grow-and-rebuild in the core.
/// Tag 0 means "empty" — vreg 0 is the interpreter's "no register"
/// sentinel and never appears as a dst.
#[derive(Debug)]
struct VregFile {
    tags: Vec<u32>,
    times: Vec<u64>,
    /// Producer entry sequence numbers, meaningful while the recorded
    /// time is `READY_UNKNOWN` (consumer fetch uses them to hook into
    /// the producer's waiter list). A dst vreg reused while its previous
    /// producer is still unissued would rebind the slot — real traces
    /// never do that (vregs are fresh per dynamic op).
    seqs: Vec<u64>,
    mask: usize,
}

impl VregFile {
    fn with_capacity(capacity: usize) -> Self {
        let cap = capacity.next_power_of_two().max(8);
        VregFile {
            tags: vec![0; cap],
            times: vec![0; cap],
            seqs: vec![0; cap],
            mask: cap - 1,
        }
    }

    fn capacity(&self) -> usize {
        self.tags.len()
    }

    /// The recorded ready time, or `None` when the vreg is absent
    /// (absent = the producer retired = the value is ready).
    #[inline]
    fn get(&self, vreg: u32) -> Option<u64> {
        let slot = vreg as usize & self.mask;
        if self.tags[slot] == vreg {
            Some(self.times[slot])
        } else {
            None
        }
    }

    /// Ready time plus producer seq (`seq` meaningful only while the
    /// time is `READY_UNKNOWN`).
    #[inline]
    fn get_full(&self, vreg: u32) -> Option<(u64, u64)> {
        let slot = vreg as usize & self.mask;
        if self.tags[slot] == vreg {
            Some((self.times[slot], self.seqs[slot]))
        } else {
            None
        }
    }

    /// Inserts or updates; returns false when the slot holds a different
    /// live vreg (caller must grow and retry).
    #[inline]
    fn try_insert(&mut self, vreg: u32, time: u64, seq: u64) -> bool {
        debug_assert_ne!(vreg, 0, "vreg 0 is the empty-slot sentinel");
        let slot = vreg as usize & self.mask;
        let tag = self.tags[slot];
        if tag == 0 || tag == vreg {
            self.tags[slot] = vreg;
            self.times[slot] = time;
            self.seqs[slot] = seq;
            true
        } else {
            false
        }
    }

    #[inline]
    fn remove(&mut self, vreg: u32) {
        let slot = vreg as usize & self.mask;
        if self.tags[slot] == vreg {
            self.tags[slot] = 0;
        }
    }
}

/// Bitset over reorder-buffer positions (bit `i` = `rob[i]`).
///
/// The issue stage is the simulator's hottest loop; in memory-stalled
/// phases the window is mostly issued entries waiting on fills, which a
/// position walk would re-visit every cycle just to skip. Tracking the
/// positions that can still *do* something lets both issue scans — the
/// candidate walk and load/store disambiguation — jump straight to them,
/// whole empty words at a time. Position bits renumber on retirement via
/// [`RobBits::shift_down`], mirroring the window's `pop_front`s.
#[derive(Debug)]
struct RobBits {
    words: Vec<u64>,
}

impl RobBits {
    fn new(window: usize) -> Self {
        RobBits {
            words: vec![0; window.div_ceil(64).max(1)],
        }
    }

    #[inline]
    fn set(&mut self, i: usize) {
        self.words[i / 64] |= 1 << (i % 64);
    }

    #[inline]
    fn clear(&mut self, i: usize) {
        self.words[i / 64] &= !(1 << (i % 64));
    }

    /// Drops the lowest `k` bits (entries popped from the window head)
    /// and renumbers the rest down by `k`.
    fn shift_down(&mut self, k: usize) {
        if k == 0 {
            return;
        }
        let wshift = k / 64;
        let bshift = (k % 64) as u32;
        for i in 0..self.words.len() {
            let lo = self.words.get(i + wshift).copied().unwrap_or(0);
            let hi = self.words.get(i + wshift + 1).copied().unwrap_or(0);
            self.words[i] = if bshift == 0 {
                lo
            } else {
                (lo >> bshift) | (hi << (64 - bshift))
            };
        }
    }
}

/// A small unordered multiset of completion times. Both uses are bounded
/// by the memory queue depth (a handful of entries), where linear scans
/// beat heap maintenance and the backing buffer is reused for the whole
/// run — no steady-state allocation.
#[derive(Debug)]
struct TimeBag {
    times: Vec<u64>,
    /// Cached minimum of `times` (`u64::MAX` when empty), so the no-op
    /// drain — by far the common case — is a single compare.
    min: u64,
}

impl TimeBag {
    fn with_capacity(n: usize) -> Self {
        TimeBag {
            times: Vec::with_capacity(n),
            min: u64::MAX,
        }
    }

    #[inline]
    fn len(&self) -> usize {
        self.times.len()
    }

    #[inline]
    fn is_empty(&self) -> bool {
        self.times.is_empty()
    }

    #[inline]
    fn push(&mut self, t: u64) {
        self.times.push(t);
        self.min = self.min.min(t);
    }

    /// Removes every time `<= now`.
    #[inline]
    fn drain_through(&mut self, now: u64) {
        if self.min > now {
            return;
        }
        let mut i = 0;
        let mut min = u64::MAX;
        while i < self.times.len() {
            let t = self.times[i];
            if t <= now {
                self.times.swap_remove(i);
            } else {
                min = min.min(t);
                i += 1;
            }
        }
        self.min = min;
    }

    /// Smallest retained time strictly after `now`, ignoring entries that
    /// lazy draining has not removed yet (they are `<= now`, hence already
    /// complete): exactly the minimum a drained bag would report.
    #[inline]
    fn min_after(&self, now: u64) -> Option<u64> {
        if self.min > now {
            return (self.min != u64::MAX).then_some(self.min);
        }
        self.times.iter().copied().filter(|&t| t > now).min()
    }
}

/// One simulated processor core.
#[derive(Debug)]
pub struct Core {
    /// Processor index in the system.
    pub id: usize,
    params: ProcParams,
    rob: VecDeque<Entry>,
    vreg_ready: VregFile,
    unresolved_branches: usize,
    /// In-flight memory ops (loads to completion, stores to global
    /// performance); bounded by the memory queue size.
    mem_inflight: TimeBag,
    /// Outstanding stores (for release fences). Every entry is pushed and
    /// drained in lockstep with a matching `mem_inflight` entry, so it
    /// shares the memory-queue bound.
    pending_stores: TimeBag,
    /// True while a fetched Barrier/FlagWait blocks further fetch: the
    /// interpreter must not run ahead of acquire synchronization, or it
    /// would functionally read values the producer has not written yet.
    sync_fetch_block: bool,
    /// True once the trace source is exhausted (Halt fetched).
    pub trace_done: bool,
    /// True once Halt has retired.
    pub halted: bool,
    /// Cycle at which the core halted.
    pub halt_cycle: u64,
    /// Execution-time breakdown (Figure 3 accounting).
    pub breakdown: Breakdown,
    /// Retired instruction count.
    pub retired: u64,
    /// Instructions retired by the most recent [`Core::retire`] call
    /// (cycle-skip scheduling: a retiring core may retire again next cycle).
    retired_last_cycle: u32,
    /// Stall class charged by the most recent [`Core::retire`] call, or
    /// `None` when the core retired a full width (or halted). The system
    /// driver turns transitions of this into trace stall spans.
    last_stall: Option<StallClass>,
    l1_ports: u32,
    /// `frac_tab[r]` is `r / width` in `f64`, computed once with the very
    /// division retire would otherwise perform per call (bit-identical
    /// values, no per-retire divide).
    frac_tab: Vec<f64>,
    /// Window entries not yet issued. When zero (and no issued branch
    /// still awaits resolution bookkeeping) the issue stage is a provable
    /// no-op and is skipped entirely.
    unissued: usize,
    /// Issued branches not yet marked resolved by the issue scan (the
    /// scan is what decrements `unresolved_branches` for them).
    issued_unresolved_branches: usize,
    /// Set by the most recent [`Core::issue`] call when the scan left a
    /// ready instruction unissued behind a per-cycle resource limit
    /// (FU/port/queue/MSHR/store disambiguation). Exactly the condition
    /// under which [`Core::next_event_time`] answers `now + 1`, cached so
    /// the scheduler need not rescan the window to learn it.
    issue_blocked: bool,
    /// Window positions the issue scan must visit, split by kind so the
    /// scan can drop one side wholesale: `cand` holds non-memory
    /// candidates (plus issued branches awaiting resolution bookkeeping),
    /// `cand_mem` holds unissued loads and stores. Everything else in
    /// the window is settled and the scan skips it. The split pays in
    /// memory-saturated phases: the moment the load/store gates
    /// (address units, cache ports, memory queue) fill for a cycle they
    /// stay full for the rest of the scan — every counter is monotone
    /// within it — so all remaining `cand_mem` visits are provable
    /// refusals and the walk masks them off in one step.
    cand: RobBits,
    /// Unissued load/store positions (see [`Core::cand`]).
    cand_mem: RobBits,
    /// Window positions holding stores (issued or not), for load
    /// disambiguation without walking non-store entries.
    store_pos: RobBits,
    /// Sequence number of `rob[0]` (position `i` holds entry
    /// `head_seq + i`), so parked entries survive window renumbering.
    head_seq: u64,
    /// Unissued entries whose sources all resolved to a known future
    /// ready time, keyed `(ready_at, seq)`: parked out of the candidate
    /// set until their cycle comes instead of being re-visited every
    /// scan. Only entries that cannot retire unissued may park here.
    deferred: BinaryHeap<std::cmp::Reverse<(u64, u64)>>,
}

impl Core {
    /// A new core with the given parameters. `l1_ports` bounds memory
    /// issues per cycle (the L1's port count, or the L2's for single-level
    /// hierarchies).
    pub fn new(id: usize, params: &ProcParams, l1_ports: u32) -> Self {
        Core {
            id,
            params: params.clone(),
            rob: VecDeque::with_capacity(params.window),
            vreg_ready: VregFile::with_capacity(4 * params.window),
            unresolved_branches: 0,
            mem_inflight: TimeBag::with_capacity(params.mem_queue),
            pending_stores: TimeBag::with_capacity(params.mem_queue),
            sync_fetch_block: false,
            trace_done: false,
            halted: false,
            halt_cycle: 0,
            breakdown: Breakdown::new(),
            retired: 0,
            retired_last_cycle: 0,
            last_stall: None,
            l1_ports,
            frac_tab: (0..=params.width)
                .map(|r| f64::from(r) / f64::from(params.width))
                .collect(),
            unissued: 0,
            issued_unresolved_branches: 0,
            issue_blocked: false,
            cand: RobBits::new(params.window),
            cand_mem: RobBits::new(params.window),
            store_pos: RobBits::new(params.window),
            head_seq: 0,
            deferred: BinaryHeap::new(),
        }
    }

    /// True when the core retired something last cycle or can fetch now —
    /// the cheap "will plausibly act next cycle" test. The system loop uses
    /// this as a fast path: if any core is active, the next cycle is
    /// interesting and no reorder-buffer scan is needed.
    pub fn made_progress(&self) -> bool {
        !self.halted && (self.retired_last_cycle > 0 || self.fetch_room() > 0)
    }

    /// Window slots still free this cycle.
    pub fn fetch_room(&self) -> usize {
        if self.trace_done
            || self.sync_fetch_block
            || self.unresolved_branches >= self.params.max_branches
        {
            return 0;
        }
        (self.params.window - self.rob.len()).min(self.params.width as usize)
    }

    /// Inserts a fetched op into the window.
    ///
    /// # Panics
    /// Panics if the window is full (callers must respect
    /// [`Core::fetch_room`]).
    pub fn fetch(&mut self, op: DynOp, now: u64) {
        assert!(self.rob.len() < self.params.window, "window overflow");
        let seq = self.head_seq + self.rob.len() as u64;
        let mut ready_at = now;
        let mut pending = SrcList::new();
        let mut next_waiter = [NO_WAITER; mempar_ir::MAX_SRCS];
        for &src in op.srcs.as_slice() {
            match self.vreg_ready.get_full(src) {
                None => {}
                Some((READY_UNKNOWN, pseq)) => {
                    // Producer not issued: park on its waiter list; its
                    // issue wakes this entry (no per-cycle re-polling).
                    let k = pending.len();
                    pending.push(src);
                    if let Some(p) = pseq
                        .checked_sub(self.head_seq)
                        .and_then(|d| self.rob.get_mut(d as usize))
                    {
                        next_waiter[k] = p.first_waiter;
                        p.first_waiter = (seq << 2) | k as u64;
                    }
                    // Producer gone (retired unissued — hand-built
                    // traces only): the source stays pending forever,
                    // matching the lazy scan's behavior.
                }
                Some((t, _)) => ready_at = ready_at.max(t),
            }
        }
        if let Some(dst) = op.dst {
            self.vreg_set(dst, READY_UNKNOWN, seq);
        }
        if matches!(op.kind, OpKind::Branch) {
            self.unresolved_branches += 1;
        }
        if matches!(op.kind, OpKind::Barrier { .. } | OpKind::FlagWait { .. }) {
            // Acquire semantics: stop fetching (and thus functionally
            // executing) past the synchronization until it completes.
            self.sync_fetch_block = true;
        }
        if matches!(op.kind, OpKind::Halt) {
            self.trace_done = true;
        }
        let pos = self.rob.len();
        // Scan-candidate placement: an entry waiting on unissued
        // producers is woken by their waiter walks; one whose sources
        // all resolved to a known future time parks in the deferral
        // heap; head-of-window sync ops never need the scan at all.
        if Self::can_defer(&op.kind) && pending.is_empty() {
            if ready_at > now {
                self.deferred.push(std::cmp::Reverse((ready_at, seq)));
            } else if Self::is_mem_cand(&op.kind) {
                self.cand_mem.set(pos);
            } else {
                self.cand.set(pos);
            }
        }
        if matches!(op.kind, OpKind::Store { .. }) {
            self.store_pos.set(pos);
        }
        self.rob.push_back(Entry {
            op,
            ready_at,
            pending,
            issued: false,
            complete_at: u64::MAX,
            branch_resolved: false,
            fetched_at: now,
            first_waiter: NO_WAITER,
            next_waiter,
            mshr_wait: 0,
        });
        self.unissued += 1;
    }

    /// Drains memory-op completions whose time has passed. Called lazily,
    /// just before the bags are consulted: the issue scan's gates read
    /// `mem_inflight.len()` and the `FlagSet` arm reads
    /// `pending_stores.is_empty()`, both after the drain at the top of
    /// [`Core::issue`]; [`Core::next_event_time`] reads through
    /// [`TimeBag::min_after`], which filters stale entries itself.
    fn drain_mem(&mut self, now: u64) {
        self.mem_inflight.drain_through(now);
        self.pending_stores.drain_through(now);
    }

    /// Issue stage: selects ready instructions oldest-first, obeying
    /// functional-unit counts, memory-queue space and cache ports.
    pub fn issue(&mut self, mem: &mut MemSystem, now: u64) {
        self.issue_blocked = false;
        if self.unissued == 0 && self.issued_unresolved_branches == 0 {
            // Nothing to issue and no branch-resolution bookkeeping left:
            // the scan below would walk the whole window doing nothing.
            // (Completion bags drain lazily before their next reader.)
            return;
        }
        self.drain_mem(now);
        // Wake parked entries whose ready time has arrived.
        while let Some(&std::cmp::Reverse((t, seq))) = self.deferred.peek() {
            if t > now {
                break;
            }
            self.deferred.pop();
            let i = (seq - self.head_seq) as usize;
            if Self::is_mem_cand(&self.rob[i].op.kind) {
                self.cand_mem.set(i);
            } else {
                self.cand.set(i);
            }
        }
        let mut issued = 0u32;
        let mut alu = 0u32;
        let mut fpu = 0u32;
        let mut addr = 0u32;
        let mut l1_accesses = 0u32;
        let fu = self.params.fu;
        let width = self.params.width;

        // Walk only the candidate positions (unissued entries and
        // issued-unresolved branches), oldest first. The body only ever
        // clears the bit at the position it is visiting, so snapshotting
        // each word as the walk reaches it visits exactly the entries a
        // full window walk would — minus the settled ones, whose visit
        // is a provable no-op.
        let mut mem_open = true;
        'scan: for wi in 0..self.cand.words.len() {
            let mut w = self.cand.words[wi];
            if mem_open {
                w |= self.cand_mem.words[wi];
            }
            while w != 0 {
                let i = wi * 64 + w.trailing_zeros() as usize;
                w &= w - 1;
                if issued >= width {
                    break 'scan;
                }
                // Resolve pending sources lazily.
                let kind = {
                    let e = &mut self.rob[i];
                    if e.issued {
                        // An issued candidate is a branch awaiting
                        // resolution bookkeeping (the fetch limit).
                        debug_assert!(matches!(e.op.kind, OpKind::Branch) && !e.branch_resolved);
                        if e.complete_at <= now {
                            e.branch_resolved = true;
                            self.unresolved_branches -= 1;
                            self.issued_unresolved_branches -= 1;
                            self.cand.clear(i);
                        }
                        continue;
                    }
                    if !e.pending.is_empty() {
                        let mut still = SrcList::new();
                        let mut ready = e.ready_at;
                        for &src in e.pending.as_slice() {
                            match self.vreg_ready.get(src) {
                                None => {}
                                Some(READY_UNKNOWN) => still.push(src),
                                Some(t) => ready = ready.max(t),
                            }
                        }
                        e.ready_at = ready;
                        e.pending = still;
                        if !e.pending.is_empty() {
                            continue;
                        }
                    }
                    if e.ready_at > now {
                        // All sources resolved to a known future time:
                        // park until then instead of re-visiting every
                        // cycle (ready times never move backward).
                        if Self::can_defer(&e.op.kind) {
                            let at = e.ready_at;
                            let mem = Self::is_mem_cand(&e.op.kind);
                            self.deferred
                                .push(std::cmp::Reverse((at, self.head_seq + i as u64)));
                            if mem {
                                self.cand_mem.clear(i);
                            } else {
                                self.cand.clear(i);
                            }
                        }
                        continue;
                    }
                    e.op.kind
                };
                match kind {
                    OpKind::Int | OpKind::IntMul | OpKind::Branch => {
                        if alu >= fu.alus {
                            self.issue_blocked = true;
                            continue;
                        }
                        alu += 1;
                        issued += 1;
                        let lat = match kind {
                            OpKind::IntMul => fu.int_mul_latency,
                            _ => fu.int_latency,
                        } as u64;
                        self.complete_entry(i, now + lat);
                    }
                    OpKind::Fp { unit } => {
                        if fpu >= fu.fpus {
                            self.issue_blocked = true;
                            continue;
                        }
                        fpu += 1;
                        issued += 1;
                        let lat = match unit {
                            FpUnit::Arith => fu.fp_latency,
                            FpUnit::Div => fu.fp_div_latency,
                            FpUnit::Sqrt => fu.fp_sqrt_latency,
                        } as u64;
                        self.complete_entry(i, now + lat);
                    }
                    OpKind::Load { addr: a } => {
                        if addr >= fu.addr_units
                            || l1_accesses >= self.l1_ports
                            || self.mem_inflight.len() >= self.params.mem_queue
                        {
                            // Gates only fill as the scan proceeds, so
                            // every remaining load/store fails the same
                            // check: drop the whole mem side of the walk.
                            self.issue_blocked = true;
                            mem_open = false;
                            w &= !self.cand_mem.words[wi];
                            continue;
                        }
                        if self.rob[i].mshr_wait > now {
                            // Inside the release bound set by an earlier
                            // `Access::Retry`: the access provably still
                            // fails, so its result is substituted without
                            // the call — including the store-dis-
                            // ambiguation scan, whose `Clear` verdict at
                            // marking time cannot change while the entry
                            // waits (entries ahead of it are older than
                            // it; no new earlier store can appear, and a
                            // non-matching store's address never moves).
                            // The address unit and cache port are still
                            // consumed: the refused attempt occupies them
                            // for the cycle exactly as the real poll
                            // would, so younger ops see the same gates.
                            addr += 1;
                            l1_accesses += 1;
                            continue;
                        }
                        // Disambiguation against earlier stores.
                        match self.scan_earlier_stores(i, a) {
                            StoreCheck::MustWait => {
                                self.issue_blocked = true;
                                continue;
                            }
                            StoreCheck::Forward => {
                                addr += 1;
                                issued += 1;
                                self.complete_entry(i, now + 1);
                            }
                            StoreCheck::Clear => {
                                addr += 1;
                                l1_accesses += 1;
                                match mem.access(self.id, a, false, now + 1) {
                                    Access::Retry { until } => {
                                        // MSHRs full: stay unissued. With a
                                        // provable release bound the wake
                                        // scan sleeps until then; otherwise
                                        // retry next cycle.
                                        match until {
                                            Some(t) => self.rob[i].mshr_wait = t,
                                            None => self.issue_blocked = true,
                                        }
                                    }
                                    Access::Done { complete_at, .. } => {
                                        issued += 1;
                                        self.mem_inflight.push(complete_at);
                                        self.complete_entry(i, complete_at);
                                    }
                                }
                            }
                        }
                    }
                    OpKind::Prefetch { addr: a } => {
                        if addr >= fu.addr_units || l1_accesses >= self.l1_ports {
                            self.issue_blocked = true;
                            continue;
                        }
                        addr += 1;
                        l1_accesses += 1;
                        issued += 1;
                        // Non-binding: fire and forget; the op completes at
                        // issue regardless of the memory system's outcome.
                        mem.prefetch(self.id, a, now + 1);
                        self.complete_entry(i, now + 1);
                    }
                    OpKind::Store { addr: a } => {
                        if addr >= fu.addr_units
                            || l1_accesses >= self.l1_ports
                            || self.mem_inflight.len() >= self.params.mem_queue
                        {
                            // Same monotone-gate argument as the load arm.
                            self.issue_blocked = true;
                            mem_open = false;
                            w &= !self.cand_mem.words[wi];
                            continue;
                        }
                        addr += 1;
                        l1_accesses += 1;
                        if self.rob[i].mshr_wait > now {
                            // Known-Retry elision; see the load path.
                            continue;
                        }
                        match mem.access(self.id, a, true, now + 1) {
                            Access::Retry { until } => match until {
                                Some(t) => self.rob[i].mshr_wait = t,
                                None => self.issue_blocked = true,
                            },
                            Access::Done { complete_at, .. } => {
                                issued += 1;
                                self.mem_inflight.push(complete_at);
                                self.pending_stores.push(complete_at);
                                // Write buffering: the ROB entry completes at
                                // issue; global performance tracked separately.
                                self.complete_entry(i, now + 1);
                            }
                        }
                    }
                    OpKind::FlagSet { .. } => {
                        // Release semantics: wait for earlier stores to drain.
                        if self.pending_stores.is_empty() {
                            issued += 1;
                            self.complete_entry(i, now + 1);
                        }
                    }
                    OpKind::Barrier { .. } | OpKind::FlagWait { .. } | OpKind::Halt => {
                        // Completed at the retire stage via the sync
                        // state; the scan never has work for them.
                        self.cand.clear(i);
                    }
                }
            }
        }
    }

    /// Whether a candidate lives in `cand_mem` (the load/store side of
    /// the split candidate set) rather than `cand`.
    fn is_mem_cand(kind: &OpKind) -> bool {
        matches!(kind, OpKind::Load { .. } | OpKind::Store { .. })
    }

    /// Whether an unissued entry may park in the deferral heap. Ops that
    /// can retire *unissued* (head-of-window sync resolved by the retire
    /// stage) must not: their window position could vanish while parked.
    fn can_defer(kind: &OpKind) -> bool {
        !matches!(
            kind,
            OpKind::Barrier { .. } | OpKind::FlagWait { .. } | OpKind::Halt
        )
    }

    fn complete_entry(&mut self, i: usize, at: u64) {
        let seq = self.head_seq + i as u64;
        let e = &mut self.rob[i];
        e.issued = true;
        e.complete_at = at;
        let dst = e.op.dst;
        let is_branch = matches!(e.op.kind, OpKind::Branch);
        let is_mem = Self::is_mem_cand(&e.op.kind);
        let mut node = e.first_waiter;
        e.first_waiter = NO_WAITER;
        self.unissued -= 1;
        if is_branch {
            // Stays a scan candidate until resolution bookkeeping runs.
            self.issued_unresolved_branches += 1;
        } else if is_mem {
            self.cand_mem.clear(i);
        } else {
            self.cand.clear(i);
        }
        if let Some(dst) = dst {
            self.vreg_set(dst, at, seq);
            // Wake the consumers parked on this entry: fold the now-known
            // completion time into their ready times, and park fully
            // resolved ones in the deferral heap (`at` is always in the
            // future — every latency is at least one cycle — so no wake
            // can make an entry issuable in the current scan).
            while node != NO_WAITER {
                let wseq = node >> 2;
                if wseq < self.head_seq {
                    // A waiter that left the window unissued (sync op
                    // with sources; hand-built traces only) — its next
                    // link is gone with it.
                    debug_assert!(false, "waiter retired while parked");
                    break;
                }
                let k = (node & 3) as usize;
                let we = &mut self.rob[(wseq - self.head_seq) as usize];
                node = we.next_waiter[k];
                we.pending.remove(dst);
                we.ready_at = we.ready_at.max(at);
                if we.pending.is_empty() && Self::can_defer(&we.op.kind) {
                    let t = we.ready_at;
                    self.deferred.push(std::cmp::Reverse((t, wseq)));
                }
            }
        }
    }

    /// Records `vreg`'s ready time, growing the table on a live-slot
    /// collision (only hand-built traces with non-sequential vregs hit
    /// the grow path; see [`VregFile`]).
    fn vreg_set(&mut self, vreg: u32, time: u64, seq: u64) {
        while !self.vreg_ready.try_insert(vreg, time, seq) {
            self.grow_vregs();
        }
    }

    /// Rebuilds the vreg table at a larger capacity from the ROB — its
    /// contents are exactly the in-flight dst ops (unissued ⇒ unknown,
    /// issued ⇒ the completion time), so nothing else needs migrating.
    fn grow_vregs(&mut self) {
        let mut cap = self.vreg_ready.capacity() * 2;
        'retry: loop {
            let mut bigger = VregFile::with_capacity(cap);
            for (i, e) in self.rob.iter().enumerate() {
                if let Some(dst) = e.op.dst {
                    let t = if e.issued {
                        e.complete_at
                    } else {
                        READY_UNKNOWN
                    };
                    if !bigger.try_insert(dst, t, self.head_seq + i as u64) {
                        cap *= 2;
                        continue 'retry;
                    }
                }
            }
            self.vreg_ready = bigger;
            return;
        }
    }

    fn scan_earlier_stores(&self, load_idx: usize, addr: u64) -> StoreCheck {
        // Walk store positions below the load, youngest first, via the
        // store bitset — the first address match decides, same as a full
        // backward window walk.
        let mut wi = load_idx / 64;
        let mut mask = (1u64 << (load_idx % 64)) - 1;
        loop {
            let mut w = self.store_pos.words[wi] & mask;
            while w != 0 {
                let bit = 63 - w.leading_zeros() as usize;
                w &= !(1u64 << bit);
                let e = &self.rob[wi * 64 + bit];
                if let OpKind::Store { addr: sa } = e.op.kind {
                    if sa == addr {
                        return if e.issued {
                            StoreCheck::Forward
                        } else {
                            StoreCheck::MustWait
                        };
                    }
                }
            }
            if wi == 0 {
                return StoreCheck::Clear;
            }
            wi -= 1;
            mask = u64::MAX;
        }
    }

    /// Retire stage: retires up to `width` completed instructions in
    /// order and attributes the cycle per the paper's convention.
    /// Returns true while the core is still running.
    pub fn retire(&mut self, sync: &mut SyncState, now: u64) -> bool {
        if self.halted {
            return false;
        }
        let width = self.params.width;
        let mut retired = 0u32;
        while retired < width {
            let Some(head) = self.rob.front() else { break };
            let can_retire = match head.op.kind {
                OpKind::Barrier { id } => {
                    sync.arrive_barrier(self.id, id, now);
                    sync.barrier_released(id, now)
                }
                OpKind::FlagWait { flag } => sync.flag_set(flag, now),
                OpKind::FlagSet { flag } => {
                    if head.issued && head.complete_at <= now {
                        sync.set_flag(flag, now);
                        true
                    } else {
                        false
                    }
                }
                OpKind::Halt => true,
                _ => head.issued && head.complete_at <= now,
            };
            if !can_retire {
                break;
            }
            let e = self.rob.pop_front().expect("head exists");
            if !e.issued {
                self.unissued -= 1;
            }
            if matches!(e.op.kind, OpKind::Branch) && !e.branch_resolved {
                self.unresolved_branches -= 1;
                if e.issued {
                    self.issued_unresolved_branches -= 1;
                }
            }
            if matches!(e.op.kind, OpKind::Barrier { .. } | OpKind::FlagWait { .. }) {
                self.sync_fetch_block = false;
            }
            if let Some(dst) = e.op.dst {
                // The value is ready (it completed); if its ready time has
                // passed, later-fetched consumers would see it as ready by
                // absence — safe to drop the map entry.
                if e.complete_at <= now {
                    self.vreg_ready.remove(dst);
                }
            }
            self.retired += 1;
            retired += 1;
            if matches!(e.op.kind, OpKind::Halt) {
                self.halted = true;
                self.halt_cycle = now;
                break;
            }
        }
        self.retired_last_cycle = retired;
        if retired > 0 {
            // Window positions renumber past the popped entries (bits set
            // on popped entries — unissued sync ops, unresolved branches —
            // fall off with them; their counters were settled above).
            // Parked entries key on stable sequence numbers, so only the
            // head seq moves.
            self.cand.shift_down(retired as usize);
            self.cand_mem.shift_down(retired as usize);
            self.store_pos.shift_down(retired as usize);
            self.head_seq += u64::from(retired);
        }
        // Attribution (Section 5.2): busy = retired/width; remainder to
        // the first instruction that could not retire.
        let frac = self.frac_tab[retired as usize];
        self.breakdown.busy += frac;
        let stall =
            (retired < width && !self.halted).then(|| match self.rob.front().map(|e| e.op.kind) {
                Some(OpKind::Load { .. }) => StallClass::DataMemory,
                Some(OpKind::Store { .. } | OpKind::Prefetch { .. }) => StallClass::DataMemory,
                Some(OpKind::Barrier { .. } | OpKind::FlagWait { .. } | OpKind::FlagSet { .. }) => {
                    StallClass::Sync
                }
                Some(_) => StallClass::Cpu,
                None => StallClass::Instruction,
            });
        if let Some(class) = stall {
            self.breakdown.add_stall(class, 1.0 - frac);
        }
        self.last_stall = stall;
        !self.halted
    }

    /// The stall class charged by the most recent retire call, or `None`
    /// when the core retired at full width (or halted).
    pub fn last_stall(&self) -> Option<StallClass> {
        self.last_stall
    }

    /// The earliest future cycle at which this core might make progress
    /// (retire, issue, or fetch), or `None` when no local event can ever
    /// occur (halted, or genuinely stuck waiting on another processor).
    ///
    /// Called at the end of a cycle, after retire/issue/fetch have run.
    /// The cycle-skipping scheduler jumps the clock to the minimum of
    /// these across cores (and the memory system's fill events); for the
    /// skip to preserve exact results, every condition that could change
    /// the core's behavior on an intermediate cycle must map to a
    /// candidate here. Conservative answers (`now + 1`) are always safe.
    pub fn next_event_time(&self, sync: &SyncState, now: u64) -> Option<u64> {
        if self.halted {
            return None;
        }
        // A core that fetched or retired this cycle can generally do so
        // again next cycle; don't skip over it.
        if self.made_progress() {
            return Some(now + 1);
        }
        // The issue scan already found a ready instruction blocked on a
        // per-cycle resource: the window scan below would answer `now + 1`
        // through exactly that entry, so skip it.
        if self.issue_blocked {
            return Some(now + 1);
        }
        // u64::MAX stands in for "no candidate"; every real candidate is
        // clamped up to `now + 1` (the earliest actionable cycle).
        const NO_EVENT: u64 = u64::MAX;
        let mut next: u64 = NO_EVENT;
        // Head-of-window synchronization waits resolve at times recorded
        // in the shared sync state (this runs after every core's retire
        // stage for the cycle, so arrivals/sets from this cycle are seen).
        if let Some(head) = self.rob.front() {
            match head.op.kind {
                OpKind::Barrier { id } => {
                    if let Some(t) = sync.barrier_release_time(id) {
                        next = next.min(t.max(now + 1));
                    }
                    // No release time yet: other processors must arrive
                    // first; their own events bound the skip.
                }
                OpKind::FlagWait { flag } => {
                    if let Some(t) = sync.flag_time(flag) {
                        next = next.min(t.max(now + 1));
                    }
                }
                _ => {}
            }
        }
        for e in &self.rob {
            // Nothing beats the very next cycle; stop scanning.
            if next == now + 1 {
                break;
            }
            if e.issued {
                if e.complete_at > now {
                    // Completion: may unblock retirement, dependents, or
                    // (for branches) the unresolved-branch fetch limit.
                    next = next.min(e.complete_at.max(now + 1));
                } else if matches!(e.op.kind, OpKind::Branch) && !e.branch_resolved {
                    // Completed but the issue scan has not yet marked it
                    // resolved (width cut the scan short): it will next cycle.
                    next = now + 1;
                }
                continue;
            }
            match e.op.kind {
                // These act only at the head of the retire stage; head
                // progress is covered by the candidates above.
                OpKind::Barrier { .. } | OpKind::FlagWait { .. } | OpKind::Halt => {}
                OpKind::FlagSet { .. } => {
                    // Issues once earlier stores globally complete.
                    match self.pending_stores.min_after(now) {
                        Some(t) => next = next.min(t),
                        None => next = now + 1,
                    }
                }
                _ => {
                    // Re-resolve pending sources read-only (entries past
                    // the issue scan's width cutoff were not updated this
                    // cycle). A producer still unissued contributes no
                    // candidate: its own entry's candidates cover it.
                    let mut ready = e.ready_at;
                    let mut unknown = false;
                    for &src in e.pending.as_slice() {
                        match self.vreg_ready.get(src) {
                            None => {}
                            Some(READY_UNKNOWN) => {
                                unknown = true;
                                break;
                            }
                            Some(t) => ready = ready.max(t),
                        }
                    }
                    if unknown {
                        continue;
                    }
                    if ready > now {
                        next = next.min(ready);
                    } else if e.mshr_wait > now {
                        // Ready but refused by a full MSHR file that
                        // provably cannot free a register earlier (the
                        // bound set by the last `Access::Retry`): sleep
                        // until then. The issue scan re-polls on any
                        // earlier step of this core and refreshes or
                        // clears the bound.
                        next = next.min(e.mshr_wait);
                    } else {
                        // Ready but unissued: blocked on a per-cycle
                        // resource (FU, port, queue, MSHR, store
                        // disambiguation, issue width) — retry next cycle.
                        next = now + 1;
                    }
                }
            }
        }
        (next != NO_EVENT).then_some(next)
    }

    /// Charges `span` stall cycles in bulk — exactly what `span`
    /// consecutive [`Core::retire`] calls would account on cycles where
    /// nothing can retire (the cycles the scheduler skipped).
    pub fn charge_idle(&mut self, span: u64) {
        if self.halted || span == 0 {
            return;
        }
        let class = match self.rob.front().map(|e| e.op.kind) {
            Some(OpKind::Load { .. }) => StallClass::DataMemory,
            Some(OpKind::Store { .. } | OpKind::Prefetch { .. }) => StallClass::DataMemory,
            Some(OpKind::Barrier { .. } | OpKind::FlagWait { .. } | OpKind::FlagSet { .. }) => {
                StallClass::Sync
            }
            Some(_) => StallClass::Cpu,
            None => StallClass::Instruction,
        };
        self.breakdown.add_stall(class, span as f64);
    }

    /// The flag the head-of-window instruction is waiting on, if it is a
    /// `FlagWait`. Flags set at cycle `t` are visible to higher-numbered
    /// processors retiring at `t`, so the event-driven stepper uses this
    /// to pull sleeping waiters into the round that sets their flag.
    pub(crate) fn head_flag_wait(&self) -> Option<u32> {
        match self.rob.front().map(|e| e.op.kind) {
            Some(OpKind::FlagWait { flag }) => Some(flag),
            _ => None,
        }
    }

    /// Whether the head-of-window instruction is a synchronization wait.
    ///
    /// [`Core::next_event_time`] consults shared sync state *only*
    /// through its head-of-window `Barrier`/`FlagWait` candidates (the
    /// window scan's candidates — completion times, operand-ready times,
    /// store drains — are all core-local). A sync version change can
    /// therefore move the wake time only of cores for which this returns
    /// true, or that are asleep with no wake candidate at all; everyone
    /// else would recompute the exact value they already hold.
    pub(crate) fn head_sync_wait(&self) -> bool {
        matches!(
            self.rob.front().map(|e| e.op.kind),
            Some(OpKind::Barrier { .. } | OpKind::FlagWait { .. })
        )
    }

    /// Number of instructions currently in the window.
    pub fn window_occupancy(&self) -> usize {
        self.rob.len()
    }

    /// Registers this core's end-of-run statistics under
    /// `sim.proc<id>.core.*`.
    pub fn export_metrics(&self, reg: &mut mempar_obs::MetricsRegistry) {
        let pre = format!("sim.proc{}.core", self.id);
        reg.counter(&format!("{pre}.retired"), self.retired);
        reg.gauge(&format!("{pre}.busy"), self.breakdown.busy);
        reg.gauge(&format!("{pre}.stall.cpu"), self.breakdown.cpu_stall);
        reg.gauge(&format!("{pre}.stall.data"), self.breakdown.data);
        reg.gauge(&format!("{pre}.stall.sync"), self.breakdown.sync);
        reg.gauge(&format!("{pre}.stall.instr"), self.breakdown.instr);
        reg.gauge(&format!("{pre}.halt_cycle"), self.halt_cycle as f64);
    }

    /// Oldest unretired op's age in cycles (diagnostics/deadlock checks).
    pub fn head_age(&self, now: u64) -> u64 {
        self.rob
            .front()
            .map(|e| now.saturating_sub(e.fetched_at))
            .unwrap_or(0)
    }

    /// Debug description of the window head (deadlock diagnostics).
    pub fn head_desc(&self, now: u64) -> String {
        match self.rob.front() {
            None => "empty".into(),
            Some(e) => format!(
                "{:?} issued={} ready_at={} pending={:?} complete_at={} now={} memq={} stores={}",
                e.op.kind,
                e.issued,
                e.ready_at,
                e.pending.as_slice(),
                e.complete_at,
                now,
                self.mem_inflight.len(),
                self.pending_stores.len()
            ),
        }
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum StoreCheck {
    /// No earlier store to the address.
    Clear,
    /// An earlier store has issued: forward its data.
    Forward,
    /// An earlier store's data is not available yet.
    MustWait,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::MachineConfig;
    use mempar_ir::SrcList;

    fn setup() -> (Core, MemSystem, SyncState) {
        let cfg = MachineConfig::base_simulated(1, 64 * 1024);
        let core = Core::new(0, &cfg.proc, 2);
        let mem = MemSystem::new(&cfg, Box::new(|_| 0));
        let sync = SyncState::new(1);
        (core, mem, sync)
    }

    fn op(kind: OpKind, srcs: &[u32], dst: Option<u32>) -> DynOp {
        DynOp {
            kind,
            srcs: srcs.iter().copied().collect::<SrcList>(),
            dst,
        }
    }

    /// Runs until the core halts; returns cycles taken.
    fn run(core: &mut Core, mem: &mut MemSystem, sync: &mut SyncState, ops: Vec<DynOp>) -> u64 {
        let mut it = ops.into_iter();
        let mut now = 0u64;
        loop {
            mem.tick(now);
            if !core.retire(sync, now) {
                return now;
            }
            core.issue(mem, now);
            for _ in 0..core.fetch_room() {
                match it.next() {
                    Some(o) => core.fetch(o, now),
                    None => break,
                }
            }
            now += 1;
            assert!(now < 1_000_000, "runaway core test");
        }
    }

    #[test]
    fn independent_ints_pipeline() {
        let (mut core, mut mem, mut sync) = setup();
        let mut ops: Vec<DynOp> = (0..100)
            .map(|i| op(OpKind::Int, &[], Some(i + 1)))
            .collect();
        ops.push(DynOp::nullary(OpKind::Halt));
        let cycles = run(&mut core, &mut mem, &mut sync, ops);
        // 100 int ops on 2 ALUs: ~50 cycles + pipeline fill.
        assert!((45..80).contains(&cycles), "cycles={cycles}");
        assert_eq!(core.retired, 101);
    }

    #[test]
    fn dependent_chain_serializes() {
        let (mut core, mut mem, mut sync) = setup();
        let mut ops = Vec::new();
        for i in 0..50u32 {
            let srcs: &[u32] = if i == 0 { &[] } else { &[i] };
            ops.push(op(
                OpKind::Fp {
                    unit: FpUnit::Arith,
                },
                srcs,
                Some(i + 1),
            ));
        }
        ops.push(DynOp::nullary(OpKind::Halt));
        let cycles = run(&mut core, &mut mem, &mut sync, ops);
        // 50 dependent 3-cycle FP ops: at least 150 cycles.
        assert!(cycles >= 150, "cycles={cycles}");
    }

    #[test]
    fn load_miss_blocks_retirement_and_is_data_stall() {
        let (mut core, mut mem, mut sync) = setup();
        let ops = vec![
            op(OpKind::Load { addr: 0x10000 }, &[], Some(1)),
            DynOp::nullary(OpKind::Halt),
        ];
        let cycles = run(&mut core, &mut mem, &mut sync, ops);
        assert!(cycles > 50, "a cold miss takes dozens of cycles: {cycles}");
        assert!(
            core.breakdown.data > core.breakdown.cpu_stall,
            "stall should be attributed to data memory: {:?}",
            core.breakdown
        );
    }

    #[test]
    fn clustered_misses_overlap() {
        // The paper's core claim at the microarchitecture level: misses to
        // N different lines in the same window overlap, while N misses to
        // the same line sequence... (same line coalesces trivially). Here:
        // compare N independent misses vs N dependent (chained) misses.
        let n = 8u32;
        let (mut core, mut mem, mut sync) = setup();
        let mut ops = Vec::new();
        for i in 0..n {
            ops.push(op(
                OpKind::Load {
                    addr: 0x100000 + u64::from(i) * 4096,
                },
                &[],
                Some(i + 1),
            ));
        }
        ops.push(DynOp::nullary(OpKind::Halt));
        let clustered = run(&mut core, &mut mem, &mut sync, ops);

        let (mut core2, mut mem2, mut sync2) = setup();
        let mut ops2 = Vec::new();
        for i in 0..n {
            let srcs: &[u32] = if i == 0 { &[] } else { &[i] };
            ops2.push(op(
                OpKind::Load {
                    addr: 0x200000 + u64::from(i) * 4096,
                },
                srcs,
                Some(i + 1),
            ));
        }
        ops2.push(DynOp::nullary(OpKind::Halt));
        let serial = run(&mut core2, &mut mem2, &mut sync2, ops2);
        assert!(
            clustered * 3 < serial * 2,
            "clustered={clustered} serial={serial}"
        );
    }

    #[test]
    fn store_retires_before_completion() {
        let (mut core, mut mem, mut sync) = setup();
        let ops = vec![
            op(OpKind::Store { addr: 0x30000 }, &[], None),
            DynOp::nullary(OpKind::Halt),
        ];
        let cycles = run(&mut core, &mut mem, &mut sync, ops);
        // The store misses (cold) but retires immediately after issue.
        assert!(cycles < 20, "write buffering hides the store: {cycles}");
    }

    #[test]
    fn store_load_forwarding() {
        let (mut core, mut mem, mut sync) = setup();
        let ops = vec![
            op(OpKind::Store { addr: 0x40000 }, &[], None),
            op(OpKind::Load { addr: 0x40000 }, &[], Some(1)),
            DynOp::nullary(OpKind::Halt),
        ];
        let cycles = run(&mut core, &mut mem, &mut sync, ops);
        assert!(cycles < 20, "forwarded load should not miss: {cycles}");
    }

    #[test]
    fn flag_set_waits_for_stores_and_wait_sees_it() {
        let (mut core, mut mem, mut sync) = setup();
        let ops = vec![
            op(OpKind::Store { addr: 0x50000 }, &[], None),
            DynOp::nullary(OpKind::FlagSet { flag: 3 }),
            DynOp::nullary(OpKind::FlagWait { flag: 3 }),
            DynOp::nullary(OpKind::Halt),
        ];
        let cycles = run(&mut core, &mut mem, &mut sync, ops);
        // FlagSet must wait for the store's global completion (a miss).
        assert!(cycles > 50, "release fence waits for the store: {cycles}");
        assert!(core.breakdown.sync > 0.0);
    }

    #[test]
    fn window_fills_limit_fetch() {
        let (mut core, _mem, _sync) = setup();
        let mut fetched = 0;
        for i in 0..200u32 {
            if core.fetch_room() == 0 {
                break;
            }
            core.fetch(
                op(
                    OpKind::Fp {
                        unit: FpUnit::Arith,
                    },
                    &[i],
                    Some(i + 1000),
                ),
                0,
            );
            fetched += 1;
        }
        assert_eq!(fetched, 64, "window size bounds in-flight ops");
    }

    #[test]
    fn branch_limit_bounds_fetch() {
        let (mut core, _mem, _sync) = setup();
        // A dependence on a never-completing producer keeps the branches
        // unresolved; the counter is what bounds fetch.
        // Seq far past the ROB: the waiter registration treats it as a
        // retired-unissued producer and leaves the source pending.
        core.vreg_set(9999, READY_UNKNOWN, u64::MAX);
        for _ in 0..16 {
            core.fetch(op(OpKind::Branch, &[9999], None), 0);
        }
        assert_eq!(core.fetch_room(), 0, "16 unresolved branches block fetch");
    }

    #[test]
    fn busy_time_accounts_retires() {
        let (mut core, mut mem, mut sync) = setup();
        let mut ops: Vec<DynOp> = (0..40).map(|i| op(OpKind::Int, &[], Some(i + 1))).collect();
        ops.push(DynOp::nullary(OpKind::Halt));
        run(&mut core, &mut mem, &mut sync, ops);
        let b = &core.breakdown;
        assert!(b.busy > 0.0);
        // Busy time ≈ retired/width.
        assert!((b.busy - 41.0 / 4.0).abs() < 6.0, "{b:?}");
    }
}
