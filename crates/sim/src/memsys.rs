//! The timed memory system: per-processor L1/L2 caches with MSHRs,
//! split-transaction buses, interleaved memory banks, the mesh network
//! and directory coherence.
//!
//! Timing uses the *resource-reservation timeline* approach: when a miss
//! is issued, its whole path (bus request, directory, bank, data return,
//! forwarding, invalidations) is walked once, reserving each shared
//! resource no earlier than the previous stage's completion. The
//! resulting fill time is recorded in the MSHR so later same-line
//! accesses coalesce onto it; an event releases the MSHR and installs the
//! tags at fill time. This captures latency, overlap limits (MSHRs) and
//! bandwidth contention without per-message simulation.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use mempar_obs::{MetricsRegistry, TraceEventKind, Tracer};
use mempar_stats::{LatencyStat, MemCounters, MshrOccupancy, Utilization};

use crate::cache::{LineState, MshrFile, MshrOutcome, TagArray};
use crate::config::{MachineConfig, Topology};
use crate::interconnect::{Bus, MemoryBanks, Mesh};
use crate::protocol::{CohTxn, CoherenceProtocol, DataSource, Protocol};
use crate::resource::Resource;

/// Result of a timed cache access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Access {
    /// The access will complete (data ready / store globally performed)
    /// at the given cycle.
    Done {
        /// Completion cycle.
        complete_at: u64,
        /// True when this access missed past the L2 (an external miss).
        l2_miss: bool,
    },
    /// No MSHR was available — retry next cycle. When the blocking file
    /// provably cannot free a register before some cycle (every
    /// outstanding fill is scheduled later), `until` carries that bound
    /// and the core may sleep until then instead of re-polling; `None`
    /// means no bound can be promised and the access must retry every
    /// cycle.
    Retry {
        /// Earliest cycle a re-attempt could succeed, when provable.
        until: Option<u64>,
    },
}

#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
enum EventKind {
    /// Install `line` in proc's L2 with the given state and free its MSHR.
    FillL2 {
        proc: u32,
        line: u64,
        state: LineState,
    },
    /// Install `line` in proc's L1 and free its L1 MSHR.
    FillL1 { proc: u32, line: u64 },
}

#[derive(Debug, PartialEq, Eq)]
struct Event {
    time: u64,
    seq: u64,
    kind: EventKind,
}

impl Ord for Event {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.time, self.seq, self.kind).cmp(&(other.time, other.seq, other.kind))
    }
}

impl PartialOrd for Event {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

#[derive(Debug)]
struct CacheLevel {
    tags: TagArray,
    mshrs: MshrFile,
    port: Resource,
    hit_latency: u64,
}

/// The full memory system shared by all simulated processors.
pub struct MemSystem {
    cfg: MachineConfig,
    line_shift: u32,
    l1: Vec<CacheLevel>,
    l2: Vec<CacheLevel>,
    buses: Vec<Bus>,
    banks: Vec<MemoryBanks>,
    mesh: Mesh,
    proto: Box<dyn CoherenceProtocol>,
    /// Pooled coherence-transaction buffer, reused across every global
    /// transaction so the steady state allocates nothing (taken with
    /// `mem::take` around each protocol call, then put back).
    txn: CohTxn,
    events: BinaryHeap<Reverse<Event>>,
    seq: u64,
    /// Per-processor counters.
    counters: Vec<MemCounters>,
    /// Per-processor L2 read-miss latency (address generation → fill).
    read_latency: Vec<LatencyStat>,
    /// Per-processor L2 MSHR occupancy histograms, maintained lazily:
    /// `occ_from[p]` is the first cycle not yet accounted, and every
    /// occupancy-changing entry point (an access, or an L2 fill) first
    /// books the cycles since then at the still-current occupancy.
    /// Equivalent to the per-cycle sampling the strict driver used to
    /// do — occupancy is constant between mutations, and the drivers
    /// execute a contiguous cycle range — at a per-mutation (not
    /// per-cycle) cost. [`MemSystem::close_occupancy`] books the tail.
    occupancy: Vec<MshrOccupancy>,
    /// First cycle not yet booked into `occupancy` (see above).
    occ_from: Vec<u64>,
    /// True while servicing a software prefetch (suppresses demand-read
    /// statistics so prefetches do not skew latency/miss metrics).
    in_prefetch: bool,
    /// Structured event tracer; disabled by default, in which case every
    /// trace site reduces to one inlined branch (see `crates/obs`).
    tracer: Tracer,
    home_of_addr: Box<dyn Fn(u64) -> usize + Send>,
}

impl std::fmt::Debug for MemSystem {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MemSystem")
            .field("config", &self.cfg.name)
            .field("nprocs", &self.cfg.nprocs)
            .field("pending_events", &self.events.len())
            .finish_non_exhaustive()
    }
}

impl MemSystem {
    /// Builds the memory system for `cfg` with the default (full-map
    /// directory) coherence protocol. `home_of_addr` maps a byte address
    /// to its NUMA home node (derived from the program's
    /// [`SimMem`](mempar_ir::SimMem) layout).
    pub fn new(cfg: &MachineConfig, home_of_addr: Box<dyn Fn(u64) -> usize + Send>) -> Self {
        Self::with_protocol(cfg, home_of_addr, Protocol::Directory)
    }

    /// Builds the memory system for `cfg` with a specific coherence
    /// protocol driving its global transactions.
    pub fn with_protocol(
        cfg: &MachineConfig,
        home_of_addr: Box<dyn Fn(u64) -> usize + Send>,
        protocol: Protocol,
    ) -> Self {
        cfg.validate();
        let n = cfg.nprocs;
        let line_shift = cfg.l2.line_bytes.trailing_zeros();
        let l1 = match &cfg.l1 {
            Some(p) => (0..n)
                .map(|_| CacheLevel {
                    tags: TagArray::new(p),
                    mshrs: MshrFile::new(p.mshrs),
                    port: Resource::new(),
                    hit_latency: p.hit_latency as u64,
                })
                .collect(),
            None => Vec::new(),
        };
        let l2 = (0..n)
            .map(|_| CacheLevel {
                tags: TagArray::new(&cfg.l2),
                mshrs: MshrFile::new(cfg.l2.mshrs),
                port: Resource::new(),
                hit_latency: cfg.l2.hit_latency as u64,
            })
            .collect();
        let (buses, banks) = match cfg.topology {
            Topology::Numa => (
                (0..n).map(|_| Bus::new(&cfg.bus)).collect(),
                (0..n).map(|_| MemoryBanks::new(&cfg.mem)).collect(),
            ),
            Topology::SmpBus => (vec![Bus::new(&cfg.bus)], vec![MemoryBanks::new(&cfg.mem)]),
        };
        MemSystem {
            line_shift,
            l1,
            l2,
            buses,
            banks,
            mesh: Mesh::new(cfg.mesh_side(), &cfg.net),
            proto: protocol.build(),
            txn: CohTxn::default(),
            // Outstanding events are bounded by MSHR capacity: at most
            // one fill event per L1 MSHR and two per L2 MSHR (an
            // upgrade-after-fill can briefly double-book a line).
            events: BinaryHeap::with_capacity(
                n * (cfg.l1.as_ref().map_or(0, |p| p.mshrs) + 2 * cfg.l2.mshrs) + 64,
            ),
            seq: 0,
            counters: vec![MemCounters::default(); n],
            read_latency: vec![LatencyStat::default(); n],
            occupancy: vec![MshrOccupancy::new(cfg.l2.mshrs); n],
            occ_from: vec![0; n],
            in_prefetch: false,
            tracer: Tracer::disabled(),
            home_of_addr,
            cfg: cfg.clone(),
        }
    }

    /// Installs a tracer; L2 miss/MSHR events will be recorded into it.
    pub fn set_tracer(&mut self, tracer: Tracer) {
        self.tracer = tracer;
    }

    /// Removes and returns the tracer, leaving a disabled one behind.
    pub fn take_tracer(&mut self) -> Tracer {
        std::mem::replace(&mut self.tracer, Tracer::disabled())
    }

    /// Mutable access to the tracer (for recording events that originate
    /// outside the memory system, e.g. processor stall transitions).
    pub fn tracer_mut(&mut self) -> &mut Tracer {
        &mut self.tracer
    }

    /// True when an enabled tracer is installed.
    pub fn trace_enabled(&self) -> bool {
        self.tracer.is_enabled()
    }

    /// The line number of `addr`.
    pub fn line_of(&self, addr: u64) -> u64 {
        addr >> self.line_shift
    }

    fn schedule(&mut self, time: u64, kind: EventKind) {
        self.seq += 1;
        self.events.push(Reverse(Event {
            time,
            seq: self.seq,
            kind,
        }));
    }

    /// Processes all fills due at or before `now`. Call once per
    /// executed cycle before processor issue/retire.
    pub fn tick(&mut self, now: u64) {
        while let Some(Reverse(ev)) = self.events.peek() {
            if ev.time > now {
                break;
            }
            let Reverse(ev) = self.events.pop().expect("peeked");
            match ev.kind {
                EventKind::FillL2 { proc, line, state } => {
                    // The fill applies before this cycle's (virtual)
                    // occupancy sample, so the booked span ends at the
                    // fill time and the release is visible from it.
                    self.occ_flush(proc as usize, ev.time);
                    self.apply_l2_fill(proc as usize, line, state, ev.time)
                }
                EventKind::FillL1 { proc, line } => self.apply_l1_fill(proc as usize, line),
            }
        }
    }

    /// Books occupancy-histogram cycles `occ_from[proc]..end` at the
    /// current (pre-mutation) occupancy. `end` is exclusive: a mutation
    /// during cycle `t` is first visible to the cycle-`t + 1` sample
    /// (accesses run after the cycle's sample point), while an L2 fill
    /// at `t` is visible to cycle `t` itself (fills apply before it).
    #[inline]
    fn occ_flush(&mut self, proc: usize, end: u64) {
        let from = self.occ_from[proc];
        if end > from {
            let (r, t) = self.l2[proc].mshrs.occupancy();
            self.occupancy[proc].sample_n(r, t, end - from);
            self.occ_from[proc] = end;
        }
    }

    /// Books the remaining occupancy-histogram cycles through `end`
    /// (exclusive) at the final occupancy. Call once when the run's
    /// clock stops, with one past the last executed cycle.
    pub fn close_occupancy(&mut self, end: u64) {
        for p in 0..self.cfg.nprocs {
            self.occ_flush(p, end);
        }
    }

    /// The time of the earliest scheduled fill event, if any. Used by the
    /// cycle-skipping scheduler to bound how far the clock may jump.
    pub fn next_event_time(&self) -> Option<u64> {
        self.events.peek().map(|Reverse(ev)| ev.time)
    }

    fn apply_l2_fill(&mut self, proc: usize, line: u64, state: LineState, now: u64) {
        if self.tracer.is_enabled() {
            self.tracer
                .record(now, proc as u32, TraceEventKind::MissFill { line });
            self.tracer
                .record(now, proc as u32, TraceEventKind::MshrRelease { line });
        }
        self.l2[proc].mshrs.release(line);
        // The line may have been invalidated-in-flight; install fresh.
        if self.l2[proc].tags.peek(line) != LineState::Invalid {
            // Upgrade completing: just set the (ownership) state; clean
            // read fills leave whatever state the line already reached.
            if state.is_dirty() {
                self.l2[proc].tags.set_state(line, state);
            }
            return;
        }
        if let Some(victim) = self.l2[proc].tags.fill(line, state) {
            self.evict_line(proc, victim.line, victim.dirty, now);
        }
    }

    fn apply_l1_fill(&mut self, proc: usize, line: u64) {
        self.l1[proc].mshrs.release(line);
        if self.l1[proc].tags.peek(line) == LineState::Invalid {
            // L1 victims are clean from the hierarchy's point of view
            // (dirtiness is tracked at the L2).
            let _ = self.l1[proc].tags.fill(line, LineState::Shared);
        }
    }

    fn evict_line(&mut self, proc: usize, line: u64, dirty: bool, now: u64) {
        // Inclusion: drop the L1 copy.
        if let Some(l1) = self.l1.get_mut(proc) {
            l1.tags.invalidate(line);
        }
        self.proto.evict(line, proc);
        if dirty {
            self.counters[proc].writebacks += 1;
            // Writeback consumes bus + bank bandwidth off the critical path.
            let home = (self.home_of_addr)(line << self.line_shift);
            match self.cfg.topology {
                Topology::SmpBus => {
                    let t = self.buses[0].data(now, self.cfg.l2.line_bytes as u32);
                    self.banks[0].access(line, t);
                }
                Topology::Numa => {
                    if home == proc {
                        let t = self.buses[proc].data(now, self.cfg.l2.line_bytes as u32);
                        self.banks[proc].access(line, t);
                    } else {
                        let t = self
                            .mesh
                            .send(proc, home, self.cfg.l2.line_bytes as u32 + 8, now);
                        self.banks[home].access(line, t);
                    }
                }
            }
        }
    }

    /// Issues a non-binding software prefetch: starts the read miss (if
    /// any) through the normal MSHR/coherence path, but drops it silently
    /// when no MSHR is free and keeps it out of the demand-read
    /// statistics.
    pub fn prefetch(&mut self, proc: usize, addr: u64, now: u64) {
        self.occ_flush(proc, now);
        self.counters[proc].prefetches += 1;
        self.in_prefetch = true;
        let _ = self.access_inner(proc, addr, false, now);
        self.in_prefetch = false;
    }

    /// Performs a timed access by `proc` to `addr` at cycle `now`.
    ///
    /// For loads, the completion time is when data is available; for
    /// stores, when the write is globally performed (ownership granted).
    pub fn access(&mut self, proc: usize, addr: u64, is_write: bool, now: u64) -> Access {
        // `now` is one past the issuing cycle, which is exactly where a
        // registration becomes visible to occupancy samples.
        self.occ_flush(proc, now);
        let r = self.access_inner(proc, addr, is_write, now);
        if !matches!(r, Access::Retry { .. }) {
            if is_write {
                self.counters[proc].stores += 1;
            } else {
                self.counters[proc].loads += 1;
            }
        }
        r
    }

    fn access_inner(&mut self, proc: usize, addr: u64, is_write: bool, now: u64) -> Access {
        let line = self.line_of(addr);
        if self.l1.is_empty() {
            return self.access_l2(proc, line, is_write, now, now);
        }

        // ---- L1 ----
        let l1_state = self.l1[proc].tags.probe(line);
        let l1_lat = self.l1[proc].hit_latency;
        if l1_state != LineState::Invalid {
            // Presence in L1; exclusivity is tracked at the L2.
            let l2_state = self.l2[proc].tags.peek(line);
            if !is_write || self.proto.write_hits(l2_state) {
                if is_write && l2_state != LineState::Modified {
                    // Silent E -> M: ownership without a transaction.
                    self.l2[proc].tags.set_state(line, LineState::Modified);
                    self.proto.silent_upgrade(line, proc);
                }
                return Access::Done {
                    complete_at: now + l1_lat,
                    l2_miss: false,
                };
            }
            // Write to a shared line: upgrade through the L2 path.
            return self.access_l2(proc, line, true, now + l1_lat, now);
        }
        // L1 miss.
        match self.l1[proc].mshrs.register(line, is_write) {
            MshrOutcome::Coalesced { fill_at } => {
                self.counters[proc].coalesced += 1;
                debug_assert_ne!(fill_at, u64::MAX, "L1 fill times are always known");
                // A write coalescing onto a read fill may still need an
                // upgrade; the L2 state check happens when the write
                // "replays" at fill time.
                if is_write {
                    let l2_state = self.l2[proc].tags.peek(line);
                    if !self.proto.write_hits(l2_state) {
                        return self.access_l2(proc, line, true, fill_at, now);
                    }
                    if l2_state != LineState::Modified {
                        self.l2[proc].tags.set_state(line, LineState::Modified);
                        self.proto.silent_upgrade(line, proc);
                    }
                }
                Access::Done {
                    complete_at: fill_at + 1,
                    l2_miss: false,
                }
            }
            MshrOutcome::Full => {
                // A full L1 file frees registers only when fills apply
                // (at the top of a cycle, before cores issue), and no
                // path adds entries while it is full, so the earliest
                // fill is an exact first-possibly-successful retry cycle.
                Access::Retry {
                    until: self.l1[proc].mshrs.next_fill_time(),
                }
            }
            MshrOutcome::Allocated => {
                self.counters[proc].l1_misses += 1;
                let r = self.access_l2(proc, line, is_write, now + l1_lat, now);
                match r {
                    Access::Retry { .. } => {
                        // Roll back the L1 MSHR: nothing else saw it this cycle.
                        self.l1[proc].mshrs.release(line);
                        // No bound: this path re-counts the L1 miss on
                        // every attempt, so eliding intermediate polls
                        // would change the miss counters.
                        Access::Retry { until: None }
                    }
                    Access::Done {
                        complete_at,
                        l2_miss,
                    } => {
                        // L1 fill arrives with the data.
                        self.l1[proc].mshrs.set_fill_time(line, complete_at);
                        self.schedule(
                            complete_at,
                            EventKind::FillL1 {
                                proc: proc as u32,
                                line,
                            },
                        );
                        Access::Done {
                            complete_at: complete_at + 1,
                            l2_miss,
                        }
                    }
                }
            }
        }
    }

    /// L2-and-beyond access. `now` is when the L2 sees the request;
    /// `issued_at` is when the processor issued it (for latency stats).
    fn access_l2(
        &mut self,
        proc: usize,
        line: u64,
        is_write: bool,
        now: u64,
        issued_at: u64,
    ) -> Access {
        // Check MSHR availability before consuming any port bandwidth:
        // a retried access that reserved the port every cycle would
        // otherwise snowball the port backlog faster than time advances.
        {
            let peek = self.l2[proc].tags.peek(line);
            let would_hit = if is_write {
                self.proto.write_hits(peek)
            } else {
                peek != LineState::Invalid
            };
            if !would_hit
                && self.l2[proc].mshrs.get(line).is_none()
                && self.l2[proc].mshrs.free() == 0
            {
                return Access::Retry { until: None };
            }
        }
        let start = self.l2[proc].port.reserve(now, 1);
        let t_lookup = start + self.l2[proc].hit_latency;
        let state = self.l2[proc].tags.probe(line);
        let hit = if is_write {
            self.proto.write_hits(state)
        } else {
            state != LineState::Invalid
        };
        if hit {
            if is_write && state != LineState::Modified {
                // Silent E -> M: ownership without a transaction.
                self.l2[proc].tags.set_state(line, LineState::Modified);
                self.proto.silent_upgrade(line, proc);
            }
            return Access::Done {
                complete_at: t_lookup,
                l2_miss: false,
            };
        }
        let upgrade = is_write && self.proto.upgradeable(state);
        match self.l2[proc].mshrs.register(line, is_write) {
            MshrOutcome::Coalesced { fill_at } => {
                self.counters[proc].coalesced += 1;
                debug_assert_ne!(fill_at, u64::MAX);
                self.tracer
                    .record(t_lookup, proc as u32, TraceEventKind::Coalesce { line });
                let entry = self.l2[proc].mshrs.get(line).expect("coalesced entry");
                if is_write && entry.writes == 1 && entry.reads > 0 {
                    // First write joining a read miss: upgrade after fill.
                    let (t, install) = self.global_transaction(proc, line, true, fill_at);
                    // Extend the MSHR's life to the upgrade completion.
                    self.l2[proc].mshrs.set_fill_time(line, t);
                    self.schedule(
                        t,
                        EventKind::FillL2 {
                            proc: proc as u32,
                            line,
                            state: install,
                        },
                    );
                    return Access::Done {
                        complete_at: t,
                        l2_miss: true,
                    };
                }
                Access::Done {
                    complete_at: fill_at,
                    l2_miss: true,
                }
            }
            MshrOutcome::Full => Access::Retry { until: None },
            MshrOutcome::Allocated => {
                self.counters[proc].l2_misses += 1;
                if !is_write && !self.in_prefetch {
                    self.counters[proc].l2_read_misses += 1;
                }
                if self.tracer.is_enabled() {
                    // Snapshot occupancy after registration so the new
                    // miss counts itself (1 == fully serialized).
                    let (reads, total) = self.l2[proc].mshrs.occupancy();
                    self.tracer
                        .record(t_lookup, proc as u32, TraceEventKind::MshrAlloc { line });
                    self.tracer.record(
                        t_lookup,
                        proc as u32,
                        TraceEventKind::MissIssue {
                            line,
                            write: is_write,
                            reads_outstanding: reads as u32,
                            total_outstanding: total as u32,
                        },
                    );
                }
                let (fill_at, install) = if upgrade {
                    self.global_upgrade(proc, line, t_lookup)
                } else {
                    self.global_transaction(proc, line, is_write, t_lookup)
                };
                self.l2[proc].mshrs.set_fill_time(line, fill_at);
                self.schedule(
                    fill_at,
                    EventKind::FillL2 {
                        proc: proc as u32,
                        line,
                        state: install,
                    },
                );
                if !is_write && !self.in_prefetch {
                    self.read_latency[proc].record((fill_at - issued_at) as f64);
                }
                Access::Done {
                    complete_at: fill_at,
                    l2_miss: true,
                }
            }
        }
    }

    /// An ownership upgrade (or Dragon update): no data transfer to the
    /// requester, but other copies must be invalidated — or updated —
    /// through the home/snoop path. Returns the completion time and the
    /// state the requester's line reaches.
    fn global_upgrade(&mut self, proc: usize, line: u64, t0: u64) -> (u64, LineState) {
        // The pooled buffer is taken out of `self` for the duration of
        // the transaction so its lists can be borrowed while `&mut self`
        // models the message timing, then put back for reuse.
        let mut txn = std::mem::take(&mut self.txn);
        txn.reset();
        self.proto.write_miss(line, proc, &mut txn);
        self.counters[proc].upgrades += 1;
        let home = self.effective_home(line);
        let t_home = self.leg_to_home(proc, home, 8, t0) + self.cfg.dir_cycles as u64;
        let t_acks = self.invalidate_all(proc, home, line, &txn.invalidees, t_home);
        let t_acks = t_acks.max(self.update_all(home, line, &txn.updatees, t_home));
        let result = (self.leg_from_home(home, proc, 8, t_acks), txn.install);
        self.txn = txn;
        result
    }

    /// A full miss transaction (read or write). Returns the fill time and
    /// the state the line installs in.
    fn global_transaction(
        &mut self,
        proc: usize,
        line: u64,
        is_write: bool,
        t0: u64,
    ) -> (u64, LineState) {
        let home = self.effective_home(line);
        let line_bytes = self.cfg.l2.line_bytes as u32;
        let mut txn = std::mem::take(&mut self.txn);
        txn.reset();
        let result = if is_write {
            self.proto.write_miss(line, proc, &mut txn);
            let t_home = self.leg_to_home(proc, home, 8, t0) + self.cfg.dir_cycles as u64;
            let t_acks = self.invalidate_all(proc, home, line, &txn.invalidees, t_home);
            let t_acks = t_acks.max(self.update_all(home, line, &txn.updatees, t_home));
            let t = match txn.source {
                DataSource::Memory => {
                    let t_mem = self.bank_access(home, line, t_acks);
                    self.count_locality(proc, home, false);
                    self.leg_from_home(home, proc, line_bytes + 8, t_mem)
                }
                DataSource::CacheToCache { owner } => {
                    self.counters[proc].cache_to_cache += 1;
                    self.owner_to_requester(home, owner, proc, t_acks)
                }
            };
            (t, txn.install)
        } else {
            self.proto.read_miss(line, proc, &mut txn);
            let t_home = self.leg_to_home(proc, home, 8, t0) + self.cfg.dir_cycles as u64;
            let t = match txn.source {
                DataSource::Memory => {
                    // Clean-exclusive holders lose exclusivity when the
                    // line becomes shared (MESI/MOESI/Dragon; the
                    // directory never reaches Exclusive).
                    for &p in &txn.demote {
                        if self.l2[p].tags.peek(line) == LineState::Exclusive {
                            self.l2[p].tags.set_state(line, LineState::Shared);
                        }
                    }
                    let t_mem = self.bank_access(home, line, t_home);
                    self.count_locality(proc, home, false);
                    self.leg_from_home(home, proc, line_bytes + 8, t_mem)
                }
                DataSource::CacheToCache { owner } => {
                    self.counters[proc].cache_to_cache += 1;
                    // The supplier keeps a copy. With a memory update
                    // (directory, MESI) its dirty data is written back
                    // off-path and it drops to Shared; without one
                    // (MOESI, Dragon) a dirty supplier stays the owner
                    // (M -> Owned). (The owner's own fill may still be
                    // in flight, in which case there is no installed
                    // line to transition yet.)
                    match self.l2[owner].tags.peek(line) {
                        LineState::Modified => {
                            let next = if txn.memory_update {
                                LineState::Shared
                            } else {
                                LineState::Owned
                            };
                            self.l2[owner].tags.set_state(line, next);
                        }
                        LineState::Exclusive => {
                            self.l2[owner].tags.set_state(line, LineState::Shared);
                        }
                        _ => {}
                    }
                    if txn.memory_update {
                        self.banks_writeback(home, line, t_home);
                    }
                    self.owner_to_requester(home, owner, proc, t_home)
                }
            };
            (t, txn.install)
        };
        self.txn = txn;
        result
    }

    /// Directory home for timing purposes (node 0 for SMP configs).
    fn effective_home(&self, line: u64) -> usize {
        match self.cfg.topology {
            Topology::SmpBus => 0,
            Topology::Numa => (self.home_of_addr)(line << self.line_shift),
        }
    }

    /// Request leg: requester → home.
    fn leg_to_home(&mut self, proc: usize, home: usize, bytes: u32, t: u64) -> u64 {
        match self.cfg.topology {
            Topology::SmpBus => self.buses[0].request(t),
            Topology::Numa => {
                if proc == home {
                    self.buses[proc].request(t)
                } else {
                    self.mesh.send(proc, home, bytes, t)
                }
            }
        }
    }

    /// Response leg: home → requester.
    fn leg_from_home(&mut self, home: usize, proc: usize, bytes: u32, t: u64) -> u64 {
        let fill_overhead = 4; // L2 install
        match self.cfg.topology {
            Topology::SmpBus => self.buses[0].data(t, bytes) + fill_overhead,
            Topology::Numa => {
                if proc == home {
                    self.buses[proc].data(t, bytes) + fill_overhead
                } else {
                    self.mesh.send(home, proc, bytes, t) + fill_overhead
                }
            }
        }
    }

    /// Memory-bank access at the home node; returns data-ready time.
    fn bank_access(&mut self, home: usize, line: u64, t: u64) -> u64 {
        let idx = match self.cfg.topology {
            Topology::SmpBus => 0,
            Topology::Numa => home,
        };
        self.banks[idx].access(line, t)
    }

    /// Off-critical-path writeback bandwidth at the home node.
    fn banks_writeback(&mut self, home: usize, line: u64, t: u64) {
        let idx = match self.cfg.topology {
            Topology::SmpBus => 0,
            Topology::Numa => home,
        };
        self.banks[idx].access(line, t);
    }

    fn count_locality(&mut self, proc: usize, home: usize, _c2c: bool) {
        if self.cfg.topology == Topology::Numa && proc != home {
            self.counters[proc].remote_misses += 1;
        } else {
            self.counters[proc].local_misses += 1;
        }
    }

    /// Forwarding leg for cache-to-cache transfers:
    /// home → owner (forward), owner lookup, owner → requester (data).
    fn owner_to_requester(&mut self, home: usize, owner: usize, proc: usize, t: u64) -> u64 {
        let line_bytes = self.cfg.l2.line_bytes as u32;
        let lookup = self.l2[owner].hit_latency;
        match self.cfg.topology {
            Topology::SmpBus => {
                // Snooping owner supplies data over the shared bus.
                let t_owner = t + lookup;
                self.buses[0].data(t_owner, line_bytes) + 4
            }
            Topology::Numa => {
                let t_fwd = self.mesh.send(home, owner, 8, t);
                // Intervention: the owner's controller processes the
                // forwarded request, reads tags and the full line from
                // its data array — the protocol overhead that makes
                // cache-to-cache the slowest miss class (210-310 cycles
                // vs 180-260 remote in Section 4.1).
                let t_owner =
                    self.l2[owner].port.reserve(t_fwd, 1) + 2 * lookup + self.cfg.dir_cycles as u64;
                self.mesh.send(owner, proc, line_bytes + 8, t_owner) + 4
            }
        }
    }

    /// Sends invalidations to every processor in `invalidees`, applying
    /// them to their caches, and returns when all acks have reached home.
    fn invalidate_all(
        &mut self,
        _proc: usize,
        home: usize,
        line: u64,
        invalidees: &[usize],
        t: u64,
    ) -> u64 {
        let mut done = t;
        for &victim in invalidees {
            self.counters[victim].invalidations += 1;
            if let Some(l1) = self.l1.get_mut(victim) {
                l1.tags.invalidate(line);
            }
            self.l2[victim].tags.invalidate(line);
            let t_ack = match self.cfg.topology {
                Topology::SmpBus => t, // snooped on the same bus transaction
                Topology::Numa => {
                    let t_inv = self.mesh.send(home, victim, 8, t);
                    self.mesh.send(victim, home, 8, t_inv)
                }
            };
            done = done.max(t_ack);
        }
        done
    }

    /// Broadcasts the written word to every processor in `updatees`
    /// (write-update protocols): their copies stay valid and current,
    /// but a former exclusive/dirty holder is now merely a sharer.
    /// Returns when all updates (and their acks) have reached home.
    fn update_all(&mut self, home: usize, line: u64, updatees: &[usize], t: u64) -> u64 {
        if updatees.is_empty() {
            return t;
        }
        // On a shared bus one broadcast transaction reaches every
        // snooper; word + address is one bus cycle of data.
        let bus_done = match self.cfg.topology {
            Topology::SmpBus => self.buses[0].data(t, 8),
            Topology::Numa => t,
        };
        let mut done = bus_done;
        for &victim in updatees {
            self.counters[victim].updates += 1;
            let state = self.l2[victim].tags.peek(line);
            if state != LineState::Invalid && state != LineState::Shared {
                self.l2[victim].tags.set_state(line, LineState::Shared);
            }
            let t_ack = match self.cfg.topology {
                Topology::SmpBus => bus_done, // snooped off the broadcast
                Topology::Numa => {
                    // Point-to-point: word + address out, ack back.
                    let t_upd = self.mesh.send(home, victim, 16, t);
                    self.mesh.send(victim, home, 8, t_upd)
                }
            };
            done = done.max(t_ack);
        }
        done
    }

    // ---- statistics accessors -----------------------------------------

    /// Per-processor counters.
    pub fn counters(&self, proc: usize) -> &MemCounters {
        &self.counters[proc]
    }

    /// Aggregated counters across processors.
    pub fn total_counters(&self) -> MemCounters {
        let mut t = MemCounters::default();
        for c in &self.counters {
            t.merge(c);
        }
        t
    }

    /// Per-processor L2 read-miss latency distribution.
    pub fn read_latency(&self, proc: usize) -> &LatencyStat {
        &self.read_latency[proc]
    }

    /// Aggregated read-miss latency distribution.
    pub fn total_read_latency(&self) -> LatencyStat {
        let mut t = LatencyStat::default();
        for l in &self.read_latency {
            t.merge(l);
        }
        t
    }

    /// Per-processor L2 MSHR occupancy histogram (Figure 4).
    pub fn occupancy(&self, proc: usize) -> &MshrOccupancy {
        &self.occupancy[proc]
    }

    /// Merged occupancy histogram across processors.
    pub fn total_occupancy(&self) -> MshrOccupancy {
        let mut t = MshrOccupancy::new(self.cfg.l2.mshrs);
        for o in &self.occupancy {
            t.merge(o);
        }
        t
    }

    /// Bus utilization over `elapsed` cycles (averaged over buses).
    pub fn bus_utilization(&self, elapsed: u64) -> Utilization {
        let mut u = Utilization::default();
        for b in &self.buses {
            let x = b.utilization(elapsed);
            u.busy += x.busy;
            u.total += x.total;
        }
        u
    }

    /// Memory-bank utilization over `elapsed` cycles.
    pub fn bank_utilization(&self, elapsed: u64) -> Utilization {
        let mut u = Utilization::default();
        for b in &self.banks {
            let x = b.utilization(elapsed);
            u.busy += x.busy;
            u.total += x.total;
        }
        u
    }

    /// Registers this memory system's end-of-run statistics into `reg`
    /// under the `sim.*` dot-path convention (see
    /// [`MetricsRegistry`]); `elapsed` is the run's cycle count, used for
    /// utilization fractions.
    pub fn export_metrics(&self, elapsed: u64, reg: &mut MetricsRegistry) {
        let t = self.total_counters();
        reg.counter("sim.mem.loads", t.loads);
        reg.counter("sim.mem.stores", t.stores);
        reg.counter("sim.mem.prefetches", t.prefetches);
        reg.counter("sim.mem.writebacks", t.writebacks);
        reg.counter("sim.mem.local_miss", t.local_misses);
        reg.counter("sim.mem.remote_miss", t.remote_misses);
        reg.counter("sim.mem.cache_to_cache", t.cache_to_cache);
        reg.counter("sim.cache.l1.miss", t.l1_misses);
        reg.counter("sim.cache.l2.miss", t.l2_misses);
        reg.counter("sim.cache.l2.read_miss", t.l2_read_misses);
        reg.counter("sim.cache.l2.coalesced", t.coalesced);
        reg.counter("sim.coh.invalidations", t.invalidations);
        reg.counter("sim.coh.upgrades", t.upgrades);
        reg.counter("sim.coh.updates", t.updates);
        self.proto.export_metrics(reg);
        // `sim.coh.*` is canonical; the pre-protocol-trait `sim.dir.*`
        // names survive only as aliases (deprecated — DESIGN.md §8b).
        for name in ["invalidations", "lines", "sharers"] {
            reg.alias(&format!("sim.coh.{name}"), &format!("sim.dir.{name}"));
        }

        let lat = self.total_read_latency();
        reg.gauge("sim.cache.l2.read_latency.mean", lat.mean());
        reg.gauge("sim.cache.l2.read_latency.max", lat.max);
        reg.counter("sim.cache.l2.read_latency.count", lat.count);

        reg.gauge(
            "sim.bus.utilization",
            self.bus_utilization(elapsed).fraction(),
        );
        reg.gauge(
            "sim.bank.utilization",
            self.bank_utilization(elapsed).fraction(),
        );
        if self.cfg.topology == Topology::Numa && self.cfg.nprocs > 1 {
            self.mesh
                .export_metrics("sim.mesh.utilization", elapsed, reg);
        }
        for (i, b) in self.buses.iter().enumerate() {
            b.export_metrics(&format!("sim.bus{i}.utilization"), elapsed, reg);
        }
        for (i, b) in self.banks.iter().enumerate() {
            b.export_metrics(&format!("sim.bank{i}.utilization"), elapsed, reg);
        }

        let occ = self.total_occupancy();
        reg.gauge(
            "sim.cache.l2.mshr.mean_read_occupancy",
            occ.mean_read_occupancy(),
        );
        reg.histogram("sim.cache.l2.mshr.read_occupancy", occ.read_histogram());
        reg.histogram("sim.cache.l2.mshr.total_occupancy", occ.total_histogram());

        for p in 0..self.cfg.nprocs {
            let c = &self.counters[p];
            let pre = format!("sim.proc{p}");
            reg.counter(&format!("{pre}.l2.miss"), c.l2_misses);
            reg.counter(&format!("{pre}.l2.read_miss"), c.l2_read_misses);
            reg.counter(&format!("{pre}.l2.coalesced"), c.coalesced);
            reg.gauge(
                &format!("{pre}.l2.read_latency.mean"),
                self.read_latency[p].mean(),
            );
            reg.gauge(
                &format!("{pre}.l2.mshr.mean_read_occupancy"),
                self.occupancy[p].mean_read_occupancy(),
            );
            self.l2[p]
                .mshrs
                .export_metrics(&format!("{pre}.l2.mshr"), reg);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn uni() -> MemSystem {
        let cfg = MachineConfig::base_simulated(1, 64 * 1024);
        MemSystem::new(&cfg, Box::new(|_| 0))
    }

    #[test]
    fn cold_miss_then_hits() {
        let mut m = uni();
        let a = 0x10000u64;
        let r = m.access(0, a, false, 0);
        let Access::Done {
            complete_at: t_miss,
            l2_miss,
        } = r
        else {
            panic!("unexpected retry")
        };
        assert!(l2_miss);
        // Unloaded local miss should land in the right ballpark (~85
        // cycles in the paper's base system).
        assert!((60..=120).contains(&t_miss), "local miss latency {t_miss}");
        m.tick(t_miss + 1);
        let now = t_miss + 2;
        let r2 = m.access(0, a, false, now);
        let Access::Done {
            complete_at,
            l2_miss,
        } = r2
        else {
            panic!()
        };
        assert!(!l2_miss);
        assert_eq!(complete_at, now + 1, "L1 hit after fill");
    }

    #[test]
    fn same_line_coalesces() {
        let mut m = uni();
        let r1 = m.access(0, 0x20000, false, 0);
        let r2 = m.access(0, 0x20008, false, 0); // same 64B line
        let Access::Done {
            complete_at: t1, ..
        } = r1
        else {
            panic!()
        };
        let Access::Done {
            complete_at: t2, ..
        } = r2
        else {
            panic!()
        };
        // The second access rides the first's fill (plus L1 handoff).
        assert!(t2 <= t1 + 8, "t1={t1} t2={t2}");
        assert_eq!(m.counters(0).l2_misses, 1);
        assert!(m.counters(0).coalesced >= 1);
    }

    #[test]
    fn different_lines_overlap() {
        let mut m = uni();
        let mut times = Vec::new();
        for i in 0..4u64 {
            let r = m.access(0, 0x40000 + i * 64, false, 0);
            let Access::Done { complete_at, .. } = r else {
                panic!()
            };
            times.push(complete_at);
        }
        // Four misses overlap: the last finishes far sooner than 4x the first.
        let serial = times[0] * 4;
        assert!(
            *times.last().expect("nonempty") < serial * 3 / 4,
            "times={times:?}"
        );
    }

    #[test]
    fn mshr_limit_forces_retry() {
        let cfg = MachineConfig::base_simulated(1, 64 * 1024);
        let mut m = MemSystem::new(&cfg, Box::new(|_| 0));
        let mshrs = cfg.l2.mshrs;
        let mut retries = 0;
        for i in 0..(mshrs as u64 + 4) {
            match m.access(0, 0x80000 + i * 64, false, 0) {
                Access::Retry { .. } => retries += 1,
                Access::Done { .. } => {}
            }
        }
        assert!(retries >= 4, "expected retries once MSHRs fill");
    }

    #[test]
    fn occupancy_sampled() {
        let mut m = uni();
        for i in 0..4u64 {
            let _ = m.access(0, 0x90000 + i * 64, false, 0);
        }
        m.tick(1);
        // Occupancy books lazily; close the accounting to observe it.
        m.close_occupancy(2);
        assert!(m.occupancy(0).read_at_least(4) > 0.0);
    }

    #[test]
    fn store_miss_counts_not_read() {
        let mut m = uni();
        let _ = m.access(0, 0xa0000, true, 0);
        assert_eq!(m.counters(0).l2_misses, 1);
        assert_eq!(m.counters(0).l2_read_misses, 0);
        assert_eq!(m.counters(0).stores, 1);
    }

    #[test]
    fn write_after_read_line_upgrades() {
        let mut m = uni();
        let a = 0xb0000u64;
        let Access::Done { complete_at: t, .. } = m.access(0, a, false, 0) else {
            panic!()
        };
        m.tick(t + 1);
        // Write hits L1 presence but the L2 line is only Shared: upgrade.
        let Access::Done {
            complete_at: t2,
            l2_miss,
        } = m.access(0, a, true, t + 2)
        else {
            panic!()
        };
        assert!(l2_miss, "upgrade counted as external transaction");
        assert!(t2 > t + 3);
        m.tick(t2 + 1);
        // Second write now hits exclusively.
        let Access::Done {
            complete_at: t3,
            l2_miss,
        } = m.access(0, a, true, t2 + 2)
        else {
            panic!()
        };
        assert!(!l2_miss);
        assert_eq!(t3, t2 + 3);
    }

    fn mp4() -> MemSystem {
        let cfg = MachineConfig::base_simulated(4, 64 * 1024);
        // Home by 1 MB address block for test purposes.
        MemSystem::new(&cfg, Box::new(|addr| ((addr >> 20) as usize) % 4))
    }

    #[test]
    fn remote_miss_slower_than_local() {
        let mut m = mp4();
        // line homes: lines 0.. are at node 0.
        let local_addr = 0u64; // home 0, requester 0
        let remote_addr = 1u64 << 20; // home 1
        let Access::Done {
            complete_at: t_local,
            ..
        } = m.access(0, local_addr, false, 0)
        else {
            panic!()
        };
        let Access::Done {
            complete_at: t_remote,
            ..
        } = m.access(0, remote_addr, false, 0)
        else {
            panic!()
        };
        assert!(
            t_remote > t_local + 30,
            "remote {t_remote} should be well above local {t_local}"
        );
        assert_eq!(m.counters(0).remote_misses, 1);
        assert_eq!(m.counters(0).local_misses, 1);
    }

    #[test]
    fn cache_to_cache_transfer() {
        let mut m = mp4();
        let a = 0u64; // home node 0
                      // Proc 1 writes the line (becomes owner).
        let Access::Done {
            complete_at: t1, ..
        } = m.access(1, a, true, 0)
        else {
            panic!()
        };
        m.tick(t1 + 1);
        // Proc 2 reads: must be served cache-to-cache from proc 1.
        let Access::Done {
            complete_at: t2, ..
        } = m.access(2, a, false, t1 + 2)
        else {
            panic!()
        };
        assert!(t2 > t1);
        assert_eq!(m.counters(2).cache_to_cache, 1);
    }

    #[test]
    fn write_invalidates_remote_copies() {
        let mut m = mp4();
        let a = 0u64;
        let Access::Done {
            complete_at: t0, ..
        } = m.access(1, a, false, 0)
        else {
            panic!()
        };
        m.tick(t0 + 1);
        // Proc 1 has it shared; proc 2 writes.
        let Access::Done {
            complete_at: t1, ..
        } = m.access(2, a, true, t0 + 2)
        else {
            panic!()
        };
        m.tick(t1 + 1);
        assert_eq!(m.counters(1).invalidations, 1);
        // Proc 1's next read is a (coherence) miss served c2c from proc 2.
        let Access::Done {
            complete_at: _t2,
            l2_miss,
        } = m.access(1, a, false, t1 + 2)
        else {
            panic!()
        };
        assert!(l2_miss);
        assert_eq!(m.counters(1).cache_to_cache, 1);
    }

    #[test]
    fn exemplar_single_level_works() {
        let cfg = MachineConfig::exemplar(2);
        let mut m = MemSystem::new(&cfg, Box::new(|_| 0));
        let Access::Done {
            complete_at,
            l2_miss,
        } = m.access(0, 0x1000, false, 0)
        else {
            panic!()
        };
        assert!(l2_miss);
        m.tick(complete_at + 1);
        let Access::Done {
            complete_at: t2,
            l2_miss,
        } = m.access(0, 0x1000, false, complete_at + 2)
        else {
            panic!()
        };
        assert!(!l2_miss);
        assert_eq!(t2, complete_at + 2 + cfg.l2.hit_latency as u64);
    }

    /// Section 4.1 calibration: unloaded latencies must land in the
    /// paper's stated ranges (local ~85, remote 180-260, c2c 210-310).
    #[test]
    fn unloaded_latencies_match_section_4_1() {
        let cfg = MachineConfig::base_simulated(16, 64 * 1024);
        // Home by 1 MB address block across 16 nodes.
        let mut m = MemSystem::new(&cfg, Box::new(|addr| ((addr >> 20) as usize) % 16));
        // Local: proc 0 reads an address homed at node 0.
        let Access::Done {
            complete_at: local, ..
        } = m.access(0, 64, false, 0)
        else {
            panic!()
        };
        assert!((60..=110).contains(&local), "local {local}");
        // Remote: proc 0 reads an address homed at a far node.
        let far_addr = 15u64 << 20;
        let Access::Done {
            complete_at: remote,
            ..
        } = m.access(0, far_addr, false, 1000)
        else {
            panic!()
        };
        let remote_lat = remote - 1000;
        assert!(
            (140..=300).contains(&remote_lat),
            "remote {remote_lat} outside the 180-260 band (±margin)"
        );
        assert!(remote_lat > local + 40, "remote must clearly exceed local");
        // Cache-to-cache at the same total mesh distance as the remote
        // fetch (0->15->10->0 = 12 hops, like 0->15->0): proc 10 dirties
        // a line homed at node 15; proc 0 reads.
        let shared = (15u64 << 20) + 4096;
        let Access::Done {
            complete_at: t1, ..
        } = m.access(10, shared, true, 2000)
        else {
            panic!()
        };
        m.tick(t1 + 1);
        let Access::Done {
            complete_at: c2c, ..
        } = m.access(0, shared, false, t1 + 2)
        else {
            panic!()
        };
        let c2c_lat = c2c - (t1 + 2);
        assert!(
            (170..=380).contains(&c2c_lat),
            "c2c {c2c_lat} outside the 210-310 band (±margin)"
        );
        assert!(
            c2c_lat > remote_lat,
            "3-hop transfers are the slowest class: c2c {c2c_lat} vs remote {remote_lat}"
        );
    }

    #[test]
    fn prefetch_starts_miss_without_counting_demand() {
        let mut m = uni();
        m.prefetch(0, 0xd0000, 0);
        assert_eq!(m.counters(0).prefetches, 1);
        assert_eq!(m.counters(0).l2_read_misses, 0, "not a demand read");
        assert_eq!(m.counters(0).loads, 0);
        assert_eq!(m.counters(0).l2_misses, 1, "but the line is being fetched");
        // A demand load shortly after rides the prefetch's MSHR.
        let Access::Done { complete_at, .. } = m.access(0, 0xd0000, false, 2) else {
            panic!()
        };
        let Access::Done {
            complete_at: cold, ..
        } = m.access(0, 0xe0000, false, 2)
        else {
            panic!()
        };
        assert!(
            complete_at <= cold,
            "prefetched line ready no later than a cold miss: {complete_at} vs {cold}"
        );
        assert!(m.counters(0).coalesced >= 1);
    }

    #[test]
    fn prefetch_dropped_when_mshrs_full() {
        let mut m = uni();
        for i in 0..10u64 {
            let _ = m.access(0, 0xf0000 + i * 64, false, 0);
        }
        // All 10 MSHRs busy: the prefetch is silently dropped.
        m.prefetch(0, 0x200000, 0);
        assert_eq!(m.counters(0).prefetches, 1);
        let (_, total) = (0, 0);
        let _ = total;
        // No eleventh outstanding miss materialized.
        assert_eq!(m.counters(0).l2_misses, 10);
    }

    #[test]
    fn bank_and_bus_utilization_accumulate() {
        let mut m = uni();
        for i in 0..8u64 {
            let _ = m.access(0, 0xc0000 + i * 64, false, 0);
        }
        assert!(m.bus_utilization(1000).fraction() > 0.0);
        assert!(m.bank_utilization(1000).fraction() > 0.0);
    }
}
