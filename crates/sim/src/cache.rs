//! Set-associative tag arrays and miss-status-holding registers.

use crate::config::CacheParams;

/// Coherence/validity state of a cached line.
///
/// The tag array itself is protocol-agnostic: it stores whatever state
/// the active [`CoherenceProtocol`](crate::CoherenceProtocol) installs.
/// The full-map directory uses only `Invalid`/`Shared`/`Modified`;
/// MESI/MOESI add `Exclusive`, MOESI and Dragon add `Owned` (Dragon's
/// `Sm` maps onto `Owned`, its `Sc` onto `Shared`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum LineState {
    /// Not present.
    Invalid,
    /// Present, clean, possibly shared with other caches.
    Shared,
    /// Present, clean, and the only cached copy (MESI `E`): a write may
    /// proceed silently, without a global transaction.
    Exclusive,
    /// Present, dirty, and shared with other caches (MOESI `O`, Dragon
    /// `Sm`): this cache supplies the line and writes it back on
    /// eviction; memory is stale.
    Owned,
    /// Present with exclusive ownership, possibly dirty.
    Modified,
}

impl LineState {
    /// Whether an evicted line in this state carries dirty data that
    /// must be written back (memory is stale).
    pub fn is_dirty(self) -> bool {
        matches!(self, LineState::Modified | LineState::Owned)
    }
}

/// Sentinel line number marking an invalid way. Keeping the invariant
/// `state == Invalid ⇔ line == NO_LINE` lets every tag scan compare one
/// field per way (a hot path: multiple probes per simulated cycle) and
/// exit as soon as the tag matches. Real line numbers are
/// `addr >> line_shift` of in-range simulated addresses and can never
/// reach `u64::MAX`.
const NO_LINE: u64 = u64::MAX;

#[derive(Debug, Clone, Copy)]
struct Way {
    /// Line number (full address >> line shift); [`NO_LINE`] when invalid.
    line: u64,
    state: LineState,
    /// LRU stamp (bigger = more recent).
    lru: u64,
}

/// A victim line evicted by a fill.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Victim {
    /// The evicted line number.
    pub line: u64,
    /// Whether it was in a dirty state ([`LineState::Modified`] or
    /// [`LineState::Owned`]) and needs writeback.
    pub dirty: bool,
}

/// A set-associative, LRU, write-allocate tag array.
///
/// The array works on *line numbers* (`addr >> line_shift`); data contents
/// live in the functional [`SimMem`](mempar_ir::SimMem), so the cache only
/// tracks presence and state — exactly what the timing model needs.
#[derive(Debug, Clone)]
pub struct TagArray {
    /// `sets - 1`: the set-index mask, precomputed at construction so the
    /// per-access path does no arithmetic on the configured geometry.
    set_mask: u64,
    assoc: usize,
    ways: Vec<Way>,
    stamp: u64,
}

impl TagArray {
    /// Builds a tag array for the given geometry.
    pub fn new(params: &CacheParams) -> Self {
        let sets = params.sets();
        assert!(sets.is_power_of_two(), "set count must be a power of two");
        TagArray {
            set_mask: sets as u64 - 1,
            assoc: params.assoc,
            ways: vec![
                Way {
                    line: NO_LINE,
                    state: LineState::Invalid,
                    lru: 0
                };
                sets * params.assoc
            ],
            stamp: 0,
        }
    }

    #[inline]
    fn set_of(&self, line: u64) -> usize {
        (line & self.set_mask) as usize
    }

    #[inline]
    fn slot_range(&self, line: u64) -> std::ops::Range<usize> {
        debug_assert_ne!(line, NO_LINE, "probe of the invalid-line sentinel");
        let s = self.set_of(line) * self.assoc;
        s..s + self.assoc
    }

    /// Looks up `line`, updating LRU on hit; returns its state.
    pub fn probe(&mut self, line: u64) -> LineState {
        self.stamp += 1;
        for i in self.slot_range(line) {
            let w = &mut self.ways[i];
            if w.line == line {
                w.lru = self.stamp;
                return w.state;
            }
        }
        LineState::Invalid
    }

    /// Looks up without touching LRU.
    pub fn peek(&self, line: u64) -> LineState {
        for i in self.slot_range(line) {
            let w = &self.ways[i];
            if w.line == line {
                return w.state;
            }
        }
        LineState::Invalid
    }

    /// Inserts `line` with `state`, evicting the LRU way if needed.
    /// Returns the victim when a valid line was displaced.
    ///
    /// # Panics
    /// Panics (debug) if the line is already present — callers must use
    /// [`TagArray::set_state`] for state changes.
    pub fn fill(&mut self, line: u64, state: LineState) -> Option<Victim> {
        debug_assert_eq!(self.peek(line), LineState::Invalid, "double fill");
        debug_assert_ne!(state, LineState::Invalid);
        self.stamp += 1;
        let range = self.slot_range(line);
        // Prefer an invalid way.
        let mut victim_idx = range.start;
        let mut victim_lru = u64::MAX;
        for i in range {
            let w = &self.ways[i];
            if w.line == NO_LINE {
                victim_idx = i;
                break;
            }
            if w.lru < victim_lru {
                victim_lru = w.lru;
                victim_idx = i;
            }
        }
        let old = self.ways[victim_idx];
        self.ways[victim_idx] = Way {
            line,
            state,
            lru: self.stamp,
        };
        if old.state != LineState::Invalid {
            Some(Victim {
                line: old.line,
                dirty: old.state.is_dirty(),
            })
        } else {
            None
        }
    }

    /// Changes the state of a present line (upgrade/downgrade).
    ///
    /// # Panics
    /// Panics (debug) if the line is absent.
    pub fn set_state(&mut self, line: u64, state: LineState) {
        debug_assert_ne!(state, LineState::Invalid, "use invalidate instead");
        for i in self.slot_range(line) {
            let w = &mut self.ways[i];
            if w.line == line {
                w.state = state;
                return;
            }
        }
        debug_assert!(false, "set_state on absent line {line:#x}");
    }

    /// Invalidates `line` if present; returns whether it was dirty.
    pub fn invalidate(&mut self, line: u64) -> bool {
        for i in self.slot_range(line) {
            let w = &mut self.ways[i];
            if w.line == line {
                let dirty = w.state.is_dirty();
                w.state = LineState::Invalid;
                w.line = NO_LINE;
                return dirty;
            }
        }
        false
    }
}

/// One miss-status holding register.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MshrEntry {
    /// The outstanding line.
    pub line: u64,
    /// Merged read requests.
    pub reads: u32,
    /// Merged write requests.
    pub writes: u32,
    /// Absolute cycle when the fill completes (u64::MAX while unknown).
    pub fill_at: u64,
}

impl MshrEntry {
    /// Whether this MSHR is occupied by (at least one) read miss, the
    /// classification used by Figure 4(a).
    pub fn is_read(&self) -> bool {
        self.reads > 0
    }
}

/// Outcome of attempting to register a miss with the MSHR file.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MshrOutcome {
    /// A new MSHR was allocated; the caller must start the miss and later
    /// call [`MshrFile::set_fill_time`] / [`MshrFile::release`].
    Allocated,
    /// Merged with an outstanding miss to the same line; the fill time is
    /// that miss's (u64::MAX while still unknown).
    Coalesced {
        /// The outstanding miss's fill time.
        fill_at: u64,
    },
    /// All MSHRs are busy with other lines — the access must retry.
    Full,
}

/// "End of free list" sentinel for the MSHR slot chain.
const NO_SLOT: u32 = u32::MAX;

/// Multiplier for Fibonacci hashing (2^64 / φ, odd). Line numbers are
/// dense and strided; multiplying by an odd constant and keeping high
/// bits spreads any stride pattern across the index.
const HASH_MUL: u64 = 0x9E37_79B9_7F4A_7C15;

/// A file of MSHRs with same-line coalescing.
///
/// Storage is a fixed slot array threaded by an intrusive free list,
/// plus an open-addressed line→slot index sized at twice the capacity
/// (load factor ≤ 50%, so probe chains stay short and linear probing
/// with backward-shift deletion is cheap). Allocate, coalesce,
/// [`MshrFile::set_fill_time`], [`MshrFile::release`] and
/// [`MshrFile::get`] are all O(1); [`MshrFile::occupancy`] — called once
/// per processor per simulated cycle — reads two incrementally
/// maintained counters. Nothing allocates after construction.
#[derive(Debug, Clone)]
pub struct MshrFile {
    cap: usize,
    slots: Vec<MshrEntry>,
    /// Intrusive free list through unoccupied slots.
    next_free: Vec<u32>,
    free_head: u32,
    /// Occupied slot count.
    occupied: usize,
    /// Occupied slots holding at least one read ([`MshrEntry::is_read`]).
    read_occupied: usize,
    /// Open-addressed probe keys ([`NO_LINE`] = empty)...
    index_lines: Vec<u64>,
    /// ...and the slot each key maps to.
    index_slots: Vec<u32>,
}

impl MshrFile {
    /// A file with `cap` registers.
    pub fn new(cap: usize) -> Self {
        assert!(cap > 0);
        let index_size = (cap * 2).next_power_of_two();
        MshrFile {
            cap,
            slots: vec![
                MshrEntry {
                    line: NO_LINE,
                    reads: 0,
                    writes: 0,
                    fill_at: u64::MAX,
                };
                cap
            ],
            next_free: (0..cap)
                .map(|i| if i + 1 < cap { i as u32 + 1 } else { NO_SLOT })
                .collect(),
            free_head: 0,
            occupied: 0,
            read_occupied: 0,
            index_lines: vec![NO_LINE; index_size],
            index_slots: vec![NO_SLOT; index_size],
        }
    }

    #[inline]
    fn index_start(&self, line: u64) -> usize {
        debug_assert_ne!(line, NO_LINE, "lookup of the invalid-line sentinel");
        (line.wrapping_mul(HASH_MUL) >> 32) as usize & (self.index_lines.len() - 1)
    }

    /// The slot holding `line`, if outstanding.
    #[inline]
    fn index_get(&self, line: u64) -> Option<u32> {
        let mask = self.index_lines.len() - 1;
        let mut i = self.index_start(line);
        loop {
            let k = self.index_lines[i];
            if k == line {
                return Some(self.index_slots[i]);
            }
            if k == NO_LINE {
                return None;
            }
            i = (i + 1) & mask;
        }
    }

    /// Maps `line` (known absent) to `slot`.
    fn index_insert(&mut self, line: u64, slot: u32) {
        let mask = self.index_lines.len() - 1;
        let mut i = self.index_start(line);
        while self.index_lines[i] != NO_LINE {
            debug_assert_ne!(self.index_lines[i], line, "duplicate MSHR index key");
            i = (i + 1) & mask;
        }
        self.index_lines[i] = line;
        self.index_slots[i] = slot;
    }

    /// Unmaps `line`, returning its slot; backward-shift deletion keeps
    /// every probe chain contiguous so lookups never need tombstones.
    fn index_remove(&mut self, line: u64) -> Option<u32> {
        let mask = self.index_lines.len() - 1;
        let mut i = self.index_start(line);
        loop {
            let k = self.index_lines[i];
            if k == line {
                break;
            }
            if k == NO_LINE {
                return None;
            }
            i = (i + 1) & mask;
        }
        let slot = self.index_slots[i];
        let mut j = i;
        loop {
            j = (j + 1) & mask;
            let k = self.index_lines[j];
            if k == NO_LINE {
                break;
            }
            // An entry may move back into the hole only if that does not
            // lift it above its ideal slot: its probe distance at `j`
            // must reach at least back to `i`.
            let ideal = self.index_start(k);
            if (j.wrapping_sub(ideal) & mask) >= (j.wrapping_sub(i) & mask) {
                self.index_lines[i] = k;
                self.index_slots[i] = self.index_slots[j];
                i = j;
            }
        }
        self.index_lines[i] = NO_LINE;
        Some(slot)
    }

    /// Registers a miss on `line`; `is_write` marks write misses.
    pub fn register(&mut self, line: u64, is_write: bool) -> MshrOutcome {
        if let Some(slot) = self.index_get(line) {
            let e = &mut self.slots[slot as usize];
            if is_write {
                e.writes += 1;
            } else {
                if e.reads == 0 {
                    self.read_occupied += 1;
                }
                e.reads += 1;
            }
            return MshrOutcome::Coalesced { fill_at: e.fill_at };
        }
        if self.occupied >= self.cap {
            return MshrOutcome::Full;
        }
        let slot = self.free_head;
        self.free_head = self.next_free[slot as usize];
        self.slots[slot as usize] = MshrEntry {
            line,
            reads: u32::from(!is_write),
            writes: u32::from(is_write),
            fill_at: u64::MAX,
        };
        self.index_insert(line, slot);
        self.occupied += 1;
        if !is_write {
            self.read_occupied += 1;
        }
        MshrOutcome::Allocated
    }

    /// Sets the fill time of the outstanding miss on `line`.
    ///
    /// # Panics
    /// Panics (debug) if no such miss is outstanding.
    pub fn set_fill_time(&mut self, line: u64, fill_at: u64) {
        if let Some(slot) = self.index_get(line) {
            self.slots[slot as usize].fill_at = fill_at;
        } else {
            debug_assert!(false, "set_fill_time on absent MSHR {line:#x}");
        }
    }

    /// Releases the MSHR for `line` (at fill time).
    pub fn release(&mut self, line: u64) {
        if let Some(slot) = self.index_remove(line) {
            let e = &mut self.slots[slot as usize];
            self.occupied -= 1;
            if e.is_read() {
                self.read_occupied -= 1;
            }
            e.line = NO_LINE;
            self.next_free[slot as usize] = self.free_head;
            self.free_head = slot;
        }
    }

    /// The entry for `line`, if outstanding.
    pub fn get(&self, line: u64) -> Option<&MshrEntry> {
        self.index_get(line).map(|slot| &self.slots[slot as usize])
    }

    /// The earliest scheduled fill among outstanding entries — a lower
    /// bound on the next cycle a register can free. `None` when the file
    /// is empty or any entry's fill time is still unknown (no bound can
    /// be promised then: an unknown fill may be scheduled arbitrarily
    /// soon). A full file with all fills known can provably not accept a
    /// new line before this time, which is what lets a blocked issue
    /// stage sleep instead of re-polling every cycle.
    pub fn next_fill_time(&self) -> Option<u64> {
        if self.occupied == 0 {
            return None;
        }
        let mut min = u64::MAX;
        for e in &self.slots {
            if e.line != NO_LINE {
                if e.fill_at == u64::MAX {
                    return None;
                }
                min = min.min(e.fill_at);
            }
        }
        Some(min)
    }

    /// `(read_mshrs, total_mshrs)` currently occupied — the per-cycle
    /// sample behind Figure 4.
    pub fn occupancy(&self) -> (usize, usize) {
        (self.read_occupied, self.occupied)
    }

    /// Number of free registers.
    pub fn free(&self) -> usize {
        self.cap - self.occupied
    }

    /// Capacity.
    pub fn capacity(&self) -> usize {
        self.cap
    }

    /// Registers this file's geometry and end-of-run occupancy under
    /// `prefix` (e.g. `sim.proc0.l2.mshr`).
    pub fn export_metrics(&self, prefix: &str, reg: &mut mempar_obs::MetricsRegistry) {
        let (reads, total) = self.occupancy();
        reg.gauge(&format!("{prefix}.capacity"), self.cap as f64);
        reg.gauge(&format!("{prefix}.occupied"), total as f64);
        reg.gauge(&format!("{prefix}.occupied_read"), reads as f64);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_cache() -> TagArray {
        TagArray::new(&CacheParams {
            size_bytes: 4 * 64, // 4 lines
            assoc: 2,
            line_bytes: 64,
            hit_latency: 1,
            ports: 1,
            mshrs: 4,
        })
    }

    #[test]
    fn probe_miss_then_hit() {
        let mut c = small_cache();
        assert_eq!(c.probe(100), LineState::Invalid);
        assert_eq!(c.fill(100, LineState::Shared), None);
        assert_eq!(c.probe(100), LineState::Shared);
    }

    #[test]
    fn lru_eviction_within_set() {
        let mut c = small_cache(); // 2 sets x 2 ways
                                   // Lines 0, 2, 4 map to set 0.
        c.fill(0, LineState::Shared);
        c.fill(2, LineState::Shared);
        c.probe(0); // make line 0 most recent
        let v = c.fill(4, LineState::Shared).expect("evicts");
        assert_eq!(v.line, 2);
        assert!(!v.dirty);
        assert_eq!(c.peek(0), LineState::Shared);
        assert_eq!(c.peek(2), LineState::Invalid);
    }

    #[test]
    fn dirty_victims_reported() {
        let mut c = small_cache();
        c.fill(0, LineState::Modified);
        c.fill(2, LineState::Shared);
        let v = c.fill(4, LineState::Shared).expect("evicts");
        assert_eq!(v.line, 0);
        assert!(v.dirty);
    }

    #[test]
    fn invalidate_and_state_changes() {
        let mut c = small_cache();
        c.fill(7, LineState::Shared);
        c.set_state(7, LineState::Modified);
        assert_eq!(c.peek(7), LineState::Modified);
        assert!(c.invalidate(7));
        assert_eq!(c.peek(7), LineState::Invalid);
        assert!(!c.invalidate(7));
    }

    #[test]
    fn different_sets_do_not_interfere() {
        let mut c = small_cache();
        c.fill(0, LineState::Shared);
        c.fill(1, LineState::Shared); // set 1
        c.fill(2, LineState::Shared);
        assert_eq!(c.peek(0), LineState::Shared);
        assert_eq!(c.peek(1), LineState::Shared);
        assert_eq!(c.peek(2), LineState::Shared);
    }

    #[test]
    fn mshr_coalescing() {
        let mut m = MshrFile::new(2);
        assert_eq!(m.register(5, false), MshrOutcome::Allocated);
        assert_eq!(
            m.register(5, false),
            MshrOutcome::Coalesced { fill_at: u64::MAX }
        );
        m.set_fill_time(5, 100);
        assert_eq!(m.register(5, true), MshrOutcome::Coalesced { fill_at: 100 });
        let e = m.get(5).expect("present");
        assert_eq!(e.reads, 2);
        assert_eq!(e.writes, 1);
        assert!(e.is_read());
    }

    #[test]
    fn mshr_full_then_release() {
        let mut m = MshrFile::new(2);
        m.register(1, false);
        m.register(2, true);
        assert_eq!(m.register(3, false), MshrOutcome::Full);
        assert_eq!(m.occupancy(), (1, 2));
        m.release(1);
        assert_eq!(m.free(), 1);
        assert_eq!(m.register(3, false), MshrOutcome::Allocated);
    }

    #[test]
    fn write_only_mshr_not_read() {
        let mut m = MshrFile::new(2);
        m.register(9, true);
        assert_eq!(m.occupancy(), (0, 1));
        // A read coalescing onto the write-only entry flips its class.
        m.register(9, false);
        assert_eq!(m.occupancy(), (1, 1));
        m.release(9);
        assert_eq!(m.occupancy(), (0, 0));
    }

    #[test]
    fn mshr_index_survives_collision_churn() {
        // Exercise the open-addressed index across many allocate/release
        // generations with arbitrary interleaving and release order, and
        // cross-check against a naive model.
        let cap = 10;
        let mut m = MshrFile::new(cap);
        let mut model: Vec<(u64, u64)> = Vec::new(); // (line, fill_at)
        let mut x = 0x1234_5678_9abc_def0u64;
        for step in 0..20_000u64 {
            // xorshift for a deterministic, scattered line stream.
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            let line = x % 37; // small space forces reuse + collisions
            match m.register(line, step % 3 == 0) {
                MshrOutcome::Allocated => {
                    assert!(model.len() < cap, "allocated past capacity");
                    assert!(!model.iter().any(|&(l, _)| l == line));
                    m.set_fill_time(line, step);
                    model.push((line, step));
                }
                MshrOutcome::Coalesced { fill_at } => {
                    let &(_, t) = model.iter().find(|&&(l, _)| l == line).expect("tracked");
                    assert_eq!(fill_at, t);
                }
                MshrOutcome::Full => {
                    assert_eq!(model.len(), cap);
                    // Release an arbitrary tracked line (not FIFO order).
                    let victim = model.swap_remove((step % cap as u64) as usize).0;
                    m.release(victim);
                }
            }
            assert_eq!(m.free(), cap - model.len());
            for &(l, t) in &model {
                assert_eq!(m.get(l).expect("indexed").fill_at, t);
            }
        }
    }
}
