//! Set-associative tag arrays and miss-status-holding registers.

use crate::config::CacheParams;

/// Coherence/validity state of a cached line.
///
/// The tag array itself is protocol-agnostic: it stores whatever state
/// the active [`CoherenceProtocol`](crate::CoherenceProtocol) installs.
/// The full-map directory uses only `Invalid`/`Shared`/`Modified`;
/// MESI/MOESI add `Exclusive`, MOESI and Dragon add `Owned` (Dragon's
/// `Sm` maps onto `Owned`, its `Sc` onto `Shared`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum LineState {
    /// Not present.
    Invalid,
    /// Present, clean, possibly shared with other caches.
    Shared,
    /// Present, clean, and the only cached copy (MESI `E`): a write may
    /// proceed silently, without a global transaction.
    Exclusive,
    /// Present, dirty, and shared with other caches (MOESI `O`, Dragon
    /// `Sm`): this cache supplies the line and writes it back on
    /// eviction; memory is stale.
    Owned,
    /// Present with exclusive ownership, possibly dirty.
    Modified,
}

impl LineState {
    /// Whether an evicted line in this state carries dirty data that
    /// must be written back (memory is stale).
    pub fn is_dirty(self) -> bool {
        matches!(self, LineState::Modified | LineState::Owned)
    }
}

/// Sentinel line number marking an invalid way. Keeping the invariant
/// `state == Invalid ⇔ line == NO_LINE` lets every tag scan compare one
/// field per way (a hot path: multiple probes per simulated cycle) and
/// exit as soon as the tag matches. Real line numbers are
/// `addr >> line_shift` of in-range simulated addresses and can never
/// reach `u64::MAX`.
const NO_LINE: u64 = u64::MAX;

#[derive(Debug, Clone, Copy)]
struct Way {
    /// Line number (full address >> line shift); [`NO_LINE`] when invalid.
    line: u64,
    state: LineState,
    /// LRU stamp (bigger = more recent).
    lru: u64,
}

/// A victim line evicted by a fill.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Victim {
    /// The evicted line number.
    pub line: u64,
    /// Whether it was in a dirty state ([`LineState::Modified`] or
    /// [`LineState::Owned`]) and needs writeback.
    pub dirty: bool,
}

/// A set-associative, LRU, write-allocate tag array.
///
/// The array works on *line numbers* (`addr >> line_shift`); data contents
/// live in the functional [`SimMem`](mempar_ir::SimMem), so the cache only
/// tracks presence and state — exactly what the timing model needs.
#[derive(Debug, Clone)]
pub struct TagArray {
    /// `sets - 1`: the set-index mask, precomputed at construction so the
    /// per-access path does no arithmetic on the configured geometry.
    set_mask: u64,
    assoc: usize,
    ways: Vec<Way>,
    stamp: u64,
}

impl TagArray {
    /// Builds a tag array for the given geometry.
    pub fn new(params: &CacheParams) -> Self {
        let sets = params.sets();
        assert!(sets.is_power_of_two(), "set count must be a power of two");
        TagArray {
            set_mask: sets as u64 - 1,
            assoc: params.assoc,
            ways: vec![
                Way {
                    line: NO_LINE,
                    state: LineState::Invalid,
                    lru: 0
                };
                sets * params.assoc
            ],
            stamp: 0,
        }
    }

    #[inline]
    fn set_of(&self, line: u64) -> usize {
        (line & self.set_mask) as usize
    }

    #[inline]
    fn slot_range(&self, line: u64) -> std::ops::Range<usize> {
        debug_assert_ne!(line, NO_LINE, "probe of the invalid-line sentinel");
        let s = self.set_of(line) * self.assoc;
        s..s + self.assoc
    }

    /// Looks up `line`, updating LRU on hit; returns its state.
    pub fn probe(&mut self, line: u64) -> LineState {
        self.stamp += 1;
        for i in self.slot_range(line) {
            let w = &mut self.ways[i];
            if w.line == line {
                w.lru = self.stamp;
                return w.state;
            }
        }
        LineState::Invalid
    }

    /// Looks up without touching LRU.
    pub fn peek(&self, line: u64) -> LineState {
        for i in self.slot_range(line) {
            let w = &self.ways[i];
            if w.line == line {
                return w.state;
            }
        }
        LineState::Invalid
    }

    /// Inserts `line` with `state`, evicting the LRU way if needed.
    /// Returns the victim when a valid line was displaced.
    ///
    /// # Panics
    /// Panics (debug) if the line is already present — callers must use
    /// [`TagArray::set_state`] for state changes.
    pub fn fill(&mut self, line: u64, state: LineState) -> Option<Victim> {
        debug_assert_eq!(self.peek(line), LineState::Invalid, "double fill");
        debug_assert_ne!(state, LineState::Invalid);
        self.stamp += 1;
        let range = self.slot_range(line);
        // Prefer an invalid way.
        let mut victim_idx = range.start;
        let mut victim_lru = u64::MAX;
        for i in range {
            let w = &self.ways[i];
            if w.line == NO_LINE {
                victim_idx = i;
                break;
            }
            if w.lru < victim_lru {
                victim_lru = w.lru;
                victim_idx = i;
            }
        }
        let old = self.ways[victim_idx];
        self.ways[victim_idx] = Way {
            line,
            state,
            lru: self.stamp,
        };
        if old.state != LineState::Invalid {
            Some(Victim {
                line: old.line,
                dirty: old.state.is_dirty(),
            })
        } else {
            None
        }
    }

    /// Changes the state of a present line (upgrade/downgrade).
    ///
    /// # Panics
    /// Panics (debug) if the line is absent.
    pub fn set_state(&mut self, line: u64, state: LineState) {
        debug_assert_ne!(state, LineState::Invalid, "use invalidate instead");
        for i in self.slot_range(line) {
            let w = &mut self.ways[i];
            if w.line == line {
                w.state = state;
                return;
            }
        }
        debug_assert!(false, "set_state on absent line {line:#x}");
    }

    /// Invalidates `line` if present; returns whether it was dirty.
    pub fn invalidate(&mut self, line: u64) -> bool {
        for i in self.slot_range(line) {
            let w = &mut self.ways[i];
            if w.line == line {
                let dirty = w.state.is_dirty();
                w.state = LineState::Invalid;
                w.line = NO_LINE;
                return dirty;
            }
        }
        false
    }
}

/// One miss-status holding register.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MshrEntry {
    /// The outstanding line.
    pub line: u64,
    /// Merged read requests.
    pub reads: u32,
    /// Merged write requests.
    pub writes: u32,
    /// Absolute cycle when the fill completes (u64::MAX while unknown).
    pub fill_at: u64,
}

impl MshrEntry {
    /// Whether this MSHR is occupied by (at least one) read miss, the
    /// classification used by Figure 4(a).
    pub fn is_read(&self) -> bool {
        self.reads > 0
    }
}

/// Outcome of attempting to register a miss with the MSHR file.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MshrOutcome {
    /// A new MSHR was allocated; the caller must start the miss and later
    /// call [`MshrFile::set_fill_time`] / [`MshrFile::release`].
    Allocated,
    /// Merged with an outstanding miss to the same line; the fill time is
    /// that miss's (u64::MAX while still unknown).
    Coalesced {
        /// The outstanding miss's fill time.
        fill_at: u64,
    },
    /// All MSHRs are busy with other lines — the access must retry.
    Full,
}

/// A file of MSHRs with same-line coalescing.
#[derive(Debug, Clone)]
pub struct MshrFile {
    cap: usize,
    entries: Vec<MshrEntry>,
}

impl MshrFile {
    /// A file with `cap` registers.
    pub fn new(cap: usize) -> Self {
        assert!(cap > 0);
        MshrFile {
            cap,
            entries: Vec::with_capacity(cap),
        }
    }

    /// Registers a miss on `line`; `is_write` marks write misses.
    pub fn register(&mut self, line: u64, is_write: bool) -> MshrOutcome {
        if let Some(e) = self.entries.iter_mut().find(|e| e.line == line) {
            if is_write {
                e.writes += 1;
            } else {
                e.reads += 1;
            }
            return MshrOutcome::Coalesced { fill_at: e.fill_at };
        }
        if self.entries.len() >= self.cap {
            return MshrOutcome::Full;
        }
        self.entries.push(MshrEntry {
            line,
            reads: if is_write { 0 } else { 1 },
            writes: if is_write { 1 } else { 0 },
            fill_at: u64::MAX,
        });
        MshrOutcome::Allocated
    }

    /// Sets the fill time of the outstanding miss on `line`.
    ///
    /// # Panics
    /// Panics (debug) if no such miss is outstanding.
    pub fn set_fill_time(&mut self, line: u64, fill_at: u64) {
        if let Some(e) = self.entries.iter_mut().find(|e| e.line == line) {
            e.fill_at = fill_at;
        } else {
            debug_assert!(false, "set_fill_time on absent MSHR {line:#x}");
        }
    }

    /// Releases the MSHR for `line` (at fill time).
    pub fn release(&mut self, line: u64) {
        self.entries.retain(|e| e.line != line);
    }

    /// The entry for `line`, if outstanding.
    pub fn get(&self, line: u64) -> Option<&MshrEntry> {
        self.entries.iter().find(|e| e.line == line)
    }

    /// `(read_mshrs, total_mshrs)` currently occupied — the per-cycle
    /// sample behind Figure 4.
    pub fn occupancy(&self) -> (usize, usize) {
        let total = self.entries.len();
        let reads = self.entries.iter().filter(|e| e.is_read()).count();
        (reads, total)
    }

    /// Number of free registers.
    pub fn free(&self) -> usize {
        self.cap - self.entries.len()
    }

    /// Capacity.
    pub fn capacity(&self) -> usize {
        self.cap
    }

    /// Registers this file's geometry and end-of-run occupancy under
    /// `prefix` (e.g. `sim.proc0.l2.mshr`).
    pub fn export_metrics(&self, prefix: &str, reg: &mut mempar_obs::MetricsRegistry) {
        let (reads, total) = self.occupancy();
        reg.gauge(&format!("{prefix}.capacity"), self.cap as f64);
        reg.gauge(&format!("{prefix}.occupied"), total as f64);
        reg.gauge(&format!("{prefix}.occupied_read"), reads as f64);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_cache() -> TagArray {
        TagArray::new(&CacheParams {
            size_bytes: 4 * 64, // 4 lines
            assoc: 2,
            line_bytes: 64,
            hit_latency: 1,
            ports: 1,
            mshrs: 4,
        })
    }

    #[test]
    fn probe_miss_then_hit() {
        let mut c = small_cache();
        assert_eq!(c.probe(100), LineState::Invalid);
        assert_eq!(c.fill(100, LineState::Shared), None);
        assert_eq!(c.probe(100), LineState::Shared);
    }

    #[test]
    fn lru_eviction_within_set() {
        let mut c = small_cache(); // 2 sets x 2 ways
                                   // Lines 0, 2, 4 map to set 0.
        c.fill(0, LineState::Shared);
        c.fill(2, LineState::Shared);
        c.probe(0); // make line 0 most recent
        let v = c.fill(4, LineState::Shared).expect("evicts");
        assert_eq!(v.line, 2);
        assert!(!v.dirty);
        assert_eq!(c.peek(0), LineState::Shared);
        assert_eq!(c.peek(2), LineState::Invalid);
    }

    #[test]
    fn dirty_victims_reported() {
        let mut c = small_cache();
        c.fill(0, LineState::Modified);
        c.fill(2, LineState::Shared);
        let v = c.fill(4, LineState::Shared).expect("evicts");
        assert_eq!(v.line, 0);
        assert!(v.dirty);
    }

    #[test]
    fn invalidate_and_state_changes() {
        let mut c = small_cache();
        c.fill(7, LineState::Shared);
        c.set_state(7, LineState::Modified);
        assert_eq!(c.peek(7), LineState::Modified);
        assert!(c.invalidate(7));
        assert_eq!(c.peek(7), LineState::Invalid);
        assert!(!c.invalidate(7));
    }

    #[test]
    fn different_sets_do_not_interfere() {
        let mut c = small_cache();
        c.fill(0, LineState::Shared);
        c.fill(1, LineState::Shared); // set 1
        c.fill(2, LineState::Shared);
        assert_eq!(c.peek(0), LineState::Shared);
        assert_eq!(c.peek(1), LineState::Shared);
        assert_eq!(c.peek(2), LineState::Shared);
    }

    #[test]
    fn mshr_coalescing() {
        let mut m = MshrFile::new(2);
        assert_eq!(m.register(5, false), MshrOutcome::Allocated);
        assert_eq!(
            m.register(5, false),
            MshrOutcome::Coalesced { fill_at: u64::MAX }
        );
        m.set_fill_time(5, 100);
        assert_eq!(m.register(5, true), MshrOutcome::Coalesced { fill_at: 100 });
        let e = m.get(5).expect("present");
        assert_eq!(e.reads, 2);
        assert_eq!(e.writes, 1);
        assert!(e.is_read());
    }

    #[test]
    fn mshr_full_then_release() {
        let mut m = MshrFile::new(2);
        m.register(1, false);
        m.register(2, true);
        assert_eq!(m.register(3, false), MshrOutcome::Full);
        assert_eq!(m.occupancy(), (1, 2));
        m.release(1);
        assert_eq!(m.free(), 1);
        assert_eq!(m.register(3, false), MshrOutcome::Allocated);
    }

    #[test]
    fn write_only_mshr_not_read() {
        let mut m = MshrFile::new(2);
        m.register(9, true);
        assert_eq!(m.occupancy(), (0, 1));
    }
}
