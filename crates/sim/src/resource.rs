//! Occupancy-based contention modeling.
//!
//! Shared components (bus, memory banks, cache ports, mesh links) are
//! modeled as [`Resource`]s: a request reserves the resource for a
//! duration no earlier than a given time; the grant time reflects queueing
//! behind earlier reservations. This captures bandwidth contention (the
//! effect behind the Latbench total-latency increase in Section 5.1)
//! without message-level simulation.

use mempar_stats::Utilization;

/// A single-server resource with FIFO reservation semantics.
#[derive(Debug, Clone, Default)]
pub struct Resource {
    busy_until: u64,
    busy_cycles: u64,
}

impl Resource {
    /// A new, idle resource.
    pub fn new() -> Self {
        Self::default()
    }

    /// Reserves the resource for `dur` cycles starting no earlier than
    /// `at`; returns the actual start time.
    pub fn reserve(&mut self, at: u64, dur: u64) -> u64 {
        let start = self.busy_until.max(at);
        self.busy_until = start + dur;
        self.busy_cycles += dur;
        start
    }

    /// Time the resource becomes free.
    pub fn free_at(&self) -> u64 {
        self.busy_until
    }

    /// Total cycles of reserved (busy) time so far.
    pub fn busy_cycles(&self) -> u64 {
        self.busy_cycles
    }

    /// Utilization over `elapsed` observed cycles.
    pub fn utilization(&self, elapsed: u64) -> Utilization {
        Utilization {
            busy: self.busy_cycles.min(elapsed),
            total: elapsed,
        }
    }
}

/// A pool of identical single-server resources (e.g. interleaved banks
/// accessed by index, or replicated ports granted to the least busy).
#[derive(Debug, Clone)]
pub struct ResourcePool {
    units: Vec<Resource>,
}

impl ResourcePool {
    /// A pool of `n` idle units.
    pub fn new(n: usize) -> Self {
        assert!(n > 0, "resource pool needs at least one unit");
        ResourcePool {
            units: vec![Resource::new(); n],
        }
    }

    /// Number of units.
    pub fn len(&self) -> usize {
        self.units.len()
    }

    /// True when the pool has no units (never, by construction).
    pub fn is_empty(&self) -> bool {
        self.units.is_empty()
    }

    /// Reserves the specific unit `idx` (bank addressed by interleaving).
    pub fn reserve_unit(&mut self, idx: usize, at: u64, dur: u64) -> u64 {
        self.units[idx].reserve(at, dur)
    }

    /// Reserves whichever unit can start earliest (replicated ports).
    pub fn reserve_any(&mut self, at: u64, dur: u64) -> u64 {
        let idx = self
            .units
            .iter()
            .enumerate()
            .min_by_key(|(_, u)| u.free_at())
            .map(|(i, _)| i)
            .expect("pool is non-empty");
        self.units[idx].reserve(at, dur)
    }

    /// Sum of busy cycles across units.
    pub fn busy_cycles(&self) -> u64 {
        self.units.iter().map(Resource::busy_cycles).sum()
    }

    /// Aggregate utilization over `elapsed` cycles (capacity = n·elapsed).
    pub fn utilization(&self, elapsed: u64) -> Utilization {
        let cap = elapsed * self.units.len() as u64;
        Utilization {
            busy: self.busy_cycles().min(cap),
            total: cap,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reservations_queue() {
        let mut r = Resource::new();
        assert_eq!(r.reserve(10, 5), 10);
        assert_eq!(r.reserve(11, 5), 15); // queued behind the first
        assert_eq!(r.reserve(100, 5), 100); // idle gap
        assert_eq!(r.busy_cycles(), 15);
    }

    #[test]
    fn idle_resource_grants_immediately() {
        let mut r = Resource::new();
        assert_eq!(r.reserve(0, 3), 0);
        assert_eq!(r.free_at(), 3);
    }

    #[test]
    fn pool_any_picks_least_busy() {
        let mut p = ResourcePool::new(2);
        assert_eq!(p.reserve_any(0, 10), 0); // unit 0
        assert_eq!(p.reserve_any(0, 10), 0); // unit 1
        assert_eq!(p.reserve_any(0, 10), 10); // both busy: queue
    }

    #[test]
    fn pool_unit_addressing() {
        let mut p = ResourcePool::new(4);
        assert_eq!(p.reserve_unit(2, 5, 7), 5);
        assert_eq!(p.reserve_unit(2, 5, 7), 12);
        assert_eq!(p.reserve_unit(3, 5, 7), 5);
    }

    #[test]
    fn utilization_reported() {
        let mut r = Resource::new();
        r.reserve(0, 50);
        let u = r.utilization(100);
        assert_eq!(u.fraction(), 0.5);
        let mut p = ResourcePool::new(2);
        p.reserve_any(0, 100);
        assert_eq!(p.utilization(100).fraction(), 0.5);
    }
}
